//! Ablations of Ergo's design constants (paper Sections 9.3, 13.3) and
//! failure injection at the model's boundaries (purge-round departures).

use sybil_bench::ablation_exp;

fn main() {
    println!("=== Ablations: Ergo's constants and model boundaries ===");
    let start = std::time::Instant::now();
    let rows = ablation_exp::run();
    let table = ablation_exp::to_table(&rows);
    println!("{}", table.render());
    table.write_csv("ablation");
    println!("elapsed: {:.1?}", start.elapsed());
}
