//! Validates Theorem 4 / Lemma 18 (paper Section 12): the decentralized
//! variant matches centralized Ergo's costs while its committee keeps a
//! >= 7/8 good fraction and Theta(log n) size.

use sybil_bench::committee_exp;

fn main() {
    println!("=== Decentralized Ergo: committee invariants (Theorem 4) ===");
    let start = std::time::Instant::now();
    let outcomes = committee_exp::run();
    let table = committee_exp::to_table(&outcomes);
    println!("{}", table.render());
    if let Some(path) = table.write_csv("committee") {
        println!("csv: {}", path.display());
    }
    println!("elapsed: {:.1?}", start.elapsed());
}
