//! Extension E7 (paper Section 13.2): the Sybil-resistant DHT. Lookup
//! success across Sybil fractions and routing strategies, plus an
//! end-to-end run whose ring membership comes from an Ergo-defended
//! simulation under worst-case attack.

use sybil_bench::dht_exp;

fn main() {
    println!("=== Sybil-resistant DHT (Section 13.2 extension) ===");
    let start = std::time::Instant::now();
    let grid = dht_exp::run_static();
    let table = dht_exp::to_table(&grid);
    println!("{}", table.render());
    table.write_csv("dht_grid");

    println!("\n--- end to end: ring membership from an Ergo run under attack ---");
    let (cells, _) = dht_exp::run_end_to_end_grid();
    let table = dht_exp::end_to_end_table(&cells);
    println!("{}", table.render());
    table.write_csv("dht_end_to_end");
    println!("elapsed: {:.1?}", start.elapsed());
}
