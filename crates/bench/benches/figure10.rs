//! Regenerates the paper's Figure 10: plain Ergo versus the heuristic
//! variants ERGO-CH1, ERGO-CH2, ERGO-SF(92), ERGO-SF(98).

use sybil_bench::figure10;

fn main() {
    println!("=== Figure 10: Ergo heuristics (Section 10.3) ===");
    let start = std::time::Instant::now();
    let points = figure10::run();
    let table = figure10::to_table(&points);
    println!("{}", table.render());
    if let Some(path) = table.write_csv("figure10") {
        println!("csv: {}", path.display());
    }
    println!("elapsed: {:.1?}", start.elapsed());
}
