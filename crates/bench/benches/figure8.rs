//! Regenerates the paper's Figure 8: good spend rate `A` vs adversary spend
//! rate `T` for ERGO, CCOM, SybilControl, REMP-1e7, ERGO-SF(98) over the
//! four evaluation networks.
//!
//! Full scale (default) ≈ paper scale: 10 000 s horizons, `T ∈ 2⁰…2²⁰`.
//! Set `SYBIL_BENCH_FAST=1` for a smoke run.

use sybil_bench::figure8;

fn main() {
    println!("=== Figure 8: good spend rate A vs adversary spend rate T ===");
    println!("(paper Section 10.1; kappa = 1/18, 10 000 s per point)");
    let start = std::time::Instant::now();
    let points = figure8::run();
    let table = figure8::to_table(&points);
    println!("{}", table.render());
    if let Some(path) = table.write_csv("figure8") {
        println!("csv: {}", path.display());
    }
    let summary = figure8::improvement_summary(&points);
    println!("\n--- baseline cost relative to ERGO at the largest attack ---");
    println!("{}", summary.render());
    summary.write_csv("figure8_summary");
    println!("elapsed: {:.1?}", start.elapsed());
}
