//! Regenerates the paper's Figure 9: GoodJEst estimate / true good join
//! rate, versus persistent Sybil fraction, with and without a `T = 10 000`
//! injection attack, over the four evaluation networks.

use sybil_bench::figure9;

fn main() {
    println!("=== Figure 9: GoodJEst estimate accuracy ===");
    println!("(paper Section 10.2; expected bands: (0.08, 1.2) at T=0, (0.08, 4) at T=10^4)");
    let start = std::time::Instant::now();
    let cells = figure9::run();
    let table = figure9::to_table(&cells);
    println!("{}", table.render());
    if let Some(path) = table.write_csv("figure9") {
        println!("csv: {}", path.display());
    }
    println!("elapsed: {:.1?}", start.elapsed());
}
