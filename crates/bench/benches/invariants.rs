//! Validates Theorem 1 beyond the plotted figures: the Lemma 9 invariant
//! (bad fraction < 3k) against four adversary strategies, and the sqrt(T)
//! scaling of Ergo's spend rate (vs CCom's linear scaling).

use sybil_bench::invariants_exp;

fn main() {
    println!("=== Lemma 9 invariant under adversarial strategies ===");
    let start = std::time::Instant::now();
    let inv = invariants_exp::run_invariants();
    let table = invariants_exp::invariants_table(&inv);
    println!("{}", table.render());
    table.write_csv("invariants");

    println!("\n=== Spend-rate scaling: A ~ T^e ===");
    let fits = invariants_exp::run_scaling();
    let table = invariants_exp::scaling_table(&fits);
    println!("{}", table.render());
    table.write_csv("scaling");
    println!("elapsed: {:.1?}", start.elapsed());
}
