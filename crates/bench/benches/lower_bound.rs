//! Validates Theorem 3 (paper Section 11): every B1-B3 algorithm spends at
//! rate Omega(sqrt(T*J) + J) against the uniform-join / abandon-at-purge
//! adversary, across entrance cost functions.

use sybil_bench::lower_bound_exp;

fn main() {
    println!("=== Theorem 3 lower bound: spend rate vs sqrt(TJ)+J ===");
    println!("(J = 2 IDs/s, n0 = 10 000, delta = 1/11)");
    let start = std::time::Instant::now();
    let outcomes = lower_bound_exp::run();
    let table = lower_bound_exp::to_table(&outcomes);
    println!("{}", table.render());
    if let Some(path) = table.write_csv("lower_bound") {
        println!("csv: {}", path.display());
    }
    println!("elapsed: {:.1?}", start.elapsed());
}
