//! Criterion micro-benchmarks for the substrates: SHA-256 throughput,
//! proof-of-work solving, entrance-window operations, GoodJEst event
//! processing, symmetric-difference tracking, SMR proposals, and end-to-end
//! engine throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ergo_core::goodjest::GoodJEst;
use ergo_core::params::{ErgoConfig, GoodJEstConfig};
use ergo_core::symdiff::SymdiffTracker;
use ergo_core::window::JoinWindow;
use ergo_core::Ergo;
use std::hint::black_box;
use sybil_committee::smr::SmrCluster;
use sybil_crypto::pow::{Challenge, Solver};
use sybil_crypto::sha256::Sha256;
use sybil_sim::adversary::BudgetJoiner;
use sybil_sim::cost::Cost;
use sybil_sim::defense::Defense;
use sybil_sim::engine::{SimConfig, Simulation};
use sybil_sim::time::Time;
use sybil_sim::workload::{Session, Workload};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16_384] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| Sha256::digest(black_box(&data)))
        });
    }
    group.finish();
}

fn bench_pow(c: &mut Criterion) {
    let mut group = c.benchmark_group("pow");
    for hardness in [1u64, 16, 256] {
        group.bench_function(format!("solve_k{hardness}"), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let challenge = Challenge::new(&i.to_be_bytes(), b"bench", hardness);
                Solver::new().solve(black_box(&challenge))
            })
        });
    }
    group.bench_function("verify", |b| {
        let challenge = Challenge::new(b"nonce", b"bench", 64);
        let solution = Solver::new().solve(&challenge);
        b.iter(|| challenge.verify(black_box(&solution)))
    });
    group.finish();
}

fn bench_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_window");
    group.bench_function("record_and_count_10k", |b| {
        b.iter_batched(
            JoinWindow::new,
            |mut w| {
                for i in 0..10_000u64 {
                    w.record(Time(i as f64 * 0.01), 1);
                }
                black_box(w.count_within(Time(100.0), 1.0))
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_goodjest(c: &mut Criterion) {
    c.bench_function("goodjest_100k_events", |b| {
        b.iter_batched(
            || GoodJEst::new(GoodJEstConfig::default(), Time::ZERO, 10_000),
            |mut est| {
                for i in 0..50_000u64 {
                    let t = Time(i as f64 * 0.1);
                    est.on_join(t, 1);
                    est.on_depart(t, i % 3 == 0, 1);
                }
                black_box(est.estimate())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_symdiff(c: &mut Criterion) {
    c.bench_function("symdiff_1m_events", |b| {
        b.iter(|| {
            let mut t = SymdiffTracker::new();
            for i in 0..500_000u64 {
                t.on_join(1);
                if i % 2 == 0 {
                    t.on_depart_new(1);
                } else {
                    t.on_depart_old(1);
                }
            }
            black_box(t.symdiff())
        })
    });
}

fn bench_ergo_defense(c: &mut Criterion) {
    c.bench_function("ergo_bad_batches_1k", |b| {
        b.iter_batched(
            || {
                let mut e = Ergo::new(ErgoConfig::default());
                e.init(Time::ZERO, 1_000_000, 0);
                e
            },
            |mut e| {
                for i in 0..1000u64 {
                    black_box(e.bad_join_batch(Time(i as f64), Cost(1000.0), u64::MAX));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_gnutella_like_200s", |b| {
        let workload = Workload::new(
            vec![Time(1e9); 5000],
            (0..400)
                .map(|i| Session::new(Time(i as f64 * 0.5), Time(i as f64 * 0.5 + 100.0)))
                .collect(),
        );
        let cfg = SimConfig { horizon: Time(200.0), adv_rate: 1000.0, ..SimConfig::default() };
        b.iter(|| {
            Simulation::new(
                cfg,
                Ergo::new(ErgoConfig::default()),
                BudgetJoiner::new(1000.0),
                workload.clone(),
            )
            .run()
        })
    });
}

fn bench_smr(c: &mut Criterion) {
    c.bench_function("smr_propose_10_replicas", |b| {
        b.iter_batched(
            || SmrCluster::new(7, &[sybil_committee::ByzantineMode::RejectAll; 3], b"bench"),
            |mut cluster| {
                for e in 0..10 {
                    black_box(cluster.propose(e));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_pow,
    bench_window,
    bench_goodjest,
    bench_symdiff,
    bench_ergo_defense,
    bench_engine,
    bench_smr
);
criterion_main!(benches);
