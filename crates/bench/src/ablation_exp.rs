//! Extension experiment E8 — ablations of Ergo's design constants
//! (paper Sections 9.3 and 13.3) and failure injection at the model's
//! boundaries.
//!
//! * **Iteration threshold** (`1/11`): larger fractions purge less often
//!   (cheaper) but let the Sybil fraction climb higher between purges; the
//!   sweep exposes the safety/cost dial the paper's constants pin down.
//! * **Interval threshold** (`5/12`, with Section 13.3's `1/2` variant):
//!   changes estimator cadence and with it entrance-window sizing.
//! * **Estimator initialization** (`|S(0)|/init_duration`): the cold-start
//!   estimate the spec prescribes is wildly high; the sweep quantifies how
//!   much of Ergo's cost comes from the warm-up phase.
//! * **Purge round duration**: with non-instant rounds, good IDs departing
//!   mid-round exercise the `ε < 1/12` assumption.
//!
//! Each knob cell runs [`trials`] workload seeds (the Gnutella workloads
//! come from the shared disk cache), aggregated to `mean, ci95_lo,
//! ci95_hi`, and is recorded in a resumable results store.

use crate::grid::default_cache_dir;
use crate::sweep::{default_workers, fast_mode};
use crate::table::{fmt_num, results_dir, Table};
use ergo_core::params::{ErgoConfig, GoodJEstConfig, Ratio};
use ergo_core::Ergo;
use sybil_churn::networks;
use sybil_exp::spec::{text_fingerprint, AxisValue, CellSpec};
use sybil_exp::{trial_seed, MetricSummary, Welford, WorkloadCache};
use sybil_sim::adversary::BudgetJoiner;
use sybil_sim::engine::{SimConfig, Simulation};
use sybil_sim::time::Time;
use sybil_sim::workload::WorkloadSource;

/// One ablation row, aggregated over trials.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// What was varied.
    pub knob: String,
    /// The varied value.
    pub value: String,
    /// Good spend rate over trials.
    pub good_rate: MetricSummary,
    /// Purges executed over trials.
    pub purges: MetricSummary,
    /// Max bad fraction over trials (bound: 1/6).
    pub max_bad_fraction: MetricSummary,
}

/// Independent trials per knob value (see [`crate::grid::default_trials`]).
pub fn trials() -> u32 {
    crate::grid::default_trials()
}

/// Runs one configuration against any workload source, returning
/// `(good spend rate, purges, max bad fraction)`.
pub fn run_cfg_with<W: WorkloadSource>(
    workload: W,
    cfg: ErgoConfig,
    round_duration: f64,
    t: f64,
    horizon: f64,
) -> (f64, u64, f64) {
    let sim =
        SimConfig { horizon: Time(horizon), adv_rate: t, round_duration, ..SimConfig::default() };
    let r = Simulation::new(sim, Ergo::new(cfg), BudgetJoiner::new(t), workload).run();
    (r.good_spend_rate(), r.purges, r.max_bad_fraction)
}

#[cfg(test)]
fn run_cfg(
    cfg: ErgoConfig,
    round_duration: f64,
    t: f64,
    horizon: f64,
    seed: u64,
) -> (f64, u64, f64) {
    run_cfg_with(
        networks::gnutella().generate(Time(horizon), seed),
        cfg,
        round_duration,
        t,
        horizon,
    )
}

/// The knob grid: `(knob, value, config, round_duration)`.
fn knob_grid() -> Vec<(String, String, ErgoConfig, f64)> {
    let mut grid = Vec::new();
    // 1. Iteration (purge) threshold.
    for (num, den) in [(1u64, 7u64), (1, 11), (1, 15), (1, 22)] {
        let cfg = ErgoConfig { iteration_threshold: Ratio::new(num, den), ..ErgoConfig::default() };
        grid.push(("iteration threshold".into(), format!("{num}/{den}"), cfg, 0.0));
    }
    // 2. Interval (estimator) threshold, incl. the Section 13.3 variant.
    for (num, den) in [(5u64, 12u64), (1, 2), (1, 4)] {
        let mut cfg = ErgoConfig::default();
        cfg.estimator.interval_threshold = Ratio::new(num, den);
        grid.push(("interval threshold".into(), format!("{num}/{den}"), cfg, 0.0));
    }
    // 3. Estimator initialization duration (cold-start cost).
    for init in [1.0f64, 100.0, 10_000.0] {
        let cfg = ErgoConfig {
            estimator: GoodJEstConfig { init_duration: init, ..GoodJEstConfig::default() },
            ..ErgoConfig::default()
        };
        grid.push(("estimator init duration".into(), format!("{init}s"), cfg, 0.0));
    }
    // 4. Purge round duration (ε exposure: departures during the round).
    for round in [0.0f64, 1.0, 5.0] {
        grid.push((
            "purge round duration".into(),
            format!("{round}s"),
            ErgoConfig::default(),
            round,
        ));
    }
    grid
}

/// The axis assignment for one knob cell. The knob list is a union of
/// per-knob sweeps rather than a cartesian product, so cells are built as
/// explicit [`CellSpec`] assignments (axes `knob`, `value`) and run
/// through [`sybil_exp::run_cell_grid`] — the canonical escaped ids keep
/// values like `1/11` and `5/12` collision-free without the lossy
/// character replacement the old free-form keys used.
fn cell_spec(knob: &str, value: &str) -> CellSpec {
    CellSpec::new(vec![
        ("knob".into(), AxisValue::Str(knob.into())),
        ("value".into(), AxisValue::Str(value.into())),
    ])
}

/// Runs all ablations (multi-trial, cached workloads, resumable) and
/// returns the rows.
pub fn run() -> Vec<AblationRow> {
    let (horizon, t) = if fast_mode() { (400.0, 5_000.0) } else { (5_000.0, 20_000.0) };
    let (trials, base_seed) = (trials(), 61u64);
    let cache = WorkloadCache::open(default_cache_dir())
        .unwrap_or_else(|e| panic!("cannot open workload cache: {e}"));
    let grid = knob_grid();

    // The full knob grid (including the resolved ErgoConfigs) and the
    // churn model go into the fingerprint, so a code change to a default
    // constant or the Gnutella parameters re-runs the grid instead of
    // resuming stale cells. v3 marks the switch to canonical escaped
    // cell ids: the key scheme is part of the store's identity, so a
    // store written under the old free-form keys is displaced rather
    // than resumed with every lookup missing (and its records orphaned).
    let config = format!(
        "ablation v3 (canonical cell ids)\nhorizon = {horizon}\nT = {t}\ntrials = {trials}\n\
         seed = {base_seed}\nnetwork = {:?}\nknobs = {grid:?}\n",
        networks::gnutella(),
    );

    let cells: Vec<(CellSpec, (String, String, ErgoConfig, f64))> =
        grid.into_iter().map(|cell| (cell_spec(&cell.0, &cell.1), cell)).collect();

    let net = networks::gnutella();
    let cache_ref = &cache;
    let outcome = sybil_exp::run_cell_grid(
        "ablation",
        &text_fingerprint(&config),
        &results_dir().join("ablation.store"),
        cells,
        Some(cache_ref),
        default_workers(),
        move |(_, _, cfg, round): &(String, String, ErgoConfig, f64)| {
            let mut rate = Welford::new();
            let mut purges = Welford::new();
            let mut frac = Welford::new();
            for trial in 0..trials {
                let wseed = trial_seed(base_seed, trial as u64);
                let disk = cache_ref
                    .get_or_create(&net, Time(horizon), wseed)
                    .unwrap_or_else(|e| panic!("workload cache failed: {e}"));
                let (a, p, f) = run_cfg_with(disk, *cfg, *round, t, horizon);
                rate.push(a);
                purges.push(p as f64);
                frac.push(f);
            }
            let (rate, purges, frac) = (rate.summary(), purges.summary(), frac.summary());
            vec![
                ("trials".into(), trials as f64),
                ("good_rate_mean".into(), rate.mean),
                ("good_rate_ci95_lo".into(), rate.ci95_lo),
                ("good_rate_ci95_hi".into(), rate.ci95_hi),
                ("purges_mean".into(), purges.mean),
                ("purges_ci95_lo".into(), purges.ci95_lo),
                ("purges_ci95_hi".into(), purges.ci95_hi),
                ("max_bad_fraction_mean".into(), frac.mean),
                ("max_bad_fraction_ci95_lo".into(), frac.ci95_lo),
                ("max_bad_fraction_ci95_hi".into(), frac.ci95_hi),
            ]
        },
    )
    .unwrap_or_else(|e| panic!("ablation experiment failed: {e}"));
    eprint!("{}", outcome.summary.render());

    knob_grid()
        .iter()
        .zip(&outcome.records)
        .map(|((knob, value, _, _), r)| {
            // Quarantined cell → None → all-NaN summaries → blank cells.
            let r = r.as_ref();
            let n = r.and_then(|r| r.get("trials")).unwrap_or(f64::NAN) as u64;
            let metric = |name: &str| MetricSummary {
                n,
                mean: r.and_then(|r| r.get(&format!("{name}_mean"))).unwrap_or(f64::NAN),
                ci95_lo: r.and_then(|r| r.get(&format!("{name}_ci95_lo"))).unwrap_or(f64::NAN),
                ci95_hi: r.and_then(|r| r.get(&format!("{name}_ci95_hi"))).unwrap_or(f64::NAN),
            };
            AblationRow {
                knob: knob.clone(),
                value: value.clone(),
                good_rate: metric("good_rate"),
                purges: metric("purges"),
                max_bad_fraction: metric("max_bad_fraction"),
            }
        })
        .collect()
}

/// Formats the ablation table with trial means and 95 % confidence bounds
/// for the good spend rate.
pub fn to_table(rows: &[AblationRow]) -> Table {
    let mut table = Table::new(vec![
        "knob",
        "value",
        "trials",
        "mean",
        "ci95_lo",
        "ci95_hi",
        "purges",
        "max bad frac",
        "bound",
    ]);
    for r in rows {
        table.push(vec![
            r.knob.clone(),
            r.value.clone(),
            r.good_rate.n.to_string(),
            fmt_num(r.good_rate.mean),
            fmt_num(r.good_rate.ci95_lo),
            fmt_num(r.good_rate.ci95_hi),
            fmt_num(r.purges.mean),
            fmt_num(r.max_bad_fraction.mean),
            "0.167".to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn looser_purge_threshold_purges_less_but_risks_more() {
        let tight = {
            let cfg =
                ErgoConfig { iteration_threshold: Ratio::new(1, 11), ..ErgoConfig::default() };
            run_cfg(cfg, 0.0, 5_000.0, 300.0, 3)
        };
        let loose = {
            let cfg = ErgoConfig { iteration_threshold: Ratio::new(1, 4), ..ErgoConfig::default() };
            run_cfg(cfg, 0.0, 5_000.0, 300.0, 3)
        };
        assert!(loose.1 < tight.1, "loose threshold should purge less");
        assert!(
            loose.2 > tight.2,
            "loose threshold should peak higher: {} vs {}",
            loose.2,
            tight.2
        );
    }

    #[test]
    fn nonzero_round_duration_still_bounded() {
        let (_, purges, frac) = run_cfg(ErgoConfig::default(), 1.0, 5_000.0, 300.0, 5);
        assert!(purges > 0);
        assert!(frac < 1.0 / 6.0 + 0.02, "fraction {frac} with 1 s purge rounds");
    }

    #[test]
    fn knob_grid_ids_are_unique_and_store_safe() {
        let grid = knob_grid();
        assert_eq!(grid.len(), 13);
        // Exercise the SAME id derivation run() uses for the store keys.
        let ids: std::collections::BTreeSet<String> =
            grid.iter().map(|(k, v, _, _)| cell_spec(k, v).id()).collect();
        assert_eq!(ids.len(), grid.len());
        for id in &ids {
            assert!(!id.chars().any(char::is_whitespace), "{id}");
        }
        // The old lossy replacement collapsed e.g. "1/11" and "1-11";
        // canonical escaping keeps such value pairs distinct.
        assert_ne!(
            cell_spec("iteration threshold", "1/11").id(),
            cell_spec("iteration threshold", "1-11").id()
        );
    }
}
