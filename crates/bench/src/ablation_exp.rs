//! Extension experiment E8 — ablations of Ergo's design constants
//! (paper Sections 9.3 and 13.3) and failure injection at the model's
//! boundaries.
//!
//! * **Iteration threshold** (`1/11`): larger fractions purge less often
//!   (cheaper) but let the Sybil fraction climb higher between purges; the
//!   sweep exposes the safety/cost dial the paper's constants pin down.
//! * **Interval threshold** (`5/12`, with Section 13.3's `1/2` variant):
//!   changes estimator cadence and with it entrance-window sizing.
//! * **Estimator initialization** (`|S(0)|/init_duration`): the cold-start
//!   estimate the spec prescribes is wildly high; the sweep quantifies how
//!   much of Ergo's cost comes from the warm-up phase.
//! * **Purge round duration**: with non-instant rounds, good IDs departing
//!   mid-round exercise the `ε < 1/12` assumption.

use crate::sweep::{default_workers, fast_mode, run_parallel};
use crate::table::{fmt_num, Table};
use ergo_core::params::{ErgoConfig, GoodJEstConfig, Ratio};
use ergo_core::Ergo;
use sybil_churn::networks;
use sybil_sim::adversary::BudgetJoiner;
use sybil_sim::engine::{SimConfig, Simulation};
use sybil_sim::time::Time;

/// One ablation row.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// What was varied.
    pub knob: String,
    /// The varied value.
    pub value: String,
    /// Good spend rate.
    pub good_rate: f64,
    /// Purges executed.
    pub purges: u64,
    /// Max bad fraction (bound: 1/6).
    pub max_bad_fraction: f64,
}

fn run_cfg(
    cfg: ErgoConfig,
    round_duration: f64,
    t: f64,
    horizon: f64,
    seed: u64,
) -> (f64, u64, f64) {
    let workload = networks::gnutella().generate(Time(horizon), seed);
    let sim =
        SimConfig { horizon: Time(horizon), adv_rate: t, round_duration, ..SimConfig::default() };
    let r = Simulation::new(sim, Ergo::new(cfg), BudgetJoiner::new(t), workload).run();
    (r.good_spend_rate(), r.purges, r.max_bad_fraction)
}

/// Runs all ablations and returns the rows.
pub fn run() -> Vec<AblationRow> {
    let (horizon, t) = if fast_mode() { (400.0, 5_000.0) } else { (5_000.0, 20_000.0) };
    let mut jobs: Vec<Box<dyn FnOnce() -> AblationRow + Send>> = Vec::new();

    // 1. Iteration (purge) threshold.
    for (num, den) in [(1u64, 7u64), (1, 11), (1, 15), (1, 22)] {
        jobs.push(Box::new(move || {
            let cfg =
                ErgoConfig { iteration_threshold: Ratio::new(num, den), ..ErgoConfig::default() };
            let (a, purges, frac) = run_cfg(cfg, 0.0, t, horizon, 61);
            AblationRow {
                knob: "iteration threshold".into(),
                value: format!("{num}/{den}"),
                good_rate: a,
                purges,
                max_bad_fraction: frac,
            }
        }));
    }

    // 2. Interval (estimator) threshold, incl. the Section 13.3 variant.
    for (num, den) in [(5u64, 12u64), (1, 2), (1, 4)] {
        jobs.push(Box::new(move || {
            let mut cfg = ErgoConfig::default();
            cfg.estimator.interval_threshold = Ratio::new(num, den);
            let (a, purges, frac) = run_cfg(cfg, 0.0, t, horizon, 61);
            AblationRow {
                knob: "interval threshold".into(),
                value: format!("{num}/{den}"),
                good_rate: a,
                purges,
                max_bad_fraction: frac,
            }
        }));
    }

    // 3. Estimator initialization duration (cold-start cost).
    for init in [1.0f64, 100.0, 10_000.0] {
        jobs.push(Box::new(move || {
            let cfg = ErgoConfig {
                estimator: GoodJEstConfig { init_duration: init, ..GoodJEstConfig::default() },
                ..ErgoConfig::default()
            };
            let (a, purges, frac) = run_cfg(cfg, 0.0, t, horizon, 61);
            AblationRow {
                knob: "estimator init duration".into(),
                value: format!("{init}s"),
                good_rate: a,
                purges,
                max_bad_fraction: frac,
            }
        }));
    }

    // 4. Purge round duration (ε exposure: departures during the round).
    for round in [0.0f64, 1.0, 5.0] {
        jobs.push(Box::new(move || {
            let (a, purges, frac) = run_cfg(ErgoConfig::default(), round, t, horizon, 61);
            AblationRow {
                knob: "purge round duration".into(),
                value: format!("{round}s"),
                good_rate: a,
                purges,
                max_bad_fraction: frac,
            }
        }));
    }

    run_parallel(jobs, default_workers())
}

/// Formats the ablation table.
pub fn to_table(rows: &[AblationRow]) -> Table {
    let mut table =
        Table::new(vec!["knob", "value", "A (good spend rate)", "purges", "max bad frac", "bound"]);
    for r in rows {
        table.push(vec![
            r.knob.clone(),
            r.value.clone(),
            fmt_num(r.good_rate),
            r.purges.to_string(),
            fmt_num(r.max_bad_fraction),
            "0.167".to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn looser_purge_threshold_purges_less_but_risks_more() {
        let tight = {
            let cfg =
                ErgoConfig { iteration_threshold: Ratio::new(1, 11), ..ErgoConfig::default() };
            run_cfg(cfg, 0.0, 5_000.0, 300.0, 3)
        };
        let loose = {
            let cfg = ErgoConfig { iteration_threshold: Ratio::new(1, 4), ..ErgoConfig::default() };
            run_cfg(cfg, 0.0, 5_000.0, 300.0, 3)
        };
        assert!(loose.1 < tight.1, "loose threshold should purge less");
        assert!(
            loose.2 > tight.2,
            "loose threshold should peak higher: {} vs {}",
            loose.2,
            tight.2
        );
    }

    #[test]
    fn nonzero_round_duration_still_bounded() {
        let (_, purges, frac) = run_cfg(ErgoConfig::default(), 1.0, 5_000.0, 300.0, 5);
        assert!(purges > 0);
        assert!(frac < 1.0 / 6.0 + 0.02, "fraction {frac} with 1 s purge rounds");
    }
}
