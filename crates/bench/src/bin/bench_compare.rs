//! `bench_compare` — the CI bench-regression gate.
//!
//! Compares a freshly generated `BENCH_engine.json` against the committed
//! baseline and fails (exit 1) when any scenario present in both
//! regresses by more than the tolerance in events/sec, when a baseline
//! scenario disappears, or when a shared scenario's behavior fingerprint
//! drifts (fingerprints are seed-pinned counters, so drift means the
//! simulation's *behavior* changed, not just its speed).
//!
//! The `macro_scale_s<N>` family additionally gates **shard scaling**
//! within the fresh report alone: every `_s<N≥4>` scenario must match its
//! `_s1` sibling's fingerprint bit-for-bit (sharding may never change
//! behavior), and on machines with at least 4 cores — the fresh report
//! records its `available_parallelism` — it must also run at least
//! [`MIN_SHARD_SPEEDUP`]× faster. On narrower machines the speedup gate is
//! skipped (announced on stdout): extra shards on one core can only add
//! coordination cost, and an honest number should show that.
//!
//! ```text
//! Usage: bench_compare BASELINE.json FRESH.json [--tolerance 0.25]
//! ```
//!
//! Two sources of cross-machine noise are handled explicitly:
//!
//! * **Hardware speed.** The committed baseline is generated on a
//!   developer workstation; CI runs on slower shared runners. The queue
//!   micro-benches in the same JSON are a pure CPU/memory proxy that
//!   regresses with the *machine*, not the engine, so the scenario floor
//!   is scaled by the fresh/baseline queue-throughput ratio before the
//!   tolerance applies. A genuinely slower engine still fails: it slows
//!   relative to the queue proxy.
//! * **libm rounding.** The spend fields of a fingerprint are f64 sums
//!   whose `ln`/`powf` inputs are not correctly rounded and may differ by
//!   ulps across libm versions; they are compared with a 1e-9 relative
//!   tolerance. The integer counters are compared exactly.
//!
//! Reports may also (or only) carry a `"gate"` section — the admission
//! service baseline `gate_bench` writes to `BENCH_gate.json`. Gate
//! scenarios are gated on two axes: the `decision_fingerprint` (a SHA-256
//! over the service's wall-clock-free decision log) must match the
//! baseline exactly, and `verifications_per_sec` must clear the same
//! machine-adjusted floor the engine scenarios use. A report whose only
//! payload is a gate section needs no `"scenarios"` block.
//!
//! The JSON is the hand-rolled format `bench_report` writes (the build
//! environment has no serde); the scanner below reads exactly that shape
//! and tolerates added per-scenario keys, so the baseline may predate
//! fields the fresh report has.

use std::process::ExitCode;

/// The seed-pinned behavior counters of one scenario.
#[derive(Clone, Debug, PartialEq)]
struct Fp {
    good_joins_admitted: f64,
    bad_joins_admitted: f64,
    purges: f64,
    good_spend: f64,
    adv_spend: f64,
}

impl Fp {
    /// True when `other` is behaviorally identical: exact on the integer
    /// counters, within `REL_TOL` on the libm-dependent spend sums.
    fn matches(&self, other: &Fp) -> bool {
        const REL_TOL: f64 = 1e-9;
        let close = |a: f64, b: f64| (a - b).abs() <= REL_TOL * a.abs().max(b.abs());
        self.good_joins_admitted == other.good_joins_admitted
            && self.bad_joins_admitted == other.bad_joins_admitted
            && self.purges == other.purges
            && close(self.good_spend, other.good_spend)
            && close(self.adv_spend, other.adv_spend)
    }
}

/// One scenario's comparable slice of the report.
#[derive(Clone, Debug, PartialEq)]
struct Scenario {
    name: String,
    events_per_sec: f64,
    fingerprint: Fp,
    /// Steady-state allocator calls per event, when the report was
    /// produced by an `alloc-count` build (`None` for baselines that
    /// predate the field — the alloc gates then skip that side).
    allocs_per_event: Option<f64>,
}

/// Minimum `_s4`-over-`_s1` throughput ratio on machines wide enough to
/// demonstrate shard scaling (the PR acceptance floor).
const MIN_SHARD_SPEEDUP: f64 = 1.5;

/// Cores below which the shard *speedup* gate is skipped (the fingerprint
/// gate always applies).
const MIN_SCALING_CORES: f64 = 4.0;

/// Scenarios whose steady-state event loop must allocate **exactly
/// nothing**: the hot path's zero-allocation contract, gated whenever the
/// fresh report was measured (`alloc_counting: true`). Single-shard and
/// fully resident, so the engine thread's counters see every allocation.
const ZERO_ALLOC_SCENARIOS: &[&str] =
    &["macro_sweep", "gnutella_ergo_t1024", "gnutella_sybilcontrol_t64"];

/// Absolute per-event slack for the alloc *regression* gate (scenarios
/// outside the zero list). Covers scheduling-dependent channel internals
/// in the sharded scenarios (~hundreds of allocs per million events)
/// while still catching a reintroduced per-event allocation, which costs
/// 1.0 per event — three orders of magnitude above the slack.
const ALLOC_ABS_SLACK: f64 = 0.001;

/// Extracts the balanced `{...}` starting at `json[open..]` (which must
/// point at a `{`).
fn balanced_object(json: &str, open: usize) -> Option<&str> {
    let bytes = json.as_bytes();
    if bytes.get(open) != Some(&b'{') {
        return None;
    }
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[open..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Walks a `"name": { ... }` map block, yielding `(name, body)` pairs.
fn object_entries(block: &str) -> Result<Vec<(String, &str)>, String> {
    let inner = &block[1..block.len() - 1];
    let mut out = Vec::new();
    let mut rest = inner;
    while let Some(q0) = rest.find('"') {
        let q1 = q0 + 1 + rest[q0 + 1..].find('"').ok_or("unterminated entry name")?;
        let name = rest[q0 + 1..q1].to_string();
        let obj_at = q1 + rest[q1..].find('{').ok_or_else(|| format!("{name}: no object"))?;
        let offset = inner.len() - rest.len();
        let body = balanced_object(inner, offset + obj_at)
            .ok_or_else(|| format!("{name}: unbalanced object"))?;
        rest = &rest[obj_at + body.len()..];
        out.push((name, body));
    }
    Ok(out)
}

/// Extracts the balanced object value of a top-level `"key"` section.
fn section<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)?;
    let open = at + json[at..].find('{')?;
    balanced_object(json, open)
}

/// Parses the `"scenarios"` section of a `BENCH_engine.json`. A report
/// carrying only a `"gate"` section (`BENCH_gate.json`) legitimately has
/// no scenarios; anything else without them is malformed.
fn parse_scenarios(json: &str) -> Result<Vec<Scenario>, String> {
    let Some(block) = section(json, "scenarios") else {
        return if section(json, "gate").is_some() {
            Ok(Vec::new())
        } else {
            Err("no \"scenarios\" section".to_string())
        };
    };
    let mut out = Vec::new();
    for (name, body) in object_entries(block)? {
        let fp =
            field_object(body, "fingerprint").ok_or_else(|| format!("{name}: no fingerprint"))?;
        let fp_field = |key: &str| {
            field_f64(fp, key).ok_or_else(|| format!("{name}: fingerprint lacks {key}"))
        };
        out.push(Scenario {
            events_per_sec: field_f64(body, "events_per_sec")
                .ok_or_else(|| format!("{name}: no events_per_sec"))?,
            fingerprint: Fp {
                good_joins_admitted: fp_field("good_joins_admitted")?,
                bad_joins_admitted: fp_field("bad_joins_admitted")?,
                purges: fp_field("purges")?,
                good_spend: fp_field("good_spend")?,
                adv_spend: fp_field("adv_spend")?,
            },
            allocs_per_event: field_f64(body, "allocs_per_event"),
            name,
        });
    }
    Ok(out)
}

/// One admission-gate scenario's comparable slice of a `BENCH_gate.json`.
#[derive(Clone, Debug, PartialEq)]
struct GateScenario {
    name: String,
    verifications_per_sec: f64,
    /// Hex SHA-256 of the service's decision log; machine-independent by
    /// construction (the log carries no wall-clock data), so it is
    /// compared exactly.
    decision_fingerprint: String,
}

/// Parses the optional `"gate"` section into gate scenarios.
fn parse_gate(json: &str) -> Result<Vec<GateScenario>, String> {
    let Some(block) = section(json, "gate") else { return Ok(Vec::new()) };
    let mut out = Vec::new();
    for (name, body) in object_entries(block)? {
        out.push(GateScenario {
            verifications_per_sec: field_f64(body, "verifications_per_sec")
                .ok_or_else(|| format!("{name}: no verifications_per_sec"))?,
            decision_fingerprint: field_str(body, "decision_fingerprint")
                .ok_or_else(|| format!("{name}: no decision_fingerprint"))?,
            name,
        });
    }
    Ok(out)
}

/// Compares gate scenarios: exact decision-fingerprint identity, plus the
/// machine-adjusted verifications/sec floor.
fn compare_gate(
    baseline: &[GateScenario],
    fresh: &[GateScenario],
    tolerance: f64,
    speed_ratio: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for base in baseline {
        let Some(now) = fresh.iter().find(|s| s.name == base.name) else {
            failures
                .push(format!("gate scenario {:?} disappeared from the fresh report", base.name));
            continue;
        };
        // An empty baseline fingerprint marks a parallel scenario: its
        // log order follows the scheduler, so only throughput is gated.
        if !base.decision_fingerprint.is_empty()
            && base.decision_fingerprint != now.decision_fingerprint
        {
            failures.push(format!(
                "gate scenario {:?}: decision fingerprint drifted — the admission decisions \
                 changed, not just their speed\n  baseline: {}\n  fresh:    {}",
                base.name, base.decision_fingerprint, now.decision_fingerprint
            ));
        }
        let expected = base.verifications_per_sec * speed_ratio;
        let floor = expected * (1.0 - tolerance);
        if now.verifications_per_sec < floor {
            failures.push(format!(
                "gate scenario {:?}: {:.0} verifications/s is a {:.0}% regression from the \
                 machine-adjusted baseline {:.0} (raw baseline {:.0} × speed ratio {:.2}; \
                 tolerance {:.0}%)",
                base.name,
                now.verifications_per_sec,
                100.0 * (1.0 - now.verifications_per_sec / expected),
                expected,
                base.verifications_per_sec,
                speed_ratio,
                100.0 * tolerance,
            ));
        }
    }
    failures
}

/// Parses the `"queue"` section into `(name, ops_per_sec)` pairs.
fn parse_queue(json: &str) -> Vec<(String, f64)> {
    let Some(block) = section(json, "queue") else { return Vec::new() };
    let Ok(entries) = object_entries(block) else { return Vec::new() };
    entries
        .into_iter()
        .filter_map(|(name, body)| Some((name, field_f64(body, "ops_per_sec")?)))
        .collect()
}

/// The fresh/baseline machine-speed ratio, from the queue micro-benches
/// shared by both reports (geometric mean). 1.0 when nothing is shared.
fn speed_ratio(baseline: &[(String, f64)], fresh: &[(String, f64)]) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for (name, base_ops) in baseline {
        if let Some((_, fresh_ops)) = fresh.iter().find(|(f, _)| f == name) {
            if *base_ops > 0.0 && *fresh_ops > 0.0 {
                log_sum += (fresh_ops / base_ops).ln();
                n += 1;
            }
        }
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Reads a numeric field `"key": <f64>` from an object body.
fn field_f64(body: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = body.find(&pat)? + pat.len();
    let tail = body[at..].trim_start();
    let end =
        tail.find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c))).unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Reads a boolean field `"key": true|false` from an object body.
fn field_bool(body: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\":");
    let at = body.find(&pat)? + pat.len();
    let tail = body[at..].trim_start();
    if tail.starts_with("true") {
        Some(true)
    } else if tail.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Reads a string field `"key": "..."` from an object body.
fn field_str(body: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = body.find(&pat)? + pat.len();
    let tail = body[at..].trim_start().strip_prefix('"')?;
    Some(tail[..tail.find('"')?].to_string())
}

/// Reads a nested-object field `"key": {...}` from an object body.
fn field_object<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = body.find(&pat)? + pat.len();
    let open = at + body[at..].find('{')?;
    balanced_object(body, open)
}

/// Compares baseline vs fresh; returns human-readable failures.
///
/// `speed_ratio` rescales the baseline throughput to the fresh machine
/// (see the module docs) before the tolerance applies.
fn compare(
    baseline: &[Scenario],
    fresh: &[Scenario],
    tolerance: f64,
    speed_ratio: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for base in baseline {
        let Some(now) = fresh.iter().find(|s| s.name == base.name) else {
            failures.push(format!("scenario {:?} disappeared from the fresh report", base.name));
            continue;
        };
        if !base.fingerprint.matches(&now.fingerprint) {
            failures.push(format!(
                "scenario {:?}: behavior fingerprint changed\n  baseline: {:?}\n  fresh:    {:?}",
                base.name, base.fingerprint, now.fingerprint
            ));
        }
        let expected = base.events_per_sec * speed_ratio;
        let floor = expected * (1.0 - tolerance);
        if now.events_per_sec < floor {
            failures.push(format!(
                "scenario {:?}: {:.0} events/s is a {:.0}% regression from the \
                 machine-adjusted baseline {:.0} (raw baseline {:.0} × speed ratio {:.2}; \
                 tolerance {:.0}%)",
                base.name,
                now.events_per_sec,
                100.0 * (1.0 - now.events_per_sec / expected),
                expected,
                base.events_per_sec,
                speed_ratio,
                100.0 * tolerance,
            ));
        }
    }
    failures
}

/// Gates steady-state allocation budgets within and across reports.
///
/// Two independent gates, both conditioned on the *fresh* report being a
/// live measurement (`fresh_counting`; a non-counting build reports
/// structural zeros, which must never pass as a budget):
///
/// * **Zero budget** — every [`ZERO_ALLOC_SCENARIOS`] member present in
///   the fresh report must hold `allocs_per_event` at exactly zero. This
///   gate needs no baseline: zero is the contract, not a relative floor.
/// * **Regression** — when the baseline was *also* measured, a shared
///   scenario's `allocs_per_event` may not exceed the baseline beyond
///   [`ALLOC_ABS_SLACK`]. Allocation counts are event-order-determined,
///   not machine-speed-dependent, so no speed ratio applies.
fn alloc_failures(
    baseline: &[Scenario],
    fresh: &[Scenario],
    base_counting: bool,
    fresh_counting: bool,
) -> Vec<String> {
    let mut failures = Vec::new();
    if !fresh_counting {
        return failures; // Announced by the caller; not silently dropped.
    }
    for name in ZERO_ALLOC_SCENARIOS {
        let Some(now) = fresh.iter().find(|s| &s.name == name) else { continue };
        match now.allocs_per_event {
            Some(ape) if ape > 0.0 => failures.push(format!(
                "scenario {name:?}: {ape} allocation(s) per event in the steady-state loop — \
                 the zero-allocation hot-path contract is broken (something in the per-event \
                 path allocates again; see crates/sim/README.md, \"Allocation budget\")",
            )),
            Some(_) => {}
            None => failures.push(format!(
                "scenario {name:?}: report says alloc_counting: true but carries no \
                 allocs_per_event field",
            )),
        }
    }
    if base_counting {
        for base in baseline {
            let (Some(then), Some(now)) = (
                base.allocs_per_event,
                fresh.iter().find(|s| s.name == base.name).and_then(|s| s.allocs_per_event),
            ) else {
                continue;
            };
            if now > then + ALLOC_ABS_SLACK {
                failures.push(format!(
                    "scenario {:?}: allocs/event grew from {then} to {now} \
                     (slack {ALLOC_ABS_SLACK}) — the steady-state loop allocates more than \
                     the committed baseline",
                    base.name,
                ));
            }
        }
    }
    failures
}

/// Splits a scenario name following the `<base>_s<N>` shard-family
/// convention into `(base, N)`; `None` for ordinary scenario names.
fn shard_pair(name: &str) -> Option<(&str, u32)> {
    let (base, suffix) = name.rsplit_once("_s")?;
    suffix.parse().ok().map(|n| (base, n))
}

/// Gates shard scaling within one (fresh) report: fingerprint identity
/// between every wide `_s<N≥4>` scenario and its `_s1` sibling, plus the
/// [`MIN_SHARD_SPEEDUP`] throughput floor when the machine that produced
/// the report has at least [`MIN_SCALING_CORES`] cores.
fn shard_scaling_failures(fresh: &[Scenario], parallelism: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for wide in fresh {
        let Some((base, shards)) = shard_pair(&wide.name) else { continue };
        if shards < MIN_SCALING_CORES as u32 {
            continue;
        }
        let Some(narrow) = fresh.iter().find(|s| shard_pair(&s.name) == Some((base, 1))) else {
            failures.push(format!(
                "scenario {:?} has no 1-shard sibling {base:?}_s1 to scale against",
                wide.name
            ));
            continue;
        };
        if !narrow.fingerprint.matches(&wide.fingerprint) {
            failures.push(format!(
                "scenario {:?}: behavior fingerprint differs from its 1-shard sibling {:?} — \
                 sharding changed the simulation\n  s1: {:?}\n  s{shards}: {:?}",
                wide.name, narrow.name, narrow.fingerprint, wide.fingerprint
            ));
        }
        if parallelism < MIN_SCALING_CORES {
            continue; // Announced by the caller; not silently dropped.
        }
        let speedup = wide.events_per_sec / narrow.events_per_sec.max(1e-12);
        if speedup < MIN_SHARD_SPEEDUP {
            failures.push(format!(
                "scenario {:?}: only {speedup:.2}× over {:?} on a {parallelism:.0}-core machine \
                 (shard-scaling floor {MIN_SHARD_SPEEDUP}×)",
                wide.name, narrow.name
            ));
        }
    }
    failures
}

/// The gate-side twin of [`shard_scaling_failures`], over the fresh
/// report's gate scenarios: every wide `_s<N≥4>` scenario must beat its
/// `_s1` sibling by [`MIN_SHARD_SPEEDUP`]× in verifications/sec on a
/// machine with at least [`MIN_SCALING_CORES`] cores, and — when both
/// record one — carry the identical decision fingerprint. Scenarios with
/// empty fingerprints (parallel drives, scheduler-ordered logs) are
/// gated on throughput alone.
fn gate_shard_scaling_failures(fresh: &[GateScenario], parallelism: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for wide in fresh {
        let Some((base, shards)) = shard_pair(&wide.name) else { continue };
        if shards < MIN_SCALING_CORES as u32 {
            continue;
        }
        let Some(narrow) = fresh.iter().find(|s| shard_pair(&s.name) == Some((base, 1))) else {
            failures.push(format!(
                "gate scenario {:?} has no 1-shard sibling {base:?}_s1 to scale against",
                wide.name
            ));
            continue;
        };
        if !narrow.decision_fingerprint.is_empty()
            && !wide.decision_fingerprint.is_empty()
            && narrow.decision_fingerprint != wide.decision_fingerprint
        {
            failures.push(format!(
                "gate scenario {:?}: decision fingerprint differs from its 1-shard sibling \
                 {:?} — sharding changed the admission decisions\n  s1: {}\n  s{shards}: {}",
                wide.name, narrow.name, narrow.decision_fingerprint, wide.decision_fingerprint
            ));
        }
        if parallelism < MIN_SCALING_CORES {
            continue; // Announced by the caller; not silently dropped.
        }
        let speedup = wide.verifications_per_sec / narrow.verifications_per_sec.max(1e-12);
        if speedup < MIN_SHARD_SPEEDUP {
            failures.push(format!(
                "gate scenario {:?}: only {speedup:.2}× over {:?} on a {parallelism:.0}-core \
                 machine (shard-scaling floor {MIN_SHARD_SPEEDUP}×)",
                wide.name, narrow.name
            ));
        }
    }
    failures
}

fn usage() -> ! {
    eprintln!("Usage: bench_compare BASELINE.json FRESH.json [--tolerance 0.25]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.25f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            let Some(v) = it.next().and_then(|v| v.parse().ok()) else { usage() };
            tolerance = v;
        } else {
            paths.push(arg.clone());
        }
    }
    if paths.len() != 2 || !(0.0..1.0).contains(&tolerance) {
        usage();
    }
    type Report = (Vec<Scenario>, Vec<GateScenario>, Vec<(String, f64)>, f64, bool);
    let read = |path: &str| -> Report {
        let json =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let scenarios =
            parse_scenarios(&json).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
        let gate = parse_gate(&json).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
        // Reports predating the shard work lack the field; treat them as
        // 1-core so the speedup gate stays off.
        let parallelism = field_f64(&json, "available_parallelism").unwrap_or(1.0);
        // Reports predating (or built without) the counting allocator
        // carry structural zeros; the alloc gates treat them as unmeasured.
        let counting = field_bool(&json, "alloc_counting").unwrap_or(false);
        (scenarios, gate, parse_queue(&json), parallelism, counting)
    };
    let (baseline, base_gate, base_queue, _, base_counting) = read(&paths[0]);
    let (fresh, fresh_gate, fresh_queue, fresh_cores, fresh_counting) = read(&paths[1]);
    let ratio = speed_ratio(&base_queue, &fresh_queue);
    println!(
        "comparing {} baseline scenario(s) against {} (machine speed ratio {ratio:.2})",
        baseline.len(),
        paths[1]
    );
    for base in &baseline {
        if let Some(now) = fresh.iter().find(|s| s.name == base.name) {
            println!(
                "  {:<28} baseline {:>14.0} ev/s   fresh {:>14.0} ev/s   ({:+.1}%)",
                base.name,
                base.events_per_sec,
                now.events_per_sec,
                100.0 * (now.events_per_sec / base.events_per_sec - 1.0),
            );
        }
    }
    for s in &fresh {
        if !baseline.iter().any(|b| b.name == s.name) {
            println!("  {:<28} new scenario (no baseline), {:.0} ev/s", s.name, s.events_per_sec);
        }
    }
    for base in &base_gate {
        if let Some(now) = fresh_gate.iter().find(|s| s.name == base.name) {
            println!(
                "  {:<28} baseline {:>14.0} vf/s   fresh {:>14.0} vf/s   ({:+.1}%)",
                base.name,
                base.verifications_per_sec,
                now.verifications_per_sec,
                100.0 * (now.verifications_per_sec / base.verifications_per_sec - 1.0),
            );
        }
    }
    let mut failures = compare(&baseline, &fresh, tolerance, ratio);
    failures.extend(compare_gate(&base_gate, &fresh_gate, tolerance, ratio));
    if fresh_cores < MIN_SCALING_CORES {
        println!(
            "shard speedup gate skipped: fresh report ran on {fresh_cores:.0} core(s), \
             need {MIN_SCALING_CORES:.0} (fingerprint gate still applies)"
        );
    } else {
        // Make the still-rarely-exercised multi-core path loud: a CI log
        // from a wide runner states the ≥1.5× floors are being enforced,
        // not silently skipped.
        println!(
            "shard speedup gate ACTIVE: fresh report ran on {fresh_cores:.0} cores — every \
             _s4 scenario (engine and gate) must beat its _s1 sibling by \
             {MIN_SHARD_SPEEDUP}×"
        );
    }
    failures.extend(shard_scaling_failures(&fresh, fresh_cores));
    failures.extend(gate_shard_scaling_failures(&fresh_gate, fresh_cores));
    if fresh_counting {
        if !base_counting {
            println!(
                "alloc regression gate skipped: baseline has no measured allocation data \
                 (zero-budget gate still applies)"
            );
        }
    } else {
        println!(
            "alloc gates skipped: fresh report was not produced by a counting build \
             (run bench_report with --features alloc-count to measure)"
        );
    }
    failures.extend(alloc_failures(&baseline, &fresh, base_counting, fresh_counting));
    if failures.is_empty() {
        println!(
            "OK: no scenario regressed more than {:.0}% (machine-adjusted)",
            100.0 * tolerance
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(purges: f64) -> Fp {
        Fp {
            good_joins_admitted: 1.0,
            bad_joins_admitted: 2.0,
            purges,
            good_spend: 1000.0,
            adv_spend: 500.0,
        }
    }

    fn sample_json(eps: f64, purges: u64) -> String {
        let fp = |p: u64| {
            format!(
                "{{\"good_joins_admitted\": 1, \"bad_joins_admitted\": 2, \"purges\": {p}, \
                 \"good_spend\": 1000, \"adv_spend\": 500}}"
            )
        };
        format!(
            "{{\n  \"queue\": {{\n    \"queue_heap\": {{\"ops\": 1, \"wall_secs\": 1, \
             \"ops_per_sec\": 20000000}}\n  }},\n  \"scenarios\": {{\n    \"a\": {{\n      \
             \"events\": 10,\n      \"events_per_sec\": {eps},\n      \"fingerprint\": {}\n    \
             }},\n    \"b\": {{\n      \"events\": 5,\n      \"events_per_sec\": 50,\n      \
             \"fingerprint\": {}\n    }}\n  }}\n}}\n",
            fp(purges),
            fp(1),
        )
    }

    #[test]
    fn parses_scenarios_and_queue() {
        let json = sample_json(1234.5, 7);
        let s = parse_scenarios(&json).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].name, "a");
        assert_eq!(s[0].events_per_sec, 1234.5);
        assert_eq!(s[0].fingerprint, fp(7.0));
        assert_eq!(s[1].name, "b");
        assert_eq!(s[1].events_per_sec, 50.0);
        assert_eq!(parse_queue(&json), vec![("queue_heap".to_string(), 20000000.0)]);
    }

    #[test]
    fn parses_the_real_report_shape() {
        use sybil_bench::perf::{Fingerprint, PerfReport, QueueBenchResult, ScenarioResult};
        let report = PerfReport {
            queue: vec![QueueBenchResult {
                name: "queue_heap".into(),
                ops: 10,
                wall_secs: 0.1,
                ops_per_sec: 100.0,
            }],
            scenarios: vec![ScenarioResult {
                name: "macro_sweep".into(),
                events: 1000,
                wall_secs: 0.5,
                events_per_sec: 2000.0,
                peak_queue_len: 3,
                resident_bytes: 64,
                shards: 1,
                loop_allocs: 7,
                loop_alloc_bytes: 448,
                allocs_per_event: 0.007,
                fingerprint: Fingerprint {
                    good_joins_admitted: 1,
                    bad_joins_admitted: 2,
                    purges: 3,
                    good_spend: 4.5,
                    adv_spend: 6.0,
                },
            }],
        };
        let json = sybil_bench::perf::to_json(&report);
        let parsed = parse_scenarios(&json).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "macro_sweep");
        assert_eq!(parsed[0].events_per_sec, 2000.0);
        assert_eq!(parsed[0].fingerprint.purges, 3.0);
        assert_eq!(parsed[0].fingerprint.good_spend, 4.5);
        assert_eq!(parsed[0].allocs_per_event, Some(0.007));
        assert_eq!(parse_queue(&json), vec![("queue_heap".to_string(), 100.0)]);
        // The self-describing counting flag round-trips too (this test
        // binary has no registered counting allocator, so it is false).
        assert_eq!(field_bool(&json, "alloc_counting"), Some(false));
    }

    #[test]
    fn flags_regressions_and_disappearances_but_not_noise() {
        let baseline = parse_scenarios(&sample_json(1000.0, 7)).unwrap();
        let scenario = |eps: f64, p: f64| Scenario {
            name: "a".into(),
            events_per_sec: eps,
            fingerprint: fp(p),
            allocs_per_event: None,
        };
        let b = Scenario {
            name: "b".into(),
            events_per_sec: 50.0,
            fingerprint: fp(1.0),
            allocs_per_event: None,
        };
        // 10% slower: within a 25% tolerance.
        assert!(compare(&baseline, &[scenario(900.0, 7.0), b.clone()], 0.25, 1.0).is_empty());
        // 30% slower: flagged.
        let failures = compare(&baseline, &[scenario(700.0, 7.0), b.clone()], 0.25, 1.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regression"), "{}", failures[0]);
        // Missing scenario: flagged.
        assert!(compare(&baseline, &[b], 0.25, 1.0)[0].contains("disappeared"));
    }

    #[test]
    fn speed_ratio_rescales_the_floor_for_slower_machines() {
        let baseline = parse_scenarios(&sample_json(1000.0, 7)).unwrap();
        let b = Scenario {
            name: "b".into(),
            events_per_sec: 25.0,
            fingerprint: fp(1.0),
            allocs_per_event: None,
        };
        // Fresh machine runs the queue proxy at half speed: 500 ev/s on
        // scenario "a" (and 25 on "b") is expected, not a regression.
        let halved = vec![
            Scenario {
                name: "a".into(),
                events_per_sec: 500.0,
                fingerprint: fp(7.0),
                allocs_per_event: None,
            },
            b.clone(),
        ];
        assert!(compare(&baseline, &halved, 0.25, 0.5).is_empty());
        // But at ratio 1.0 the same numbers fail.
        assert!(!compare(&baseline, &halved, 0.25, 1.0).is_empty());
        // And a real engine regression still fails under the scaled floor.
        let engine_only = vec![
            Scenario {
                name: "a".into(),
                events_per_sec: 300.0,
                fingerprint: fp(7.0),
                allocs_per_event: None,
            },
            b,
        ];
        assert_eq!(compare(&baseline, &engine_only, 0.25, 0.5).len(), 1);
    }

    #[test]
    fn speed_ratio_is_geometric_mean_of_shared_queue_benches() {
        let base = vec![("queue_heap".to_string(), 100.0), ("queue_calendar".to_string(), 100.0)];
        let fresh = vec![("queue_heap".to_string(), 50.0), ("queue_calendar".to_string(), 200.0)];
        // sqrt(0.5 × 2.0) = 1.0
        assert!((speed_ratio(&base, &fresh) - 1.0).abs() < 1e-12);
        assert_eq!(speed_ratio(&[], &fresh), 1.0);
        assert_eq!(speed_ratio(&base, &[]), 1.0);
    }

    #[test]
    fn flags_fingerprint_drift_even_when_fast() {
        let baseline = parse_scenarios(&sample_json(1000.0, 7)).unwrap();
        let drifted = vec![
            Scenario {
                name: "a".into(),
                events_per_sec: 5000.0,
                fingerprint: fp(8.0),
                allocs_per_event: None,
            },
            Scenario {
                name: "b".into(),
                events_per_sec: 50.0,
                fingerprint: fp(1.0),
                allocs_per_event: None,
            },
        ];
        let failures = compare(&baseline, &drifted, 0.25, 1.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("fingerprint"), "{}", failures[0]);
    }

    fn scale_scenario(name: &str, eps: f64, purges: f64) -> Scenario {
        Scenario {
            name: name.into(),
            events_per_sec: eps,
            fingerprint: fp(purges),
            allocs_per_event: None,
        }
    }

    #[test]
    fn shard_pair_follows_the_family_convention() {
        assert_eq!(shard_pair("macro_scale_s1"), Some(("macro_scale", 1)));
        assert_eq!(shard_pair("macro_scale_s16"), Some(("macro_scale", 16)));
        assert_eq!(shard_pair("macro_sweep"), None);
        assert_eq!(shard_pair("gnutella_sybilcontrol_t64"), None);
    }

    #[test]
    fn shard_speedup_gate_enforced_on_wide_machines() {
        let fresh = vec![
            scale_scenario("macro_scale_s1", 1000.0, 7.0),
            scale_scenario("macro_scale_s4", 1200.0, 7.0), // only 1.2×
        ];
        let failures = shard_scaling_failures(&fresh, 8.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("shard-scaling floor"), "{}", failures[0]);
        // A 2× speedup passes.
        let scaled = vec![
            scale_scenario("macro_scale_s1", 1000.0, 7.0),
            scale_scenario("macro_scale_s4", 2000.0, 7.0),
        ];
        assert!(shard_scaling_failures(&scaled, 8.0).is_empty());
    }

    #[test]
    fn shard_speedup_gate_skipped_on_narrow_machines() {
        // The same 1.2× family passes on one core: no speedup is expected
        // there. Sub-s4 shard counts are never speed-gated.
        let fresh = vec![
            scale_scenario("macro_scale_s1", 1000.0, 7.0),
            scale_scenario("macro_scale_s2", 900.0, 7.0),
            scale_scenario("macro_scale_s4", 1200.0, 7.0),
        ];
        assert!(shard_scaling_failures(&fresh, 1.0).is_empty());
    }

    #[test]
    fn shard_fingerprint_identity_gated_on_every_machine() {
        let fresh = vec![
            scale_scenario("macro_scale_s1", 1000.0, 7.0),
            scale_scenario("macro_scale_s4", 5000.0, 8.0), // fast but wrong
        ];
        for cores in [1.0, 8.0] {
            let failures = shard_scaling_failures(&fresh, cores);
            assert_eq!(failures.len(), 1, "cores {cores}");
            assert!(failures[0].contains("sharding changed"), "{}", failures[0]);
        }
        // A wide scenario without its s1 sibling is itself a failure.
        let orphan = vec![scale_scenario("macro_scale_s4", 5000.0, 7.0)];
        assert!(shard_scaling_failures(&orphan, 1.0)[0].contains("no 1-shard sibling"));
    }

    fn gate_json(vps: f64, fingerprint: &str) -> String {
        format!(
            "{{\n  \"generated_unix_secs\": 1,\n  \"available_parallelism\": 4,\n  \
             \"queue\": {{\n    \"sha256_64b\": {{\"ops\": 1, \"wall_secs\": 1, \
             \"ops_per_sec\": 3000000}}\n  }},\n  \"gate\": {{\n    \"gate_honest\": {{\n      \
             \"connections\": 110000,\n      \"verifications_per_sec\": {vps},\n      \
             \"latency_p99_ns\": 840,\n      \"decision_fingerprint\": \"{fingerprint}\"\n    \
             }}\n  }}\n}}\n"
        )
    }

    #[test]
    fn gate_only_reports_parse_without_a_scenarios_section() {
        let json = gate_json(50000.0, "abc123");
        assert_eq!(parse_scenarios(&json).unwrap(), Vec::new());
        let gate = parse_gate(&json).unwrap();
        assert_eq!(gate.len(), 1);
        assert_eq!(gate[0].name, "gate_honest");
        assert_eq!(gate[0].verifications_per_sec, 50000.0);
        assert_eq!(gate[0].decision_fingerprint, "abc123");
        // The calibration entry feeds the shared speed-ratio machinery.
        assert_eq!(parse_queue(&json), vec![("sha256_64b".to_string(), 3000000.0)]);
        // But an engine report with neither section is still malformed.
        assert!(parse_scenarios("{\"queue\": {}}").is_err());
    }

    #[test]
    fn gate_fingerprint_drift_fails_even_when_fast() {
        let baseline = parse_gate(&gate_json(50000.0, "abc123")).unwrap();
        let drifted = parse_gate(&gate_json(90000.0, "def456")).unwrap();
        let failures = compare_gate(&baseline, &drifted, 0.25, 1.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("decision fingerprint drifted"), "{}", failures[0]);
        // Identical fingerprints and healthy throughput: clean.
        let same = parse_gate(&gate_json(48000.0, "abc123")).unwrap();
        assert!(compare_gate(&baseline, &same, 0.25, 1.0).is_empty());
    }

    #[test]
    fn gate_throughput_floor_is_machine_adjusted() {
        let baseline = parse_gate(&gate_json(50000.0, "abc123")).unwrap();
        let halved = parse_gate(&gate_json(25000.0, "abc123")).unwrap();
        // On a machine whose sha256 proxy runs at half speed this is fine…
        assert!(compare_gate(&baseline, &halved, 0.25, 0.5).is_empty());
        // …but on an equal machine it is a real regression.
        let failures = compare_gate(&baseline, &halved, 0.25, 1.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regression"), "{}", failures[0]);
        // Disappearance is flagged.
        assert!(compare_gate(&baseline, &[], 0.25, 1.0)[0].contains("disappeared"));
    }

    /// A gate scenario literal for the shard-scaling tests.
    fn gate_scenario(name: &str, vps: f64, fingerprint: &str) -> GateScenario {
        GateScenario {
            name: name.to_string(),
            verifications_per_sec: vps,
            decision_fingerprint: fingerprint.to_string(),
        }
    }

    #[test]
    fn empty_baseline_fingerprint_gates_throughput_only() {
        // Parallel scenarios record "" — scheduler-ordered logs have no
        // stable fingerprint. Differing fresh fingerprints must not fail…
        let baseline = vec![gate_scenario("gate_parallel_s4", 50000.0, "")];
        let fresh = vec![gate_scenario("gate_parallel_s4", 48000.0, "whatever")];
        assert!(compare_gate(&baseline, &fresh, 0.25, 1.0).is_empty());
        // …but the throughput floor still applies.
        let slow = vec![gate_scenario("gate_parallel_s4", 20000.0, "")];
        let failures = compare_gate(&baseline, &slow, 0.25, 1.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regression"), "{}", failures[0]);
    }

    #[test]
    fn gate_shard_speedup_floor_fires_on_wide_machines_only() {
        let fresh = vec![
            gate_scenario("gate_parallel_s1", 10000.0, ""),
            gate_scenario("gate_parallel_s4", 12000.0, ""), // 1.2× < 1.5×
        ];
        let failures = gate_shard_scaling_failures(&fresh, 8.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("1.20×"), "{}", failures[0]);
        // The honest skip on a narrow machine: same data, no failure.
        assert!(gate_shard_scaling_failures(&fresh, 1.0).is_empty());
        // A healthy speedup passes.
        let scaled = vec![
            gate_scenario("gate_parallel_s1", 10000.0, ""),
            gate_scenario("gate_parallel_s4", 21000.0, ""),
        ];
        assert!(gate_shard_scaling_failures(&scaled, 8.0).is_empty());
        // A wide scenario without its s1 sibling is itself a failure.
        let orphan = vec![gate_scenario("gate_parallel_s4", 10000.0, "")];
        assert!(gate_shard_scaling_failures(&orphan, 1.0)[0].contains("no 1-shard sibling"));
    }

    #[test]
    fn gate_shard_fingerprints_must_match_when_both_exist() {
        // Serial sharded pairs carry real fingerprints: a mismatch is a
        // behavior change even when the speedup passes.
        let fresh = vec![
            gate_scenario("gate_serial_s1", 10000.0, "aaa"),
            gate_scenario("gate_serial_s4", 20000.0, "bbb"),
        ];
        let failures = gate_shard_scaling_failures(&fresh, 8.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("fingerprint differs"), "{}", failures[0]);
        // One side empty (parallel drive): fingerprints are not compared.
        let mixed = vec![
            gate_scenario("gate_parallel_s1", 10000.0, ""),
            gate_scenario("gate_parallel_s4", 20000.0, "bbb"),
        ];
        assert!(gate_shard_scaling_failures(&mixed, 8.0).is_empty());
    }

    #[test]
    fn parallelism_field_parses_from_the_real_report_shape() {
        let json = "{\n  \"generated_unix_secs\": 1,\n  \"available_parallelism\": 64,\n  \
                    \"queue\": {}\n}\n";
        assert_eq!(field_f64(json, "available_parallelism"), Some(64.0));
        // Pre-shard baselines lack the field entirely.
        assert_eq!(field_f64("{\"queue\": {}}", "available_parallelism"), None);
    }

    /// An alloc-measured scenario literal for the budget-gate tests.
    fn alloc_scenario(name: &str, ape: Option<f64>) -> Scenario {
        Scenario {
            name: name.into(),
            events_per_sec: 1000.0,
            fingerprint: fp(1.0),
            allocs_per_event: ape,
        }
    }

    #[test]
    fn zero_alloc_budget_gates_the_core_scenarios() {
        // A core scenario allocating in the steady-state loop fails…
        let fresh = vec![
            alloc_scenario("macro_sweep", Some(0.25)),
            alloc_scenario("macro_millions", Some(0.01)),
        ];
        let failures = alloc_failures(&[], &fresh, false, true);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("macro_sweep"), "{}", failures[0]);
        assert!(failures[0].contains("zero-allocation"), "{}", failures[0]);
        // …at exactly zero it passes (macro_millions is not zero-gated).
        let clean = vec![
            alloc_scenario("macro_sweep", Some(0.0)),
            alloc_scenario("gnutella_ergo_t1024", Some(0.0)),
            alloc_scenario("gnutella_sybilcontrol_t64", Some(0.0)),
            alloc_scenario("macro_millions", Some(0.01)),
        ];
        assert!(alloc_failures(&[], &clean, false, true).is_empty());
        // A non-counting fresh report is never gated: its zeros are
        // structural, not measurements.
        assert!(alloc_failures(&[], &fresh, false, false).is_empty());
        // Counting claimed but the field missing is itself a failure.
        let broken = vec![alloc_scenario("macro_sweep", None)];
        let failures = alloc_failures(&[], &broken, false, true);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("allocs_per_event"), "{}", failures[0]);
    }

    #[test]
    fn alloc_regression_gate_needs_both_sides_measured() {
        let baseline = vec![alloc_scenario("macro_millions", Some(0.001))];
        let grown = vec![alloc_scenario("macro_millions", Some(0.1))];
        // Both measured: growth beyond the slack fails.
        let failures = alloc_failures(&baseline, &grown, true, true);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("allocs/event grew"), "{}", failures[0]);
        // Within the slack: scheduling jitter, not a regression.
        let jitter = vec![alloc_scenario("macro_millions", Some(0.0015))];
        assert!(alloc_failures(&baseline, &jitter, true, true).is_empty());
        // Unmeasured baseline: only the zero-budget gate applies.
        assert!(alloc_failures(&baseline, &grown, false, true).is_empty());
    }

    #[test]
    fn spend_sums_tolerate_libm_ulp_drift_but_not_real_drift() {
        let a = fp(7.0);
        let mut ulp = a.clone();
        ulp.good_spend = 1000.0 * (1.0 + 1e-12); // cross-libm rounding
        assert!(a.matches(&ulp));
        let mut real = a.clone();
        real.good_spend = 1001.0; // an actual behavior change
        assert!(!a.matches(&real));
        let mut counter = a.clone();
        counter.bad_joins_admitted += 1.0; // counters are exact
        assert!(!a.matches(&counter));
    }
}
