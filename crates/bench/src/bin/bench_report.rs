//! `bench_report` — the engine performance baseline.
//!
//! Runs a fixed micro/macro suite (queue throughput for both backends, plus
//! deterministic full-engine sweep scenarios) and writes the results to
//! `BENCH_engine.json` so subsequent PRs have a trajectory to beat.
//!
//! ```text
//! Usage: bench_report [OUTPUT_PATH]
//!
//!   OUTPUT_PATH   where to write the JSON (default: BENCH_engine.json;
//!                 the SYBIL_BENCH_REPORT_PATH env var overrides both)
//!   SYBIL_BENCH_FAST=1 shrinks the queue micro-benches for CI smoke runs
//!   SYBIL_BENCH_ALLOC=1 requires the counting allocator (build with
//!                 --features alloc-count); =0 forces the alloc columns
//!                 to structural zeros; unset publishes what the build
//!                 measures. Recorded in the JSON as alloc_mode.
//! ```

use std::io::Write;
use sybil_bench::perf;

// Under `alloc-count` every heap allocation in this process is counted on
// thread-local counters; the perf scenarios read the deltas around the
// engine's steady-state loop and publish allocs_per_event.
#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: sybil_exp::alloc::CountingAlloc = sybil_exp::alloc::CountingAlloc;

fn main() {
    let path = std::env::var("SYBIL_BENCH_REPORT_PATH")
        .ok()
        .or_else(|| std::env::args().nth(1))
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    println!("=== Engine performance baseline ===");
    let started = std::time::Instant::now();
    let report = perf::run_suite();
    print!("{}", perf::render(&report));
    let json = perf::to_json(&report);
    let mut file =
        std::fs::File::create(&path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    file.write_all(json.as_bytes()).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nwrote {path}");
    println!("elapsed: {:.1?}", started.elapsed());
}
