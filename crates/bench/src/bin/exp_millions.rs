//! The million-ID Figure-8-shaped grid: 10⁶ initial IDs, ERGO / CCOM /
//! SybilControl, ≥ 5 trials per cell, run end-to-end through the
//! `sybil-exp` subsystem (content-addressed disk-streamed workload cache,
//! Welford confidence intervals, resumable results store).
//!
//! Re-running is incremental: completed cells are served from
//! `results/figure8_millions.store`. Set `SYBIL_BENCH_FAST=1` to drop to
//! 2 trials for smoke runs. Exits nonzero if any cell was quarantined
//! (its rows render blank); a plain re-run re-attempts exactly the holes.

use sybil_bench::figure8;

fn main() {
    println!("=== Figure 8 at 10^6 IDs: A vs T, disk-streamed multi-trial grid ===");
    let start = std::time::Instant::now();
    let (rows, summary) = figure8::run_millions();
    let table = figure8::to_table(&rows);
    println!("{}", table.render());
    if let Some(path) = table.write_csv("figure8_millions") {
        println!("csv: {}", path.display());
    }
    println!("elapsed: {:.1?}", start.elapsed());
    if summary.has_holes() {
        eprintln!(
            "{} cell(s) quarantined — their rows are blank; re-run to fill the holes",
            summary.quarantined.len()
        );
        std::process::exit(1);
    }
}
