//! CI smoke experiment for the `sybil-exp` subsystem, in two parts:
//!
//! 1. a tiny canonical three-axis Figure-8 grid run **cold** (fresh
//!    store, workloads generated into the cache) and then **warm** (same
//!    spec), asserting that the cold run executes every cell, the warm
//!    run skips them all (resume semantics), and the warm records are
//!    bit-identical to the cold ones;
//! 2. a **four-axis** named-axis spec (network × algo × T ×
//!    good-fraction, the fraction labels deliberately containing `/`)
//!    run cold→warm the same way, additionally asserting the results
//!    store holds exactly |grid| distinct cell keys — the structural
//!    guard against the historical cell-id aliasing bug;
//! 3. a **strategy-axis** grid (every registered attack strategy resolved
//!    through the adversary registry) run cold→warm, asserting resume,
//!    bit-identical aggregates, and the Lemma 9 invariant in every cell;
//! 4. a **sharded** cold→warm pass: the canonical grid run cold through
//!    the sharded shared-nothing engine (2 shards per cell), resumed warm
//!    by the plain grid — store keys and the spec fingerprint must be
//!    unchanged by shard count — plus a fresh unsharded run asserting the
//!    computed metrics are bit-identical to the sharded ones.
//!
//! Exits nonzero on any violation. CI uploads the resulting stores as
//! artifacts alongside `BENCH_engine.json`.

use sybil_bench::grid::{default_cache_dir, run_spend_grid, run_spend_grid_sharded};
use sybil_bench::sweep::{default_workers, Algo};
use sybil_bench::table::results_dir;
use sybil_bench::{figure9, invariants_exp};
use sybil_churn::networks;
use sybil_exp::spec::{text_fingerprint, Axis, CellSpec, AXIS_ALGO, AXIS_NETWORK, AXIS_T};
use sybil_exp::{ExperimentSpec, ResultsStore, WorkloadCache};
use sybil_sim::engine::SimConfig;
use sybil_sim::time::Time;

fn main() {
    three_axis_smoke();
    four_axis_smoke();
    strategy_axis_smoke();
    sharded_smoke();
}

fn three_axis_smoke() {
    let name = "exp_smoke";
    let store = results_dir().join(format!("{name}.store"));
    // Guarantee a cold start: the smoke validates the cold→warm
    // transition, not incremental growth.
    std::fs::remove_file(&store).ok();

    let run = || {
        run_spend_grid(
            name,
            &[networks::gnutella()],
            &[Algo::Ergo, Algo::CCom],
            &[0.0, 1024.0],
            2,
            200.0,
            1,
        )
    };

    println!("--- cold run (fresh store) ---");
    let (cold_rows, cold) = run();
    assert_eq!(cold.cells_total, 4, "grid shape changed");
    assert_eq!(cold.cells_executed, 4, "cold run must execute every cell");
    assert_eq!(cold.cells_skipped, 0);

    println!("--- warm run (resume from store) ---");
    let (warm_rows, warm) = run();
    assert_eq!(warm.cells_executed, 0, "warm run must skip all completed cells");
    assert_eq!(warm.cells_skipped, 4);
    assert!(warm.resumed, "warm run must resume the existing store");

    for (a, b) in cold_rows.iter().zip(&warm_rows) {
        assert_eq!(
            a.good_rate.mean.to_bits(),
            b.good_rate.mean.to_bits(),
            "{}/{}/T={}: resumed mean differs from computed mean",
            a.network,
            a.algo,
            a.t
        );
        assert_eq!(a.purges.mean.to_bits(), b.purges.mean.to_bits());
        assert_eq!(a.good_rate.n, 2, "smoke runs two trials per cell");
    }

    println!(
        "exp_smoke OK: cold executed {} cells, warm skipped {} (store: {})",
        cold.cells_executed,
        warm.cells_skipped,
        store.display()
    );
}

/// The four-axis smoke: a named-axis grid beyond the canonical
/// `network × algo × T` shape, with a good-fraction axis whose labels
/// contain the store-separator character `/`.
fn four_axis_smoke() {
    let name = "exp_smoke_axes";
    let store_path = results_dir().join(format!("{name}.store"));
    std::fs::remove_file(&store_path).ok();

    let fracs: [(&str, f64); 2] = [("1/24", 1.0 / 24.0), ("1/6", 1.0 / 6.0)];
    let horizon = 200.0;
    let spec = ExperimentSpec {
        name: name.into(),
        axes: vec![
            Axis::strs(AXIS_NETWORK, ["gnutella"]),
            Axis::strs(AXIS_ALGO, ["ERGO"]),
            Axis::floats(AXIS_T, [0.0, 1024.0]),
            Axis::strs(figure9::AXIS_FRAC, fracs.iter().map(|&(label, _)| label)),
        ],
        trials: 2,
        horizon,
        kappa: SimConfig::default().kappa,
        seed: 1,
    };
    let context = format!("exp_smoke 4-axis\nfracs = {fracs:?}\n");
    let cache = WorkloadCache::open(default_cache_dir()).expect("cannot open workload cache");
    let net = networks::gnutella();

    let cache_ref = &cache;
    let spec_ref = &spec;
    let run = || {
        sybil_exp::run_spec_grid(
            spec_ref,
            &context,
            &results_dir(),
            Some(cache_ref),
            default_workers(),
            |cell: &CellSpec| {
                let frac_label = cell.str_value(figure9::AXIS_FRAC);
                let fraction =
                    fracs.iter().find(|(l, _)| *l == frac_label).expect("known fraction").1;
                let t = cell.f64_value(AXIS_T);
                let mut intervals = 0.0;
                let mut median_sum = 0.0;
                for trial in 0..spec_ref.trials {
                    let disk = cache_ref
                        .get_or_create(&net, Time(horizon), spec_ref.workload_seed(trial))
                        .expect("workload cache failed");
                    let q = figure9::run_trial(disk, fraction, t, horizon);
                    intervals += q.intervals as f64;
                    median_sum += q.median_ratio;
                }
                vec![("intervals".into(), intervals), ("median_sum".into(), median_sum)]
            },
        )
        .expect("exp_smoke_axes grid failed")
    };

    println!("--- 4-axis cold run (fresh store) ---");
    let cold = run();
    let grid_size = spec.cells().len();
    assert_eq!(grid_size, 4, "grid shape changed");
    assert_eq!(cold.summary.cells_total, grid_size);
    assert_eq!(cold.summary.cells_executed, grid_size, "cold run must execute every cell");

    println!("--- 4-axis warm run (resume from store) ---");
    let warm = run();
    assert_eq!(warm.summary.cells_executed, 0, "warm run must skip all completed cells");
    assert_eq!(warm.summary.cells_skipped, grid_size);
    assert!(warm.summary.resumed);
    assert!(!cold.summary.has_holes(), "smoke run must not quarantine any cell");
    assert!(!warm.summary.has_holes(), "warm smoke run must not quarantine any cell");
    for (a, b) in cold.records.iter().zip(&warm.records) {
        let a = a.as_ref().expect("no holes in smoke");
        let b = b.as_ref().expect("no holes in smoke");
        assert_eq!(a.cell_id, b.cell_id);
        for ((an, av), (bn, bv)) in a.fields.iter().zip(&b.fields) {
            assert_eq!(an, bn, "{}: field order changed", a.cell_id);
            assert_eq!(av.to_bits(), bv.to_bits(), "{}/{an}: resumed value differs", a.cell_id);
        }
    }

    // The store must hold exactly |grid| distinct cell keys: the two
    // `/`-laden fraction labels may not collapse onto one key.
    let fingerprint = text_fingerprint(&format!("{}\n{context}", spec.to_text()));
    let (store, resumed) = ResultsStore::open(&store_path, &fingerprint).expect("reopen store");
    assert!(resumed, "fingerprint recomputation must match the runner's");
    assert_eq!(store.len(), grid_size, "store must hold exactly |grid| distinct cell keys");
    for cell in spec.cells() {
        assert!(store.is_done(&cell.id()), "missing cell {}", cell.id());
    }

    println!(
        "exp_smoke_axes OK: {} distinct cell keys for a {}-cell 4-axis grid (store: {})",
        store.len(),
        grid_size,
        store_path.display()
    );
}

/// The strategy-axis smoke: every registered attack strategy as axis
/// values, resolved per cell through the adversary registry, run
/// cold→warm through the shared invariant-grid engine.
fn strategy_axis_smoke() {
    let name = "exp_smoke_strategy";
    let store_path = results_dir().join(format!("{name}.store"));
    std::fs::remove_file(&store_path).ok();

    let nets = [networks::gnutella()];
    let strategies = invariants_exp::strategy_roster();
    let run =
        || invariants_exp::run_invariant_grid(name, &nets, &strategies, &[1_024.0], 2, 200.0, 1);

    println!("--- strategy-axis cold run (fresh store) ---");
    let (cold_rows, cold) = run();
    assert_eq!(cold.cells_total, strategies.len(), "grid shape changed");
    assert_eq!(cold.cells_executed, strategies.len(), "cold run must execute every cell");
    assert_eq!(cold.cells_skipped, 0);

    println!("--- strategy-axis warm run (resume from store) ---");
    let (warm_rows, warm) = run();
    assert_eq!(warm.cells_executed, 0, "warm run must skip all completed cells");
    assert_eq!(warm.cells_skipped, strategies.len());
    assert!(warm.resumed, "warm run must resume the existing store");

    for (a, b) in cold_rows.iter().zip(&warm_rows) {
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(
            a.max_bad_fraction.mean.to_bits(),
            b.max_bad_fraction.mean.to_bits(),
            "{}: resumed mean differs from computed mean",
            a.strategy
        );
        assert_eq!(a.good_rate.mean.to_bits(), b.good_rate.mean.to_bits());
        assert!(
            a.held && a.worst_bad_fraction < a.bound,
            "{}: Lemma 9 violated in the smoke grid ({} >= {})",
            a.strategy,
            a.worst_bad_fraction,
            a.bound
        );
    }

    println!(
        "exp_smoke_strategy OK: {} strategy cells cold-executed, {} warm-skipped, \
         Lemma 9 held (store: {})",
        cold.cells_executed,
        warm.cells_skipped,
        store_path.display()
    );
}

/// The sharded smoke: shard count must be invisible to the results layer.
///
/// Cold run through 2 engine shards per cell, warm run through the plain
/// (monolithic-replay) grid: the warm run must resume the sharded store —
/// same spec fingerprint, same cell keys — and skip every cell. A second
/// cold run, unsharded under a fresh name, pins that the *computed*
/// metrics (not just the resumed copies) are bit-identical across shard
/// counts.
fn sharded_smoke() {
    let name = "exp_smoke_sharded";
    let ref_name = "exp_smoke_sharded_ref";
    for n in [name, ref_name] {
        std::fs::remove_file(results_dir().join(format!("{n}.store"))).ok();
    }

    let nets = [networks::gnutella()];
    let roster = [Algo::Ergo, Algo::CCom];
    let t_grid = [0.0, 1024.0];

    println!("--- sharded cold run (2 shards per cell, fresh store) ---");
    let (sharded_rows, cold) =
        run_spend_grid_sharded(name, &nets, &roster, &t_grid, 2, 200.0, 1, 2);
    assert_eq!(cold.cells_total, 4, "grid shape changed");
    assert_eq!(cold.cells_executed, 4, "cold sharded run must execute every cell");

    println!("--- unsharded warm run (resume from the sharded store) ---");
    let (warm_rows, warm) = run_spend_grid(name, &nets, &roster, &t_grid, 2, 200.0, 1);
    assert!(warm.resumed, "spec fingerprint must be unchanged by shard count");
    assert_eq!(warm.cells_executed, 0, "store keys must be unchanged by shard count");
    assert_eq!(warm.cells_skipped, 4);

    println!("--- unsharded cold run (fresh store, same grid) ---");
    let (plain_rows, plain) = run_spend_grid(ref_name, &nets, &roster, &t_grid, 2, 200.0, 1);
    assert_eq!(plain.cells_executed, 4);

    for ((a, b), c) in sharded_rows.iter().zip(&warm_rows).zip(&plain_rows) {
        for (other, how) in [(b, "resumed"), (c, "recomputed unsharded")] {
            assert_eq!(
                a.good_rate.mean.to_bits(),
                other.good_rate.mean.to_bits(),
                "{}/{}/T={}: {how} metrics differ from the sharded run",
                a.network,
                a.algo,
                a.t
            );
            assert_eq!(a.adv_rate.mean.to_bits(), other.adv_rate.mean.to_bits());
            assert_eq!(a.max_bad_fraction.mean.to_bits(), other.max_bad_fraction.mean.to_bits());
            assert_eq!(a.purges.mean.to_bits(), other.purges.mean.to_bits());
        }
    }
    std::fs::remove_file(results_dir().join(format!("{ref_name}.store"))).ok();

    println!(
        "exp_smoke_sharded OK: 4 cells sharded-cold, {} warm-skipped unsharded, \
         metrics bit-identical across shard counts",
        warm.cells_skipped
    );
}
