//! CI smoke experiment for the `sybil-exp` subsystem: a tiny Figure-8
//! grid run **cold** (fresh store, workloads generated into the cache)
//! and then **warm** (same spec), asserting that
//!
//! * the cold run executes every cell and the warm run skips them all
//!   (resume semantics), and
//! * the warm run's records are bit-identical to the cold run's.
//!
//! Exits nonzero on any violation. CI uploads the resulting
//! `results/exp_smoke.store` as an artifact alongside `BENCH_engine.json`.

use sybil_bench::grid::run_spend_grid;
use sybil_bench::sweep::Algo;
use sybil_bench::table::results_dir;
use sybil_churn::networks;

fn main() {
    let name = "exp_smoke";
    let store = results_dir().join(format!("{name}.store"));
    // Guarantee a cold start: the smoke validates the cold→warm
    // transition, not incremental growth.
    std::fs::remove_file(&store).ok();

    let run = || {
        run_spend_grid(
            name,
            &[networks::gnutella()],
            &[Algo::Ergo, Algo::CCom],
            &[0.0, 1024.0],
            2,
            200.0,
            1,
        )
    };

    println!("--- cold run (fresh store) ---");
    let (cold_rows, cold) = run();
    assert_eq!(cold.cells_total, 4, "grid shape changed");
    assert_eq!(cold.cells_executed, 4, "cold run must execute every cell");
    assert_eq!(cold.cells_skipped, 0);

    println!("--- warm run (resume from store) ---");
    let (warm_rows, warm) = run();
    assert_eq!(warm.cells_executed, 0, "warm run must skip all completed cells");
    assert_eq!(warm.cells_skipped, 4);
    assert!(warm.resumed, "warm run must resume the existing store");

    for (a, b) in cold_rows.iter().zip(&warm_rows) {
        assert_eq!(
            a.good_rate.mean.to_bits(),
            b.good_rate.mean.to_bits(),
            "{}/{}/T={}: resumed mean differs from computed mean",
            a.network,
            a.algo,
            a.t
        );
        assert_eq!(a.purges.mean.to_bits(), b.purges.mean.to_bits());
        assert_eq!(a.good_rate.n, 2, "smoke runs two trials per cell");
    }

    println!(
        "exp_smoke OK: cold executed {} cells, warm skipped {} (store: {})",
        cold.cells_executed,
        warm.cells_skipped,
        store.display()
    );
}
