//! The 10⁶-ID strategy × network invariant grid: every registered attack
//! strategy against the million-ID churn model, disk-streamed through the
//! content-addressed workload cache, ≥ 5 trials per cell (2 with
//! `SYBIL_BENCH_FAST=1`), Welford confidence intervals, resumable results
//! store written with per-append fsync (`Durability::Sync`) — Lemma 9
//! (`bad fraction < 3κ`) validated at the scale the ROADMAP's north star
//! names.
//!
//! Re-running is incremental: completed cells are served from
//! `results/invariants_millions.store`. Exits nonzero if any cell
//! violates the invariant, and separately if any cell was quarantined
//! (no data is not a pass — re-run to fill the holes).

use sybil_bench::invariants_exp;

fn main() {
    println!("=== Lemma 9 at 10^6 IDs: strategy x network invariant grid ===");
    let start = std::time::Instant::now();
    let (rows, summary) = invariants_exp::run_invariants_millions();
    let table = invariants_exp::invariants_table(&rows);
    println!("{}", table.render());
    if let Some(path) = table.write_csv("invariants_millions") {
        println!("csv: {}", path.display());
    }
    println!("elapsed: {:.1?}", start.elapsed());

    // A quarantined cell has no data: that is a failed run, not a failed
    // invariant — report it separately from VIOLATED.
    let violated: Vec<_> =
        rows.iter().filter(|r| !r.held && !r.worst_bad_fraction.is_nan()).collect();
    for r in &violated {
        eprintln!(
            "VIOLATED: {}/{} at T={}: worst bad fraction {} >= bound {}",
            r.network, r.strategy, r.t, r.worst_bad_fraction, r.bound
        );
    }
    if summary.has_holes() {
        eprintln!(
            "{} cell(s) quarantined — no verdict for them; re-run to fill the holes",
            summary.quarantined.len()
        );
    }
    if !violated.is_empty() || summary.has_holes() {
        std::process::exit(1);
    }
    println!("Lemma 9 held in all {} cells", rows.len());
}
