//! Experiment E5 — the decentralized variant (paper Section 12, Theorem 4
//! and Lemma 18): committee size stays `Θ(log n)` and its good fraction
//! stays ≥ 7/8 across iterations, under attack, while membership decisions
//! and costs match centralized Ergo exactly.

use crate::sweep::{default_workers, fast_mode, run_parallel};
use crate::table::{fmt_num, Table};
use ergo_core::{Ergo, ErgoConfig};
use sybil_churn::model::ChurnModel;
use sybil_churn::networks;
use sybil_committee::{DecentralConfig, DecentralizedErgo};
use sybil_sim::adversary::PurgeSurvivor;
use sybil_sim::engine::{SimConfig, Simulation};
use sybil_sim::time::Time;

/// One decentralization run's summary.
#[derive(Clone, Debug)]
pub struct CommitteeOutcome {
    /// Network name.
    pub network: String,
    /// Adversary spend rate.
    pub t: f64,
    /// Committees elected over the run.
    pub elections: usize,
    /// Mean committee size.
    pub mean_size: f64,
    /// Smallest good fraction any committee held (incl. attrition).
    pub min_good_fraction: f64,
    /// Lemma 18's bound (7/8).
    pub bound: f64,
    /// SMR messages exchanged.
    pub messages: u64,
    /// Good spend rate (must match centralized Ergo).
    pub good_rate: f64,
    /// Centralized Ergo's good spend rate on the identical run.
    pub centralized_rate: f64,
    /// Max bad fraction over the run.
    pub max_bad_fraction: f64,
}

/// Runs one (network, T) decentralization experiment.
///
/// Uses the purge-surviving adversary: it pays to retain the full
/// `⌊κ·N⌋` cap at every purge, so each election samples from a membership
/// with the worst-case post-purge Sybil fraction — the regime Lemma 18's
/// 7/8 bound is about.
pub fn run_cell(network: &ChurnModel, t: f64, horizon: f64, seed: u64) -> CommitteeOutcome {
    let workload = network.generate(Time(horizon), seed);
    let cfg = SimConfig { horizon: Time(horizon), adv_rate: t, ..SimConfig::default() };

    let (report, defense) = Simulation::new(
        cfg,
        DecentralizedErgo::new(DecentralConfig::default()),
        PurgeSurvivor::new(t),
        workload.clone(),
    )
    .run_with_defense();

    let central =
        Simulation::new(cfg, Ergo::new(ErgoConfig::default()), PurgeSurvivor::new(t), workload)
            .run();

    let history = defense.history();
    let mean_size = if history.is_empty() {
        defense.committee().size() as f64
    } else {
        history.iter().map(|r| r.elected.size() as f64).sum::<f64>() / history.len() as f64
    };
    CommitteeOutcome {
        network: network.name.to_string(),
        t,
        elections: history.len(),
        mean_size,
        min_good_fraction: defense.min_committee_good_fraction(),
        bound: 7.0 / 8.0,
        messages: defense.messages(),
        good_rate: report.good_spend_rate(),
        centralized_rate: central.good_spend_rate(),
        max_bad_fraction: report.max_bad_fraction,
    }
}

/// Runs the full committee experiment grid.
pub fn run() -> Vec<CommitteeOutcome> {
    let horizon = if fast_mode() { 300.0 } else { 10_000.0 };
    let mut jobs: Vec<Box<dyn FnOnce() -> CommitteeOutcome + Send>> = Vec::new();
    for net in networks::all_networks() {
        for t in [0.0, 10_000.0] {
            jobs.push(Box::new(move || run_cell(&net, t, horizon, 17)));
        }
    }
    run_parallel(jobs, default_workers())
}

/// Formats the outcomes as a table.
pub fn to_table(outcomes: &[CommitteeOutcome]) -> Table {
    let mut table = Table::new(vec![
        "network",
        "T",
        "elections",
        "mean size",
        "min good frac",
        "bound",
        "SMR msgs",
        "A decentralized",
        "A centralized",
        "max bad frac",
    ]);
    for o in outcomes {
        table.push(vec![
            o.network.clone(),
            fmt_num(o.t),
            o.elections.to_string(),
            fmt_num(o.mean_size),
            fmt_num(o.min_good_fraction),
            fmt_num(o.bound),
            o.messages.to_string(),
            fmt_num(o.good_rate),
            fmt_num(o.centralized_rate),
            fmt_num(o.max_bad_fraction),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decentralized_matches_centralized_costs_and_keeps_committee() {
        let out = run_cell(&networks::gnutella(), 5_000.0, 400.0, 5);
        assert!(
            (out.good_rate - out.centralized_rate).abs() / out.centralized_rate < 1e-9,
            "decentralized {} vs centralized {}",
            out.good_rate,
            out.centralized_rate
        );
        assert!(out.elections > 0);
        assert!(out.min_good_fraction >= out.bound, "{}", out.min_good_fraction);
        assert!(out.messages > 0);
        assert!(out.max_bad_fraction < 1.0 / 6.0);
    }
}
