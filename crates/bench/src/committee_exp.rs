//! Experiment E5 — the decentralized variant (paper Section 12, Theorem 4
//! and Lemma 18): committee size stays `Θ(log n)` and its good fraction
//! stays ≥ 7/8 across iterations, under attack, while membership decisions
//! and costs match centralized Ergo exactly.
//!
//! The adversary strategy is a first-class named axis: Section 12's
//! guarantees, like Theorem 1's, are claimed against *every* strategy, so
//! the grid runs each registered attack strategy (not just the
//! purge-survivor worst case) through the `sybil-exp` subsystem —
//! multi-trial with cached disk-streamed workloads, `mean, ci95_lo,
//! ci95_hi` aggregation, and a resumable results store. The decentralized
//! and centralized runs of a trial replay the *same* cached on-disk
//! workload through two independent stream handles — the workload is
//! never cloned resident, and the cost-equality comparison is exact by
//! construction.

use crate::grid::{default_cache_dir, default_trials};
use crate::sweep::{default_workers, fast_mode};
use crate::table::{fmt_num, results_dir, Table};
use ergo_core::{Ergo, ErgoConfig};
use std::collections::HashMap;
use sybil_churn::model::ChurnModel;
use sybil_churn::networks;
use sybil_committee::{DecentralConfig, DecentralizedErgo};
use sybil_exp::runner::RunSummary;
use sybil_exp::spec::{text_fingerprint, AxisValue, CellSpec, AXIS_NETWORK, AXIS_STRATEGY, AXIS_T};
use sybil_exp::{trial_seed, MetricSummary, Welford, WorkloadCache};
use sybil_sim::adversary::{build_strategy, strategy_fingerprint, StrategyParams, STRATEGY_NONE};
use sybil_sim::engine::{SimConfig, Simulation};
use sybil_sim::time::Time;
use sybil_sim::workload::WorkloadSource;

/// Lemma 18's committee good-fraction bound.
pub const COMMITTEE_BOUND: f64 = 7.0 / 8.0;

/// One decentralization trial (one workload seed, one strategy, one T).
#[derive(Clone, Debug)]
pub struct CommitteeTrial {
    /// Committees elected over the run.
    pub elections: usize,
    /// Mean committee size.
    pub mean_size: f64,
    /// Smallest good fraction any committee held (incl. attrition).
    pub min_good_fraction: f64,
    /// SMR messages exchanged.
    pub messages: u64,
    /// Good spend rate (must match centralized Ergo).
    pub good_rate: f64,
    /// Centralized Ergo's good spend rate on the identical run.
    pub centralized_rate: f64,
    /// Max bad fraction over the run.
    pub max_bad_fraction: f64,
}

/// Runs one decentralization trial: the decentralized and centralized
/// simulations replay `decentralized` and `centralized` — two independent
/// streams of the *same* workload (two [`DiskWorkload`] handles onto one
/// cache file in the grid; the old driver cloned a resident workload
/// instead).
///
/// [`DiskWorkload`]: sybil_sim::workload_io::DiskWorkload
pub fn run_trial<W1, W2>(
    decentralized: W1,
    centralized: W2,
    strategy: &str,
    t: f64,
    horizon: f64,
) -> CommitteeTrial
where
    W1: WorkloadSource,
    W2: WorkloadSource,
{
    let cfg = SimConfig { horizon: Time(horizon), adv_rate: t, ..SimConfig::default() };
    let adversary =
        build_strategy(strategy, &StrategyParams::rate(t)).unwrap_or_else(|e| panic!("{e}"));
    let (report, defense) = Simulation::new(
        cfg,
        DecentralizedErgo::new(DecentralConfig::default()),
        adversary,
        decentralized,
    )
    .run_with_defense();

    let adversary =
        build_strategy(strategy, &StrategyParams::rate(t)).unwrap_or_else(|e| panic!("{e}"));
    let central =
        Simulation::new(cfg, Ergo::new(ErgoConfig::default()), adversary, centralized).run();

    let history = defense.history();
    let mean_size = if history.is_empty() {
        defense.committee().size() as f64
    } else {
        history.iter().map(|r| r.elected.size() as f64).sum::<f64>() / history.len() as f64
    };
    CommitteeTrial {
        elections: history.len(),
        mean_size,
        min_good_fraction: defense.min_committee_good_fraction(),
        messages: defense.messages(),
        good_rate: report.good_spend_rate(),
        centralized_rate: central.good_spend_rate(),
        max_bad_fraction: report.max_bad_fraction,
    }
}

/// Runs one (network, strategy, T) trial with in-memory workloads — the
/// single-trial form the quick tests use (the workload is generated twice;
/// generation is deterministic, so both runs still replay one schedule).
pub fn run_cell(
    network: &ChurnModel,
    strategy: &str,
    t: f64,
    horizon: f64,
    seed: u64,
) -> CommitteeTrial {
    run_trial(
        network.generate(Time(horizon), seed),
        network.generate(Time(horizon), seed),
        strategy,
        t,
        horizon,
    )
}

/// One aggregated cell of the committee grid.
#[derive(Clone, Debug)]
pub struct CommitteeOutcome {
    /// Network name.
    pub network: String,
    /// Adversary strategy registry name.
    pub strategy: String,
    /// Adversary spend rate.
    pub t: f64,
    /// Trials behind the confidence intervals.
    pub trials: u64,
    /// Committees elected, over trials.
    pub elections: MetricSummary,
    /// Mean committee size, over trials.
    pub mean_size: MetricSummary,
    /// Smallest good fraction any trial's committee held — the Lemma 18
    /// verdict uses this worst case, not a mean.
    pub min_good_fraction: f64,
    /// Lemma 18's bound (7/8).
    pub bound: f64,
    /// SMR messages, over trials.
    pub messages: MetricSummary,
    /// Decentralized good spend rate, over trials.
    pub good_rate: MetricSummary,
    /// Centralized Ergo's good spend rate on the identical runs.
    pub centralized_rate: MetricSummary,
    /// Worst max-bad-fraction any trial reached.
    pub max_bad_fraction: f64,
}

/// Runs the full committee experiment grid (network × strategy × T,
/// multi-trial, cached disk-streamed workloads, resumable).
pub fn run() -> Vec<CommitteeOutcome> {
    let horizon = if fast_mode() { 300.0 } else { 10_000.0 };
    let (rows, _) = run_committee_grid(
        "committee",
        &networks::all_networks(),
        &crate::invariants_exp::strategy_roster(),
        &[0.0, 10_000.0],
        default_trials(),
        horizon,
        17,
    );
    rows
}

/// The explicit cell list: network × strategy × T, except that the T = 0
/// baseline is strategy-independent — every funded strategy idles at rate
/// 0 — so it runs **once** per network under the registry's `none`
/// strategy instead of once per roster entry (at paper scale each
/// baseline cell is `trials × 2` full-horizon simulations).
fn grid_cells(nets: &[ChurnModel], strategies: &[&str], t_values: &[f64]) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for net in nets {
        for &t in t_values {
            let cell_strategies: &[&str] = if t == 0.0 { &[STRATEGY_NONE] } else { strategies };
            for strategy in cell_strategies {
                cells.push(CellSpec::new(vec![
                    (AXIS_NETWORK.into(), AxisValue::Str(net.name.to_string())),
                    (AXIS_STRATEGY.into(), AxisValue::Str(strategy.to_string())),
                    (AXIS_T.into(), AxisValue::F64(t)),
                ]));
            }
        }
    }
    cells
}

/// The parameterized committee grid behind [`run`]. Cells are not a full
/// cartesian product (the T = 0 baseline collapses the strategy axis, see
/// [`grid_cells`]), so the grid runs through
/// [`run_cell_grid`](sybil_exp::run_cell_grid) with explicit assignments.
pub fn run_committee_grid(
    name: &str,
    nets: &[ChurnModel],
    strategies: &[&str],
    t_values: &[f64],
    trials: u32,
    horizon: f64,
    base_seed: u64,
) -> (Vec<CommitteeOutcome>, RunSummary) {
    let cache = WorkloadCache::open(default_cache_dir())
        .unwrap_or_else(|e| panic!("cannot open workload cache: {e}"));
    let net_by_name: HashMap<String, &ChurnModel> =
        nets.iter().map(|n| (n.name.to_string(), n)).collect();
    assert_eq!(net_by_name.len(), nets.len(), "duplicate network names in {name}");
    let config = format!(
        "committee grid v2 (explicit cells; T=0 baseline runs once per network as \
         strategy=none)\nhorizon = {horizon}\ntrials = {trials}\nseed = {base_seed}\n\
         t_values = {t_values:?}\nnetworks = {nets:?}\ndecentral = {:?}\nergo = {:?}\n\
         strategies = [{}]\n",
        DecentralConfig::default(),
        ErgoConfig::default(),
        strategies
            .iter()
            .map(|s| strategy_fingerprint(s, &StrategyParams::rate(1.0)))
            .collect::<Vec<_>>()
            .join(", "),
    );

    let cells = grid_cells(nets, strategies, t_values);
    let pairs: Vec<(CellSpec, CellSpec)> = cells.iter().map(|c| (c.clone(), c.clone())).collect();
    let cache_ref = &cache;
    let outcome = sybil_exp::run_cell_grid(
        name,
        &text_fingerprint(&config),
        &results_dir().join(format!("{name}.store")),
        pairs,
        Some(cache_ref),
        default_workers(),
        |cell: &CellSpec| {
            let net = net_by_name[cell.str_value(AXIS_NETWORK)];
            let strategy = cell.str_value(AXIS_STRATEGY);
            let t = cell.f64_value(AXIS_T);
            let mut elections = Welford::new();
            let mut mean_size = Welford::new();
            let mut messages = Welford::new();
            let mut good_rate = Welford::new();
            let mut central_rate = Welford::new();
            let mut min_good_fraction = f64::INFINITY;
            let mut worst_bad = 0.0f64;
            for trial in 0..trials {
                // Two handles onto the same cached file: the decentralized
                // and centralized runs replay one on-disk workload, no
                // resident clone.
                let wseed = trial_seed(base_seed, trial as u64);
                let open = || {
                    cache_ref
                        .get_or_create(net, Time(horizon), wseed)
                        .unwrap_or_else(|e| panic!("workload cache failed for {}: {e}", cell.id()))
                };
                let q = run_trial(open(), open(), strategy, t, horizon);
                elections.push(q.elections as f64);
                mean_size.push(q.mean_size);
                messages.push(q.messages as f64);
                good_rate.push(q.good_rate);
                central_rate.push(q.centralized_rate);
                min_good_fraction = min_good_fraction.min(q.min_good_fraction);
                worst_bad = worst_bad.max(q.max_bad_fraction);
            }
            let mut fields = vec![("trials".to_string(), trials as f64)];
            fields.extend(elections.summary().fields("elections"));
            fields.extend(mean_size.summary().fields("mean_size"));
            fields.push(("min_good_fraction".into(), min_good_fraction));
            fields.extend(messages.summary().fields("messages"));
            fields.extend(good_rate.summary().fields("good_rate"));
            fields.extend(central_rate.summary().fields("centralized_rate"));
            fields.push(("max_bad_fraction".into(), worst_bad));
            fields
        },
    )
    .unwrap_or_else(|e| panic!("experiment {name} failed: {e}"));
    eprint!("{}", outcome.summary.render());

    let rows = cells
        .iter()
        .zip(&outcome.records)
        .map(|(cell, record)| {
            // Quarantined cell → None → all-NaN summaries → blank cells.
            let record = record.as_ref();
            let trials = record.and_then(|r| r.get("trials")).unwrap_or(f64::NAN) as u64;
            CommitteeOutcome {
                network: cell.str_value(AXIS_NETWORK).to_string(),
                strategy: cell.str_value(AXIS_STRATEGY).to_string(),
                t: cell.f64_value(AXIS_T),
                trials,
                elections: MetricSummary::from_record_opt(record, "elections", trials),
                mean_size: MetricSummary::from_record_opt(record, "mean_size", trials),
                min_good_fraction: record
                    .and_then(|r| r.get("min_good_fraction"))
                    .unwrap_or(f64::NAN),
                bound: COMMITTEE_BOUND,
                messages: MetricSummary::from_record_opt(record, "messages", trials),
                good_rate: MetricSummary::from_record_opt(record, "good_rate", trials),
                centralized_rate: MetricSummary::from_record_opt(
                    record,
                    "centralized_rate",
                    trials,
                ),
                max_bad_fraction: record
                    .and_then(|r| r.get("max_bad_fraction"))
                    .unwrap_or(f64::NAN),
            }
        })
        .collect();
    (rows, outcome.summary)
}

/// Formats the outcomes as a table with trial means and 95 % confidence
/// bounds for the decentralized spend rate.
pub fn to_table(outcomes: &[CommitteeOutcome]) -> Table {
    let mut table = Table::new(vec![
        "network",
        "adversary",
        "T",
        "trials",
        "elections",
        "mean size",
        "min good frac",
        "bound",
        "SMR msgs",
        "A decentralized",
        "ci95_lo",
        "ci95_hi",
        "A centralized",
        "max bad frac",
    ]);
    for o in outcomes {
        table.push(vec![
            o.network.clone(),
            o.strategy.clone(),
            fmt_num(o.t),
            o.trials.to_string(),
            fmt_num(o.elections.mean),
            fmt_num(o.mean_size.mean),
            fmt_num(o.min_good_fraction),
            fmt_num(o.bound),
            fmt_num(o.messages.mean),
            fmt_num(o.good_rate.mean),
            fmt_num(o.good_rate.ci95_lo),
            fmt_num(o.good_rate.ci95_hi),
            fmt_num(o.centralized_rate.mean),
            fmt_num(o.max_bad_fraction),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use sybil_sim::adversary::STRATEGY_PURGE_SURVIVE;
    use sybil_sim::workload_io::DiskWorkload;

    #[test]
    fn decentralized_matches_centralized_costs_and_keeps_committee() {
        let out = run_cell(&networks::gnutella(), STRATEGY_PURGE_SURVIVE, 5_000.0, 400.0, 5);
        assert!(
            (out.good_rate - out.centralized_rate).abs() / out.centralized_rate < 1e-9,
            "decentralized {} vs centralized {}",
            out.good_rate,
            out.centralized_rate
        );
        assert!(out.elections > 0);
        assert!(out.min_good_fraction >= COMMITTEE_BOUND, "{}", out.min_good_fraction);
        assert!(out.messages > 0);
        assert!(out.max_bad_fraction < 1.0 / 6.0);
    }

    /// The T = 0 baseline is strategy-independent, so the cell list must
    /// collapse it to a single `none` cell per network rather than
    /// simulating the identical no-attack run once per roster entry.
    #[test]
    fn grid_collapses_the_t0_baseline_to_one_cell_per_network() {
        let nets = [networks::gnutella(), networks::ethereum()];
        let strategies = crate::invariants_exp::strategy_roster();
        let cells = grid_cells(&nets, &strategies, &[0.0, 10_000.0]);
        assert_eq!(cells.len(), nets.len() * (1 + strategies.len()));
        let baselines: Vec<_> = cells.iter().filter(|c| c.f64_value(AXIS_T) == 0.0).collect();
        assert_eq!(baselines.len(), nets.len());
        for cell in baselines {
            assert_eq!(cell.str_value(AXIS_STRATEGY), STRATEGY_NONE);
        }
        // Ids stay distinct (the run would reject duplicates anyway).
        let ids: std::collections::BTreeSet<String> = cells.iter().map(|c| c.id()).collect();
        assert_eq!(ids.len(), cells.len());
    }

    /// The cost-equality claim, pinned bit-identically on the grid's real
    /// replay path: both runs stream the same cached on-disk workload
    /// (two handles, no resident clone), and the decentralized good spend
    /// sum must equal centralized Ergo's to the last bit.
    #[test]
    fn decentralized_spend_is_bit_identical_on_shared_disk_workload() {
        let dir = std::env::temp_dir().join(format!("sybil_committee_eq_{}", std::process::id()));
        let cache = WorkloadCache::open(&dir).unwrap();
        let net = networks::gnutella();
        let horizon = 300.0;
        let open = || -> DiskWorkload { cache.get_or_create(&net, Time(horizon), 7).unwrap() };
        for strategy in crate::invariants_exp::strategy_roster() {
            let out = run_trial(open(), open(), strategy, 5_000.0, horizon);
            assert_eq!(
                out.good_rate.to_bits(),
                out.centralized_rate.to_bits(),
                "{strategy}: decentralized {} != centralized {}",
                out.good_rate,
                out.centralized_rate
            );
        }
        assert_eq!(cache.stats().misses, 1, "one generation serves every replay");
        std::fs::remove_dir_all(&dir).ok();
    }
}
