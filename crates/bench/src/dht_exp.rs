//! Extension experiment E7 — the Sybil-resistant DHT (paper Section 13.2):
//! lookup success rates across Sybil fractions and routing strategies, and
//! an end-to-end run where the ring membership comes from an actual
//! Ergo-defended simulation.

use crate::sweep::fast_mode;
use crate::table::{fmt_num, Table};
use ergo_core::{Ergo, ErgoConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sybil_churn::networks;
use sybil_dht::experiment::{run_grid, DhtCell};
use sybil_dht::{lookup_wide, Ring};
use sybil_sim::adversary::PurgeSurvivor;
use sybil_sim::engine::{SimConfig, Simulation};
use sybil_sim::id::Id;
use sybil_sim::time::Time;

/// Runs the static success-rate grid.
pub fn run_static() -> Vec<DhtCell> {
    let (n, trials) = if fast_mode() { (500, 150) } else { (2_000, 600) };
    run_grid(n, trials, 29)
}

/// Formats the static grid.
pub fn to_table(cells: &[DhtCell]) -> Table {
    let mut table = Table::new(vec!["bad fraction", "strategy", "lookup success rate"]);
    for c in cells {
        table.push(vec![
            format!("{:.3}", c.bad_fraction),
            c.strategy.clone(),
            fmt_num(c.success_rate),
        ]);
    }
    table
}

/// The end-to-end cell: run Ergo under a worst-case (purge-surviving)
/// attack, take the final membership as the ring, and measure wide-path
/// lookups. The attack rate is enormous — the point is that lookups stay
/// near-perfect *because* Ergo bounds the Sybil fraction, not because the
/// attack is small.
#[derive(Clone, Debug)]
pub struct EndToEnd {
    /// Adversary spend rate during the membership run.
    pub t: f64,
    /// Final ring size.
    pub ring_size: usize,
    /// Final Sybil fraction on the ring.
    pub bad_fraction: f64,
    /// Wide-path lookup success rate on that ring.
    pub success_rate: f64,
}

/// Runs the end-to-end experiment.
pub fn run_end_to_end(t: f64, seed: u64) -> EndToEnd {
    let horizon = if fast_mode() { Time(300.0) } else { Time(2_000.0) };
    let workload = networks::gnutella().generate(horizon, seed);
    let cfg = SimConfig { horizon, adv_rate: t, ..SimConfig::default() };
    let report =
        Simulation::new(cfg, Ergo::new(ErgoConfig::default()), PurgeSurvivor::new(t), workload)
            .run();

    // Materialize the final membership as ring nodes. Identities are
    // opaque; only counts matter for the ring's composition.
    let n_bad = report.final_bad;
    let n_good = report.final_members - n_bad;
    let ring = Ring::from_members(
        (0..n_good).map(|i| (Id(i), false)).chain((0..n_bad).map(|i| (Id((1 << 41) | i), true))),
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0xD417);
    let trials = if fast_mode() { 150 } else { 500 };
    let ok =
        (0..trials).filter(|_| lookup_wide(&ring, rng.gen(), 8, &mut rng).is_success()).count();
    EndToEnd {
        t,
        ring_size: ring.len(),
        bad_fraction: ring.bad_fraction(),
        success_rate: ok as f64 / trials as f64,
    }
}

/// Formats end-to-end outcomes.
pub fn end_to_end_table(cells: &[EndToEnd]) -> Table {
    let mut table = Table::new(vec![
        "T (attack on membership)",
        "ring size",
        "Sybil fraction",
        "wide-8 lookup success",
    ]);
    for c in cells {
        table.push(vec![
            fmt_num(c.t),
            c.ring_size.to_string(),
            format!("{:.4}", c.bad_fraction),
            fmt_num(c.success_rate),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_ring_is_lookupable() {
        let out = run_end_to_end(5_000.0, 3);
        assert!(out.bad_fraction < 1.0 / 6.0, "Ergo bound: {}", out.bad_fraction);
        assert!(out.success_rate > 0.95, "success {}", out.success_rate);
        assert!(out.ring_size > 1_000);
    }
}
