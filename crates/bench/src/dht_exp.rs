//! Extension experiment E7 — the Sybil-resistant DHT (paper Section 13.2):
//! lookup success rates across Sybil fractions and routing strategies, and
//! an end-to-end run where the ring membership comes from an actual
//! Ergo-defended simulation.
//!
//! The end-to-end cell runs through the `sybil-exp` subsystem as a
//! (strategy × T) grid: the adversary strategy attacking the membership
//! run is a first-class named axis resolved through the registry, each
//! cell replays [`crate::grid::default_trials`] cached disk-streamed
//! Gnutella workloads, lookup RNG streams derive deterministically from
//! the frozen [`cell_seed`] contract, and finished cells land in a
//! resumable results store with `mean, ci95_lo, ci95_hi` aggregation.

use crate::grid::{default_cache_dir, default_trials};
use crate::sweep::{default_workers, fast_mode};
use crate::table::{fmt_num, results_dir, Table};
use ergo_core::{Ergo, ErgoConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sybil_churn::networks;
use sybil_dht::experiment::{run_grid, DhtCell};
use sybil_dht::{lookup_wide, Ring};
use sybil_exp::runner::RunSummary;
use sybil_exp::spec::{cell_seed, text_fingerprint, AxisValue, CellSpec, AXIS_STRATEGY, AXIS_T};
use sybil_exp::{trial_seed, MetricSummary, Welford, WorkloadCache};
use sybil_sim::adversary::{
    build_strategy, strategy_fingerprint, StrategyParams, STRATEGY_NONE, STRATEGY_PURGE_SURVIVE,
};
use sybil_sim::engine::{SimConfig, Simulation};
use sybil_sim::id::Id;
use sybil_sim::time::Time;
use sybil_sim::workload::WorkloadSource;

/// Runs the static success-rate grid.
pub fn run_static() -> Vec<DhtCell> {
    let (n, trials) = if fast_mode() { (500, 150) } else { (2_000, 600) };
    run_grid(n, trials, 29)
}

/// Formats the static grid.
pub fn to_table(cells: &[DhtCell]) -> Table {
    let mut table = Table::new(vec!["bad fraction", "strategy", "lookup success rate"]);
    for c in cells {
        table.push(vec![
            format!("{:.3}", c.bad_fraction),
            c.strategy.clone(),
            fmt_num(c.success_rate),
        ]);
    }
    table
}

/// One end-to-end membership-run trial.
#[derive(Clone, Debug)]
pub struct EndToEnd {
    /// Adversary spend rate during the membership run.
    pub t: f64,
    /// Final ring size.
    pub ring_size: usize,
    /// Final Sybil fraction on the ring.
    pub bad_fraction: f64,
    /// Wide-path lookup success rate on that ring.
    pub success_rate: f64,
}

/// Runs one end-to-end trial against any workload source: an Ergo
/// membership run under `strategy` at rate `t`, the final membership
/// materialized as the ring, and `lookups` wide-path lookups driven by a
/// deterministic RNG stream seeded with `lookup_seed`.
pub fn run_end_to_end_trial<W: WorkloadSource>(
    workload: W,
    strategy: &str,
    t: f64,
    horizon: f64,
    lookup_seed: u64,
    lookups: usize,
) -> EndToEnd {
    let cfg = SimConfig { horizon: Time(horizon), adv_rate: t, ..SimConfig::default() };
    let adversary =
        build_strategy(strategy, &StrategyParams::rate(t)).unwrap_or_else(|e| panic!("{e}"));
    let report = Simulation::new(cfg, Ergo::new(ErgoConfig::default()), adversary, workload).run();

    // Materialize the final membership as ring nodes. Identities are
    // opaque; only counts matter for the ring's composition.
    let n_bad = report.final_bad;
    let n_good = report.final_members - n_bad;
    let ring = Ring::from_members(
        (0..n_good).map(|i| (Id(i), false)).chain((0..n_bad).map(|i| (Id((1 << 41) | i), true))),
    );

    let mut rng = StdRng::seed_from_u64(lookup_seed);
    let ok =
        (0..lookups).filter(|_| lookup_wide(&ring, rng.gen(), 8, &mut rng).is_success()).count();
    EndToEnd {
        t,
        ring_size: ring.len(),
        bad_fraction: ring.bad_fraction(),
        success_rate: ok as f64 / lookups as f64,
    }
}

/// Runs one end-to-end trial with an in-memory workload and the
/// historical worst-case (purge-surviving) adversary — the single-trial
/// form the quick tests use.
pub fn run_end_to_end(t: f64, seed: u64) -> EndToEnd {
    let horizon = if fast_mode() { 300.0 } else { 2_000.0 };
    let lookups = if fast_mode() { 150 } else { 500 };
    run_end_to_end_trial(
        networks::gnutella().generate(Time(horizon), seed),
        STRATEGY_PURGE_SURVIVE,
        t,
        horizon,
        seed ^ 0xD417,
        lookups,
    )
}

/// One aggregated cell of the end-to-end grid.
#[derive(Clone, Debug)]
pub struct EndToEndSummary {
    /// Adversary strategy attacking the membership run.
    pub strategy: String,
    /// Adversary spend rate.
    pub t: f64,
    /// Trials behind the confidence intervals.
    pub trials: u64,
    /// Final ring size over trials.
    pub ring_size: MetricSummary,
    /// Final Sybil fraction over trials.
    pub bad_fraction: MetricSummary,
    /// Wide-path lookup success rate over trials.
    pub success_rate: MetricSummary,
}

/// The explicit cell list: strategy × T, except that the T = 0 baseline
/// is strategy-independent (every funded strategy idles at rate 0) and
/// runs once under the registry's `none` strategy.
fn grid_cells(strategies: &[&str], t_values: &[f64]) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for &t in t_values {
        let cell_strategies: &[&str] = if t == 0.0 { &[STRATEGY_NONE] } else { strategies };
        for strategy in cell_strategies {
            cells.push(CellSpec::new(vec![
                (AXIS_STRATEGY.into(), AxisValue::Str(strategy.to_string())),
                (AXIS_T.into(), AxisValue::F64(t)),
            ]));
        }
    }
    cells
}

/// Runs the end-to-end experiment as a (strategy × T) grid: Ergo
/// membership under every registered attack strategy, the surviving ring
/// measured with wide-path lookups. The attack rates are enormous — the
/// point is that lookups stay near-perfect *because* Ergo bounds the
/// Sybil fraction, not because the attack is small. The T = 0 baseline
/// collapses the strategy axis (see [`grid_cells`]), so the cells run as
/// explicit assignments through
/// [`run_cell_grid`](sybil_exp::run_cell_grid).
pub fn run_end_to_end_grid() -> (Vec<EndToEndSummary>, RunSummary) {
    let horizon = if fast_mode() { 300.0 } else { 2_000.0 };
    let lookups = if fast_mode() { 150 } else { 500 };
    let strategies = crate::invariants_exp::strategy_roster();
    let net = networks::gnutella();
    let trials = default_trials();
    let base_seed = 7u64;

    let cache = WorkloadCache::open(default_cache_dir())
        .unwrap_or_else(|e| panic!("cannot open workload cache: {e}"));
    let config = format!(
        "dht end-to-end grid v2 (explicit cells; T=0 baseline runs once as strategy=none)\n\
         horizon = {horizon}\ntrials = {trials}\nseed = {base_seed}\nnetwork = {net:?}\n\
         defense = {:?}\nlookups = {lookups} wide-8\nstrategies = [{}]\n",
        ErgoConfig::default(),
        strategies
            .iter()
            .map(|s| strategy_fingerprint(s, &StrategyParams::rate(1.0)))
            .collect::<Vec<_>>()
            .join(", "),
    );

    let cells = grid_cells(&strategies, &[0.0, 1_000.0, 100_000.0]);
    let pairs: Vec<(CellSpec, CellSpec)> = cells.iter().map(|c| (c.clone(), c.clone())).collect();
    let cache_ref = &cache;
    let net_ref = &net;
    let outcome = sybil_exp::run_cell_grid(
        "dht_end_to_end",
        &text_fingerprint(&config),
        &results_dir().join("dht_end_to_end.store"),
        pairs,
        Some(cache_ref),
        default_workers(),
        |cell: &CellSpec| {
            let strategy = cell.str_value(AXIS_STRATEGY);
            let t = cell.f64_value(AXIS_T);
            let mut ring_size = Welford::new();
            let mut bad_fraction = Welford::new();
            let mut success = Welford::new();
            for trial in 0..trials {
                let disk = cache_ref
                    .get_or_create(net_ref, Time(horizon), trial_seed(base_seed, trial as u64))
                    .unwrap_or_else(|e| panic!("workload cache failed for {}: {e}", cell.id()));
                // Lookup randomness must differ per cell and trial but be
                // stable under resume: derive it from the canonical cell
                // id (the frozen `cell_seed` contract), which inherits
                // the id's no-collision guarantee.
                let lookup_seed = cell_seed(base_seed, cell, trial as u64);
                let q = run_end_to_end_trial(disk, strategy, t, horizon, lookup_seed, lookups);
                ring_size.push(q.ring_size as f64);
                bad_fraction.push(q.bad_fraction);
                success.push(q.success_rate);
            }
            let mut fields = vec![("trials".to_string(), trials as f64)];
            fields.extend(ring_size.summary().fields("ring_size"));
            fields.extend(bad_fraction.summary().fields("bad_fraction"));
            fields.extend(success.summary().fields("success_rate"));
            fields
        },
    )
    .unwrap_or_else(|e| panic!("experiment dht_end_to_end failed: {e}"));
    eprint!("{}", outcome.summary.render());

    let rows = cells
        .iter()
        .zip(&outcome.records)
        .map(|(cell, record)| {
            // Quarantined cell → None → all-NaN summaries → blank cells.
            let record = record.as_ref();
            let trials = record.and_then(|r| r.get("trials")).unwrap_or(f64::NAN) as u64;
            EndToEndSummary {
                strategy: cell.str_value(AXIS_STRATEGY).to_string(),
                t: cell.f64_value(AXIS_T),
                trials,
                ring_size: MetricSummary::from_record_opt(record, "ring_size", trials),
                bad_fraction: MetricSummary::from_record_opt(record, "bad_fraction", trials),
                success_rate: MetricSummary::from_record_opt(record, "success_rate", trials),
            }
        })
        .collect();
    (rows, outcome.summary)
}

/// Formats aggregated end-to-end outcomes with trial means and 95 %
/// confidence bounds for the lookup success rate.
pub fn end_to_end_table(cells: &[EndToEndSummary]) -> Table {
    let mut table = Table::new(vec![
        "adversary",
        "T (attack on membership)",
        "trials",
        "ring size",
        "Sybil fraction",
        "wide-8 success mean",
        "ci95_lo",
        "ci95_hi",
    ]);
    for c in cells {
        table.push(vec![
            c.strategy.clone(),
            fmt_num(c.t),
            c.trials.to_string(),
            fmt_num(c.ring_size.mean),
            format!("{:.4}", c.bad_fraction.mean),
            fmt_num(c.success_rate.mean),
            fmt_num(c.success_rate.ci95_lo),
            fmt_num(c.success_rate.ci95_hi),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_ring_is_lookupable() {
        let out = run_end_to_end(5_000.0, 3);
        assert!(out.bad_fraction < 1.0 / 6.0, "Ergo bound: {}", out.bad_fraction);
        assert!(out.success_rate > 0.95, "success {}", out.success_rate);
        assert!(out.ring_size > 1_000);
    }

    #[test]
    fn grid_collapses_the_t0_baseline_to_one_cell() {
        let strategies = crate::invariants_exp::strategy_roster();
        let cells = grid_cells(&strategies, &[0.0, 1_000.0, 100_000.0]);
        assert_eq!(cells.len(), 1 + 2 * strategies.len());
        let baselines: Vec<_> = cells.iter().filter(|c| c.f64_value(AXIS_T) == 0.0).collect();
        assert_eq!(baselines.len(), 1, "one strategy-independent baseline cell");
        assert_eq!(baselines[0].str_value(AXIS_STRATEGY), STRATEGY_NONE);
        let ids: std::collections::BTreeSet<String> = cells.iter().map(|c| c.id()).collect();
        assert_eq!(ids.len(), cells.len());
    }

    #[test]
    fn end_to_end_trial_is_deterministic_in_its_seeds() {
        let horizon = 200.0;
        let w = || networks::gnutella().generate(Time(horizon), 3);
        let a = run_end_to_end_trial(w(), STRATEGY_PURGE_SURVIVE, 5_000.0, horizon, 42, 100);
        let b = run_end_to_end_trial(w(), STRATEGY_PURGE_SURVIVE, 5_000.0, horizon, 42, 100);
        assert_eq!(a.ring_size, b.ring_size);
        assert_eq!(a.success_rate.to_bits(), b.success_rate.to_bits());
        // A different lookup seed may change outcomes but not the ring.
        let c = run_end_to_end_trial(w(), STRATEGY_PURGE_SURVIVE, 5_000.0, horizon, 43, 100);
        assert_eq!(a.ring_size, c.ring_size);
    }
}
