//! Experiment E3 — the paper's **Figure 10**: Ergo versus its cost-reduction
//! heuristics (Section 10.3).
//!
//! Same setup as Figure 8 — including the multi-trial, cached,
//! disk-streamed execution through `sybil-exp` — with the roster ERGO,
//! ERGO-CH1 (Heuristics 1+2), ERGO-CH2 (Heuristics 1+2+3), ERGO-SF(92),
//! and ERGO-SF(98) (Heuristics 1–4 with classifier accuracies 0.92 /
//! 0.98).
//!
//! Expected shape (paper): the classifier variants dominate for large `T`
//! (up to three orders of magnitude better than plain Ergo), with ERGO-SF
//! curves pulling further ahead as `T` grows; CH1/CH2 give modest
//! improvements concentrated at small `T` (purge-frequency effects).

use crate::grid::{run_spend_grid, SpendSummary};
use crate::sweep::{fast_mode, t_grid, Algo};
use crate::table::{fmt_num, Table};
use sybil_churn::networks;

/// The Figure 10 roster.
pub fn roster() -> Vec<Algo> {
    vec![Algo::Ergo, Algo::ErgoCh1, Algo::ErgoCh2, Algo::ErgoSfFull(0.92), Algo::ErgoSfFull(0.98)]
}

/// Runs the full Figure 10 sweep (multi-trial, resumable).
pub fn run() -> Vec<SpendSummary> {
    let (horizon, grid) =
        if fast_mode() { (500.0, vec![0.0, 16.0, 1024.0, 65_536.0]) } else { (10_000.0, t_grid()) };
    let (rows, _) = run_spend_grid(
        "figure10",
        &networks::all_networks(),
        &roster(),
        &grid,
        crate::figure8::trials(),
        horizon,
        1,
    );
    rows
}

/// Formats the sweep as the paper's per-panel series with trial means and
/// 95 % confidence bounds.
pub fn to_table(points: &[SpendSummary]) -> Table {
    let mut table = Table::new(vec![
        "network",
        "variant",
        "T",
        "trials",
        "mean",
        "ci95_lo",
        "ci95_hi",
        "vs ERGO",
        "max bad frac",
        "purges",
    ]);
    for p in points {
        let ergo_a = points
            .iter()
            .find(|q| q.network == p.network && q.t == p.t && q.algo == "ERGO")
            .map(|q| q.good_rate.mean);
        table.push(vec![
            p.network.clone(),
            p.algo.clone(),
            fmt_num(p.t),
            p.good_rate.n.to_string(),
            fmt_num(p.good_rate.mean),
            fmt_num(p.good_rate.ci95_lo),
            fmt_num(p.good_rate.ci95_hi),
            ergo_a.map_or("-".into(), |a| {
                if a > 0.0 {
                    format!("{:.2}x", p.good_rate.mean / a)
                } else {
                    "-".into()
                }
            }),
            fmt_num(p.max_bad_fraction.mean),
            fmt_num(p.purges.mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_point, RunParams};

    #[test]
    fn roster_matches_figure10_legend() {
        let labels: Vec<String> = roster().iter().map(|a| a.label()).collect();
        assert_eq!(labels, vec!["ERGO", "ERGO-CH1", "ERGO-CH2", "ERGO-SF(92)", "ERGO-SF(98)"]);
    }

    #[test]
    fn classifier_variant_beats_plain_ergo_under_attack() {
        let net = networks::gnutella();
        let params = RunParams { horizon: 300.0, ..RunParams::default() };
        let t = 50_000.0;
        let plain = run_point(&net, Algo::Ergo, t, params);
        let sf = run_point(&net, Algo::ErgoSfFull(0.98), t, params);
        assert!(
            sf.good_rate < plain.good_rate,
            "ERGO-SF {} vs ERGO {}",
            sf.good_rate,
            plain.good_rate
        );
        // Invariant still holds with heuristics + gate.
        assert!(sf.max_bad_fraction < 1.0 / 6.0);
    }
}
