//! Experiment E1 — the paper's **Figure 8**: good spend rate `A` versus
//! adversary spend rate `T` for ERGO, CCOM, SybilControl, REMP-1e7, and
//! ERGO-SF(98), over the Bitcoin, BitTorrent, Gnutella, and Ethereum
//! workloads.
//!
//! Setup mirrors Section 10.1: κ = 1/18, `T ∈ 2⁰…2²⁰`, 10 000 simulated
//! seconds per point — now repeated for [`trials`] independent workload
//! seeds per cell through the `sybil-exp` subsystem: workloads are
//! materialized once per (network, trial) in the content-addressed disk
//! cache and replayed into every (algorithm, T) cell; each cell reports
//! `mean, ci95_lo, ci95_hi` per metric and is recorded in a resumable
//! results store.
//!
//! Expected shape (paper): Ergo matches every baseline for `T ≥ 100` and
//! beats them by up to two orders of magnitude at large `T` (its `A` grows
//! like `√T`); ERGO-SF gains up to three orders; REMP is the flat constant
//! `(1−κ)·Tmax/κ ≈ 1.7·10⁸`; SybilControl's curve is cut once it can no
//! longer enforce a `< 1/6` bad fraction.

use crate::grid::{run_spend_grid, SpendSummary};
use crate::sweep::{fast_mode, t_grid, Algo};
use crate::table::{fmt_num, Table};
use sybil_churn::networks;

/// The Figure 8 algorithm roster.
pub fn roster() -> Vec<Algo> {
    vec![Algo::Ergo, Algo::CCom, Algo::SybilControl, Algo::Remp(1e7), Algo::ErgoSf(0.98)]
}

/// Independent trials per cell (see [`crate::grid::default_trials`]).
pub fn trials() -> u32 {
    crate::grid::default_trials()
}

/// Runs the full Figure 8 sweep (multi-trial, cached disk-streamed
/// workloads, resumable) and returns the aggregated cells.
pub fn run() -> Vec<SpendSummary> {
    let (horizon, grid) =
        if fast_mode() { (500.0, vec![0.0, 16.0, 1024.0, 65_536.0]) } else { (10_000.0, t_grid()) };
    let (rows, _) = run_spend_grid(
        "figure8",
        &networks::all_networks(),
        &roster(),
        &grid,
        trials(),
        horizon,
        1,
    );
    rows
}

/// The million-ID Figure-8-shaped grid (ROADMAP "scale sweeps to
/// million-ID workloads"): the [`networks::millions`] model at 10⁶ initial
/// IDs, ERGO / CCOM / SybilControl, four attack rates, ≥ 5 trials per
/// cell — every run disk-streamed from the content-addressed cache, so
/// resident workload memory stays at two read buffers per run instead of
/// the ~16 MB schedule.
///
/// The horizon is 500 s (as in the `macro_millions` perf scenario): at
/// this scale each trial replays ~170 k events, so the full grid is
/// minutes, not hours, and still exercises every million-ID code path.
///
/// Returns the run summary too, so the `exp_millions` bin can exit
/// nonzero when cells were quarantined.
pub fn run_millions() -> (Vec<SpendSummary>, sybil_exp::RunSummary) {
    run_spend_grid(
        "figure8_millions",
        &[networks::millions(1_000_000)],
        &[Algo::Ergo, Algo::CCom, Algo::SybilControl],
        &[0.0, 64.0, 4096.0, 65_536.0],
        trials(),
        500.0,
        1,
    )
}

/// Formats the cells as the per-network series the paper plots, with the
/// trial mean and 95 % confidence bounds for `A`.
pub fn to_table(points: &[SpendSummary]) -> Table {
    let mut table = Table::new(vec![
        "network",
        "algorithm",
        "T",
        "trials",
        "mean",
        "ci95_lo",
        "ci95_hi",
        "A/T",
        "max bad frac",
        "purges",
        "guarantee",
    ]);
    for p in points {
        table.push(vec![
            p.network.clone(),
            p.algo.clone(),
            fmt_num(p.t),
            p.good_rate.n.to_string(),
            fmt_num(p.good_rate.mean),
            fmt_num(p.good_rate.ci95_lo),
            fmt_num(p.good_rate.ci95_hi),
            if p.t > 0.0 { fmt_num(p.good_rate.mean / p.t) } else { "-".into() },
            fmt_num(p.max_bad_fraction.mean),
            fmt_num(p.purges.mean),
            if p.guarantee { "ok".into() } else { "CUT".to_string() },
        ]);
    }
    table
}

/// The headline comparison: each baseline's spend relative to Ergo at the
/// largest attack, per network (the paper reports "up to 2 orders of
/// magnitude better", and 3 with the classifier). Ratios compare trial
/// means.
pub fn improvement_summary(points: &[SpendSummary]) -> Table {
    let mut table = Table::new(vec!["network", "baseline", "T", "A_baseline / A_ERGO"]);
    let t_max = points.iter().map(|p| p.t).fold(0.0, f64::max);
    for net in networks::all_networks() {
        let ergo_a = points
            .iter()
            .find(|p| p.network == net.name && p.algo == "ERGO" && p.t == t_max)
            .map(|p| p.good_rate.mean);
        let Some(ergo_a) = ergo_a else { continue };
        for p in points {
            if p.network == net.name && p.t == t_max && p.algo != "ERGO" {
                table.push(vec![
                    p.network.clone(),
                    p.algo.clone(),
                    fmt_num(p.t),
                    fmt_num(p.good_rate.mean / ergo_a),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_point, RunParams};

    #[test]
    fn roster_matches_figure8_legend() {
        let labels: Vec<String> = roster().iter().map(|a| a.label()).collect();
        assert_eq!(labels, vec!["ERGO", "CCOM", "SybilControl", "REMP-1e7", "ERGO-SF(98)"]);
    }

    #[test]
    fn mini_sweep_produces_expected_ordering() {
        // A single heavy-attack point per algorithm on Gnutella at reduced
        // horizon: Ergo must beat CCom, and REMP must be its flat constant.
        let net = networks::gnutella();
        let params = RunParams { horizon: 300.0, ..RunParams::default() };
        let t = 20_000.0;
        let ergo = run_point(&net, Algo::Ergo, t, params);
        let ccom = run_point(&net, Algo::CCom, t, params);
        let remp = run_point(&net, Algo::Remp(1e7), t, params);
        assert!(
            ergo.good_rate < ccom.good_rate,
            "ERGO {} vs CCOM {}",
            ergo.good_rate,
            ccom.good_rate
        );
        // REMP charges ~Tmax/κ regardless of T.
        assert!(remp.good_rate > 1e8, "REMP {}", remp.good_rate);
    }
}
