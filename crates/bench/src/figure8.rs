//! Experiment E1 — the paper's **Figure 8**: good spend rate `A` versus
//! adversary spend rate `T` for ERGO, CCOM, SybilControl, REMP-1e7, and
//! ERGO-SF(98), over the Bitcoin, BitTorrent, Gnutella, and Ethereum
//! workloads.
//!
//! Setup mirrors Section 10.1: κ = 1/18, `T ∈ 2⁰…2²⁰`, 10 000 simulated
//! seconds per point, adversary spending only on entrance challenges.
//!
//! Expected shape (paper): Ergo matches every baseline for `T ≥ 100` and
//! beats them by up to two orders of magnitude at large `T` (its `A` grows
//! like `√T`); ERGO-SF gains up to three orders; REMP is the flat constant
//! `(1−κ)·Tmax/κ ≈ 1.7·10⁸`; SybilControl's curve is cut once it can no
//! longer enforce a `< 1/6` bad fraction.

use crate::sweep::{
    default_workers, fast_mode, run_parallel, run_point, t_grid, Algo, RunParams, SpendPoint,
};
use crate::table::{fmt_num, Table};
use sybil_churn::networks;

/// The Figure 8 algorithm roster.
pub fn roster() -> Vec<Algo> {
    vec![Algo::Ergo, Algo::CCom, Algo::SybilControl, Algo::Remp(1e7), Algo::ErgoSf(0.98)]
}

/// Runs the full Figure 8 sweep and returns the measured points.
pub fn run() -> Vec<SpendPoint> {
    let (horizon, grid) =
        if fast_mode() { (500.0, vec![0.0, 16.0, 1024.0, 65_536.0]) } else { (10_000.0, t_grid()) };
    let networks = networks::all_networks();
    let mut jobs: Vec<Box<dyn FnOnce() -> SpendPoint + Send>> = Vec::new();
    for net in &networks {
        for algo in roster() {
            for &t in &grid {
                let net = *net;
                let params = RunParams { horizon, ..RunParams::default() };
                jobs.push(Box::new(move || run_point(&net, algo, t, params)));
            }
        }
    }
    run_parallel(jobs, default_workers())
}

/// Formats the points as the per-network series the paper plots.
pub fn to_table(points: &[SpendPoint]) -> Table {
    let mut table = Table::new(vec![
        "network",
        "algorithm",
        "T",
        "A (good spend rate)",
        "A/T",
        "max bad frac",
        "purges",
        "guarantee",
    ]);
    for p in points {
        table.push(vec![
            p.network.clone(),
            p.algo.clone(),
            fmt_num(p.t),
            fmt_num(p.good_rate),
            if p.t > 0.0 { fmt_num(p.good_rate / p.t) } else { "-".into() },
            fmt_num(p.max_bad_fraction),
            p.purges.to_string(),
            if p.guarantee { "ok".into() } else { "CUT".to_string() },
        ]);
    }
    table
}

/// The headline comparison: each baseline's spend relative to Ergo at the
/// largest attack, per network (the paper reports "up to 2 orders of
/// magnitude better", and 3 with the classifier).
pub fn improvement_summary(points: &[SpendPoint]) -> Table {
    let mut table = Table::new(vec!["network", "baseline", "T", "A_baseline / A_ERGO"]);
    let t_max = points.iter().map(|p| p.t).fold(0.0, f64::max);
    for net in networks::all_networks() {
        let ergo_a = points
            .iter()
            .find(|p| p.network == net.name && p.algo == "ERGO" && p.t == t_max)
            .map(|p| p.good_rate);
        let Some(ergo_a) = ergo_a else { continue };
        for p in points {
            if p.network == net.name && p.t == t_max && p.algo != "ERGO" {
                table.push(vec![
                    p.network.clone(),
                    p.algo.clone(),
                    fmt_num(p.t),
                    fmt_num(p.good_rate / ergo_a),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_figure8_legend() {
        let labels: Vec<String> = roster().iter().map(|a| a.label()).collect();
        assert_eq!(labels, vec!["ERGO", "CCOM", "SybilControl", "REMP-1e7", "ERGO-SF(98)"]);
    }

    #[test]
    fn mini_sweep_produces_expected_ordering() {
        // A single heavy-attack point per algorithm on Gnutella at reduced
        // horizon: Ergo must beat CCom, and REMP must be its flat constant.
        let net = networks::gnutella();
        let params = RunParams { horizon: 300.0, ..RunParams::default() };
        let t = 20_000.0;
        let ergo = run_point(&net, Algo::Ergo, t, params);
        let ccom = run_point(&net, Algo::CCom, t, params);
        let remp = run_point(&net, Algo::Remp(1e7), t, params);
        assert!(
            ergo.good_rate < ccom.good_rate,
            "ERGO {} vs CCOM {}",
            ergo.good_rate,
            ccom.good_rate
        );
        // REMP charges ~Tmax/κ regardless of T.
        assert!(remp.good_rate > 1e8, "REMP {}", remp.good_rate);
        let table = to_table(&[ergo, ccom, remp]);
        assert_eq!(table.len(), 3);
    }
}
