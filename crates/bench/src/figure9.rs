//! Experiment E2 — the paper's **Figure 9**: accuracy of GoodJEst.
//!
//! For each network, a persistent population of Sybil IDs is held at a
//! fixed fraction ∈ {1/1536, 1/384, 1/96, 1/24, 1/6} (the last exceeds the
//! theory's 1/6 bound on purpose, as in the paper), with and without an
//! additional injection attack affordable at `T = 10 000`. For every
//! GoodJEst interval we record the ratio of the estimate `J̃` to the true
//! good join rate over that interval.
//!
//! Cells run through the `sybil-exp` subsystem as a first-class
//! three-axis grid — `network × frac × T` declared as named
//! [`ExperimentSpec`] axes, not encoded into free-form id strings. (The
//! previous free-form scheme built ids via `label.replace('/', "of")`,
//! which aliased distinct fraction labels like `1/2` and `1of2` onto one
//! results-store key; canonical escaped axis ids make that collision
//! impossible.) Each cell runs [`trials`] workload seeds, each workload
//! materialized once in the disk cache and streamed into all ten
//! (fraction, T) cells of its network, the per-trial median ratio
//! aggregated into `mean, ci95_lo, ci95_hi`, and every finished cell
//! recorded in a resumable results store.
//!
//! Expected shape (paper Section 10.2): all ratios within `(0.08, 1.2)` for
//! `T = 0` and within `(0.08, 4)` under attack — i.e. the estimate is always
//! within about a factor of 10, usually much closer.

use crate::grid::default_cache_dir;
use crate::sweep::{default_workers, fast_mode};
use crate::table::{fmt_num, results_dir, Table};
use ergo_core::{Ergo, ErgoConfig};
use std::collections::HashMap;
use sybil_churn::model::ChurnModel;
use sybil_churn::networks;
use sybil_exp::spec::{Axis, CellSpec, AXIS_NETWORK, AXIS_T};
use sybil_exp::{ExperimentSpec, MetricSummary, Welford, WorkloadCache};
use sybil_sim::adversary::FractionKeeper;
use sybil_sim::engine::{SimConfig, Simulation};
use sybil_sim::time::Time;
use sybil_sim::workload::WorkloadSource;

/// The non-canonical axis of this grid: the persistent Sybil fraction.
pub const AXIS_FRAC: &str = "frac";

/// The persistent Sybil fractions on Figure 9's x-axis.
pub fn fractions() -> Vec<(String, f64)> {
    vec![
        ("1/1536".into(), 1.0 / 1536.0),
        ("1/384".into(), 1.0 / 384.0),
        ("1/96".into(), 1.0 / 96.0),
        ("1/24".into(), 1.0 / 24.0),
        ("1/6".into(), 1.0 / 6.0),
    ]
}

/// Independent trials per cell (see [`crate::grid::default_trials`]).
pub fn trials() -> u32 {
    crate::grid::default_trials()
}

/// One cell of the Figure 9 grid, aggregated over trials.
#[derive(Clone, Debug)]
pub struct EstimateQuality {
    /// Network name.
    pub network: String,
    /// Persistent Sybil fraction label.
    pub fraction: String,
    /// Injection spend rate (0 or 10 000).
    pub t: f64,
    /// Estimator intervals observed, summed over trials.
    pub intervals: usize,
    /// Minimum of `J̃ / true rate` across all trials' intervals.
    pub min_ratio: f64,
    /// Per-trial median ratio, aggregated over trials.
    pub median_ratio: MetricSummary,
    /// Maximum ratio across all trials' intervals.
    pub max_ratio: f64,
}

/// Raw per-trial measurements (one workload seed, one run).
#[derive(Clone, Debug)]
pub struct TrialQuality {
    /// Number of estimator intervals observed.
    pub intervals: usize,
    /// Minimum of `J̃ / true rate` over intervals.
    pub min_ratio: f64,
    /// Median ratio.
    pub median_ratio: f64,
    /// Maximum ratio.
    pub max_ratio: f64,
}

/// Runs one (workload, fraction, T) trial against any workload source.
pub fn run_trial<W: WorkloadSource>(
    workload: W,
    fraction: f64,
    t: f64,
    horizon: f64,
) -> TrialQuality {
    let n0 = workload.initial_size();
    let initial_bad = ((fraction / (1.0 - fraction)) * n0 as f64).round() as u64;
    let cfg = SimConfig {
        horizon: Time(horizon),
        // The experiment *fixes* the persistent fraction, so the purge cap
        // must allow retaining it (the paper's 1/6 case deliberately exceeds
        // the κ ≤ 1/18 theory regime).
        kappa: (fraction * 1.5).clamp(1.0 / 18.0, 0.5),
        adv_rate: t,
        initial_bad,
        record_good_joins: true,
        ..SimConfig::default()
    };
    let report = Simulation::new(
        cfg,
        Ergo::new(ErgoConfig::default()),
        FractionKeeper::new(fraction, t),
        workload,
    )
    .run();

    // True good join rate per estimator interval, via the recorded join times.
    let joins = &report.good_join_times;
    let mut ratios: Vec<f64> = Vec::new();
    for est in &report.estimates {
        let len = est.end - est.start;
        if len <= 0.0 {
            continue;
        }
        let lo = joins.partition_point(|&j| j < est.start);
        let hi = joins.partition_point(|&j| j < est.end);
        let true_rate = (hi - lo) as f64 / len;
        if true_rate > 0.0 {
            ratios.push(est.estimate / true_rate);
        }
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let (min, med, max) = if ratios.is_empty() {
        (f64::NAN, f64::NAN, f64::NAN)
    } else {
        (ratios[0], ratios[ratios.len() / 2], ratios[ratios.len() - 1])
    };
    TrialQuality { intervals: ratios.len(), min_ratio: min, median_ratio: med, max_ratio: max }
}

/// Runs one (network, fraction, T) cell with an in-memory workload — the
/// single-trial form the quick tests use.
pub fn run_cell(
    network: &ChurnModel,
    fraction: f64,
    t: f64,
    horizon: f64,
    seed: u64,
) -> TrialQuality {
    run_trial(network.generate(Time(horizon), seed), fraction, t, horizon)
}

/// Runs the full Figure 9 grid (multi-trial, cached workloads, resumable).
pub fn run() -> Vec<EstimateQuality> {
    let horizon = if fast_mode() { 5_000.0 } else { 100_000.0 };
    let (trials, base_seed) = (trials(), 11u64);
    let nets = networks::all_networks();
    let cache = WorkloadCache::open(default_cache_dir())
        .unwrap_or_else(|e| panic!("cannot open workload cache: {e}"));

    // The grid, declared axis by axis: the Sybil-fraction labels (which
    // contain `/`) are ordinary axis values — the canonical escaped cell
    // ids cannot alias, unlike the former free-form id strings.
    let spec = ExperimentSpec {
        name: "figure9".into(),
        axes: vec![
            Axis::strs(AXIS_NETWORK, nets.iter().map(|n| n.name.to_string())),
            Axis::strs(AXIS_FRAC, fractions().into_iter().map(|(label, _)| label)),
            Axis::floats(AXIS_T, [0.0, 10_000.0]),
        ],
        trials,
        horizon,
        // The effective purge cap is derived per cell from the fraction
        // (see run_trial); this is the base the derivation clamps to.
        kappa: SimConfig::default().kappa,
        seed: base_seed,
    };
    // The axes name networks and fractions by label; the fingerprint
    // context carries what those labels resolve to — churn-model
    // parameters, the label→fraction mapping, the defense config, and the
    // per-cell kappa derivation — so a code change re-runs the grid
    // instead of resuming stale cells.
    let context = format!(
        "fractions = {:?}\nnetworks = {nets:?}\ndefense = {:?}\n\
         kappa_rule = (fraction * 1.5).clamp(1/18, 0.5)\n",
        fractions(),
        ErgoConfig::default(),
    );
    let net_by_name: HashMap<String, &ChurnModel> =
        nets.iter().map(|n| (n.name.to_string(), n)).collect();
    let frac_by_label: HashMap<String, f64> = fractions().into_iter().collect();

    let cache_ref = &cache;
    let outcome = sybil_exp::run_spec_grid(
        &spec,
        &context,
        &results_dir(),
        Some(cache_ref),
        default_workers(),
        |cell: &CellSpec| {
            let net = net_by_name[cell.str_value(AXIS_NETWORK)];
            let fraction = frac_by_label[cell.str_value(AXIS_FRAC)];
            let t = cell.f64_value(AXIS_T);
            let mut intervals = 0usize;
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut medians = Welford::new();
            for trial in 0..spec.trials {
                let wseed = spec.workload_seed(trial);
                let disk = cache_ref
                    .get_or_create(net, Time(horizon), wseed)
                    .unwrap_or_else(|e| panic!("workload cache failed: {e}"));
                let q = run_trial(disk, fraction, t, horizon);
                intervals += q.intervals;
                if q.intervals > 0 {
                    min = min.min(q.min_ratio);
                    max = max.max(q.max_ratio);
                    medians.push(q.median_ratio);
                }
            }
            let med = medians.summary();
            vec![
                // Trials that actually contributed a median: a trial with
                // zero completed estimator intervals is absent from the
                // accumulator, and the CSV must not overstate the sample
                // size behind the confidence interval.
                ("trials".into(), medians.count() as f64),
                ("intervals".into(), intervals as f64),
                ("min_ratio".into(), if min.is_finite() { min } else { f64::NAN }),
                ("median_mean".into(), med.mean),
                ("median_ci95_lo".into(), med.ci95_lo),
                ("median_ci95_hi".into(), med.ci95_hi),
                ("max_ratio".into(), if max.is_finite() { max } else { f64::NAN }),
            ]
        },
    )
    .unwrap_or_else(|e| panic!("figure9 experiment failed: {e}"));
    eprint!("{}", outcome.summary.render());

    let mut rows = Vec::new();
    let mut records = outcome.records.iter();
    for net in &nets {
        for (label, _) in fractions() {
            for t in [0.0, 10_000.0] {
                // Quarantined cell → None → NaN → blank cells downstream.
                let r = records.next().expect("record slot per cell").as_ref();
                let get = |name: &str| r.and_then(|r| r.get(name)).unwrap_or(f64::NAN);
                rows.push(EstimateQuality {
                    network: net.name.to_string(),
                    fraction: label.clone(),
                    t,
                    intervals: get("intervals") as usize,
                    min_ratio: get("min_ratio"),
                    median_ratio: MetricSummary {
                        n: get("trials") as u64,
                        mean: get("median_mean"),
                        ci95_lo: get("median_ci95_lo"),
                        ci95_hi: get("median_ci95_hi"),
                    },
                    max_ratio: get("max_ratio"),
                });
            }
        }
    }
    rows
}

/// Formats the grid as the paper's per-panel series with trial means and
/// 95 % confidence bounds for the median ratio.
pub fn to_table(cells: &[EstimateQuality]) -> Table {
    let mut table = Table::new(vec![
        "network",
        "bad fraction",
        "T",
        "trials",
        "intervals",
        "min est/true",
        "mean",
        "ci95_lo",
        "ci95_hi",
        "max est/true",
    ]);
    for c in cells {
        table.push(vec![
            c.network.clone(),
            c.fraction.clone(),
            fmt_num(c.t),
            c.median_ratio.n.to_string(),
            c.intervals.to_string(),
            fmt_num(c.min_ratio),
            fmt_num(c.median_ratio.mean),
            fmt_num(c.median_ratio.ci95_lo),
            fmt_num(c.median_ratio.ci95_hi),
            fmt_num(c.max_ratio),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_grid_matches_paper_axis() {
        let f = fractions();
        assert_eq!(f.len(), 5);
        assert_eq!(f[0].0, "1/1536");
        assert_eq!(f[4].0, "1/6");
    }

    /// Regression for the store-key aliasing bug: fraction labels contain
    /// `/`, and the old free-form ids (`label.replace('/', "of")`) mapped
    /// distinct labels like `1/2` and `1of2` onto one key. Canonical axis
    /// ids must keep every label distinct and store-safe.
    #[test]
    fn fraction_labels_cannot_alias_in_cell_ids() {
        use sybil_exp::spec::AxisValue;
        let cell = |label: &str| {
            CellSpec::new(vec![
                (AXIS_NETWORK.into(), AxisValue::Str("gnutella".into())),
                (AXIS_FRAC.into(), AxisValue::Str(label.into())),
                (AXIS_T.into(), AxisValue::F64(10_000.0)),
            ])
        };
        assert_ne!(cell("1/2").id(), cell("1of2").id());
        assert_eq!(cell("1/2").id(), "network=gnutella/frac=1%2f2/T=10000");
        for (label, _) in fractions() {
            let id = cell(&label).id();
            assert!(!id.chars().any(char::is_whitespace), "{id}");
        }
    }

    #[test]
    fn estimates_are_within_factor_ten_on_gnutella() {
        // A reduced-horizon version of the paper's claim: GoodJEst stays
        // within a factor of 10 of the true good join rate.
        let cell = run_cell(&networks::gnutella(), 1.0 / 96.0, 0.0, 20_000.0, 3);
        assert!(cell.intervals > 0, "no intervals completed");
        assert!(
            cell.min_ratio > 0.05 && cell.max_ratio < 20.0,
            "ratios [{}, {}] outside plausible band",
            cell.min_ratio,
            cell.max_ratio
        );
    }

    #[test]
    fn disk_and_memory_trials_agree() {
        use sybil_sim::workload_io::{write_workload_file, DiskWorkload};
        let net = networks::gnutella();
        let horizon = 5_000.0;
        let workload = net.generate(Time(horizon), 17);
        let path = std::env::temp_dir().join(format!("sybil_fig9_eq_{}.wkld", std::process::id()));
        write_workload_file(&path, &workload).unwrap();
        let mem = run_trial(workload, 1.0 / 96.0, 0.0, horizon);
        let disk = run_trial(DiskWorkload::open(&path).unwrap(), 1.0 / 96.0, 0.0, horizon);
        assert_eq!(mem.intervals, disk.intervals);
        assert_eq!(mem.median_ratio.to_bits(), disk.median_ratio.to_bits());
        std::fs::remove_file(&path).ok();
    }
}
