//! Experiment E2 — the paper's **Figure 9**: accuracy of GoodJEst.
//!
//! For each network, a persistent population of Sybil IDs is held at a
//! fixed fraction ∈ {1/1536, 1/384, 1/96, 1/24, 1/6} (the last exceeds the
//! theory's 1/6 bound on purpose, as in the paper), with and without an
//! additional injection attack affordable at `T = 10 000`. For every
//! GoodJEst interval we record the ratio of the estimate `J̃` to the true
//! good join rate over that interval.
//!
//! Expected shape (paper Section 10.2): all ratios within `(0.08, 1.2)` for
//! `T = 0` and within `(0.08, 4)` under attack — i.e. the estimate is always
//! within about a factor of 10, usually much closer.

use crate::sweep::{default_workers, fast_mode, run_parallel};
use crate::table::{fmt_num, Table};
use ergo_core::{Ergo, ErgoConfig};
use sybil_churn::model::ChurnModel;
use sybil_churn::networks;
use sybil_sim::adversary::FractionKeeper;
use sybil_sim::engine::{SimConfig, Simulation};
use sybil_sim::time::Time;

/// The persistent Sybil fractions on Figure 9's x-axis.
pub fn fractions() -> Vec<(String, f64)> {
    vec![
        ("1/1536".into(), 1.0 / 1536.0),
        ("1/384".into(), 1.0 / 384.0),
        ("1/96".into(), 1.0 / 96.0),
        ("1/24".into(), 1.0 / 24.0),
        ("1/6".into(), 1.0 / 6.0),
    ]
}

/// One cell of the Figure 9 grid.
#[derive(Clone, Debug)]
pub struct EstimateQuality {
    /// Network name.
    pub network: String,
    /// Persistent Sybil fraction label.
    pub fraction: String,
    /// Injection spend rate (0 or 10 000).
    pub t: f64,
    /// Number of estimator intervals observed.
    pub intervals: usize,
    /// Minimum of `J̃ / true rate` over intervals.
    pub min_ratio: f64,
    /// Median ratio.
    pub median_ratio: f64,
    /// Maximum ratio.
    pub max_ratio: f64,
}

/// Runs one (network, fraction, T) cell.
pub fn run_cell(
    network: &ChurnModel,
    fraction: f64,
    t: f64,
    horizon: f64,
    seed: u64,
) -> EstimateQuality {
    let workload = network.generate(Time(horizon), seed);
    let n0 = workload.initial_size();
    let initial_bad = ((fraction / (1.0 - fraction)) * n0 as f64).round() as u64;
    let cfg = SimConfig {
        horizon: Time(horizon),
        // The experiment *fixes* the persistent fraction, so the purge cap
        // must allow retaining it (the paper's 1/6 case deliberately exceeds
        // the κ ≤ 1/18 theory regime).
        kappa: (fraction * 1.5).clamp(1.0 / 18.0, 0.5),
        adv_rate: t,
        initial_bad,
        record_good_joins: true,
        ..SimConfig::default()
    };
    let report = Simulation::new(
        cfg,
        Ergo::new(ErgoConfig::default()),
        FractionKeeper::new(fraction, t),
        workload,
    )
    .run();

    // True good join rate per estimator interval, via the recorded join times.
    let joins = &report.good_join_times;
    let mut ratios: Vec<f64> = Vec::new();
    for est in &report.estimates {
        let len = est.end - est.start;
        if len <= 0.0 {
            continue;
        }
        let lo = joins.partition_point(|&j| j < est.start);
        let hi = joins.partition_point(|&j| j < est.end);
        let true_rate = (hi - lo) as f64 / len;
        if true_rate > 0.0 {
            ratios.push(est.estimate / true_rate);
        }
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let (min, med, max) = if ratios.is_empty() {
        (f64::NAN, f64::NAN, f64::NAN)
    } else {
        (ratios[0], ratios[ratios.len() / 2], ratios[ratios.len() - 1])
    };
    EstimateQuality {
        network: network.name.to_string(),
        fraction: String::new(),
        t,
        intervals: ratios.len(),
        min_ratio: min,
        median_ratio: med,
        max_ratio: max,
    }
}

/// Runs the full Figure 9 grid.
pub fn run() -> Vec<EstimateQuality> {
    let horizon = if fast_mode() { 5_000.0 } else { 100_000.0 };
    let mut jobs: Vec<Box<dyn FnOnce() -> EstimateQuality + Send>> = Vec::new();
    for net in networks::all_networks() {
        for (label, fraction) in fractions() {
            for t in [0.0, 10_000.0] {
                let label = label.clone();
                jobs.push(Box::new(move || {
                    let mut cell = run_cell(&net, fraction, t, horizon, 11);
                    cell.fraction = label;
                    cell
                }));
            }
        }
    }
    run_parallel(jobs, default_workers())
}

/// Formats the grid as the paper's per-panel series.
pub fn to_table(cells: &[EstimateQuality]) -> Table {
    let mut table = Table::new(vec![
        "network",
        "bad fraction",
        "T",
        "intervals",
        "min est/true",
        "median est/true",
        "max est/true",
    ]);
    for c in cells {
        table.push(vec![
            c.network.clone(),
            c.fraction.clone(),
            fmt_num(c.t),
            c.intervals.to_string(),
            fmt_num(c.min_ratio),
            fmt_num(c.median_ratio),
            fmt_num(c.max_ratio),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_grid_matches_paper_axis() {
        let f = fractions();
        assert_eq!(f.len(), 5);
        assert_eq!(f[0].0, "1/1536");
        assert_eq!(f[4].0, "1/6");
    }

    #[test]
    fn estimates_are_within_factor_ten_on_gnutella() {
        // A reduced-horizon version of the paper's claim: GoodJEst stays
        // within a factor of 10 of the true good join rate.
        let mut cell = run_cell(&networks::gnutella(), 1.0 / 96.0, 0.0, 20_000.0, 3);
        cell.fraction = "1/96".into();
        assert!(cell.intervals > 0, "no intervals completed");
        assert!(
            cell.min_ratio > 0.05 && cell.max_ratio < 20.0,
            "ratios [{}, {}] outside plausible band",
            cell.min_ratio,
            cell.max_ratio
        );
    }
}
