//! Multi-trial spend-rate grids on the `sybil-exp` orchestration
//! subsystem.
//!
//! [`run_spend_grid`] is the engine behind Figures 8 and 10 (and the
//! million-ID variant): it builds a declarative
//! [`ExperimentSpec`], materializes each trial's workload once through the
//! content-addressed [`WorkloadCache`], replays it disk-streamed into
//! every (algorithm, T) cell, aggregates the trials through streaming
//! Welford accumulators into `mean, ci95_lo, ci95_hi` triples, and records
//! each finished cell in a resumable results store next to the CSVs.

use crate::sweep::{default_workers, run_report_with, Algo};
use crate::table::results_dir;
use std::collections::HashMap;
use std::path::PathBuf;
use sybil_churn::model::ChurnModel;
use sybil_exp::runner::RunSummary;
use sybil_exp::spec::{CellSpec, AXIS_ALGO, AXIS_NETWORK, AXIS_T};
use sybil_exp::{
    default_shards, shard_budget, ExperimentSpec, MetricSummary, Welford, WorkloadCache,
};
use sybil_sim::engine::SimConfig;
use sybil_sim::time::Time;
use sybil_sim::ShardedWorkload;

/// One aggregated cell of a spend-rate grid: per-metric trial statistics.
#[derive(Clone, Debug)]
pub struct SpendSummary {
    /// Network name.
    pub network: String,
    /// Algorithm label.
    pub algo: String,
    /// Configured adversary spend rate `T`.
    pub t: f64,
    /// Good spend rate `A` over trials.
    pub good_rate: MetricSummary,
    /// Measured adversary spend rate over trials.
    pub adv_rate: MetricSummary,
    /// Maximum instantaneous Sybil fraction over trials.
    pub max_bad_fraction: MetricSummary,
    /// Purges executed over trials.
    pub purges: MetricSummary,
    /// Whether the algorithm's guarantee covers this `T` (curve cutoff).
    pub guarantee: bool,
}

/// The four metrics every spend cell records, in store-field order.
const METRICS: [&str; 4] = ["good_rate", "adv_rate", "max_bad_fraction", "purges"];

fn summary_fields(trials: u64, summaries: &[(&str, MetricSummary)]) -> Vec<(String, f64)> {
    let mut fields = vec![("trials".to_string(), trials as f64)];
    for (name, s) in summaries {
        fields.extend(s.fields(name));
    }
    fields
}

/// The trial count every figure experiment shares: 5 independent workload
/// seeds per cell at paper scale, 2 in `SYBIL_BENCH_FAST` smoke mode.
pub fn default_trials() -> u32 {
    if crate::sweep::fast_mode() {
        2
    } else {
        5
    }
}

/// The cache directory the figure drivers share:
/// `SYBIL_EXP_CACHE_DIR` if set, else `target/workload_cache` under the
/// repo root (cache entries are derived artifacts, never committed).
pub fn default_cache_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("SYBIL_EXP_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    let raw = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    raw.canonicalize().unwrap_or(raw).join("target").join("workload_cache")
}

/// Runs a multi-trial (networks × roster × T) spend grid.
///
/// Every cell replays the same `trials` workloads (one per trial seed,
/// shared grid-wide through the cache) and aggregates its
/// [`SimReport`](sybil_sim::SimReport)s into t-based 95 % confidence
/// intervals. Finished cells land in `results/<name>.store`; re-running
/// the same spec resumes, skipping them. The run summary (resume counts,
/// cache behavior, pool efficiency) is printed to stderr.
///
/// # Panics
///
/// Panics if the cache or store directories are unusable, or if a label
/// in `roster`/`nets` is not unique — cells would alias in the store.
///
/// Cell simulations replay through [`default_shards`] engine shards
/// (`SYBIL_BENCH_SHARDS` override, 1 otherwise); see
/// [`run_spend_grid_sharded`] for the explicit-shard-count form and the
/// worker-budget interaction.
pub fn run_spend_grid(
    name: &str,
    nets: &[ChurnModel],
    roster: &[Algo],
    t_grid: &[f64],
    trials: u32,
    horizon: f64,
    base_seed: u64,
) -> (Vec<SpendSummary>, RunSummary) {
    run_spend_grid_sharded(name, nets, roster, t_grid, trials, horizon, base_seed, default_shards())
}

/// [`run_spend_grid`] with an explicit per-cell shard count.
///
/// Each cell's simulation replays its cached workload through `shards`
/// shared-nothing engine shards ([`ShardedWorkload`]); the outer cell
/// pool is shrunk by [`shard_budget`] so the total thread count stays
/// within the worker budget instead of multiplying by `shards`.
///
/// The shard count is deliberately **not** part of the experiment spec or
/// its fingerprint context: the sharded engine is bit-identical to the
/// monolithic one, so stores written at any shard count resume at any
/// other. `shards = 1` replays through the plain disk stream (no
/// merged-loop indirection) — the pre-sharding code path, byte for byte.
#[allow(clippy::too_many_arguments)]
pub fn run_spend_grid_sharded(
    name: &str,
    nets: &[ChurnModel],
    roster: &[Algo],
    t_grid: &[f64],
    trials: u32,
    horizon: f64,
    base_seed: u64,
    shards: usize,
) -> (Vec<SpendSummary>, RunSummary) {
    let net_by_name: HashMap<String, &ChurnModel> =
        nets.iter().map(|n| (n.name.to_string(), n)).collect();
    let algo_by_label: HashMap<String, Algo> = roster.iter().map(|a| (a.label(), *a)).collect();
    assert_eq!(net_by_name.len(), nets.len(), "duplicate network names in {name}");
    assert_eq!(algo_by_label.len(), roster.len(), "duplicate algorithm labels in {name}");
    for &t in t_grid {
        // Spec validation only guarantees finiteness (axes are generic);
        // a spend rate is additionally a rate, so pin the domain here
        // before anything lands in a durable store.
        assert!(t >= 0.0, "{name}: spend rate {t} must be non-negative");
    }

    let spec = ExperimentSpec::three_axis(
        name,
        nets.iter().map(|n| n.name.to_string()).collect(),
        roster.iter().map(|a| a.label()).collect(),
        t_grid.to_vec(),
        trials,
        horizon,
        sybil_sim::SimConfig::default().kappa,
        base_seed,
    );
    let cache = WorkloadCache::open(default_cache_dir())
        .unwrap_or_else(|e| panic!("cannot open workload cache: {e}"));

    let run_cell = |cell: &CellSpec| -> Vec<(String, f64)> {
        let net = net_by_name[cell.str_value(AXIS_NETWORK)];
        let algo = algo_by_label[cell.str_value(AXIS_ALGO)];
        let t = cell.f64_value(AXIS_T);
        let mut acc: [Welford; 4] = [Welford::new(); 4];
        for trial in 0..spec.trials {
            let wseed = spec.workload_seed(trial);
            let disk = cache
                .get_or_create(net, Time(spec.horizon), wseed)
                .unwrap_or_else(|e| panic!("workload cache failed for {}: {e}", cell.id()));
            let cfg = SimConfig {
                horizon: Time(spec.horizon),
                kappa: spec.kappa,
                adv_rate: t,
                ..SimConfig::default()
            };
            let report = if shards == 1 {
                run_report_with(cfg, algo, t, spec.defense_seed(trial), disk)
            } else {
                let source = ShardedWorkload::from_disk(disk, shards);
                run_report_with(cfg, algo, t, spec.defense_seed(trial), source)
            };
            acc[0].push(report.good_spend_rate());
            acc[1].push(report.adv_spend_rate());
            acc[2].push(report.max_bad_fraction);
            acc[3].push(report.purges as f64);
        }
        let summaries: Vec<(&str, MetricSummary)> =
            METRICS.iter().zip(acc.iter()).map(|(&m, w)| (m, w.summary())).collect();
        summary_fields(spec.trials as u64, &summaries)
    };

    // The spec names networks/algorithms by label; the fingerprint context
    // carries what those labels currently *mean*: full churn-model
    // parameters, the roster variants, and the default defense configs
    // `Algo::dispatch` resolves them against — so editing a model, a
    // roster entry, or a defense constant in code invalidates stored
    // cells instead of silently resuming them.
    let context = {
        use ergo_core::params::{ErgoConfig, Heuristics};
        // Every named config constructor `Algo::dispatch` can reach (see
        // sybil_defenses::variants): the classifier gate's remaining
        // inputs — accuracy and seed — are already covered by the roster
        // Debug form and the spec seed.
        format!(
            "networks = {nets:?}\nroster = {roster:?}\nergo = {:?}\nccom = {:?}\n\
             ch1 = {:?}\nch2 = {:?}\nsybilcontrol = {:?}\nremp = {:?}\n",
            ErgoConfig::default(),
            ErgoConfig::ccom(),
            ErgoConfig::with_heuristics(Heuristics::ch1()),
            ErgoConfig::with_heuristics(Heuristics::ch2()),
            sybil_defenses::SybilControl::default(),
            sybil_defenses::RempConfig::default(),
        )
    };
    let outcome = sybil_exp::run_spec_grid(
        &spec,
        &context,
        &results_dir(),
        Some(&cache),
        shard_budget(default_workers(), shards),
        run_cell,
    )
    .unwrap_or_else(|e| panic!("experiment {name} failed: {e}"));
    eprint!("{}", outcome.summary.render());

    let rows = spec
        .cells()
        .iter()
        .zip(&outcome.records)
        .map(|(cell, record)| {
            // A quarantined cell is `None`: its summaries go NaN, which
            // the table/CSV renderers show as blank cells.
            let record = record.as_ref();
            let trials = record.and_then(|r| r.get("trials")).unwrap_or(f64::NAN) as u64;
            let network = cell.str_value(AXIS_NETWORK);
            let algo_label = cell.str_value(AXIS_ALGO);
            let t = cell.f64_value(AXIS_T);
            let algo = algo_by_label[algo_label];
            SpendSummary {
                network: network.to_string(),
                algo: algo_label.to_string(),
                t,
                good_rate: MetricSummary::from_record_opt(record, "good_rate", trials),
                adv_rate: MetricSummary::from_record_opt(record, "adv_rate", trials),
                max_bad_fraction: MetricSummary::from_record_opt(
                    record,
                    "max_bad_fraction",
                    trials,
                ),
                purges: MetricSummary::from_record_opt(record, "purges", trials),
                guarantee: algo.guarantee_covers(t, net_by_name[network].initial_size),
            }
        })
        .collect();
    (rows, outcome.summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sybil_churn::networks;

    #[test]
    fn tiny_grid_end_to_end_with_resume() {
        // A 1-network × 2-algo × 2-T grid with 2 trials, isolated cache and
        // store dirs via env override is not possible per-test (process
        // global), so use a uniquely named experiment in the shared dirs.
        let name = format!("grid-test-{}", std::process::id());
        let net = networks::gnutella();
        let roster = [Algo::Ergo, Algo::CCom];
        let (rows, summary) = run_spend_grid(&name, &[net], &roster, &[0.0, 64.0], 2, 50.0, 5);
        assert_eq!(rows.len(), 4);
        assert_eq!(summary.cells_executed, 4);
        for row in &rows {
            assert_eq!(row.good_rate.n, 2);
            assert!(row.good_rate.mean > 0.0);
            assert!(
                row.good_rate.ci95_lo <= row.good_rate.mean
                    && row.good_rate.mean <= row.good_rate.ci95_hi
            );
        }
        // Warm re-run: all cells resume from the store, bit-identically.
        let (rows2, summary2) =
            run_spend_grid(&name, &[networks::gnutella()], &roster, &[0.0, 64.0], 2, 50.0, 5);
        assert_eq!(summary2.cells_executed, 0);
        assert_eq!(summary2.cells_skipped, 4);
        for (a, b) in rows.iter().zip(&rows2) {
            assert_eq!(a.good_rate.mean.to_bits(), b.good_rate.mean.to_bits());
            assert_eq!(a.purges.mean.to_bits(), b.purges.mean.to_bits());
        }
        // Clean up this test's store artifacts.
        std::fs::remove_file(results_dir().join(format!("{name}.store"))).ok();
        std::fs::remove_file(results_dir().join(format!("{name}.spec"))).ok();
    }

    /// The shard count must be invisible to the results layer: a store
    /// written by a sharded grid resumes (all cells skipped) under the
    /// plain grid, and a fresh sharded grid computes bit-identical
    /// metrics to a fresh unsharded one.
    #[test]
    fn sharded_grid_shares_stores_and_bits_with_the_plain_grid() {
        let name = format!("grid-shard-test-{}", std::process::id());
        let ref_name = format!("{name}-ref");
        let net = networks::gnutella();
        let roster = [Algo::Ergo];
        let t_grid = [0.0, 64.0];
        let nets = std::slice::from_ref(&net);
        let (sharded_rows, cold) =
            run_spend_grid_sharded(&name, nets, &roster, &t_grid, 2, 50.0, 5, 3);
        assert_eq!(cold.cells_executed, 2);
        // Plain warm run against the sharded store: identical cell keys
        // and spec fingerprint, so everything resumes.
        let (warm_rows, warm) = run_spend_grid(&name, nets, &roster, &t_grid, 2, 50.0, 5);
        assert_eq!(warm.cells_executed, 0, "plain grid must resume the sharded store");
        assert_eq!(warm.cells_skipped, 2);
        // Plain cold run under a fresh name: the computed (not resumed)
        // metrics must be bit-identical to the sharded computation.
        let (plain_rows, _) = run_spend_grid(&ref_name, &[net], &roster, &t_grid, 2, 50.0, 5);
        for ((a, b), c) in sharded_rows.iter().zip(&warm_rows).zip(&plain_rows) {
            for (x, y) in [(a, b), (a, c)] {
                assert_eq!(x.good_rate.mean.to_bits(), y.good_rate.mean.to_bits());
                assert_eq!(x.adv_rate.mean.to_bits(), y.adv_rate.mean.to_bits());
                assert_eq!(x.max_bad_fraction.mean.to_bits(), y.max_bad_fraction.mean.to_bits());
                assert_eq!(x.purges.mean.to_bits(), y.purges.mean.to_bits());
            }
        }
        for n in [&name, &ref_name] {
            std::fs::remove_file(results_dir().join(format!("{n}.store"))).ok();
            std::fs::remove_file(results_dir().join(format!("{n}.spec"))).ok();
        }
    }
}
