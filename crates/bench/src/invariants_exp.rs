//! Experiment E6 — validating Theorem 1's two guarantees beyond the plotted
//! figures:
//!
//! 1. **Invariant** (Lemma 9): the Sybil fraction stays below `3κ ≤ 1/6`
//!    against *every* adversary strategy — steady joiners, savers that burst,
//!    churn-forcers (join/depart cycles), and purge-survivors that pay to
//!    retain the full κ-fraction at every purge.
//! 2. **Scaling**: Ergo's good spend rate grows like `√T` — we fit the
//!    log-log slope of `A(T)` over the attack regime and expect ≈ 0.5
//!    (CCom's, for contrast, is ≈ 1).

use crate::sweep::{default_workers, fast_mode, run_parallel, Algo, RunParams};
use crate::table::{fmt_num, Table};
use ergo_core::{Ergo, ErgoConfig};
use sybil_churn::model::ChurnModel;
use sybil_churn::networks;
use sybil_sim::adversary::{BudgetJoiner, BurstJoiner, ChurnForcer, PurgeSurvivor};
use sybil_sim::engine::{SimConfig, Simulation};
use sybil_sim::time::Time;
use sybil_sim::SimReport;

/// Adversary strategies exercised by the invariant sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Steady entrance-cost spender (the Figure 8 adversary).
    Budget,
    /// Saves budget, bursts every 60 s (stress-tests β-burstiness handling).
    Burst,
    /// Join-and-depart cycles to force purges.
    ChurnForce,
    /// Pays to retain the κ-fraction cap at every purge (Lemma 9 worst case).
    PurgeSurvive,
}

impl Strategy {
    /// All strategies.
    pub fn all() -> Vec<Strategy> {
        vec![Strategy::Budget, Strategy::Burst, Strategy::ChurnForce, Strategy::PurgeSurvive]
    }

    /// Label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Budget => "budget-joiner",
            Strategy::Burst => "burst-joiner",
            Strategy::ChurnForce => "churn-forcer",
            Strategy::PurgeSurvive => "purge-survivor",
        }
    }

    fn run(&self, network: &ChurnModel, t: f64, horizon: f64, seed: u64) -> SimReport {
        let workload = network.generate(Time(horizon), seed);
        let cfg = SimConfig { horizon: Time(horizon), adv_rate: t, ..SimConfig::default() };
        let ergo = Ergo::new(ErgoConfig::default());
        match self {
            Strategy::Budget => Simulation::new(cfg, ergo, BudgetJoiner::new(t), workload).run(),
            Strategy::Burst => {
                Simulation::new(cfg, ergo, BurstJoiner::new(t, 60.0), workload).run()
            }
            Strategy::ChurnForce => Simulation::new(cfg, ergo, ChurnForcer::new(t), workload).run(),
            Strategy::PurgeSurvive => {
                Simulation::new(cfg, ergo, PurgeSurvivor::new(t), workload).run()
            }
        }
    }
}

/// One invariant-sweep row.
#[derive(Clone, Debug)]
pub struct InvariantOutcome {
    /// Network.
    pub network: String,
    /// Strategy label.
    pub strategy: &'static str,
    /// Adversary spend rate.
    pub t: f64,
    /// Maximum instantaneous Sybil fraction.
    pub max_bad_fraction: f64,
    /// The Lemma 9 bound `3κ = 1/6`.
    pub bound: f64,
    /// Whether the invariant held throughout.
    pub held: bool,
    /// Good spend rate.
    pub good_rate: f64,
}

/// Runs the invariant sweep.
pub fn run_invariants() -> Vec<InvariantOutcome> {
    let horizon = if fast_mode() { 300.0 } else { 5_000.0 };
    let t_values = if fast_mode() { vec![1e3] } else { vec![1e2, 1e4, 1e6] };
    let bound = 1.0 / 6.0;
    let mut jobs: Vec<Box<dyn FnOnce() -> InvariantOutcome + Send>> = Vec::new();
    for net in [networks::gnutella(), networks::ethereum()] {
        for strat in Strategy::all() {
            for &t in &t_values {
                jobs.push(Box::new(move || {
                    let r = strat.run(&net, t, horizon, 23);
                    InvariantOutcome {
                        network: net.name.to_string(),
                        strategy: strat.label(),
                        t,
                        max_bad_fraction: r.max_bad_fraction,
                        bound,
                        held: r.max_bad_fraction < bound,
                        good_rate: r.good_spend_rate(),
                    }
                }));
            }
        }
    }
    run_parallel(jobs, default_workers())
}

/// Log-log slope fit of `A(T)` for an algorithm over the attack regime.
#[derive(Clone, Debug)]
pub struct ScalingFit {
    /// Network.
    pub network: String,
    /// Algorithm label.
    pub algo: String,
    /// Fitted exponent of `A ∝ T^e`.
    pub exponent: f64,
    /// Points used in the fit.
    pub points: usize,
}

/// Fits the spend-rate scaling exponents for Ergo and CCom (Theorem 1 says
/// ≈ 0.5 for Ergo; CCom's `O(T+J)` gives ≈ 1).
pub fn run_scaling() -> Vec<ScalingFit> {
    let horizon = if fast_mode() { 500.0 } else { 10_000.0 };
    let exponents: Vec<u32> =
        if fast_mode() { vec![12, 14, 16] } else { vec![10, 12, 14, 16, 18, 20] };
    let mut jobs: Vec<Box<dyn FnOnce() -> ScalingFit + Send>> = Vec::new();
    for net in [networks::gnutella(), networks::bittorrent()] {
        for algo in [Algo::Ergo, Algo::CCom] {
            let ts: Vec<f64> = exponents.iter().map(|&e| (1u64 << e) as f64).collect();
            jobs.push(Box::new(move || {
                let params = RunParams { horizon, ..RunParams::default() };
                let pts: Vec<(f64, f64)> = ts
                    .iter()
                    .map(|&t| {
                        let p = crate::sweep::run_point(&net, algo, t, params);
                        (t.ln(), p.good_rate.max(1e-12).ln())
                    })
                    .collect();
                ScalingFit {
                    network: net.name.to_string(),
                    algo: algo.label(),
                    exponent: slope(&pts),
                    points: pts.len(),
                }
            }));
        }
    }
    run_parallel(jobs, default_workers())
}

/// Least-squares slope of `(x, y)` pairs.
fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Formats the invariant sweep.
pub fn invariants_table(outcomes: &[InvariantOutcome]) -> Table {
    let mut table =
        Table::new(vec!["network", "adversary", "T", "max bad frac", "bound (3k)", "held", "A"]);
    for o in outcomes {
        table.push(vec![
            o.network.clone(),
            o.strategy.to_string(),
            fmt_num(o.t),
            fmt_num(o.max_bad_fraction),
            fmt_num(o.bound),
            if o.held { "yes".into() } else { "VIOLATED".to_string() },
            fmt_num(o.good_rate),
        ]);
    }
    table
}

/// Formats the scaling fits.
pub fn scaling_table(fits: &[ScalingFit]) -> Table {
    let mut table = Table::new(vec!["network", "algorithm", "A~T^e fit", "points", "theory"]);
    for f in fits {
        let theory = if f.algo == "ERGO" { "0.5 (Thm 1)" } else { "1.0 (O(T+J))" };
        table.push(vec![
            f.network.clone(),
            f.algo.clone(),
            fmt_num(f.exponent),
            f.points.to_string(),
            theory.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_line_is_exact() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 + 0.5 * i as f64)).collect();
        assert!((slope(&pts) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invariant_holds_for_all_strategies_small() {
        for strat in Strategy::all() {
            let r = strat.run(&networks::gnutella(), 2_000.0, 200.0, 29);
            assert!(
                r.max_bad_fraction < 1.0 / 6.0,
                "{}: fraction {}",
                strat.label(),
                r.max_bad_fraction
            );
        }
    }

    #[test]
    fn purge_survivor_pays_purge_costs() {
        let r = Strategy::PurgeSurvive.run(&networks::gnutella(), 5_000.0, 200.0, 31);
        assert!(r.ledger.adversary_purge().value() > 0.0);
        // Still bounded, despite retention at the cap.
        assert!(r.max_bad_fraction < 1.0 / 6.0, "{}", r.max_bad_fraction);
    }
}
