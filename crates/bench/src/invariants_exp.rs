//! Experiment E6 — validating Theorem 1's two guarantees beyond the plotted
//! figures:
//!
//! 1. **Invariant** (Lemma 9): the Sybil fraction stays below `3κ ≤ 1/6`
//!    against *every* adversary strategy — steady joiners, savers that burst,
//!    churn-forcers (join/depart cycles), and purge-survivors that pay to
//!    retain the full κ-fraction at every purge.
//! 2. **Scaling**: Ergo's good spend rate grows like `√T` — we fit the
//!    log-log slope of `A(T)` per trial and report the fitted exponent with
//!    a 95 % confidence interval; Theorem 1 says ≈ 0.5 for Ergo (CCom's,
//!    for contrast, is ≈ 1).
//!
//! Both sweeps run through the `sybil-exp` subsystem: the adversary
//! strategy is a first-class named axis ([`AXIS_STRATEGY`]) whose values
//! are registry names resolved per cell via
//! [`sybil_sim::adversary::build_strategy`], workloads are materialized
//! once per trial in the content-addressed disk cache and streamed into
//! every cell, each cell aggregates its trials into `mean, ci95_lo,
//! ci95_hi`, and finished cells land in a resumable results store.
//! [`run_invariant_grid`] is the shared engine: the paper-scale
//! [`run_invariants`], the 10⁶-ID [`run_invariants_millions`] bin, and the
//! CI smoke's strategy-axis grid are all parameterizations of it.

use crate::grid::{default_cache_dir, default_trials};
use crate::sweep::{default_workers, fast_mode, run_report_with, Algo};
use crate::table::{fmt_num, results_dir, Table};
use ergo_core::{Ergo, ErgoConfig};
use std::collections::HashMap;
use sybil_churn::model::ChurnModel;
use sybil_churn::networks;
use sybil_exp::runner::RunSummary;
use sybil_exp::spec::{Axis, CellSpec, AXIS_ALGO, AXIS_NETWORK, AXIS_STRATEGY, AXIS_T};
use sybil_exp::{ExperimentSpec, MetricSummary, Welford, WorkloadCache};
use sybil_sim::adversary::{
    build_strategy, strategy_fingerprint, StrategyParams, STRATEGY_BUDGET, STRATEGY_BURST,
    STRATEGY_CHURN_FORCE, STRATEGY_PURGE_SURVIVE,
};
use sybil_sim::engine::{SimConfig, Simulation};
use sybil_sim::time::Time;
use sybil_sim::SimReport;

/// The strategy axis of the invariant experiments: every attack strategy
/// in the adversary registry (the `none` baseline is excluded — a cell
/// with no attack validates nothing about Lemma 9).
pub fn strategy_roster() -> Vec<&'static str> {
    vec![STRATEGY_BUDGET, STRATEGY_BURST, STRATEGY_CHURN_FORCE, STRATEGY_PURGE_SURVIVE]
}

/// Registry parameters for one invariant cell: spend rate `t`, canonical
/// defaults for everything else (60 s burst period).
pub fn cell_params(t: f64) -> StrategyParams {
    StrategyParams::rate(t)
}

/// Runs one strategy against one in-memory workload — the single-trial
/// form the quick tests use; the grids stream cached disk workloads
/// through the same configuration instead.
pub fn run_strategy_once(
    strategy: &str,
    network: &ChurnModel,
    t: f64,
    horizon: f64,
    seed: u64,
) -> SimReport {
    let workload = network.generate(Time(horizon), seed);
    let cfg = SimConfig { horizon: Time(horizon), adv_rate: t, ..SimConfig::default() };
    let adversary = build_strategy(strategy, &cell_params(t)).unwrap_or_else(|e| panic!("{e}"));
    Simulation::new(cfg, Ergo::new(ErgoConfig::default()), adversary, workload).run()
}

/// One invariant-sweep cell, aggregated over trials.
#[derive(Clone, Debug)]
pub struct InvariantOutcome {
    /// Network.
    pub network: String,
    /// Strategy registry name.
    pub strategy: String,
    /// Adversary spend rate.
    pub t: f64,
    /// Trials behind the confidence intervals.
    pub trials: u64,
    /// Maximum instantaneous Sybil fraction, over trials.
    pub max_bad_fraction: MetricSummary,
    /// The single worst instantaneous fraction any trial reached — the
    /// invariant is about the worst case, so the pass/fail verdict uses
    /// this, not the mean.
    pub worst_bad_fraction: f64,
    /// The Lemma 9 bound `3κ` (= 1/6 at the paper's κ = 1/18).
    pub bound: f64,
    /// Whether every trial held the invariant throughout. Also `false`
    /// when the cell was quarantined and has no data — check
    /// `worst_bad_fraction.is_nan()` to tell "no data" from "violated".
    pub held: bool,
    /// Good spend rate over trials.
    pub good_rate: MetricSummary,
}

/// Runs a (network × strategy × T) invariant grid through the `sybil-exp`
/// subsystem: multi-trial, cached disk-streamed workloads, resumable
/// store at `results/<name>.store`.
///
/// The strategy axis carries registry names; each cell resolves its name
/// through [`build_strategy`] with [`cell_params`]`(t)`. The per-strategy
/// parameter fingerprints are folded into the store's configuration
/// context, so a change to what a registry name *means* (a different
/// burst period, say) re-runs the grid instead of resuming stale cells.
///
/// # Panics
///
/// Panics if the cache or store directories are unusable, or if a
/// strategy name is not registered.
pub fn run_invariant_grid(
    name: &str,
    nets: &[ChurnModel],
    strategies: &[&str],
    t_values: &[f64],
    trials: u32,
    horizon: f64,
    base_seed: u64,
) -> (Vec<InvariantOutcome>, RunSummary) {
    run_invariant_grid_opts(
        name,
        nets,
        strategies,
        t_values,
        trials,
        horizon,
        base_seed,
        &sybil_exp::GridOptions::default(),
    )
}

/// [`run_invariant_grid`] with explicit [`sybil_exp::GridOptions`] — the
/// `invariants_millions` bin passes [`sybil_exp::Durability::Sync`] so
/// acknowledged cells of a multi-hour run survive machine crashes, not
/// just process kills.
#[allow(clippy::too_many_arguments)] // mirrors run_invariant_grid plus opts
pub fn run_invariant_grid_opts(
    name: &str,
    nets: &[ChurnModel],
    strategies: &[&str],
    t_values: &[f64],
    trials: u32,
    horizon: f64,
    base_seed: u64,
    opts: &sybil_exp::GridOptions,
) -> (Vec<InvariantOutcome>, RunSummary) {
    let spec = ExperimentSpec {
        name: name.into(),
        axes: vec![
            Axis::strs(AXIS_NETWORK, nets.iter().map(|n| n.name.to_string())),
            Axis::strs(AXIS_STRATEGY, strategies.iter().map(|s| s.to_string())),
            Axis::floats(AXIS_T, t_values.to_vec()),
        ],
        trials,
        horizon,
        kappa: SimConfig::default().kappa,
        seed: base_seed,
    };
    let bound = 3.0 * spec.kappa;
    let cache = WorkloadCache::open(default_cache_dir())
        .unwrap_or_else(|e| panic!("cannot open workload cache: {e}"));
    let net_by_name: HashMap<String, &ChurnModel> =
        nets.iter().map(|n| (n.name.to_string(), n)).collect();
    assert_eq!(net_by_name.len(), nets.len(), "duplicate network names in {name}");

    // The axes name networks and strategies by label; the context carries
    // what the labels resolve to. The strategy fingerprint is taken at a
    // sentinel rate (the actual rate is the cell's T-axis value, already
    // part of the spec): it pins the *fixed* parameters a registry name
    // implies, like the burst period.
    let context = format!(
        "invariants grid\nnetworks = {nets:?}\ndefense = {:?}\nstrategies = [{}]\n",
        ErgoConfig::default(),
        strategies
            .iter()
            .map(|s| strategy_fingerprint(s, &cell_params(1.0)))
            .collect::<Vec<_>>()
            .join(", "),
    );

    let cache_ref = &cache;
    let spec_ref = &spec;
    let outcome = sybil_exp::run_spec_grid_opts(
        &spec,
        &context,
        &results_dir(),
        Some(cache_ref),
        default_workers(),
        opts,
        |cell: &CellSpec| {
            let net = net_by_name[cell.str_value(AXIS_NETWORK)];
            let strategy = cell.str_value(AXIS_STRATEGY);
            let t = cell.f64_value(AXIS_T);
            let mut frac = Welford::new();
            let mut rate = Welford::new();
            let mut worst = 0.0f64;
            for trial in 0..spec_ref.trials {
                let disk = cache_ref
                    .get_or_create(net, Time(spec_ref.horizon), spec_ref.workload_seed(trial))
                    .unwrap_or_else(|e| panic!("workload cache failed for {}: {e}", cell.id()));
                let cfg = SimConfig {
                    horizon: Time(spec_ref.horizon),
                    kappa: spec_ref.kappa,
                    adv_rate: t,
                    ..SimConfig::default()
                };
                let adversary = build_strategy(strategy, &cell_params(t))
                    .unwrap_or_else(|e| panic!("cell {}: {e}", cell.id()));
                let report =
                    Simulation::new(cfg, Ergo::new(ErgoConfig::default()), adversary, disk).run();
                frac.push(report.max_bad_fraction);
                rate.push(report.good_spend_rate());
                worst = worst.max(report.max_bad_fraction);
            }
            let mut fields = vec![("trials".to_string(), spec_ref.trials as f64)];
            fields.extend(frac.summary().fields("max_bad_fraction"));
            fields.push(("worst_bad_fraction".into(), worst));
            fields.extend(rate.summary().fields("good_rate"));
            fields
        },
    )
    .unwrap_or_else(|e| panic!("experiment {name} failed: {e}"));
    eprint!("{}", outcome.summary.render());

    let rows = spec
        .cells()
        .iter()
        .zip(&outcome.records)
        .map(|(cell, record)| {
            // Quarantined cell → None → NaN: `held` goes false (NaN is
            // never `< bound`) and the table renders "no-data", not a
            // fabricated verdict either way.
            let record = record.as_ref();
            let trials = record.and_then(|r| r.get("trials")).unwrap_or(f64::NAN) as u64;
            let worst = record.and_then(|r| r.get("worst_bad_fraction")).unwrap_or(f64::NAN);
            InvariantOutcome {
                network: cell.str_value(AXIS_NETWORK).to_string(),
                strategy: cell.str_value(AXIS_STRATEGY).to_string(),
                t: cell.f64_value(AXIS_T),
                trials,
                max_bad_fraction: MetricSummary::from_record_opt(
                    record,
                    "max_bad_fraction",
                    trials,
                ),
                worst_bad_fraction: worst,
                bound,
                held: worst < bound,
                good_rate: MetricSummary::from_record_opt(record, "good_rate", trials),
            }
        })
        .collect();
    (rows, outcome.summary)
}

/// Runs the paper-scale invariant sweep: Gnutella and Ethereum churn,
/// every registered attack strategy, three spend-rate decades.
pub fn run_invariants() -> Vec<InvariantOutcome> {
    let horizon = if fast_mode() { 300.0 } else { 5_000.0 };
    let t_values = if fast_mode() { vec![1e3] } else { vec![1e2, 1e4, 1e6] };
    let (rows, _) = run_invariant_grid(
        "invariants",
        &[networks::gnutella(), networks::ethereum()],
        &strategy_roster(),
        &t_values,
        default_trials(),
        horizon,
        23,
    );
    rows
}

/// The 10⁶-ID strategy × network invariant grid (the `invariants_millions`
/// bin): every attack strategy against the million-ID churn model,
/// disk-streamed through the workload cache at the `macro_millions`
/// horizon — Lemma 9 at the scale the ROADMAP's north star names.
///
/// Runs with [`sybil_exp::Durability::Sync`]: every acknowledged cell is
/// fsynced, so a machine crash mid-run costs only in-flight cells. Returns
/// the summary too, so the bin can exit nonzero on quarantined holes.
pub fn run_invariants_millions() -> (Vec<InvariantOutcome>, RunSummary) {
    run_invariant_grid_opts(
        "invariants_millions",
        &[networks::millions(1_000_000)],
        &strategy_roster(),
        &[4_096.0, 65_536.0],
        default_trials(),
        500.0,
        23,
        &sybil_exp::GridOptions {
            durability: sybil_exp::Durability::Sync,
            ..sybil_exp::GridOptions::default()
        },
    )
}

/// Log-log slope fit of `A(T)` for an algorithm over the attack regime,
/// aggregated over per-trial fits.
#[derive(Clone, Debug)]
pub struct ScalingFit {
    /// Network.
    pub network: String,
    /// Algorithm label.
    pub algo: String,
    /// Fitted exponent of `A ∝ T^e`: the slope is fit per trial (each
    /// trial contributes one full `A(T)` curve over its own workload) and
    /// the fits aggregate to a mean with a 95 % confidence interval.
    pub exponent: MetricSummary,
    /// Points in each per-trial fit.
    pub points: usize,
}

/// Fits the spend-rate scaling exponents for Ergo and CCom (Theorem 1 says
/// ≈ 0.5 for Ergo; CCom's `O(T+J)` gives ≈ 1).
///
/// Runs as a (network × algo × T) grid: each cell stores its per-trial
/// good spend rates (plus the `mean, ci95_lo, ci95_hi` triple), and the
/// slope fit is computed afterwards from the per-trial columns — so a
/// resumed grid re-fits from the store without re-running anything.
pub fn run_scaling() -> Vec<ScalingFit> {
    let horizon = if fast_mode() { 500.0 } else { 10_000.0 };
    let exponents: Vec<u32> =
        if fast_mode() { vec![12, 14, 16] } else { vec![10, 12, 14, 16, 18, 20] };
    let ts: Vec<f64> = exponents.iter().map(|&e| (1u64 << e) as f64).collect();
    let nets = [networks::gnutella(), networks::bittorrent()];
    let roster = [Algo::Ergo, Algo::CCom];
    let trials = default_trials();

    let spec = ExperimentSpec {
        name: "scaling".into(),
        axes: vec![
            Axis::strs(AXIS_NETWORK, nets.iter().map(|n| n.name.to_string())),
            Axis::strs(AXIS_ALGO, roster.iter().map(|a| a.label())),
            Axis::floats(AXIS_T, ts.clone()),
        ],
        trials,
        horizon,
        kappa: SimConfig::default().kappa,
        seed: 23,
    };
    let cache = WorkloadCache::open(default_cache_dir())
        .unwrap_or_else(|e| panic!("cannot open workload cache: {e}"));
    let net_by_name: HashMap<String, &ChurnModel> =
        nets.iter().map(|n| (n.name.to_string(), n)).collect();
    let algo_by_label: HashMap<String, Algo> = roster.iter().map(|a| (a.label(), *a)).collect();
    let context = format!(
        "scaling grid\nnetworks = {nets:?}\nroster = {roster:?}\nergo = {:?}\nccom = {:?}\n",
        ErgoConfig::default(),
        ergo_core::params::ErgoConfig::ccom(),
    );

    let cache_ref = &cache;
    let spec_ref = &spec;
    let outcome = sybil_exp::run_spec_grid(
        &spec,
        &context,
        &results_dir(),
        Some(cache_ref),
        default_workers(),
        |cell: &CellSpec| {
            let net = net_by_name[cell.str_value(AXIS_NETWORK)];
            let algo = algo_by_label[cell.str_value(AXIS_ALGO)];
            let t = cell.f64_value(AXIS_T);
            let mut acc = Welford::new();
            let mut fields = vec![("trials".to_string(), spec_ref.trials as f64)];
            for trial in 0..spec_ref.trials {
                let disk = cache_ref
                    .get_or_create(net, Time(spec_ref.horizon), spec_ref.workload_seed(trial))
                    .unwrap_or_else(|e| panic!("workload cache failed for {}: {e}", cell.id()));
                let cfg = SimConfig {
                    horizon: Time(spec_ref.horizon),
                    kappa: spec_ref.kappa,
                    adv_rate: t,
                    ..SimConfig::default()
                };
                let report = run_report_with(cfg, algo, t, spec_ref.defense_seed(trial), disk);
                let rate = report.good_spend_rate();
                acc.push(rate);
                // Per-trial columns so the slope can be fit per trial from
                // a resumed store.
                fields.push((format!("good_rate_trial{trial}"), rate));
            }
            fields.extend(acc.summary().fields("good_rate"));
            fields
        },
    )
    .unwrap_or_else(|e| panic!("experiment scaling failed: {e}"));
    eprint!("{}", outcome.summary.render());

    // Regroup the grid's records by (network, algo) and fit one slope per
    // trial across the T axis.
    let cells = spec.cells();
    let mut fits = Vec::new();
    for net in &nets {
        for algo in &roster {
            let label = algo.label();
            let mut slopes = Welford::new();
            for trial in 0..trials {
                let pts: Vec<(f64, f64)> = cells
                    .iter()
                    .zip(&outcome.records)
                    .filter(|(cell, _)| {
                        cell.str_value(AXIS_NETWORK) == net.name
                            && cell.str_value(AXIS_ALGO) == label
                    })
                    .filter_map(|(cell, record)| {
                        // Quarantined cells drop out of the fit; the
                        // remaining T points still constrain the slope.
                        let record = record.as_ref()?;
                        let rate =
                            record.get(&format!("good_rate_trial{trial}")).unwrap_or_else(|| {
                                panic!("record {} lacks trial {trial} column", record.cell_id)
                            });
                        Some((cell.f64_value(AXIS_T).ln(), rate.max(1e-12).ln()))
                    })
                    .collect();
                slopes.push(slope(&pts));
            }
            fits.push(ScalingFit {
                network: net.name.to_string(),
                algo: label.clone(),
                exponent: slopes.summary(),
                points: ts.len(),
            });
        }
    }
    fits
}

/// Least-squares slope of `(x, y)` pairs.
fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Formats the invariant sweep with trial means and 95 % confidence
/// bounds; the `held` verdict reflects the worst trial.
pub fn invariants_table(outcomes: &[InvariantOutcome]) -> Table {
    let mut table = Table::new(vec![
        "network",
        "adversary",
        "T",
        "trials",
        "max bad frac",
        "ci95_lo",
        "ci95_hi",
        "worst",
        "bound (3k)",
        "held",
        "A",
    ]);
    for o in outcomes {
        table.push(vec![
            o.network.clone(),
            o.strategy.clone(),
            fmt_num(o.t),
            o.trials.to_string(),
            fmt_num(o.max_bad_fraction.mean),
            fmt_num(o.max_bad_fraction.ci95_lo),
            fmt_num(o.max_bad_fraction.ci95_hi),
            fmt_num(o.worst_bad_fraction),
            fmt_num(o.bound),
            if o.worst_bad_fraction.is_nan() {
                "no-data".to_string() // quarantined cell: no verdict
            } else if o.held {
                "yes".to_string()
            } else {
                "VIOLATED".to_string()
            },
            fmt_num(o.good_rate.mean),
        ]);
    }
    table
}

/// Formats the scaling fits with per-trial-fit confidence bounds.
pub fn scaling_table(fits: &[ScalingFit]) -> Table {
    let mut table = Table::new(vec![
        "network",
        "algorithm",
        "trials",
        "A~T^e mean",
        "ci95_lo",
        "ci95_hi",
        "points",
        "theory",
    ]);
    for f in fits {
        let theory = if f.algo == "ERGO" { "0.5 (Thm 1)" } else { "1.0 (O(T+J))" };
        table.push(vec![
            f.network.clone(),
            f.algo.clone(),
            f.exponent.n.to_string(),
            fmt_num(f.exponent.mean),
            fmt_num(f.exponent.ci95_lo),
            fmt_num(f.exponent.ci95_hi),
            f.points.to_string(),
            theory.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_line_is_exact() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 + 0.5 * i as f64)).collect();
        assert!((slope(&pts) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invariant_holds_for_all_strategies_small() {
        for strat in strategy_roster() {
            let r = run_strategy_once(strat, &networks::gnutella(), 2_000.0, 200.0, 29);
            assert!(r.max_bad_fraction < 1.0 / 6.0, "{strat}: fraction {}", r.max_bad_fraction);
        }
    }

    #[test]
    fn purge_survivor_pays_purge_costs() {
        let r =
            run_strategy_once(STRATEGY_PURGE_SURVIVE, &networks::gnutella(), 5_000.0, 200.0, 31);
        assert!(r.ledger.adversary_purge().value() > 0.0);
        // Still bounded, despite retention at the cap.
        assert!(r.max_bad_fraction < 1.0 / 6.0, "{}", r.max_bad_fraction);
    }

    /// The Lemma 9 assertion over the *migrated* grid path: a small
    /// strategy-axis grid (every registered attack strategy) through the
    /// real cache + store machinery must hold `max_bad_fraction < 3κ` in
    /// every cell, and resume bit-identically.
    #[test]
    fn migrated_grid_holds_lemma9_across_strategies_and_resumes() {
        let name = format!("invariants-test-{}", std::process::id());
        let nets = [networks::gnutella()];
        let run = || run_invariant_grid(&name, &nets, &strategy_roster(), &[2_000.0], 2, 120.0, 29);
        let (rows, summary) = run();
        assert_eq!(rows.len(), strategy_roster().len());
        assert_eq!(summary.cells_executed, rows.len());
        for row in &rows {
            assert!((row.bound - 1.0 / 6.0).abs() < 1e-12, "bound is 3k = 1/6");
            assert!(
                row.held && row.worst_bad_fraction < row.bound,
                "{}/{}: worst fraction {} >= {}",
                row.network,
                row.strategy,
                row.worst_bad_fraction,
                row.bound
            );
            assert_eq!(row.trials, 2);
            assert!(
                row.max_bad_fraction.ci95_lo <= row.max_bad_fraction.mean
                    && row.max_bad_fraction.mean <= row.max_bad_fraction.ci95_hi
            );
        }
        // Warm re-run resumes every cell with bit-identical aggregates.
        let (rows2, summary2) = run();
        assert_eq!(summary2.cells_executed, 0);
        assert_eq!(summary2.cells_skipped, rows.len());
        for (a, b) in rows.iter().zip(&rows2) {
            assert_eq!(a.strategy, b.strategy);
            assert_eq!(a.max_bad_fraction.mean.to_bits(), b.max_bad_fraction.mean.to_bits());
            assert_eq!(a.good_rate.mean.to_bits(), b.good_rate.mean.to_bits());
        }
        std::fs::remove_file(results_dir().join(format!("{name}.store"))).ok();
        std::fs::remove_file(results_dir().join(format!("{name}.spec"))).ok();
    }
}
