//! Experiment harness regenerating every figure in the paper's evaluation.
//!
//! Each module is one experiment from DESIGN.md's index, runnable both as a
//! library call and as a `cargo bench` target (`benches/` wrap these with
//! table printing and CSV output to `results/`):
//!
//! | Module | Paper artifact | Bench target |
//! |---|---|---|
//! | [`figure8`] | Figure 8: A vs T, Ergo vs baselines | `figure8` |
//! | [`figure9`] | Figure 9: GoodJEst estimate accuracy | `figure9` |
//! | [`figure10`] | Figure 10: heuristic variants | `figure10` |
//! | [`lower_bound_exp`] | Theorem 3 (Section 11) | `lower_bound` |
//! | [`committee_exp`] | Theorem 4 / Lemma 18 (Section 12) | `committee` |
//! | [`invariants_exp`] | Lemma 9 invariant + scaling fits | `invariants` |
//! | [`dht_exp`] | Section 13.2 extension: Sybil-resistant DHT | `dht` |
//! | [`ablation_exp`] | constants ablations (Sections 9.3, 13.3) + failure injection | `ablation` |
//!
//! The figure experiments execute through the `sybil-exp` orchestration
//! subsystem (see [`grid`] and `crates/exp/README.md`): multi-trial cells
//! (5 trials, 2 in FAST mode) fed by a content-addressed disk-streamed
//! workload cache, aggregated into `mean, ci95_lo, ci95_hi` columns, and
//! recorded in resumable per-experiment results stores under `results/`.
//! The `exp_millions` bin runs the Figure-8-shaped grid at 10⁶ initial
//! IDs; `exp_smoke` is the CI cold/warm-cache resume check.
//!
//! Set `SYBIL_BENCH_FAST=1` for a ~1-minute smoke run of the full suite;
//! the default is paper scale (10 000 s horizons, `T` up to `2²⁰`).
//! `SYBIL_BENCH_WORKERS=n` bounds parallelism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation_exp;
pub mod committee_exp;
pub mod dht_exp;
pub mod figure10;
pub mod figure8;
pub mod figure9;
pub mod grid;
pub mod invariants_exp;
pub mod lower_bound_exp;
pub mod perf;
pub mod sweep;
pub mod table;

pub use sweep::{run_point, t_grid, Algo, RunParams, SpendPoint};
pub use table::Table;
