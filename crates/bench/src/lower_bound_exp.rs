//! Experiment E4 — the Theorem 3 lower bound (paper Section 11): every
//! B1–B3 algorithm, across entrance cost functions, spends at rate
//! `Ω(√(T·J) + J)` against the uniform-join / abandon-at-purge adversary.
//!
//! The bound simulation is closed-form and seedless (no workload, no RNG),
//! so cells are single deterministic runs — multi-trial confidence
//! intervals would be zero-width by construction. The grid is a
//! first-class two-axis [`ExperimentSpec`] (`cost × T`) run through the
//! `sybil-exp` runner for its resumable results store and instrumented
//! pool; cost-function labels (which contain spaces) are ordinary axis
//! values under the canonical escaped cell ids.

use crate::sweep::{default_workers, fast_mode};
use crate::table::{fmt_num, results_dir, Table};
use std::collections::HashMap;
use sybil_defenses::lower_bound::{run_lower_bound, CostFunction, LowerBoundOutcome};
use sybil_exp::spec::{Axis, CellSpec, AXIS_T};
use sybil_exp::ExperimentSpec;

/// The non-canonical axis of this grid: the entrance cost function.
pub const AXIS_COST: &str = "cost";

/// The cost-function family swept by the experiment.
pub fn cost_functions() -> Vec<CostFunction> {
    vec![
        CostFunction::Constant(1.0),
        CostFunction::RatioTotalGood,
        CostFunction::SqrtRatio,
        CostFunction::ScaledBad(0.1),
    ]
}

/// Runs the lower-bound sweep (resumable).
pub fn run() -> Vec<LowerBoundOutcome> {
    let horizon = if fast_mode() { 1_000.0 } else { 10_000.0 };
    let t_values: Vec<f64> =
        if fast_mode() { vec![1e2, 1e4] } else { vec![0.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7] };
    let (j, n0, delta) = (2.0, 10_000u64, 1.0 / 11.0);

    // Deterministic closed-form cells: trials/seed are degenerate (one
    // trial, seedless), but the axes are first-class, so the store keys
    // are canonical and collision-free by construction.
    let spec = ExperimentSpec {
        name: "lower_bound".into(),
        axes: vec![
            Axis::strs(AXIS_COST, cost_functions().iter().map(|f| f.label())),
            Axis::floats(AXIS_T, t_values.clone()),
        ],
        trials: 1,
        horizon,
        kappa: 0.0,
        seed: 0,
    };
    // What the cost labels resolve to, plus the bound parameters the axes
    // do not carry.
    let context =
        format!("j = {j}\nn0 = {n0}\ndelta = {delta}\ncost_functions = {:?}\n", cost_functions());
    let cost_by_label: HashMap<String, CostFunction> =
        cost_functions().into_iter().map(|f| (f.label(), f)).collect();

    let outcome = sybil_exp::run_spec_grid(
        &spec,
        &context,
        &results_dir(),
        None,
        default_workers(),
        |cell: &CellSpec| {
            let f = cost_by_label[cell.str_value(AXIS_COST)];
            let t = cell.f64_value(AXIS_T);
            let o = run_lower_bound(f, t, j, n0, delta, horizon);
            vec![
                ("j".into(), o.j),
                ("j_bad".into(), o.j_bad),
                ("spend_rate".into(), o.spend_rate),
                ("bound".into(), o.bound),
                ("ratio".into(), o.ratio),
            ]
        },
    )
    .unwrap_or_else(|e| panic!("lower_bound experiment failed: {e}"));
    eprint!("{}", outcome.summary.render());

    let mut rows = Vec::new();
    let mut records = outcome.records.iter();
    for f in cost_functions() {
        for &t in &t_values {
            // Quarantined cell → None → NaN → blank cells downstream.
            let r = records.next().expect("record slot per cell").as_ref();
            let get = |name: &str| r.and_then(|r| r.get(name)).unwrap_or(f64::NAN);
            rows.push(LowerBoundOutcome {
                label: f.label(),
                t,
                j: get("j"),
                j_bad: get("j_bad"),
                spend_rate: get("spend_rate"),
                bound: get("bound"),
                ratio: get("ratio"),
            });
        }
    }
    rows
}

/// Formats the sweep.
pub fn to_table(outcomes: &[LowerBoundOutcome]) -> Table {
    let mut table = Table::new(vec![
        "cost function",
        "T",
        "J",
        "J_B (fixed point)",
        "spend rate",
        "sqrt(TJ)+J",
        "spend/bound",
    ]);
    for o in outcomes {
        table.push(vec![
            o.label.clone(),
            fmt_num(o.t),
            fmt_num(o.j),
            fmt_num(o.j_bad),
            fmt_num(o.spend_rate),
            fmt_num(o.bound),
            fmt_num(o.ratio),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_respected_across_family() {
        for f in cost_functions() {
            let out = run_lower_bound(f, 1e5, 2.0, 10_000, 1.0 / 11.0, 2_000.0);
            assert!(out.ratio > 0.5, "{}: ratio {}", out.label, out.ratio);
        }
    }

    #[test]
    fn cell_ids_are_store_safe_and_unique() {
        use sybil_exp::spec::AxisValue;
        let mut ids = std::collections::BTreeSet::new();
        for f in cost_functions() {
            // The same derivation run() uses: canonical escaped axis ids.
            let id = CellSpec::new(vec![
                (AXIS_COST.into(), AxisValue::Str(f.label())),
                (AXIS_T.into(), AxisValue::F64(100.0)),
            ])
            .id();
            assert!(!id.chars().any(char::is_whitespace), "{id}");
            assert!(ids.insert(id));
        }
    }
}
