//! Experiment E4 — the Theorem 3 lower bound (paper Section 11): every
//! B1–B3 algorithm, across entrance cost functions, spends at rate
//! `Ω(√(T·J) + J)` against the uniform-join / abandon-at-purge adversary.

use crate::sweep::{default_workers, fast_mode, run_parallel};
use crate::table::{fmt_num, Table};
use sybil_defenses::lower_bound::{run_lower_bound, CostFunction, LowerBoundOutcome};

/// The cost-function family swept by the experiment.
pub fn cost_functions() -> Vec<CostFunction> {
    vec![
        CostFunction::Constant(1.0),
        CostFunction::RatioTotalGood,
        CostFunction::SqrtRatio,
        CostFunction::ScaledBad(0.1),
    ]
}

/// Runs the lower-bound sweep.
pub fn run() -> Vec<LowerBoundOutcome> {
    let horizon = if fast_mode() { 1_000.0 } else { 10_000.0 };
    let t_values: Vec<f64> =
        if fast_mode() { vec![1e2, 1e4] } else { vec![0.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7] };
    let mut jobs: Vec<Box<dyn FnOnce() -> LowerBoundOutcome + Send>> = Vec::new();
    for f in cost_functions() {
        for &t in &t_values {
            jobs.push(Box::new(move || run_lower_bound(f, t, 2.0, 10_000, 1.0 / 11.0, horizon)));
        }
    }
    run_parallel(jobs, default_workers())
}

/// Formats the sweep.
pub fn to_table(outcomes: &[LowerBoundOutcome]) -> Table {
    let mut table = Table::new(vec![
        "cost function",
        "T",
        "J",
        "J_B (fixed point)",
        "spend rate",
        "sqrt(TJ)+J",
        "spend/bound",
    ]);
    for o in outcomes {
        table.push(vec![
            o.label.clone(),
            fmt_num(o.t),
            fmt_num(o.j),
            fmt_num(o.j_bad),
            fmt_num(o.spend_rate),
            fmt_num(o.bound),
            fmt_num(o.ratio),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_respected_across_family() {
        for f in cost_functions() {
            let out = run_lower_bound(f, 1e5, 2.0, 10_000, 1.0 / 11.0, 2_000.0);
            assert!(out.ratio > 0.5, "{}: ratio {}", out.label, out.ratio);
        }
    }
}
