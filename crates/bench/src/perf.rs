//! The engine performance baseline: a fixed micro/macro suite whose results
//! are written to `BENCH_engine.json` so every subsequent PR has a
//! trajectory to beat.
//!
//! Two layers:
//!
//! * **Queue micro-benches** — raw [`EventQueue`] push/pop throughput for
//!   both backends (binary heap vs calendar buckets) under an engine-like
//!   access pattern (time advances monotonically, events land near-future).
//! * **Macro scenarios** — full [`Simulation`] runs through the same
//!   [`crate::sweep::run_report`] path the figure sweeps use, measured in
//!   engine events per wall second. `macro_sweep` is the headline number: a
//!   miniature Figure-8-style sweep cell grid.
//!
//! Every scenario is deterministic (fixed seeds); the JSON also records the
//! run's counter fingerprint so regressions in *behavior* (not just speed)
//! are visible in the artifact diff.

use crate::sweep::{
    defense_seed, run_report_measured, run_report_with_measured, Algo, LoopAllocs, RunParams,
};
use std::time::Instant;
use sybil_churn::networks;
use sybil_sim::engine::SimConfig;
use sybil_sim::queue::EventQueue;
use sybil_sim::time::Time;
use sybil_sim::workload_io::{write_workload_file, DiskWorkload};
use sybil_sim::ShardedWorkload;

/// One measured macro scenario.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Scenario name (stable across PRs; used as the JSON key).
    pub name: String,
    /// Engine events dispatched.
    pub events: u64,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Events per wall second — the headline throughput number.
    pub events_per_sec: f64,
    /// Peak pending-event count across the runs.
    pub peak_queue_len: usize,
    /// Peak resident workload + admission memory across the scenario's
    /// cells: the engine's packed admission map plus whatever the workload
    /// stream retains (for disk-streamed scenarios, two read buffers; for
    /// in-memory ones, the schedule vectors).
    pub resident_bytes: usize,
    /// Workload shards the scenario replayed with (1 = the monolithic
    /// engine loop; the `macro_scale_s*` family varies this).
    pub shards: usize,
    /// Allocator calls during the steady-state event loop (summed over the
    /// scenario's cells, minimum across reps; engine thread only). Zero
    /// when counting is off — the report's top-level `alloc_counting`
    /// field says which.
    pub loop_allocs: u64,
    /// Bytes requested by those loop allocations.
    pub loop_alloc_bytes: u64,
    /// `loop_allocs / events` — the budget `bench_compare` gates on. The
    /// core single-shard scenarios must hold this at exactly zero.
    pub allocs_per_event: f64,
    /// Behavior fingerprint: counters that must not change for identical
    /// seeds when only performance work happens.
    pub fingerprint: Fingerprint,
}

/// Counter fingerprint of a deterministic run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Fingerprint {
    /// Total good joins admitted.
    pub good_joins_admitted: u64,
    /// Total Sybil joins admitted.
    pub bad_joins_admitted: u64,
    /// Total purges executed.
    pub purges: u64,
    /// Total good spend.
    pub good_spend: f64,
    /// Total adversary spend.
    pub adv_spend: f64,
}

/// One measured queue micro-bench.
#[derive(Clone, Debug)]
pub struct QueueBenchResult {
    /// Bench name (`queue_heap` / `queue_calendar`).
    pub name: String,
    /// Push+pop operations performed.
    pub ops: u64,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Operations per wall second.
    pub ops_per_sec: f64,
}

/// The full suite result.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Queue micro-bench results.
    pub queue: Vec<QueueBenchResult>,
    /// Macro scenario results.
    pub scenarios: Vec<ScenarioResult>,
}

/// The macro scenario grid. `macro_sweep` (the acceptance headline)
/// aggregates a miniature Figure-8-style cell grid; the single-cell
/// scenarios isolate heavy-churn and heavy-periodic defenses.
/// One scenario cell: `(algo, T, horizon, seed)`.
type Cell = (Algo, f64, f64, u64);

fn scenario_specs() -> Vec<(&'static str, Vec<Cell>)> {
    let sweep_cells: Vec<Cell> = {
        let mut cells = Vec::new();
        for algo in [Algo::Ergo, Algo::CCom, Algo::SybilControl] {
            for t in [0.0, 64.0, 4096.0, 65_536.0] {
                cells.push((algo, t, 1000.0, 1));
            }
        }
        cells
    };
    vec![
        ("macro_sweep", sweep_cells),
        ("gnutella_ergo_t1024", vec![(Algo::Ergo, 1024.0, 2000.0, 1)]),
        ("gnutella_sybilcontrol_t64", vec![(Algo::SybilControl, 64.0, 500.0, 2)]),
    ]
}

/// Repetitions per measurement; the fastest rep is reported. Machine
/// noise (scheduler, frequency scaling, cache pollution from sibling
/// containers) only ever *adds* time, so best-of-K is the stable estimator
/// of intrinsic cost.
fn reps() -> u32 {
    std::env::var("SYBIL_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(5)
}

/// Parses a `SYBIL_BENCH_ALLOC` setting: `1` forces allocation counting on
/// (the run aborts unless the binary was built with `--features
/// alloc-count`, so "measured" can never silently mean "all zeros"), `0`
/// forces the allocation columns off even in a counting build, and unset
/// publishes whatever the build provides. Strict like the other knobs:
/// anything else is an error, not a silent default.
fn parse_alloc_mode(raw: Result<String, std::env::VarError>) -> Result<Option<bool>, String> {
    sybil_exp::env::parse("SYBIL_BENCH_ALLOC", raw, |v| match v {
        "1" => Ok(true),
        "0" => Ok(false),
        _ => Err("is not valid: use 1 (require the counting allocator; abort if the binary \
                  was not built with --features alloc-count), 0 (report zeros even in a \
                  counting build), or unset (publish whatever the build measures)"
            .to_string()),
    })
}

/// Whether this run publishes *measured* allocation numbers, resolving the
/// `SYBIL_BENCH_ALLOC` override against the live-probe of the global
/// allocator. Cached for the process lifetime.
pub fn alloc_counting() -> bool {
    static COUNTING: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *COUNTING.get_or_init(|| {
        let forced = sybil_exp::env::or_abort(parse_alloc_mode(std::env::var("SYBIL_BENCH_ALLOC")));
        let live = sybil_exp::alloc::counting_enabled();
        match forced {
            Some(true) if !live => {
                eprintln!(
                    "SYBIL_BENCH_ALLOC=1 but the counting allocator is not registered: \
                     rebuild with `--features alloc-count` (sybil-bench forwards it to \
                     sybil-exp)"
                );
                std::process::exit(2);
            }
            Some(on) => on,
            None => live,
        }
    })
}

/// The `SYBIL_BENCH_ALLOC` setting this run resolved to, for the JSON
/// (`"1"`, `"0"`, or `"auto"` when unset).
fn alloc_mode_label() -> &'static str {
    match sybil_exp::env::or_abort(parse_alloc_mode(std::env::var("SYBIL_BENCH_ALLOC"))) {
        Some(true) => "1",
        Some(false) => "0",
        None => "auto",
    }
}

/// Runs one named scenario (a list of `(algo, T, horizon, seed)` cells,
/// executed sequentially on the calling thread) and measures aggregate
/// engine throughput, best-of-[`reps`].
fn run_scenario(name: &str, cells: &[Cell]) -> ScenarioResult {
    let net = networks::gnutella();
    let mut best_wall = f64::INFINITY;
    let mut events = 0u64;
    let mut peak = 0usize;
    let mut resident = 0usize;
    let mut best_allocs = LoopAllocs { allocs: u64::MAX, bytes: u64::MAX };
    let mut fp = Fingerprint::default();
    for rep in 0..reps() {
        let started = Instant::now();
        let mut rep_events = 0u64;
        let mut rep_peak = 0usize;
        let mut rep_resident = 0usize;
        let mut rep_allocs = LoopAllocs::default();
        let mut rep_fp = Fingerprint::default();
        for &(algo, t, horizon, seed) in cells {
            let params = RunParams { horizon, seed, ..RunParams::default() };
            let (report, allocs) = run_report_measured(&net, algo, t, params);
            rep_events += report.events_processed;
            rep_peak = rep_peak.max(report.peak_queue_len);
            rep_resident = rep_resident.max(report.admission_bytes + report.workload_stream_bytes);
            rep_allocs.allocs += allocs.allocs;
            rep_allocs.bytes += allocs.bytes;
            rep_fp.good_joins_admitted += report.good_joins_admitted;
            rep_fp.bad_joins_admitted += report.bad_joins_admitted;
            rep_fp.purges += report.purges;
            rep_fp.good_spend += report.ledger.good_total().value();
            rep_fp.adv_spend += report.ledger.adversary_total().value();
        }
        let wall = started.elapsed().as_secs_f64();
        if rep == 0 {
            (events, peak, resident, fp) = (rep_events, rep_peak, rep_resident, rep_fp);
        } else {
            assert_eq!(rep_events, events, "{name}: nondeterministic event count");
            assert_eq!(rep_fp, fp, "{name}: nondeterministic fingerprint");
        }
        // Min across reps, like the wall clock: a first rep can pay
        // one-time warmup inside the loop (thread-local lazy init); the
        // steady-state claim is the repeatable floor.
        best_allocs.allocs = best_allocs.allocs.min(rep_allocs.allocs);
        best_allocs.bytes = best_allocs.bytes.min(rep_allocs.bytes);
        best_wall = best_wall.min(wall);
    }
    let measured = if alloc_counting() { best_allocs } else { LoopAllocs::default() };
    ScenarioResult {
        name: name.to_string(),
        events,
        wall_secs: best_wall,
        events_per_sec: events as f64 / best_wall.max(1e-12),
        peak_queue_len: peak,
        resident_bytes: resident,
        shards: 1,
        loop_allocs: measured.allocs,
        loop_alloc_bytes: measured.bytes,
        allocs_per_event: measured.allocs as f64 / (events as f64).max(1.0),
        fingerprint: fp,
    }
}

/// The million-ID churn model behind `macro_millions` — now shared with
/// the `exp_millions` grid driver via [`networks::millions`].
fn millions_model() -> sybil_churn::model::ChurnModel {
    networks::millions(1_000_000)
}

/// The `macro_millions` scenario: a 1 000 000-initial-ID workload generated
/// once, written to the on-disk format, and replayed through the
/// disk-streaming [`DiskWorkload`] source — the in-memory schedule is
/// dropped before any measured run, so the reported `resident_bytes`
/// (packed admission map + stream read buffers) is the engine's actual
/// workload footprint at million-ID scale.
fn run_macro_millions() -> ScenarioResult {
    let (algo, t, horizon, seed) = (Algo::Ergo, 4096.0, 500.0, 1u64);
    let path =
        std::env::temp_dir().join(format!("sybil_macro_millions_{}.wkld", std::process::id()));
    {
        let workload = millions_model().generate(Time(horizon), seed);
        write_workload_file(&path, &workload)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    } // The resident schedule is dropped here; replays stream from disk.

    let mut best_wall = f64::INFINITY;
    let mut events = 0u64;
    let mut peak = 0usize;
    let mut resident = 0usize;
    let mut best_allocs = LoopAllocs { allocs: u64::MAX, bytes: u64::MAX };
    let mut fp = Fingerprint::default();
    for rep in 0..reps() {
        let started = Instant::now();
        let disk = DiskWorkload::open(&path)
            .unwrap_or_else(|e| panic!("cannot open {}: {e}", path.display()));
        let cfg = SimConfig { horizon: Time(horizon), adv_rate: t, ..SimConfig::default() };
        // Same defense seeding as `run_report`, so the scenario is pinned
        // the same way the sweep cells are.
        let (report, allocs) = run_report_with_measured(cfg, algo, t, defense_seed(seed), disk);
        let wall = started.elapsed().as_secs_f64();
        let rep_fp = Fingerprint {
            good_joins_admitted: report.good_joins_admitted,
            bad_joins_admitted: report.bad_joins_admitted,
            purges: report.purges,
            good_spend: report.ledger.good_total().value(),
            adv_spend: report.ledger.adversary_total().value(),
        };
        if rep == 0 {
            events = report.events_processed;
            peak = report.peak_queue_len;
            resident = report.admission_bytes + report.workload_stream_bytes;
            fp = rep_fp;
        } else {
            assert_eq!(report.events_processed, events, "macro_millions: nondeterministic");
            assert_eq!(rep_fp, fp, "macro_millions: nondeterministic fingerprint");
        }
        best_allocs.allocs = best_allocs.allocs.min(allocs.allocs);
        best_allocs.bytes = best_allocs.bytes.min(allocs.bytes);
        best_wall = best_wall.min(wall);
    }
    std::fs::remove_file(&path).ok();
    let measured = if alloc_counting() { best_allocs } else { LoopAllocs::default() };
    ScenarioResult {
        name: "macro_millions".to_string(),
        events,
        wall_secs: best_wall,
        events_per_sec: events as f64 / best_wall.max(1e-12),
        peak_queue_len: peak,
        resident_bytes: resident,
        shards: 1,
        loop_allocs: measured.allocs,
        loop_alloc_bytes: measured.bytes,
        allocs_per_event: measured.allocs as f64 / (events as f64).max(1.0),
        fingerprint: fp,
    }
}

/// The shard counts the `macro_scale` family measures. The scenario names
/// carry the count (`macro_scale_s1`, …) so `bench_compare` can pair a
/// wide run with its 1-shard baseline and gate the speedup.
const MACRO_SCALE_SHARDS: [usize; 3] = [1, 2, 4];

/// The `macro_scale_s{1,2,4}` scenarios: one 10 000 000-initial-ID
/// workload generated once, written to disk, and replayed through the
/// sharded shared-nothing engine ([`ShardedWorkload`]) at each shard
/// count.
///
/// The event counts and behavior fingerprints are asserted identical
/// across shard counts before anything is reported — the engine's
/// determinism contract at bench scale. Throughput scaling across the
/// `_s*` columns is what `bench_compare` gates on machines with enough
/// cores (recorded as the report's `available_parallelism`); on a 1-core
/// runner the extra shards only add coordination cost, which is exactly
/// what the honest numbers should show.
fn run_macro_scale_family() -> Vec<ScenarioResult> {
    let (algo, t, horizon, seed) = (Algo::Ergo, 4096.0, 300.0, 1u64);
    let path = std::env::temp_dir().join(format!("sybil_macro_scale_{}.wkld", std::process::id()));
    {
        let workload = networks::millions(10_000_000).generate(Time(horizon), seed);
        write_workload_file(&path, &workload)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    } // The resident schedule is dropped here; replays stream from disk.

    let mut out = Vec::new();
    for shards in MACRO_SCALE_SHARDS {
        let name = format!("macro_scale_s{shards}");
        let mut best_wall = f64::INFINITY;
        let mut events = 0u64;
        let mut peak = 0usize;
        let mut resident = 0usize;
        let mut best_allocs = LoopAllocs { allocs: u64::MAX, bytes: u64::MAX };
        let mut fp = Fingerprint::default();
        for rep in 0..reps() {
            let started = Instant::now();
            let disk = DiskWorkload::open(&path)
                .unwrap_or_else(|e| panic!("cannot open {}: {e}", path.display()));
            let cfg = SimConfig { horizon: Time(horizon), adv_rate: t, ..SimConfig::default() };
            // The counters are thread-local: at S > 1 they cover the
            // coordinator's merge loop, not the producer threads (whose
            // batch buffers are pooled; see `sybil-sim::shard`).
            let (report, allocs) = run_report_with_measured(
                cfg,
                algo,
                t,
                defense_seed(seed),
                ShardedWorkload::from_disk(disk, shards),
            );
            let wall = started.elapsed().as_secs_f64();
            let rep_fp = Fingerprint {
                good_joins_admitted: report.good_joins_admitted,
                bad_joins_admitted: report.bad_joins_admitted,
                purges: report.purges,
                good_spend: report.ledger.good_total().value(),
                adv_spend: report.ledger.adversary_total().value(),
            };
            if rep == 0 {
                events = report.events_processed;
                peak = report.peak_queue_len;
                resident = report.admission_bytes + report.workload_stream_bytes;
                fp = rep_fp;
            } else {
                assert_eq!(report.events_processed, events, "{name}: nondeterministic");
                assert_eq!(rep_fp, fp, "{name}: nondeterministic fingerprint");
            }
            best_allocs.allocs = best_allocs.allocs.min(allocs.allocs);
            best_allocs.bytes = best_allocs.bytes.min(allocs.bytes);
            best_wall = best_wall.min(wall);
        }
        let measured = if alloc_counting() { best_allocs } else { LoopAllocs::default() };
        out.push(ScenarioResult {
            name,
            events,
            wall_secs: best_wall,
            events_per_sec: events as f64 / best_wall.max(1e-12),
            peak_queue_len: peak,
            resident_bytes: resident,
            shards,
            loop_allocs: measured.allocs,
            loop_alloc_bytes: measured.bytes,
            allocs_per_event: measured.allocs as f64 / (events as f64).max(1.0),
            fingerprint: fp,
        });
    }
    std::fs::remove_file(&path).ok();
    for s in &out[1..] {
        assert_eq!(s.events, out[0].events, "{}: event count varies with shard count", s.name);
        assert_eq!(
            s.fingerprint, out[0].fingerprint,
            "{}: behavior fingerprint varies with shard count",
            s.name
        );
    }
    out
}

/// Engine-like queue access pattern: a standing population of pending
/// events over the horizon, advancing time by pop-then-push-near-future.
fn run_queue_bench(name: &str, mut q: EventQueue<u64>, n_ops: u64) -> QueueBenchResult {
    let horizon = 10_000.0;
    let standing = 5_000u64;
    let mut state = 0x00dd_c0de_5eed_1234u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 11
    };
    let started = Instant::now();
    // Seed the standing population.
    for i in 0..standing {
        q.push(Time(next() as f64 % horizon), i);
    }
    let mut ops = standing;
    let mut acc = 0u64;
    while ops < n_ops {
        let (now, v) = q.pop().expect("standing population");
        acc = acc.wrapping_add(v);
        // Reschedule near-future relative to the popped time, mimicking
        // depart/periodic/adversary pushes; occasionally far-future.
        let dt = if ops.is_multiple_of(17) {
            (next() % 1000) as f64
        } else {
            (next() % 64) as f64 * 0.25
        };
        q.push(Time((now.as_secs() + dt).min(horizon * 2.0)), v);
        ops += 2;
    }
    std::hint::black_box(acc);
    let wall_secs = started.elapsed().as_secs_f64();
    QueueBenchResult {
        name: name.to_string(),
        ops,
        wall_secs,
        ops_per_sec: ops as f64 / wall_secs.max(1e-12),
    }
}

/// Runs the full suite. All measurements are single-threaded so the
/// numbers compare engine work, not scheduling luck.
pub fn run_suite() -> PerfReport {
    let n_ops = if crate::sweep::fast_mode() { 400_000 } else { 2_000_000 };
    let best_queue = |name: &str, make: &dyn Fn() -> EventQueue<u64>| {
        (0..reps())
            .map(|_| run_queue_bench(name, make(), n_ops))
            .min_by(|a, b| a.wall_secs.total_cmp(&b.wall_secs))
            .expect("at least one rep")
    };
    let queue = vec![
        best_queue("queue_heap", &|| EventQueue::with_capacity(8192)),
        best_queue("queue_calendar", &|| EventQueue::with_horizon(Time(20_000.0), 8192)),
    ];
    let mut scenarios: Vec<ScenarioResult> =
        scenario_specs().iter().map(|(name, cells)| run_scenario(name, cells)).collect();
    // Million-ID scale runs at full size even in FAST mode: the replay is
    // subsecond, and keeping it identical keeps its fingerprint comparable
    // between CI and the committed baseline. The 10⁷-ID shard-scaling
    // family follows the same rule: shrinking it in FAST mode would change
    // its fingerprint and break the `bench_compare` drift gate.
    scenarios.push(run_macro_millions());
    scenarios.extend(run_macro_scale_family());
    PerfReport { queue, scenarios }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Serializes the report as pretty-printed JSON (hand-rolled; the build
/// environment has no serde).
pub fn to_json(report: &PerfReport) -> String {
    let mut out = String::from("{\n");
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    out.push_str(&format!("  \"generated_unix_secs\": {unix_secs},\n"));
    // Recorded so `bench_compare` can make its shard-scaling gate
    // hardware-aware: a 1-core runner cannot demonstrate a speedup.
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.push_str(&format!("  \"available_parallelism\": {parallelism},\n"));
    // The nested-parallelism split the experiment layer would use on
    // this machine: `workers` outer grid cells × `cell_shards` in-cell
    // shard workers (each also owning its slice of the defense state),
    // with the outer pool shrunk to keep the thread product bounded.
    let workers = crate::sweep::default_workers();
    let cell_shards = sybil_exp::pool::default_shards();
    out.push_str(&format!(
        "  \"shard_budget\": {{\"workers\": {workers}, \"cell_shards\": {cell_shards}, \
         \"outer_pool\": {}}},\n",
        sybil_exp::pool::shard_budget(workers, cell_shards)
    ));
    // Whether the alloc_* scenario fields are live measurements (counting
    // allocator registered and not forced off) or structural zeros, plus
    // the SYBIL_BENCH_ALLOC setting that produced them — so a JSON is
    // self-describing no matter how its run was built or invoked.
    out.push_str(&format!("  \"alloc_counting\": {},\n", alloc_counting()));
    out.push_str(&format!("  \"alloc_mode\": \"{}\",\n", alloc_mode_label()));
    out.push_str("  \"queue\": {\n");
    for (i, q) in report.queue.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"ops\": {}, \"wall_secs\": {}, \"ops_per_sec\": {}}}{}\n",
            q.name,
            q.ops,
            json_f64(q.wall_secs),
            json_f64(q.ops_per_sec),
            if i + 1 < report.queue.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"scenarios\": {\n");
    for (i, s) in report.scenarios.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\n      \"events\": {},\n      \"wall_secs\": {},\n      \"events_per_sec\": {},\n      \"peak_queue_len\": {},\n      \"resident_bytes\": {},\n      \"shards\": {},\n      \"loop_allocs\": {},\n      \"loop_alloc_bytes\": {},\n      \"allocs_per_event\": {},\n      \"fingerprint\": {{\"good_joins_admitted\": {}, \"bad_joins_admitted\": {}, \"purges\": {}, \"good_spend\": {}, \"adv_spend\": {}}}\n    }}{}\n",
            s.name,
            s.events,
            json_f64(s.wall_secs),
            json_f64(s.events_per_sec),
            s.peak_queue_len,
            s.resident_bytes,
            s.shards,
            s.loop_allocs,
            s.loop_alloc_bytes,
            json_f64(s.allocs_per_event),
            s.fingerprint.good_joins_admitted,
            s.fingerprint.bad_joins_admitted,
            s.fingerprint.purges,
            json_f64(s.fingerprint.good_spend),
            json_f64(s.fingerprint.adv_spend),
            if i + 1 < report.scenarios.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Renders a human-readable summary table.
pub fn render(report: &PerfReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>14} {:>10} {:>16} {:>12} {:>14} {:>12}\n",
        "benchmark",
        "events/ops",
        "wall (s)",
        "throughput/s",
        "peak queue",
        "resident KiB",
        "loop allocs"
    ));
    for q in &report.queue {
        out.push_str(&format!(
            "{:<28} {:>14} {:>10.3} {:>16.0} {:>12} {:>14} {:>12}\n",
            q.name, q.ops, q.wall_secs, q.ops_per_sec, "-", "-", "-"
        ));
    }
    for s in &report.scenarios {
        out.push_str(&format!(
            "{:<28} {:>14} {:>10.3} {:>16.0} {:>12} {:>14} {:>12}\n",
            s.name,
            s.events,
            s.wall_secs,
            s.events_per_sec,
            s.peak_queue_len,
            s.resident_bytes.div_ceil(1024),
            s.loop_allocs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic() {
        let cells = [(Algo::Ergo, 64.0, 50.0, 3u64)];
        let a = run_scenario("det", &cells);
        let b = run_scenario("det", &cells);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.events, b.events);
        assert!(a.events > 0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = PerfReport {
            queue: vec![QueueBenchResult {
                name: "queue_heap".into(),
                ops: 10,
                wall_secs: 0.1,
                ops_per_sec: 100.0,
            }],
            scenarios: vec![ScenarioResult {
                name: "s".into(),
                events: 5,
                wall_secs: 0.5,
                events_per_sec: 10.0,
                peak_queue_len: 3,
                resident_bytes: 4096,
                shards: 4,
                loop_allocs: 7,
                loop_alloc_bytes: 256,
                allocs_per_event: 1.4,
                fingerprint: Fingerprint::default(),
            }],
        };
        let json = to_json(&report);
        assert!(json.contains("\"queue_heap\""));
        assert!(json.contains("\"events_per_sec\": 10"));
        assert!(json.contains("\"shards\": 4"));
        assert!(json.contains("\"loop_allocs\": 7"));
        assert!(json.contains("\"allocs_per_event\": 1.4"));
        assert!(json.contains("\"alloc_counting\":"));
        assert!(json.contains("\"alloc_mode\":"));
        assert!(json.contains("\"available_parallelism\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn queue_bench_runs() {
        let r = run_queue_bench("q", EventQueue::new(), 10_000);
        assert!(r.ops >= 10_000);
        assert!(r.ops_per_sec > 0.0);
    }
}
