//! Shared experiment machinery: algorithm roster and spend-rate runs.
//!
//! The deterministic thread pool and the seed-derivation functions moved
//! to the `sybil-exp` orchestration crate (so the experiment runner and
//! the figure drivers share one scheduler); they are re-exported here
//! under their original names.

use ergo_core::defid::DefIdChecker;
use sybil_churn::model::ChurnModel;
use sybil_defenses as defs;
use sybil_sim::adversary::BudgetJoiner;
use sybil_sim::defense::Defense;
use sybil_sim::engine::{SimConfig, Simulation};
use sybil_sim::time::Time;
use sybil_sim::workload::WorkloadSource;
use sybil_sim::SimReport;

pub use sybil_exp::pool::{run_parallel, run_parallel_stats, PoolStats};
pub use sybil_exp::spec::{defense_seed, trial_seed};

/// Every algorithm appearing in the paper's Figures 8 and 10.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algo {
    /// Plain Ergo (Figure 4).
    Ergo,
    /// CCom: constant entrance cost 1 (paper reference 98).
    CCom,
    /// SybilControl (paper reference 67).
    SybilControl,
    /// REMP with the given `Tmax` (paper reference 99, run with 10⁷).
    Remp(f64),
    /// ERGO-SF with the given classifier accuracy (Figure 8 variant: plain
    /// Ergo + classifier gate).
    ErgoSf(f64),
    /// ERGO-CH1 (Heuristics 1+2, Figure 10).
    ErgoCh1,
    /// ERGO-CH2 (Heuristics 1+2+3, Figure 10).
    ErgoCh2,
    /// ERGO-SF(x) as in Figure 10: Heuristics 1–4.
    ErgoSfFull(f64),
}

/// A generic consumer of a concretely-typed defense.
///
/// This is the monomorphized dispatch point for sweeps: [`Algo::dispatch`]
/// matches once on the algorithm and hands the visitor a *concrete*
/// defense value, so `Simulation::run` (and every per-event defense
/// callback in its inner loop) compiles as direct, inlinable calls instead
/// of virtual dispatch through `Box<dyn Defense>`.
pub trait AlgoVisitor {
    /// The result produced for the defense.
    type Out;

    /// Runs on the built, concretely-typed defense.
    fn visit<D: Defense + 'static>(self, defense: D) -> Self::Out;
}

impl Algo {
    /// Builds the defense instance, type-erased.
    ///
    /// Prefer [`dispatch`](Self::dispatch) on hot paths — the boxed form
    /// pays a virtual call per defense callback in the engine's inner
    /// loop. This remains for callers that genuinely need runtime
    /// polymorphism (e.g. the CLI's mixed-strategy plumbing).
    pub fn build(&self, seed: u64) -> Box<dyn Defense> {
        struct Boxer;
        impl AlgoVisitor for Boxer {
            type Out = Box<dyn Defense>;
            fn visit<D: Defense + 'static>(self, defense: D) -> Box<dyn Defense> {
                Box::new(defense)
            }
        }
        self.dispatch(seed, Boxer)
    }

    /// Builds the defense and passes it, concretely typed, to `visitor`.
    pub fn dispatch<V: AlgoVisitor>(&self, seed: u64, visitor: V) -> V::Out {
        match *self {
            Algo::Ergo => visitor.visit(defs::ergo()),
            Algo::CCom => visitor.visit(defs::ccom()),
            Algo::SybilControl => visitor.visit(defs::SybilControl::default()),
            Algo::Remp(t_max) => visitor
                .visit(defs::Remp::new(defs::RempConfig { t_max, ..defs::RempConfig::default() })),
            Algo::ErgoSf(acc) => visitor.visit(defs::ergo_sf(acc, seed)),
            Algo::ErgoCh1 => visitor.visit(defs::ergo_ch1()),
            Algo::ErgoCh2 => visitor.visit(defs::ergo_ch2()),
            Algo::ErgoSfFull(acc) => visitor.visit(defs::ergo_sf_full(acc, seed)),
        }
    }

    /// Display name (matches the paper's legends).
    pub fn label(&self) -> String {
        match *self {
            Algo::Ergo => "ERGO".into(),
            Algo::CCom => "CCOM".into(),
            Algo::SybilControl => "SybilControl".into(),
            Algo::Remp(t_max) => format!("REMP-{t_max:.0e}"),
            Algo::ErgoSf(acc) => format!("ERGO-SF({:.0})", acc * 100.0),
            Algo::ErgoCh1 => "ERGO-CH1".into(),
            Algo::ErgoCh2 => "ERGO-CH2".into(),
            Algo::ErgoSfFull(acc) => format!("ERGO-SF({:.0})", acc * 100.0),
        }
    }

    /// Whether this algorithm's bad-fraction guarantee covers adversary
    /// spend rate `t` at good population `n_good` (the Figure 8 curve
    /// cutoffs: SybilControl breaks past its test capacity; REMP past Tmax;
    /// the Ergo family holds for all `T` by Theorem 1).
    pub fn guarantee_covers(&self, t: f64, n_good: u64) -> bool {
        match *self {
            Algo::SybilControl => {
                t < defs::SybilControl::default().breakdown_rate(n_good, 1.0 / 6.0)
            }
            Algo::Remp(t_max) => t <= t_max,
            _ => true,
        }
    }
}

/// One measured point of a spend-rate sweep.
#[derive(Clone, Debug)]
pub struct SpendPoint {
    /// Network name.
    pub network: String,
    /// Algorithm label.
    pub algo: String,
    /// Configured adversary spend rate `T`.
    pub t: f64,
    /// Measured good spend rate `A`.
    pub good_rate: f64,
    /// Measured adversary spend rate (≤ configured `T`).
    pub adv_rate: f64,
    /// Maximum instantaneous Sybil fraction.
    pub max_bad_fraction: f64,
    /// Purges executed.
    pub purges: u64,
    /// Whether the algorithm's guarantee covers this `T` (curve cutoff).
    pub guarantee: bool,
}

/// Parameters for one spend-rate run.
#[derive(Clone, Copy, Debug)]
pub struct RunParams {
    /// Simulated seconds (paper: 10 000).
    pub horizon: f64,
    /// Adversary power fraction κ (paper: 1/18).
    pub kappa: f64,
    /// Workload / defense seed.
    pub seed: u64,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams { horizon: 10_000.0, kappa: 1.0 / 18.0, seed: 1 }
    }
}

/// Runs one (network, algorithm, T) cell and returns the measured point.
pub fn run_point(network: &ChurnModel, algo: Algo, t: f64, params: RunParams) -> SpendPoint {
    let report = run_report(network, algo, t, params);
    SpendPoint {
        network: network.name.to_string(),
        algo: algo.label(),
        t,
        good_rate: report.good_spend_rate(),
        adv_rate: report.adv_spend_rate(),
        max_bad_fraction: report.max_bad_fraction,
        purges: report.purges,
        guarantee: algo.guarantee_covers(t, network.initial_size),
    }
}

/// Returns the (deterministic) workload for `(network, horizon, seed)`,
/// generating it on first use and cloning it from a process-wide cache
/// afterwards.
///
/// Sweeps run every algorithm and every spend rate against the *same*
/// good-ID schedule — Figure 8 alone replays each network's workload 60
/// times — and trace generation (tens of thousands of inverse-transform
/// samples) is a measurable slice of a sweep cell. The cache key hashes
/// the full model debug representation, so two models that merely share a
/// name cannot collide. Cloning is a flat memcpy of the session vectors;
/// the result is byte-identical to regenerating.
pub fn cached_workload(network: &ChurnModel, horizon: f64, seed: u64) -> sybil_sim::Workload {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    type WorkloadCache = Mutex<HashMap<(String, u64, u64), sybil_sim::Workload>>;
    static CACHE: OnceLock<WorkloadCache> = OnceLock::new();
    let key = (format!("{network:?}"), horizon.to_bits(), seed);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(w) = cache.lock().expect("workload cache poisoned").get(&key) {
        return w.clone();
    }
    // Generate OUTSIDE the lock: first-touch generation is the expensive
    // part, and worker threads warming different keys must not serialize
    // on it. Racing generators produce identical deterministic workloads,
    // so a duplicated generation is wasted work, never wrong data.
    let generated = network.generate(Time(horizon), seed);
    let mut cache = cache.lock().expect("workload cache poisoned");
    if cache.len() > 64 {
        // Sweeps touch a handful of keys; a runaway caller (scripted
        // horizon scans) must not grow this without bound.
        cache.clear();
    }
    cache.entry(key).or_insert(generated).clone()
}

/// Runs one cell against an arbitrary [`WorkloadSource`] — the in-memory
/// `Workload` the legacy sweeps clone, or a cache-served
/// [`DiskWorkload`](sybil_sim::workload_io::DiskWorkload) that streams a
/// million-ID schedule through two read buffers.
///
/// The run is monomorphized per defense type via [`Algo::dispatch`]: the
/// engine's inner loop compiles with direct calls into the concrete
/// defense instead of `Box<dyn Defense>` virtual dispatch. `defense_seed`
/// must come from [`defense_seed`] for results to be comparable across
/// runners (the perf scenarios, the sweeps, and the `sybil-exp` grids all
/// share that derivation).
pub fn run_report_with<W: WorkloadSource>(
    cfg: SimConfig,
    algo: Algo,
    t: f64,
    defense_seed: u64,
    source: W,
) -> SimReport {
    run_report_with_measured(cfg, algo, t, defense_seed, source).0
}

/// Heap-allocation counters measured over the engine's steady-state event
/// loop (the span `Simulation::run_spanned` brackets: after scheduling and
/// initialization, before report assembly). All zeros unless the binary
/// registered [`sybil_exp::alloc::CountingAlloc`] as its global allocator
/// (the `alloc-count` feature) — check
/// [`sybil_exp::alloc::counting_enabled`] to tell a structural zero from a
/// measured one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoopAllocs {
    /// Allocator calls during the event loop, on the engine's thread.
    pub allocs: u64,
    /// Bytes requested by those calls.
    pub bytes: u64,
}

/// [`run_report_with`], also returning the event loop's [`LoopAllocs`].
pub fn run_report_with_measured<W: WorkloadSource>(
    cfg: SimConfig,
    algo: Algo,
    t: f64,
    defense_seed: u64,
    source: W,
) -> (SimReport, LoopAllocs) {
    use std::cell::Cell;
    use sybil_exp::alloc::AllocStats;

    struct Runner<'a, W> {
        cfg: SimConfig,
        t: f64,
        source: W,
        measured: &'a Cell<LoopAllocs>,
    }
    impl<W: WorkloadSource> AlgoVisitor for Runner<'_, W> {
        type Out = SimReport;
        fn visit<D: Defense + 'static>(self, defense: D) -> SimReport {
            let stats: Cell<Option<AllocStats>> = Cell::new(None);
            let measured = self.measured;
            let (report, _defense) =
                Simulation::new(self.cfg, defense, BudgetJoiner::new(self.t), self.source)
                    .run_spanned(
                        || {
                            stats.set(Some(AllocStats::begin()));
                            // Attribution aid: SYBIL_BENCH_ALLOC_TRAP=N
                            // aborts with a backtrace at the N-th in-span
                            // allocation (see sybil_exp::alloc::trap_after).
                            if let Ok(n) = std::env::var("SYBIL_BENCH_ALLOC_TRAP") {
                                if let Ok(n) = n.parse::<u64>() {
                                    sybil_exp::alloc::trap_after(n);
                                }
                            }
                        },
                        || {
                            sybil_exp::alloc::disarm_trap();
                            let s = stats.get().expect("enter hook ran before exit");
                            measured.set(LoopAllocs { allocs: s.allocs(), bytes: s.bytes() });
                        },
                    );
            report
        }
    }
    let measured = Cell::new(LoopAllocs::default());
    let report = algo.dispatch(defense_seed, Runner { cfg, t, source, measured: &measured });
    (report, measured.get())
}

/// Runs one cell and returns the full simulation report. Workloads come
/// from [`cached_workload`]; see [`run_report_with`] for the
/// source-generic form the disk-streamed grids use.
pub fn run_report(network: &ChurnModel, algo: Algo, t: f64, params: RunParams) -> SimReport {
    run_report_measured(network, algo, t, params).0
}

/// [`run_report`], also returning the event loop's [`LoopAllocs`]. The
/// workload-cache clone and simulation construction happen outside the
/// measured span, so the counters cover exactly the steady-state loop.
pub fn run_report_measured(
    network: &ChurnModel,
    algo: Algo,
    t: f64,
    params: RunParams,
) -> (SimReport, LoopAllocs) {
    let workload = cached_workload(network, params.horizon, params.seed);
    let cfg = SimConfig {
        horizon: Time(params.horizon),
        kappa: params.kappa,
        adv_rate: t,
        ..SimConfig::default()
    };
    run_report_with_measured(cfg, algo, t, defense_seed(params.seed), workload)
}

/// Validates the DefID invariant over a report (bad fraction < 3κ for the
/// Ergo family).
pub fn check_invariant(report: &SimReport, kappa: f64) -> bool {
    let checker = DefIdChecker::with_kappa(kappa);
    report.max_bad_fraction < checker.bound()
}

/// The Figure 8/10 adversary spend grid: `T = 2⁰ … 2²⁰` (even exponents),
/// with 0 prepended for the no-attack baseline.
pub fn t_grid() -> Vec<f64> {
    let mut grid = vec![0.0];
    grid.extend((0..=20).step_by(2).map(|e| (1u64 << e) as f64));
    grid
}

/// Parses a worker-count override from `SYBIL_BENCH_WORKERS`.
///
/// Returns `Ok(None)` when the variable is unset, `Err` (with an
/// actionable message) when it is set to zero or garbage — silent
/// fallbacks here used to mask typos like `SYBIL_BENCH_WORKERS=all`.
pub fn workers_from_env() -> Result<Option<usize>, String> {
    sybil_exp::env::positive_usize(
        "SYBIL_BENCH_WORKERS",
        std::env::var("SYBIL_BENCH_WORKERS"),
        "need at least one worker (unset the variable to use all cores)",
    )
}

/// Number of worker threads to use (`SYBIL_BENCH_WORKERS` overrides; an
/// invalid override aborts with the parse error rather than being
/// silently ignored).
pub fn default_workers() -> usize {
    sybil_exp::env::or_abort(workers_from_env())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
}

/// Parses a `SYBIL_BENCH_FAST` setting: `1` is fast mode, `0` (or unset)
/// is the full paper-scale run.
///
/// Strict, like [`workers_from_env`]: any other value — `true`, `yes`, a
/// typo — is an error, not a silent full-scale run. The old
/// `v == "1"` check made `SYBIL_BENCH_FAST=true` quietly launch the
/// hours-long paper suite on a machine that asked for the one-minute
/// smoke.
fn parse_fast_mode(raw: Result<String, std::env::VarError>) -> Result<bool, String> {
    let parsed = sybil_exp::env::parse("SYBIL_BENCH_FAST", raw, |v| match v {
        "1" => Ok(true),
        "0" => Ok(false),
        _ => Err("is not valid: use 1 (fast smoke grids) or 0 / unset (full paper-scale run)"
            .to_string()),
    })?;
    Ok(parsed.unwrap_or(false))
}

/// True when `SYBIL_BENCH_FAST=1`: benches shrink grids/horizons so the
/// whole suite completes in about a minute (CI mode). The full paper-scale
/// run is the default; an invalid setting aborts with the parse error
/// rather than being silently ignored.
///
/// The result is read once and cached for the process lifetime — grid
/// drivers consult it per cell (and some helpers per trial), and the
/// environment cannot change under a running bench anyway.
pub fn fast_mode() -> bool {
    static FAST: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FAST.get_or_init(|| {
        sybil_exp::env::or_abort(parse_fast_mode(std::env::var("SYBIL_BENCH_FAST")))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sybil_churn::networks;

    #[test]
    fn t_grid_shape() {
        let g = t_grid();
        assert_eq!(g[0], 0.0);
        assert_eq!(g[1], 1.0);
        assert_eq!(*g.last().unwrap(), (1u64 << 20) as f64);
        assert_eq!(g.len(), 12);
    }

    #[test]
    fn reexported_pool_and_seeds_are_live() {
        // The implementations live in sybil-exp; these aliases must keep
        // working for the drivers and the perf scenarios.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..8usize).map(|i| Box::new(move || i * i) as _).collect();
        assert_eq!(run_parallel(jobs, 3), (0..8usize).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(trial_seed(42, 7), sybil_exp::trial_seed(42, 7));
        assert_eq!(defense_seed(9), sybil_exp::defense_seed(9));
    }

    #[test]
    fn run_report_with_matches_run_report_on_disk_source() {
        use sybil_sim::workload_io::{write_workload_file, DiskWorkload};
        let net = networks::gnutella();
        let params = RunParams { horizon: 60.0, ..RunParams::default() };
        let mem = run_report(&net, Algo::Ergo, 32.0, params);
        // Same cell replayed from the on-disk format must be bit-identical.
        let path = std::env::temp_dir().join(format!("sybil_sweep_eq_{}.wkld", std::process::id()));
        write_workload_file(&path, &cached_workload(&net, params.horizon, params.seed)).unwrap();
        let cfg = SimConfig {
            horizon: Time(params.horizon),
            kappa: params.kappa,
            adv_rate: 32.0,
            ..SimConfig::default()
        };
        let mut disk = run_report_with(
            cfg,
            Algo::Ergo,
            32.0,
            defense_seed(params.seed),
            DiskWorkload::open(&path).unwrap(),
        );
        // The stream-footprint gauge legitimately differs (retained
        // schedule vectors vs two read buffers); everything else must not.
        let mut mem = mem;
        mem.workload_stream_bytes = 0;
        disk.workload_stream_bytes = 0;
        assert_eq!(mem, disk);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn workers_env_validation() {
        // NOTE: env mutation — these cases run in one test to avoid racing
        // parallel test threads on the same variable.
        let key = "SYBIL_BENCH_WORKERS";
        let old = std::env::var(key).ok();
        std::env::remove_var(key);
        assert_eq!(workers_from_env(), Ok(None));
        std::env::set_var(key, "8");
        assert_eq!(workers_from_env(), Ok(Some(8)));
        std::env::set_var(key, "0");
        assert!(workers_from_env().unwrap_err().contains("at least one worker"));
        std::env::set_var(key, "all");
        assert!(workers_from_env().unwrap_err().contains("not a positive integer"));
        match old {
            Some(v) => std::env::set_var(key, v),
            None => std::env::remove_var(key),
        }
    }

    /// Regression for the silent fast-mode miss: `SYBIL_BENCH_FAST=true`
    /// (or any non-`1` value) used to silently run the full paper-scale
    /// suite. The parser is pure, so no env mutation is needed here.
    #[test]
    fn fast_mode_parsing_is_strict() {
        let parse = |v: &str| parse_fast_mode(Ok(v.to_string()));
        assert_eq!(parse("1"), Ok(true));
        assert_eq!(parse("0"), Ok(false));
        assert_eq!(parse(" 1 "), Ok(true), "whitespace is trimmed like the workers parser");
        assert_eq!(parse_fast_mode(Err(std::env::VarError::NotPresent)), Ok(false));
        for bad in ["true", "false", "yes", "FAST", "2", ""] {
            let err = parse(bad).unwrap_err();
            assert!(err.contains("SYBIL_BENCH_FAST"), "{err}");
            assert!(err.contains("use 1"), "error must be actionable: {err}");
        }
        // The cached accessor is stable across calls.
        assert_eq!(fast_mode(), fast_mode());
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Algo::Ergo.label(), "ERGO");
        assert_eq!(Algo::Remp(1e7).label(), "REMP-1e7");
        assert_eq!(Algo::ErgoSf(0.98).label(), "ERGO-SF(98)");
    }

    #[test]
    fn guarantee_cutoffs() {
        assert!(Algo::Ergo.guarantee_covers(1e9, 10_000));
        assert!(!Algo::Remp(1e7).guarantee_covers(2e7, 10_000));
        assert!(Algo::SybilControl.guarantee_covers(100.0, 10_000));
        assert!(!Algo::SybilControl.guarantee_covers(1e6, 10_000));
    }

    #[test]
    fn small_point_runs_end_to_end() {
        let net = networks::gnutella();
        let p = RunParams { horizon: 50.0, ..RunParams::default() };
        let point = run_point(&net, Algo::Ergo, 10.0, p);
        assert_eq!(point.algo, "ERGO");
        assert!(point.good_rate > 0.0);
        assert!(point.max_bad_fraction < 1.0 / 6.0);
    }
}
