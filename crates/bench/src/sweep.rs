//! Shared experiment machinery: algorithm roster, spend-rate sweeps, and a
//! small deterministic thread pool.

use ergo_core::defid::DefIdChecker;
use sybil_churn::model::ChurnModel;
use sybil_defenses as defs;
use sybil_sim::adversary::BudgetJoiner;
use sybil_sim::defense::Defense;
use sybil_sim::engine::{SimConfig, Simulation};
use sybil_sim::time::Time;
use sybil_sim::SimReport;

/// Every algorithm appearing in the paper's Figures 8 and 10.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algo {
    /// Plain Ergo (Figure 4).
    Ergo,
    /// CCom: constant entrance cost 1 (paper reference 98).
    CCom,
    /// SybilControl (paper reference 67).
    SybilControl,
    /// REMP with the given `Tmax` (paper reference 99, run with 10⁷).
    Remp(f64),
    /// ERGO-SF with the given classifier accuracy (Figure 8 variant: plain
    /// Ergo + classifier gate).
    ErgoSf(f64),
    /// ERGO-CH1 (Heuristics 1+2, Figure 10).
    ErgoCh1,
    /// ERGO-CH2 (Heuristics 1+2+3, Figure 10).
    ErgoCh2,
    /// ERGO-SF(x) as in Figure 10: Heuristics 1–4.
    ErgoSfFull(f64),
}

impl Algo {
    /// Builds the defense instance.
    pub fn build(&self, seed: u64) -> Box<dyn Defense> {
        match *self {
            Algo::Ergo => Box::new(defs::ergo()),
            Algo::CCom => Box::new(defs::ccom()),
            Algo::SybilControl => Box::new(defs::SybilControl::default()),
            Algo::Remp(t_max) => Box::new(defs::Remp::new(defs::RempConfig {
                t_max,
                ..defs::RempConfig::default()
            })),
            Algo::ErgoSf(acc) => Box::new(defs::ergo_sf(acc, seed)),
            Algo::ErgoCh1 => Box::new(defs::ergo_ch1()),
            Algo::ErgoCh2 => Box::new(defs::ergo_ch2()),
            Algo::ErgoSfFull(acc) => Box::new(defs::ergo_sf_full(acc, seed)),
        }
    }

    /// Display name (matches the paper's legends).
    pub fn label(&self) -> String {
        match *self {
            Algo::Ergo => "ERGO".into(),
            Algo::CCom => "CCOM".into(),
            Algo::SybilControl => "SybilControl".into(),
            Algo::Remp(t_max) => format!("REMP-{t_max:.0e}"),
            Algo::ErgoSf(acc) => format!("ERGO-SF({:.0})", acc * 100.0),
            Algo::ErgoCh1 => "ERGO-CH1".into(),
            Algo::ErgoCh2 => "ERGO-CH2".into(),
            Algo::ErgoSfFull(acc) => format!("ERGO-SF({:.0})", acc * 100.0),
        }
    }

    /// Whether this algorithm's bad-fraction guarantee covers adversary
    /// spend rate `t` at good population `n_good` (the Figure 8 curve
    /// cutoffs: SybilControl breaks past its test capacity; REMP past Tmax;
    /// the Ergo family holds for all `T` by Theorem 1).
    pub fn guarantee_covers(&self, t: f64, n_good: u64) -> bool {
        match *self {
            Algo::SybilControl => {
                t < defs::SybilControl::default().breakdown_rate(n_good, 1.0 / 6.0)
            }
            Algo::Remp(t_max) => t <= t_max,
            _ => true,
        }
    }
}

/// One measured point of a spend-rate sweep.
#[derive(Clone, Debug)]
pub struct SpendPoint {
    /// Network name.
    pub network: String,
    /// Algorithm label.
    pub algo: String,
    /// Configured adversary spend rate `T`.
    pub t: f64,
    /// Measured good spend rate `A`.
    pub good_rate: f64,
    /// Measured adversary spend rate (≤ configured `T`).
    pub adv_rate: f64,
    /// Maximum instantaneous Sybil fraction.
    pub max_bad_fraction: f64,
    /// Purges executed.
    pub purges: u64,
    /// Whether the algorithm's guarantee covers this `T` (curve cutoff).
    pub guarantee: bool,
}

/// Parameters for one spend-rate run.
#[derive(Clone, Copy, Debug)]
pub struct RunParams {
    /// Simulated seconds (paper: 10 000).
    pub horizon: f64,
    /// Adversary power fraction κ (paper: 1/18).
    pub kappa: f64,
    /// Workload / defense seed.
    pub seed: u64,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams { horizon: 10_000.0, kappa: 1.0 / 18.0, seed: 1 }
    }
}

/// Runs one (network, algorithm, T) cell and returns the measured point.
pub fn run_point(network: &ChurnModel, algo: Algo, t: f64, params: RunParams) -> SpendPoint {
    let report = run_report(network, algo, t, params);
    SpendPoint {
        network: network.name.to_string(),
        algo: algo.label(),
        t,
        good_rate: report.good_spend_rate(),
        adv_rate: report.adv_spend_rate(),
        max_bad_fraction: report.max_bad_fraction,
        purges: report.purges,
        guarantee: algo.guarantee_covers(t, network.initial_size),
    }
}

/// Runs one cell and returns the full simulation report.
pub fn run_report(network: &ChurnModel, algo: Algo, t: f64, params: RunParams) -> SimReport {
    let workload = network.generate(Time(params.horizon), params.seed);
    let cfg = SimConfig {
        horizon: Time(params.horizon),
        kappa: params.kappa,
        adv_rate: t,
        ..SimConfig::default()
    };
    let defense = algo.build(params.seed.wrapping_mul(7919).wrapping_add(13));
    Simulation::new(cfg, defense, BudgetJoiner::new(t), workload).run()
}

/// Validates the DefID invariant over a report (bad fraction < 3κ for the
/// Ergo family).
pub fn check_invariant(report: &SimReport, kappa: f64) -> bool {
    let checker = DefIdChecker::with_kappa(kappa);
    report.max_bad_fraction < checker.bound()
}

/// The Figure 8/10 adversary spend grid: `T = 2⁰ … 2²⁰` (even exponents),
/// with 0 prepended for the no-attack baseline.
pub fn t_grid() -> Vec<f64> {
    let mut grid = vec![0.0];
    grid.extend((0..=20).step_by(2).map(|e| (1u64 << e) as f64));
    grid
}

/// Runs `jobs` on `workers` threads, preserving input order of results.
pub fn run_parallel<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    assert!(workers > 0, "need at least one worker");
    let n = jobs.len();
    let queue: std::sync::Mutex<Vec<(usize, F)>> =
        std::sync::Mutex::new(jobs.into_iter().enumerate().rev().collect());
    let results: std::sync::Mutex<Vec<Option<T>>> =
        std::sync::Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n.max(1)) {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue poisoned").pop();
                let Some((idx, f)) = job else { break };
                let out = f();
                results.lock().expect("results poisoned")[idx] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("results poisoned")
        .into_iter()
        .map(|r| r.expect("job completed"))
        .collect()
}

/// Number of worker threads to use (`SYBIL_BENCH_WORKERS` overrides).
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("SYBIL_BENCH_WORKERS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// True when `SYBIL_BENCH_FAST=1`: benches shrink grids/horizons so the
/// whole suite completes in about a minute (CI mode). The full paper-scale
/// run is the default.
pub fn fast_mode() -> bool {
    std::env::var("SYBIL_BENCH_FAST").is_ok_and(|v| v == "1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sybil_churn::networks;

    #[test]
    fn t_grid_shape() {
        let g = t_grid();
        assert_eq!(g[0], 0.0);
        assert_eq!(g[1], 1.0);
        assert_eq!(*g.last().unwrap(), (1u64 << 20) as f64);
        assert_eq!(g.len(), 12);
    }

    #[test]
    fn run_parallel_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..20usize).map(|i| Box::new(move || i * i) as _).collect();
        let out = run_parallel(jobs, 4);
        assert_eq!(out, (0..20usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Algo::Ergo.label(), "ERGO");
        assert_eq!(Algo::Remp(1e7).label(), "REMP-1e7");
        assert_eq!(Algo::ErgoSf(0.98).label(), "ERGO-SF(98)");
    }

    #[test]
    fn guarantee_cutoffs() {
        assert!(Algo::Ergo.guarantee_covers(1e9, 10_000));
        assert!(!Algo::Remp(1e7).guarantee_covers(2e7, 10_000));
        assert!(Algo::SybilControl.guarantee_covers(100.0, 10_000));
        assert!(!Algo::SybilControl.guarantee_covers(1e6, 10_000));
    }

    #[test]
    fn small_point_runs_end_to_end() {
        let net = networks::gnutella();
        let p = RunParams { horizon: 50.0, ..RunParams::default() };
        let point = run_point(&net, Algo::Ergo, 10.0, p);
        assert_eq!(point.algo, "ERGO");
        assert!(point.good_rate > 0.0);
        assert!(point.max_bad_fraction < 1.0 / 6.0);
    }
}
