//! Plain-text table and CSV output for experiment results.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn push<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[c]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV to `results/<name>.csv` under the repo root,
    /// returning the path written. Errors are reported, not fatal — the
    /// printed table is the primary artifact.
    pub fn write_csv(&self, name: &str) -> Option<PathBuf> {
        let dir = results_dir();
        if fs::create_dir_all(&dir).is_err() {
            return None;
        }
        let path = dir.join(format!("{name}.csv"));
        let mut file = fs::File::create(&path).ok()?;
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut write_line = |cells: &[String]| -> std::io::Result<()> {
            writeln!(file, "{}", cells.iter().map(esc).collect::<Vec<_>>().join(","))
        };
        write_line(&self.header).ok()?;
        for row in &self.rows {
            write_line(row).ok()?;
        }
        Some(path)
    }
}

/// The directory experiment CSVs are written to.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    let raw = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    raw.canonicalize().unwrap_or(raw).join("results")
}

/// Formats a float compactly for tables (3 significant digits, scientific
/// above 10⁵).
///
/// NaN renders as an *empty* cell: it is the "no data" marker (e.g.
/// `Summary::of(&[])`, or a Figure 9 cell with zero estimator intervals),
/// and a blank keeps it distinguishable from a measured zero in both the
/// rendered table and the CSV.
pub fn fmt_num(x: f64) -> String {
    if x.is_nan() {
        String::new()
    } else if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e5 || x.abs() < 1e-3 {
        format!("{x:.2e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.push(vec!["1", "2"]);
        t.push(vec!["333", "4"]);
        let s = t.render();
        assert!(s.contains("long-header"));
        assert_eq!(s.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a"]);
        t.push(vec!["1", "2"]);
    }

    #[test]
    fn fmt_num_ranges() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(4.84848), "4.848");
        assert_eq!(fmt_num(1234.0), "1234");
        assert_eq!(fmt_num(1.0e6), "1.00e6");
        assert_eq!(fmt_num(0.0001), "1.00e-4");
    }

    #[test]
    fn fmt_num_nan_is_blank_not_zero() {
        // "No data" must stay distinguishable from a measured zero in CSVs.
        assert_eq!(fmt_num(f64::NAN), "");
        assert_ne!(fmt_num(f64::NAN), fmt_num(0.0));
    }

    #[test]
    fn csv_writes() {
        let mut t = Table::new(vec!["x", "y"]);
        t.push(vec!["1", "va,lue"]);
        let path = t.write_csv("test_table_output").expect("csv written");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"va,lue\""));
        std::fs::remove_file(path).ok();
    }
}
