//! Steady-state allocation-budget tests: the zero-allocation hot-path
//! contract, pinned per defense × per adversary spend rate.
//!
//! Each case replays a gnutella-churn workload through one defense at one
//! adversary rate `T` and measures allocator calls over exactly the
//! engine's steady-state event loop (the span `Simulation::run_spanned`
//! brackets — construction and `Defense::init`, where capacity reserves
//! are free, fall outside it; see crates/sim/README.md, "Allocation
//! budget"). The warm-up is structural: everything before the span is the
//! warm-up, and the assertion covers every event after it.
//!
//! The measurements are only live when this binary is built with
//! `--features alloc-count` (the CI `alloc` job does); without it the
//! counters read zero structurally and the budget assertions are
//! vacuous, so the cases still run as behavioral smoke but say so.

use sybil_bench::sweep::{run_report_measured, Algo, RunParams};
use sybil_churn::networks;

// Under `alloc-count` every heap allocation in this process is counted on
// thread-local counters; each test thread measures its own span.
#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: sybil_exp::alloc::CountingAlloc = sybil_exp::alloc::CountingAlloc;

/// Asserts the steady-state loop of one (defense, T) cell allocates
/// nothing — when the counting allocator is registered.
fn assert_zero_budget(algo: Algo, t: f64) {
    let net = networks::gnutella();
    let params = RunParams { horizon: 1000.0, seed: 1, ..RunParams::default() };
    let (report, allocs) = run_report_measured(&net, algo, t, params);
    // The run must have actually exercised the hot path.
    assert!(
        report.good_joins_admitted + report.bad_joins_admitted > 0,
        "{algo:?} T={t}: cell admitted nothing; the budget span covered no work"
    );
    if sybil_exp::counting_enabled() {
        assert_eq!(
            allocs.allocs, 0,
            "{algo:?} T={t}: {} allocation(s) ({} bytes) in the steady-state event loop — \
             the zero-allocation contract is broken",
            allocs.allocs, allocs.bytes
        );
    } else {
        eprintln!("note: {algo:?} T={t} ran without --features alloc-count; budget not measured");
    }
}

#[test]
fn ergo_family_steady_state_allocates_nothing() {
    for t in [0.0, 1024.0, 65_536.0] {
        assert_zero_budget(Algo::Ergo, t);
        assert_zero_budget(Algo::ErgoCh1, t);
        assert_zero_budget(Algo::ErgoCh2, t);
    }
}

#[test]
fn ccom_steady_state_allocates_nothing() {
    for t in [0.0, 1024.0, 65_536.0] {
        assert_zero_budget(Algo::CCom, t);
    }
}

#[test]
fn sybilcontrol_steady_state_allocates_nothing() {
    for t in [0.0, 64.0, 4096.0] {
        assert_zero_budget(Algo::SybilControl, t);
    }
}

#[test]
fn remp_steady_state_allocates_nothing() {
    for t in [0.0, 1024.0] {
        assert_zero_budget(Algo::Remp(1e7), t);
    }
}

#[test]
fn ergo_sf_steady_state_allocates_nothing() {
    for t in [0.0, 1024.0] {
        assert_zero_budget(Algo::ErgoSf(0.9), t);
    }
}

/// Regression pin for the buffer-reuse refactor: `drain_events_into`
/// must yield exactly what the allocating `drain_events` wrapper yields —
/// same events, same order, at every drain point — and must *append* to
/// a non-empty buffer rather than clobber it.
#[test]
fn drain_events_into_matches_the_allocating_api() {
    use sybil_sim::defense::{Defense, DefenseEvent};
    use sybil_sim::time::Time;

    // Two identical defenses driven through the identical call sequence;
    // only the drain API differs.
    let mut a = sybil_defenses::ergo();
    let mut b = sybil_defenses::ergo();
    let drive = |d: &mut dyn Defense, drains: &mut Vec<Vec<DefenseEvent>>, into: bool| {
        let mut buf = Vec::new();
        d.init(Time(0.0), 50, 10);
        let mut now = 0.0;
        for step in 0..200u64 {
            now += 7.0;
            d.good_join(Time(now));
            if step % 5 == 0 {
                d.bad_join_batch(Time(now), sybil_sim::cost::Cost(100.0), 4);
            }
            if step % 3 == 0 {
                d.good_depart(Time(now), Time(now - 20.0));
            }
            if d.purge_due(Time(now)) {
                d.purge(Time(now), 2);
                if into {
                    buf.clear();
                    d.drain_events_into(&mut buf);
                    drains.push(buf.clone());
                } else {
                    drains.push(d.drain_events());
                }
            }
        }
        if into {
            buf.clear();
            d.drain_events_into(&mut buf);
            drains.push(buf);
        } else {
            drains.push(d.drain_events());
        }
    };
    let mut via_vec = Vec::new();
    let mut via_into = Vec::new();
    drive(&mut a, &mut via_vec, false);
    drive(&mut b, &mut via_into, true);
    assert!(via_vec.iter().map(Vec::len).sum::<usize>() > 0, "the drive produced no events");
    assert_eq!(via_vec, via_into, "drain_events and drain_events_into diverged");

    // Append semantics: draining into a non-empty buffer keeps what was
    // already there and appends after it.
    let mut c = sybil_defenses::ergo();
    c.init(Time(0.0), 50, 10);
    for step in 1..=100u64 {
        c.good_join(Time(step as f64 * 7.0));
    }
    let now = Time(700.0);
    if c.purge_due(now) {
        c.purge(now, 0);
    }
    let sentinel = DefenseEvent::PurgeCompleted { at: Time(-1.0), members_after: 999 };
    let mut seeded = vec![sentinel];
    c.drain_events_into(&mut seeded);
    assert_eq!(seeded[0], sentinel, "drain_events_into must append, not clobber");
}
