//! Integration tests for the `sybil-exp` workload cache feeding real
//! simulation cells: cold and warm cache runs must produce bit-identical
//! `SimReport`s, and a corrupted cache entry must be rejected and
//! regenerated — never silently replayed.

use std::path::PathBuf;
use sybil_bench::sweep::{defense_seed, run_report_with, Algo};
use sybil_churn::networks;
use sybil_exp::WorkloadCache;
use sybil_sim::engine::SimConfig;
use sybil_sim::time::Time;
use sybil_sim::SimReport;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sybil_exp_cache_it_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the small (algo × T) cell grid against cache-served workloads.
fn run_cells(cache: &WorkloadCache, horizon: f64, seed: u64) -> Vec<SimReport> {
    let net = networks::gnutella();
    let mut reports = Vec::new();
    for algo in [Algo::Ergo, Algo::CCom] {
        for t in [0.0, 256.0] {
            let disk = cache.get_or_create(&net, Time(horizon), seed).expect("cache entry");
            let cfg = SimConfig { horizon: Time(horizon), adv_rate: t, ..SimConfig::default() };
            reports.push(run_report_with(cfg, algo, t, defense_seed(seed), disk));
        }
    }
    reports
}

#[test]
fn cold_and_warm_cache_runs_are_bit_identical() {
    let dir = temp_dir("coldwarm");
    let (horizon, seed) = (120.0, 7u64);

    let cold_cache = WorkloadCache::open(&dir).unwrap();
    let cold = run_cells(&cold_cache, horizon, seed);
    let stats = cold_cache.stats();
    assert_eq!(stats.misses, 1, "one workload generation for the whole grid");
    assert_eq!(stats.hits, 3, "remaining cells replay the cached file");

    // A fresh cache handle over the same directory: every cell is a hit.
    let warm_cache = WorkloadCache::open(&dir).unwrap();
    let warm = run_cells(&warm_cache, horizon, seed);
    let stats = warm_cache.stats();
    assert_eq!((stats.hits, stats.misses), (4, 0));

    // Full `SimReport` equality — every counter, ledger entry, and float
    // bit — between runs fed by generation-then-replay and replay-only.
    assert_eq!(cold, warm);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_cache_entry_is_regenerated_not_replayed() {
    let dir = temp_dir("corrupt");
    let (horizon, seed) = (120.0, 9u64);
    let net = networks::gnutella();

    let cache = WorkloadCache::open(&dir).unwrap();
    let reference = run_cells(&cache, horizon, seed);
    let entry = cache.entry_path(&net, Time(horizon), seed);
    let good_bytes = std::fs::read(&entry).unwrap();

    // Truncation: the header length check must reject it.
    std::fs::write(&entry, &good_bytes[..good_bytes.len() - 9]).unwrap();
    let after_truncation = run_cells(&cache, horizon, seed);
    assert!(cache.stats().rejected >= 1, "truncated entry must be rejected");
    assert_eq!(reference, after_truncation);
    assert_eq!(
        std::fs::read(&entry).unwrap(),
        good_bytes,
        "regenerated entry must be byte-identical to the original"
    );

    // Garbage bytes: the magic check must reject it.
    std::fs::write(&entry, b"not a workload file at all").unwrap();
    let after_garbage = run_cells(&cache, horizon, seed);
    assert!(cache.stats().rejected >= 2, "garbage entry must be rejected");
    assert_eq!(reference, after_garbage);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn distinct_grid_seeds_share_nothing() {
    // Paranoia for the content addressing: two trials of the same model
    // must land in distinct entries and produce distinct reports.
    let dir = temp_dir("seeds");
    let cache = WorkloadCache::open(&dir).unwrap();
    let net = networks::gnutella();
    let a = cache.entry_path(&net, Time(120.0), 1);
    let b = cache.entry_path(&net, Time(120.0), 2);
    assert_ne!(a, b);
    let ra = run_cells(&cache, 120.0, 1);
    let rb = run_cells(&cache, 120.0, 2);
    assert_ne!(ra[0], rb[0], "different workload seeds must differ observably");
    std::fs::remove_dir_all(&dir).ok();
}
