//! Shard equivalence at the bench layer: the *real* paper defenses and
//! registry adversaries, not the sim crate's unit-cost stand-ins.
//!
//! The sim-crate suite (`crates/sim/tests/shard_equivalence.rs`) pins the
//! engine's merge order; this one pins that nothing in the defense stack
//! — entrance-cost math, purge scheduling, classifier gates, REMP's
//! rate-limiting — observes the shard count either. Every run is compared
//! as a full [`SimReport`] bit pattern across S ∈ {1, 2, 3, 5, 7, 16, 32},
//! in memory and disk-streamed.

use sybil_bench::sweep::{defense_seed, run_report_with, Algo, AlgoVisitor};
use sybil_churn::networks;
use sybil_sim::adversary::{build_strategy, Adversary, StrategyParams, STRATEGY_NAMES};
use sybil_sim::defense::Defense;
use sybil_sim::engine::{SimConfig, Simulation};
use sybil_sim::time::Time;
use sybil_sim::workload_io::{write_workload_file, DiskWorkload};
use sybil_sim::{ShardedWorkload, SimReport, Workload};

/// The shard counts the acceptance criteria pin. 5 and 32 exercise the
/// sharded defense state (per-shard admission slices and ledgers); a
/// prime-heavy set against the generated gnutella trace guarantees
/// non-divisor (ragged-slice) layouts at several scales.
const SHARD_COUNTS: [usize; 7] = [1, 2, 3, 5, 7, 16, 32];

fn workload(horizon: f64) -> Workload {
    networks::gnutella().generate(Time(horizon), 9)
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sybil_bench_shard_eq_{tag}_{}.wkld", std::process::id()))
}

/// Every Figure-8/10 roster defense, BudgetJoiner adversary, S-invariant.
#[test]
fn real_defenses_are_shard_invariant() {
    let horizon = 120.0;
    let w = workload(horizon);
    let path = temp_path("defenses");
    write_workload_file(&path, &w).expect("write workload");
    let t = 512.0;
    let cfg = SimConfig { horizon: Time(horizon), adv_rate: t, ..SimConfig::default() };
    let roster = [
        Algo::Ergo,
        Algo::CCom,
        Algo::SybilControl,
        Algo::Remp(1e7),
        Algo::ErgoSf(0.95),
        Algo::ErgoCh1,
        Algo::ErgoCh2,
        Algo::ErgoSfFull(0.95),
    ];
    for algo in roster {
        let run = |source: ShardedWorkload| run_report_with(cfg, algo, t, defense_seed(1), source);
        let baseline = run(ShardedWorkload::from_workload(w.clone(), 1));
        for shards in SHARD_COUNTS {
            let mem = run(ShardedWorkload::from_workload(w.clone(), shards));
            assert_eq!(mem, baseline, "{}: memory, {shards} shards", algo.label());
            let disk = DiskWorkload::open(&path).expect("open workload");
            let dsk = run(ShardedWorkload::from_disk(disk, shards));
            assert_eq!(dsk, baseline, "{}: disk, {shards} shards", algo.label());
        }
    }
    std::fs::remove_file(&path).ok();
}

/// Every registered attack strategy against a real defense, S-invariant.
#[test]
fn registry_strategies_are_shard_invariant_under_a_real_defense() {
    struct Runner {
        cfg: SimConfig,
        adversary: Box<dyn Adversary>,
        source: ShardedWorkload,
    }
    impl AlgoVisitor for Runner {
        type Out = SimReport;
        fn visit<D: Defense + 'static>(self, defense: D) -> SimReport {
            Simulation::new(self.cfg, defense, self.adversary, self.source).run()
        }
    }

    let horizon = 100.0;
    let w = workload(horizon);
    let path = temp_path("strategies");
    write_workload_file(&path, &w).expect("write workload");
    let t = 64.0;
    let cfg = SimConfig { horizon: Time(horizon), adv_rate: t, ..SimConfig::default() };
    let params = StrategyParams::rate(t).with_target_fraction(0.25).with_seed(5);
    for strategy in STRATEGY_NAMES {
        let run = |source: ShardedWorkload| {
            let adversary = build_strategy(strategy, &params).expect("registry strategy");
            Algo::Ergo.dispatch(defense_seed(2), Runner { cfg, adversary, source })
        };
        let baseline = run(ShardedWorkload::from_workload(w.clone(), 1));
        for shards in SHARD_COUNTS {
            let mem = run(ShardedWorkload::from_workload(w.clone(), shards));
            assert_eq!(mem, baseline, "{strategy}: memory, {shards} shards");
            let disk = DiskWorkload::open(&path).expect("open workload");
            let dsk = run(ShardedWorkload::from_disk(disk, shards));
            assert_eq!(dsk, baseline, "{strategy}: disk, {shards} shards");
        }
    }
    std::fs::remove_file(&path).ok();
}
