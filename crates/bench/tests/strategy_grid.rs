//! Store-level integration tests for strategy-axis experiment grids: a
//! grid whose cells differ only in their adversary-strategy axis value
//! must record one distinct results-store key per strategy, resume from
//! the store without re-executing, and keep warm records bit-identical.

use sybil_bench::invariants_exp::{run_invariant_grid, strategy_roster};
use sybil_bench::table::results_dir;
use sybil_churn::networks;
use sybil_exp::spec::{Axis, AXIS_NETWORK, AXIS_STRATEGY, AXIS_T};
use sybil_exp::{ExperimentSpec, ResultsStore};
use sybil_sim::engine::SimConfig;

/// Rebuilds the exact spec `run_invariant_grid` derives, so the test can
/// enumerate the canonical cell ids the store must contain.
fn expected_spec(name: &str, trials: u32, horizon: f64, seed: u64) -> ExperimentSpec {
    ExperimentSpec {
        name: name.into(),
        axes: vec![
            Axis::strs(AXIS_NETWORK, ["gnutella"]),
            Axis::strs(AXIS_STRATEGY, strategy_roster().iter().map(|s| s.to_string())),
            Axis::floats(AXIS_T, [2_000.0]),
        ],
        trials,
        horizon,
        kappa: SimConfig::default().kappa,
        seed,
    }
}

#[test]
fn strategy_axis_grid_resumes_from_the_store_with_distinct_keys() {
    let name = format!("strategy-grid-test-{}", std::process::id());
    let nets = [networks::gnutella()];
    let (trials, horizon, seed) = (2u32, 100.0, 31u64);
    let run =
        || run_invariant_grid(&name, &nets, &strategy_roster(), &[2_000.0], trials, horizon, seed);

    let (cold_rows, cold) = run();
    assert_eq!(cold.cells_total, strategy_roster().len());
    assert_eq!(cold.cells_executed, strategy_roster().len());

    // Store level: one distinct key per strategy cell, under the exact
    // canonical ids the spec derives — no two strategies may alias.
    let spec = expected_spec(&name, trials, horizon, seed);
    let store_path = results_dir().join(format!("{name}.store"));
    let spec_path = results_dir().join(format!("{name}.spec"));
    let written_spec = std::fs::read_to_string(&spec_path).expect("spec written for provenance");
    assert_eq!(written_spec, spec.to_text(), "driver spec drifted from the test's expectation");
    // Any fingerprint opens the file enough to count keys; use a fresh
    // store handle bound to a bogus fingerprint to prove mismatches
    // rebuild rather than resume.
    let (bogus, resumed) = ResultsStore::open(&store_path, "not-the-fingerprint").unwrap();
    assert!(!resumed, "a changed fingerprint must not resume");
    assert_eq!(bogus.len(), 0);
    drop(bogus);

    // Re-run: the bogus open above truncated the store (fingerprint
    // mismatch ⇒ rebuild), so the grid re-executes and re-records.
    let (rows_after_invalidation, summary) = run();
    assert_eq!(summary.cells_executed, strategy_roster().len());
    for (a, b) in cold_rows.iter().zip(&rows_after_invalidation) {
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(
            a.max_bad_fraction.mean.to_bits(),
            b.max_bad_fraction.mean.to_bits(),
            "{}: deterministic re-run must reproduce the cell bit-exactly",
            a.strategy
        );
    }

    // Warm: every cell resumes; the store holds exactly |grid| keys with
    // the canonical ids.
    let (warm_rows, warm) = run();
    assert_eq!(warm.cells_executed, 0);
    assert_eq!(warm.cells_skipped, strategy_roster().len());
    for (a, b) in rows_after_invalidation.iter().zip(&warm_rows) {
        assert_eq!(a.good_rate.mean.to_bits(), b.good_rate.mean.to_bits());
    }
    let fingerprint_line = std::fs::read_to_string(&store_path).expect("store readable");
    let ids: Vec<String> = spec.cells().iter().map(|c| c.id()).collect();
    for id in &ids {
        assert!(fingerprint_line.contains(id.as_str()), "store lacks canonical cell id {id}");
        assert!(id.contains("strategy="), "{id} lost the strategy axis");
    }
    assert_eq!(
        ids.iter().collect::<std::collections::BTreeSet<_>>().len(),
        strategy_roster().len(),
        "strategy cells must map to distinct store keys"
    );

    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(&spec_path).ok();
}
