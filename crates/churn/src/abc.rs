//! The ABC (α,β-smoothness) churn model: epoch detection, smoothness
//! measurement, and a compliant trace generator (paper Sections 2.1 and 5).
//!
//! **Epochs** partition time: an epoch ends when the symmetric difference
//! between the good-ID sets at its start and now *exceeds* 1/2 the good
//! population at its start. Per-epoch good join rates `ρᵢ` then define:
//!
//! * **α-smoothness** — `(1/α)ρᵢ₋₁ ≤ ρᵢ ≤ αρᵢ₋₁`: consecutive epochs' rates
//!   differ by at most an `α` factor (but may drift *exponentially* across
//!   epochs, which is what "churn rate that can vary exponentially" means).
//! * **β-smoothness** — within an epoch, any `ℓ`-second duration sees between
//!   `⌊ℓρᵢ/β⌋` and `⌈βℓρᵢ⌉` joins and at most `⌈βℓρᵢ⌉` departures: `β`
//!   bounds burstiness.
//!
//! [`detect_epochs`] replays a [`Workload`] and recovers its epochs;
//! [`measure_alpha`] / [`estimate_beta`] measure empirical smoothness; and
//! [`AbcTraceGenerator`] produces workloads with prescribed `(α, β)`, used
//! by the property tests that validate the paper's epoch/interval/iteration
//! translation lemmas (Lemmas 1 and 11).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sybil_sim::time::Time;
use sybil_sim::workload::{Session, Workload};

/// One detected epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Epoch {
    /// Epoch start.
    pub start: Time,
    /// Epoch end (when the symmetric difference exceeded the threshold).
    pub end: Time,
    /// Good joins during the epoch.
    pub joins: u64,
    /// Good departures during the epoch.
    pub departs: u64,
    /// Good population at the epoch start.
    pub start_size: u64,
}

impl Epoch {
    /// Epoch length in seconds.
    pub fn len(&self) -> f64 {
        self.end - self.start
    }

    /// True for zero-length epochs (cannot occur from [`detect_epochs`]).
    pub fn is_empty(&self) -> bool {
        self.len() <= 0.0
    }

    /// The good join rate `ρ` of this epoch (joins per second).
    pub fn rho(&self) -> f64 {
        self.joins as f64 / self.len()
    }
}

/// A single replayed churn event (shared by epoch analysis and tests).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChurnEvent {
    /// A good ID joins at this time.
    Join(Time),
    /// A good ID that joined at `joined_at` departs at `at`.
    Depart {
        /// Departure time.
        at: Time,
        /// The departing ID's join time (0 for initial members).
        joined_at: Time,
    },
}

impl ChurnEvent {
    /// The event's time.
    pub fn at(&self) -> Time {
        match *self {
            ChurnEvent::Join(t) => t,
            ChurnEvent::Depart { at, .. } => at,
        }
    }
}

/// Flattens a workload into a time-sorted event stream up to `horizon`.
pub fn event_stream(workload: &Workload, horizon: Time) -> Vec<ChurnEvent> {
    let mut events = Vec::new();
    for &d in &workload.initial_departures {
        if d <= horizon {
            events.push(ChurnEvent::Depart { at: d, joined_at: Time::ZERO });
        }
    }
    for s in &workload.sessions {
        if s.join <= horizon {
            events.push(ChurnEvent::Join(s.join));
            if s.depart <= horizon {
                events.push(ChurnEvent::Depart { at: s.depart, joined_at: s.join });
            }
        }
    }
    events.sort_by_key(ChurnEvent::at);
    events
}

/// Replays the workload's good events and returns its epochs.
///
/// An epoch ends when `|G(t') △ G(t)| > threshold · |G(t)|` (the paper's
/// threshold is 1/2, passed as `(1, 2)`).
pub fn detect_epochs(workload: &Workload, horizon: Time, threshold: (u64, u64)) -> Vec<Epoch> {
    let (num, den) = threshold;
    assert!(den > 0, "threshold denominator must be nonzero");
    let mut epochs = Vec::new();
    let mut start = Time::ZERO;
    let mut start_size = workload.initial_size();
    let mut size = start_size;
    let mut old_departed = 0u64;
    let mut new_present = 0u64;
    let mut joins = 0u64;
    let mut departs = 0u64;

    for ev in event_stream(workload, horizon) {
        match ev {
            ChurnEvent::Join(t) => {
                size += 1;
                new_present += 1;
                joins += 1;
                maybe_close(
                    &mut epochs,
                    &mut start,
                    &mut start_size,
                    size,
                    &mut old_departed,
                    &mut new_present,
                    &mut joins,
                    &mut departs,
                    t,
                    num,
                    den,
                );
            }
            ChurnEvent::Depart { at, joined_at } => {
                size = size.saturating_sub(1);
                departs += 1;
                if joined_at <= start {
                    old_departed += 1;
                } else {
                    new_present = new_present.saturating_sub(1);
                }
                maybe_close(
                    &mut epochs,
                    &mut start,
                    &mut start_size,
                    size,
                    &mut old_departed,
                    &mut new_present,
                    &mut joins,
                    &mut departs,
                    at,
                    num,
                    den,
                );
            }
        }
    }
    epochs
}

#[allow(clippy::too_many_arguments)]
fn maybe_close(
    epochs: &mut Vec<Epoch>,
    start: &mut Time,
    start_size: &mut u64,
    size: u64,
    old_departed: &mut u64,
    new_present: &mut u64,
    joins: &mut u64,
    departs: &mut u64,
    now: Time,
    num: u64,
    den: u64,
) {
    let symdiff = *old_departed + *new_present;
    // Epoch ends when symdiff *exceeds* threshold × start size.
    if (symdiff as u128) * (den as u128) > (*start_size as u128) * (num as u128) && now > *start {
        epochs.push(Epoch {
            start: *start,
            end: now,
            joins: *joins,
            departs: *departs,
            start_size: *start_size,
        });
        *start = now;
        *start_size = size;
        *old_departed = 0;
        *new_present = 0;
        *joins = 0;
        *departs = 0;
    }
}

/// The empirical α: the largest ratio between consecutive epochs' join rates.
///
/// Returns 1.0 when fewer than two epochs exist.
pub fn measure_alpha(epochs: &[Epoch]) -> f64 {
    let mut alpha = 1.0f64;
    for pair in epochs.windows(2) {
        let (a, b) = (pair[0].rho(), pair[1].rho());
        if a > 0.0 && b > 0.0 {
            alpha = alpha.max(b / a).max(a / b);
        }
    }
    alpha
}

/// Empirically estimates β by probing windows of several lengths inside each
/// epoch and finding the smallest β consistent with the observed join and
/// departure counts.
///
/// The estimate is a lower bound on the true β (only sampled windows are
/// checked) but converges quickly in practice.
pub fn estimate_beta(workload: &Workload, epochs: &[Epoch], horizon: Time) -> f64 {
    let events = event_stream(workload, horizon);
    let mut beta = 1.0f64;
    for ep in epochs {
        let rho = ep.rho();
        if rho <= 0.0 || ep.len() <= 0.0 {
            continue;
        }
        // Probe dyadic window lengths down from the epoch length.
        let mut window = ep.len();
        while window * rho >= 1.0 {
            for k in 0..4 {
                let w_start = ep.start.as_secs() + (ep.len() - window) * (k as f64 / 3.0).min(1.0);
                let w_end = w_start + window;
                let mut joins = 0u64;
                let mut departs = 0u64;
                for ev in &events {
                    let t = ev.at().as_secs();
                    if t <= w_start {
                        continue;
                    }
                    if t > w_end {
                        break;
                    }
                    match ev {
                        ChurnEvent::Join(_) => joins += 1,
                        ChurnEvent::Depart { .. } => departs += 1,
                    }
                }
                let expected = window * rho;
                // joins ≤ ⌈β·expected⌉  ⇒  β ≥ (joins − 1)/expected
                beta = beta.max((joins.saturating_sub(1)) as f64 / expected);
                beta = beta.max((departs.saturating_sub(1)) as f64 / expected);
                // joins ≥ ⌊expected/β⌋  ⇒  β ≥ expected/(joins + 1)
                beta = beta.max(expected / (joins + 1) as f64);
            }
            window /= 2.0;
        }
    }
    beta
}

/// Generates workloads with prescribed `(α, β)` smoothness.
///
/// Each epoch keeps the population size-stable (departures pace joins, the
/// Figure 2 illustration); the join rate steps by a factor drawn from
/// `[1/α, α]` at each epoch boundary; and events arrive in clumps of `≈ β`
/// (β = 1 means perfectly regular spacing).
#[derive(Clone, Copy, Debug)]
pub struct AbcTraceGenerator {
    /// Good population at t = 0 (stays ≈ constant).
    pub n0: u64,
    /// Join rate of the first epoch, IDs/second.
    pub rho0: f64,
    /// α-smoothness bound used for rate steps.
    pub alpha: f64,
    /// β-burstiness: events arrive in clumps of `⌈β⌉`.
    pub beta: f64,
    /// Number of epochs to generate.
    pub epochs: u32,
}

impl AbcTraceGenerator {
    /// Generates the workload.
    ///
    /// # Panics
    ///
    /// Panics if parameters are non-positive or `alpha, beta < 1`.
    pub fn generate(&self, seed: u64) -> Workload {
        assert!(self.n0 > 0 && self.rho0 > 0.0);
        assert!(self.alpha >= 1.0 && self.beta >= 1.0, "alpha and beta must be >= 1");
        assert!(self.epochs > 0);
        let mut rng = StdRng::seed_from_u64(seed);

        // Alive members: (joined_at, index into sessions or initial).
        #[derive(Clone, Copy)]
        enum Member {
            Initial(usize),
            Arrival(usize),
        }
        // Members never selected to depart keep the infinite sentinel until
        // the end, where it is replaced by a finite far-future time;
        // `Session::new` rejects non-finite times, so joins and departure
        // sentinels are tracked in parallel vectors and zipped into
        // sessions only after the replacement.
        let far = Time(f64::INFINITY);
        let mut initial_departures = vec![far; self.n0 as usize];
        let mut session_joins: Vec<Time> = Vec::new();
        let mut session_departs: Vec<Time> = Vec::new();
        let mut alive: Vec<(Time, Member)> =
            (0..self.n0 as usize).map(|i| (Time::ZERO, Member::Initial(i))).collect();

        let mut t = 0.0f64;
        let mut rho = self.rho0;
        let clump = self.beta.ceil().max(1.0) as u64;

        for _ in 0..self.epochs {
            let epoch_start = Time(t);
            let start_size = alive.len() as u64;
            // Symmetric difference of *good* sets vs epoch start.
            let mut old_departed = 0u64;
            let mut new_present = 0u64;
            // Events come in clump pairs: `clump` joins then `clump`
            // departures, every `clump/rho` seconds each.
            let step = clump as f64 / rho;
            loop {
                // Joins.
                t += step / 2.0;
                for _ in 0..clump {
                    let join = Time(t);
                    session_joins.push(join);
                    session_departs.push(far);
                    alive.push((join, Member::Arrival(session_joins.len() - 1)));
                    new_present += 1;
                }
                // Departures: uniform random members, matching the join count.
                t += step / 2.0;
                for _ in 0..clump {
                    if alive.is_empty() {
                        break;
                    }
                    let idx = rng.gen_range(0..alive.len());
                    let (joined_at, member) = alive.swap_remove(idx);
                    let depart = Time(t);
                    match member {
                        Member::Initial(i) => initial_departures[i] = depart,
                        Member::Arrival(i) => session_departs[i] = depart,
                    }
                    if joined_at <= epoch_start {
                        old_departed += 1;
                    } else {
                        new_present = new_present.saturating_sub(1);
                    }
                }
                if 2 * (old_departed + new_present) > start_size {
                    break;
                }
            }
            // Next epoch's rate: a log-uniform factor in [1/alpha, alpha].
            let log_f = rng.gen_range(-self.alpha.ln()..=self.alpha.ln());
            rho *= log_f.exp();
        }

        // Members never selected to depart leave far beyond any horizon.
        let horizon_guard = Time(t * 10.0 + 1e7);
        for d in &mut initial_departures {
            if d.as_secs().is_infinite() {
                *d = horizon_guard;
            }
        }
        let sessions: Vec<Session> = session_joins
            .into_iter()
            .zip(session_departs)
            .map(|(join, depart)| {
                Session::new(
                    join,
                    if depart.as_secs().is_infinite() { horizon_guard } else { depart },
                )
            })
            .collect();
        Workload::new(initial_departures, sessions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> AbcTraceGenerator {
        AbcTraceGenerator { n0: 400, rho0: 2.0, alpha: 2.0, beta: 1.0, epochs: 6 }
    }

    #[test]
    fn generated_trace_is_valid() {
        let w = generator().generate(1);
        w.validate().unwrap();
        assert_eq!(w.initial_size(), 400);
        assert!(!w.sessions.is_empty());
    }

    #[test]
    fn epochs_are_detected() {
        let w = generator().generate(2);
        let horizon = Time(1e6);
        let epochs = detect_epochs(&w, horizon, (1, 2));
        // The generator stops mid-way through its final epoch's boundary
        // condition, so we see ≈ the configured number.
        assert!((epochs.len() as i64 - 6).unsigned_abs() <= 1, "found {} epochs", epochs.len());
        for ep in &epochs {
            assert!(ep.len() > 0.0);
            assert!(!ep.is_empty());
            assert!(ep.joins > 0);
            // Size-stable: joins ≈ departs.
            let ratio = ep.joins as f64 / ep.departs.max(1) as f64;
            assert!((0.5..2.0).contains(&ratio), "joins/departs {ratio}");
        }
    }

    #[test]
    fn epoch_rho_tracks_generator_rate() {
        // With alpha = 1 the rate never changes; every epoch's rho ≈ rho0.
        let w = AbcTraceGenerator { alpha: 1.0, ..generator() }.generate(3);
        let epochs = detect_epochs(&w, Time(1e6), (1, 2));
        for ep in &epochs {
            assert!((ep.rho() - 2.0).abs() < 0.5, "epoch rho {} vs configured 2.0", ep.rho());
        }
    }

    #[test]
    fn measured_alpha_respects_configured_bound() {
        let w = generator().generate(4);
        let epochs = detect_epochs(&w, Time(1e6), (1, 2));
        let alpha = measure_alpha(&epochs);
        // Epoch boundaries detected at replay differ slightly from the
        // generator's internal boundaries, so allow slack.
        assert!(alpha <= 2.0 * 1.5, "measured alpha {alpha}");
        assert!(alpha >= 1.0);
    }

    #[test]
    fn beta_estimate_grows_with_clumping() {
        let smooth = AbcTraceGenerator { beta: 1.0, ..generator() }.generate(5);
        let bursty = AbcTraceGenerator { beta: 8.0, ..generator() }.generate(5);
        let h = Time(1e6);
        let b_smooth = estimate_beta(&smooth, &detect_epochs(&smooth, h, (1, 2)), h);
        let b_bursty = estimate_beta(&bursty, &detect_epochs(&bursty, h, (1, 2)), h);
        assert!(b_bursty > b_smooth, "bursty {b_bursty} should exceed smooth {b_smooth}");
        assert!(b_smooth < 4.0, "smooth trace measured beta {b_smooth}");
    }

    #[test]
    fn event_stream_is_sorted_and_complete() {
        let w = Workload::new(
            vec![Time(5.0), Time(15.0)],
            vec![Session::new(Time(1.0), Time(3.0)), Session::new(Time(2.0), Time(100.0))],
        );
        let evs = event_stream(&w, Time(50.0));
        assert_eq!(evs.len(), 5); // 2 joins + 2 initial departs + 1 session depart
        assert!(evs.windows(2).all(|p| p[0].at() <= p[1].at()));
        // The session departing at 100 is beyond the horizon.
        assert!(evs.iter().all(|e| e.at() <= Time(50.0)));
    }

    #[test]
    fn alpha_of_uniform_trace_is_one() {
        let epochs = vec![
            Epoch { start: Time(0.0), end: Time(10.0), joins: 20, departs: 20, start_size: 40 },
            Epoch { start: Time(10.0), end: Time(20.0), joins: 20, departs: 20, start_size: 40 },
        ];
        assert_eq!(measure_alpha(&epochs), 1.0);
        assert_eq!(measure_alpha(&epochs[..1]), 1.0);
    }

    #[test]
    fn exponential_rate_growth_across_epochs_is_allowed() {
        // α-smoothness permits ρ to double every epoch: verify the detector
        // simply reports it (rates 2, 4, 8, ...).
        let epochs = vec![
            Epoch { start: Time(0.0), end: Time(10.0), joins: 20, departs: 20, start_size: 40 },
            Epoch { start: Time(10.0), end: Time(15.0), joins: 20, departs: 20, start_size: 40 },
            Epoch { start: Time(15.0), end: Time(17.5), joins: 20, departs: 20, start_size: 40 },
        ];
        let alpha = measure_alpha(&epochs);
        assert!((alpha - 2.0).abs() < 1e-9);
    }
}
