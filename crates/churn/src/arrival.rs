//! Arrival processes for good-ID joins.

use rand::Rng;
use sybil_sim::dist::{Exponential, Sample};

/// A point process generating join times.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at `rate` IDs/second (the paper's
    /// Gnutella model uses rate 1).
    Poisson {
        /// Arrival rate, IDs/second.
        rate: f64,
    },
    /// Poisson arrivals with a sinusoidally modulated rate
    /// `rate(t) = base·(1 + amplitude·sin(2πt/period))` — a diurnal pattern,
    /// used by the synthetic Bitcoin workload.
    Diurnal {
        /// Mean arrival rate, IDs/second.
        base: f64,
        /// Relative modulation amplitude in `[0, 1)`.
        amplitude: f64,
        /// Modulation period, seconds (86 400 for a day).
        period: f64,
    },
    /// Deterministic arrivals every `1/rate` seconds (tests and the β = 1
    /// illustrations in the paper's Figure 2).
    Regular {
        /// Arrival rate, IDs/second.
        rate: f64,
    },
}

impl ArrivalProcess {
    /// The long-run mean arrival rate.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Diurnal { base, .. } => base,
            ArrivalProcess::Regular { rate } => rate,
        }
    }

    /// Generates all arrival times in `(0, horizon]`, sorted ascending.
    pub fn arrivals<R: Rng + ?Sized>(&self, horizon: f64, rng: &mut R) -> Vec<f64> {
        assert!(horizon >= 0.0 && horizon.is_finite());
        let mut out = Vec::new();
        match *self {
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0, "rate must be positive");
                let inter = Exponential::with_rate(rate);
                let mut t = inter.sample(rng);
                while t <= horizon {
                    out.push(t);
                    t += inter.sample(rng);
                }
            }
            ArrivalProcess::Diurnal { base, amplitude, period } => {
                assert!(base > 0.0, "base rate must be positive");
                assert!((0.0..1.0).contains(&amplitude), "amplitude must be in [0,1)");
                assert!(period > 0.0, "period must be positive");
                // Thinning (Lewis–Shedler): propose at the max rate, accept
                // with probability rate(t)/max.
                let max_rate = base * (1.0 + amplitude);
                let inter = Exponential::with_rate(max_rate);
                let mut t = inter.sample(rng);
                while t <= horizon {
                    let rate_t =
                        base * (1.0 + amplitude * (std::f64::consts::TAU * t / period).sin());
                    if rng.gen::<f64>() * max_rate < rate_t {
                        out.push(t);
                    }
                    t += inter.sample(rng);
                }
            }
            ArrivalProcess::Regular { rate } => {
                assert!(rate > 0.0, "rate must be positive");
                let step = 1.0 / rate;
                let mut t = step;
                while t <= horizon {
                    out.push(t);
                    t += step;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_rate_converges() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = ArrivalProcess::Poisson { rate: 2.0 }.arrivals(50_000.0, &mut rng);
        let rate = a.len() as f64 / 50_000.0;
        assert!((rate - 2.0).abs() < 0.05, "rate {rate}");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().all(|&t| t > 0.0 && t <= 50_000.0));
    }

    #[test]
    fn regular_is_evenly_spaced() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = ArrivalProcess::Regular { rate: 0.5 }.arrivals(10.0, &mut rng);
        assert_eq!(a, vec![2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn diurnal_mean_rate_close_to_base() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = ArrivalProcess::Diurnal { base: 1.0, amplitude: 0.5, period: 1000.0 };
        // Over many whole periods the modulation averages out.
        let a = p.arrivals(50_000.0, &mut rng);
        let rate = a.len() as f64 / 50_000.0;
        assert!((rate - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn diurnal_is_actually_modulated() {
        let mut rng = StdRng::seed_from_u64(6);
        let period = 10_000.0;
        let p = ArrivalProcess::Diurnal { base: 1.0, amplitude: 0.9, period };
        let a = p.arrivals(period, &mut rng);
        // First half-period (sin > 0) should see clearly more arrivals than
        // the second.
        let first = a.iter().filter(|&&t| t < period / 2.0).count();
        let second = a.len() - first;
        assert!(first as f64 > 1.3 * second as f64, "first {first} second {second}");
    }

    #[test]
    fn empty_horizon() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(ArrivalProcess::Poisson { rate: 1.0 }.arrivals(0.0, &mut rng).is_empty());
    }
}
