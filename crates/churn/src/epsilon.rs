//! Validating the `ε`-departure assumption.
//!
//! The model (paper Section 2) assumes no more than an `ε`-fraction of good
//! IDs depart in any single round, for `ε < 1/12` — without it, no bound on
//! the post-purge bad fraction is possible (Section 9.3). This module
//! measures the *empirical* ε of a workload: the maximum fraction of the
//! live good population departing within any round-length window.

use crate::abc::{event_stream, ChurnEvent};
use sybil_sim::time::Time;
use sybil_sim::workload::Workload;

/// The measured departure burstiness of a workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpsilonReport {
    /// Largest fraction of live good IDs departing within one round.
    pub max_epsilon: f64,
    /// When that worst window started.
    pub worst_window_start: Time,
    /// Departures in the worst window.
    pub worst_window_departures: u64,
    /// The model's bound (1/12).
    pub bound: f64,
}

impl EpsilonReport {
    /// True if the workload satisfies the model assumption `ε < 1/12`.
    pub fn satisfies_model(&self) -> bool {
        self.max_epsilon < self.bound
    }
}

/// Measures the empirical ε of `workload` for rounds of `round_duration`
/// seconds, up to `horizon`.
///
/// Uses a sliding window over the departure events; the denominator is the
/// live population at each window's start.
///
/// # Panics
///
/// Panics if `round_duration` is not positive.
pub fn measure_epsilon(workload: &Workload, horizon: Time, round_duration: f64) -> EpsilonReport {
    assert!(round_duration > 0.0, "round duration must be positive");
    let events = event_stream(workload, horizon);
    // Population over time (prefix): replay once, recording sizes.
    let mut population = workload.initial_size() as i64;
    // Departure timestamps plus the population just before each departure.
    let mut departures: Vec<(f64, i64)> = Vec::new();
    for ev in &events {
        match ev {
            ChurnEvent::Join(_) => population += 1,
            ChurnEvent::Depart { at, .. } => {
                departures.push((at.as_secs(), population));
                population -= 1;
            }
        }
    }

    let mut worst = EpsilonReport {
        max_epsilon: 0.0,
        worst_window_start: Time::ZERO,
        worst_window_departures: 0,
        bound: 1.0 / 12.0,
    };
    let mut lo = 0usize;
    for hi in 0..departures.len() {
        let (t_hi, _) = departures[hi];
        while departures[lo].0 < t_hi - round_duration {
            lo += 1;
        }
        let count = (hi - lo + 1) as u64;
        let pop_at_window_start = departures[lo].1.max(1) as f64;
        let eps = count as f64 / pop_at_window_start;
        if eps > worst.max_epsilon {
            worst.max_epsilon = eps;
            worst.worst_window_start = Time(departures[lo].0);
            worst.worst_window_departures = count;
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::networks;
    use sybil_sim::workload::Session;

    #[test]
    fn evaluation_networks_satisfy_epsilon() {
        // All four networks' churn is far below the ε = 1/12 per-round
        // bound at 1 s rounds — the model assumption is realistic.
        for net in networks::all_networks() {
            let w = net.generate(Time(3_000.0), 5);
            let report = measure_epsilon(&w, Time(3_000.0), 1.0);
            assert!(
                report.satisfies_model(),
                "{}: measured epsilon {}",
                net.name,
                report.max_epsilon
            );
            assert!(report.max_epsilon > 0.0, "{}: no departures measured", net.name);
        }
    }

    #[test]
    fn synchronized_mass_departure_violates_epsilon() {
        // 30% of the population leaving in one instant breaks the model
        // (the other 70 members persist beyond the horizon).
        let w = Workload::new(
            (0..30).map(|_| Time(500.0)).chain((0..70).map(|_| Time(1e9))).collect(),
            vec![],
        );
        let report = measure_epsilon(&w, Time(2_000.0), 1.0);
        assert!(!report.satisfies_model(), "epsilon {}", report.max_epsilon);
        assert_eq!(report.worst_window_departures, 30);
        assert_eq!(report.worst_window_start, Time(500.0));
        assert!((report.max_epsilon - 0.3).abs() < 1e-9);
    }

    #[test]
    fn epsilon_scales_with_round_duration() {
        let w = networks::ethereum().generate(Time(2_000.0), 7);
        let short = measure_epsilon(&w, Time(2_000.0), 0.5);
        let long = measure_epsilon(&w, Time(2_000.0), 10.0);
        assert!(long.max_epsilon > short.max_epsilon);
    }

    #[test]
    fn empty_workload_has_zero_epsilon() {
        let w = Workload::new(vec![Time(1e9); 10], vec![Session::new(Time(1.0), Time(1e9))]);
        let report = measure_epsilon(&w, Time(100.0), 1.0);
        assert_eq!(report.max_epsilon, 0.0);
        assert!(report.satisfies_model());
    }
}
