//! Half-life computation (Liben-Nowell, Balakrishnan, Karger, 2002),
//! discussed in the paper's Section 4.2 as the closest prior notion to the
//! ABC model's epoch.
//!
//! From time `t`: the *doubling time* is how long until `N` more IDs join
//! (where `N` is the population at `t`); the *halving time* is how long
//! until `N/2` of the IDs present at `t` depart. The *half-life from `t`*
//! is the smaller of the two, and the system half-life is the minimum over
//! all `t`. The paper proves there is always at least one epoch per
//! half-life (Section 4.2) — a property our cross-model tests verify.

use crate::abc::{event_stream, ChurnEvent};
use sybil_sim::time::Time;
use sybil_sim::workload::Workload;

/// Doubling, halving, and half-life times measured from one instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HalfLife {
    /// The reference instant.
    pub from: Time,
    /// Time until N more arrivals (None if not reached within the horizon).
    pub doubling: Option<f64>,
    /// Time until N/2 of the reference members depart (None if not reached).
    pub halving: Option<f64>,
}

impl HalfLife {
    /// The half-life: the minimum of doubling and halving times.
    pub fn value(&self) -> Option<f64> {
        match (self.doubling, self.halving) {
            (Some(d), Some(h)) => Some(d.min(h)),
            (Some(d), None) => Some(d),
            (None, Some(h)) => Some(h),
            (None, None) => None,
        }
    }
}

/// Measures the half-life from time `from` over the workload.
pub fn half_life_from(workload: &Workload, from: Time, horizon: Time) -> HalfLife {
    let events = event_stream(workload, horizon);
    // Population at `from`.
    let mut pop: u64 = workload.initial_size();
    for ev in &events {
        if ev.at() > from {
            break;
        }
        match ev {
            ChurnEvent::Join(_) => pop += 1,
            ChurnEvent::Depart { .. } => pop = pop.saturating_sub(1),
        }
    }
    let n = pop;
    let mut joins_after = 0u64;
    let mut old_departs = 0u64;
    let mut doubling = None;
    let mut halving = None;
    for ev in &events {
        if ev.at() <= from {
            continue;
        }
        match ev {
            ChurnEvent::Join(t) => {
                joins_after += 1;
                if doubling.is_none() && joins_after >= n {
                    doubling = Some(*t - from);
                }
            }
            ChurnEvent::Depart { at, joined_at } => {
                if *joined_at <= from {
                    old_departs += 1;
                    if halving.is_none() && 2 * old_departs >= n {
                        halving = Some(*at - from);
                    }
                }
            }
        }
        if doubling.is_some() && halving.is_some() {
            break;
        }
    }
    HalfLife { from, doubling, halving }
}

/// The system half-life: the minimum half-life over sampled reference times.
///
/// Samples `probes` evenly spaced instants in `[0, horizon)`.
pub fn system_half_life(workload: &Workload, horizon: Time, probes: usize) -> Option<f64> {
    assert!(probes > 0, "at least one probe required");
    let mut best: Option<f64> = None;
    for i in 0..probes {
        let from = Time(horizon.as_secs() * i as f64 / probes as f64);
        if let Some(v) = half_life_from(workload, from, horizon).value() {
            best = Some(best.map_or(v, |b: f64| b.min(v)));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sybil_sim::workload::Session;

    /// 10 initial members; 10 arrivals at t=1..10; initial members depart
    /// at t=20..29.
    fn workload() -> Workload {
        Workload::new(
            (0..10).map(|i| Time(20.0 + i as f64)).collect(),
            (0..10).map(|i| Session::new(Time(1.0 + i as f64), Time(1000.0))).collect(),
        )
    }

    #[test]
    fn doubling_time_from_zero() {
        let hl = half_life_from(&workload(), Time::ZERO, Time(100.0));
        // Population 10 at t=0; the 10th join is at t=10.
        assert_eq!(hl.doubling, Some(10.0));
        // 5 of the original 10 have departed at t=24.
        assert_eq!(hl.halving, Some(24.0));
        assert_eq!(hl.value(), Some(10.0));
    }

    #[test]
    fn half_life_not_reached() {
        let w = Workload::new(vec![Time(1e9); 10], vec![]);
        let hl = half_life_from(&w, Time::ZERO, Time(100.0));
        assert_eq!(hl.value(), None);
    }

    #[test]
    fn system_half_life_is_min_over_probes() {
        let shl = system_half_life(&workload(), Time(100.0), 10);
        assert!(shl.is_some());
        assert!(shl.unwrap() <= 10.0);
    }

    #[test]
    fn at_least_one_epoch_per_half_life() {
        // Paper Section 4.2: "There is always at least one epoch in every
        // half-life." Check on a generated ABC trace.
        use crate::abc::{detect_epochs, AbcTraceGenerator};
        let w =
            AbcTraceGenerator { n0: 200, rho0: 4.0, alpha: 1.5, beta: 1.0, epochs: 4 }.generate(11);
        let horizon = Time(1e6);
        let epochs = detect_epochs(&w, horizon, (1, 2));
        let hl = half_life_from(&w, Time::ZERO, horizon);
        if let Some(v) = hl.value() {
            // Some epoch must end within [0, v].
            assert!(
                epochs.iter().any(|e| e.end.as_secs() <= v + 1e-9),
                "no epoch within the first half-life ({v} s)"
            );
        }
    }
}
