//! Churn workloads for Sybil-defense evaluation.
//!
//! Provides the good-ID churn side of the paper's experiments:
//!
//! * [`session`] / [`arrival`] — session-time models (Weibull, exponential,
//!   Pareto, log-normal) and arrival processes (Poisson, diurnal, regular);
//! * [`model`] — [`model::ChurnModel`] combining the two into a generator of
//!   [`sybil_sim::Workload`]s;
//! * [`networks`] — the paper's four evaluation networks: Bitcoin (synthetic
//!   substitute at measured scale), BitTorrent, Ethereum, and Gnutella;
//! * [`abc`] — the ABC (`α,β`-smoothness) churn model: epoch detection,
//!   smoothness measurement, and a compliant trace generator;
//! * [`halflife`] — the Liben-Nowell half-life, for comparison with epochs;
//! * [`epsilon`] — empirical validation of the per-round ε-departure bound.
//!
//! # Example
//!
//! ```
//! use sybil_churn::networks;
//! use sybil_sim::time::Time;
//!
//! let workload = networks::gnutella().generate(Time(1000.0), 42);
//! assert_eq!(workload.initial_size(), 10_000);
//! // Gnutella arrivals are Poisson at 1 ID/s.
//! assert!((workload.join_rate(Time(1000.0)) - 1.0).abs() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abc;
pub mod arrival;
pub mod epsilon;
pub mod halflife;
pub mod model;
pub mod networks;
pub mod session;

pub use abc::{detect_epochs, estimate_beta, measure_alpha, AbcTraceGenerator, Epoch};
pub use arrival::ArrivalProcess;
pub use epsilon::{measure_epsilon, EpsilonReport};
pub use model::ChurnModel;
pub use session::SessionModel;
