//! Churn models: arrival process + session model → [`Workload`].

use crate::arrival::ArrivalProcess;
use crate::session::SessionModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sybil_sim::time::Time;
use sybil_sim::workload::{Session, Workload};

/// A generative churn model for one network.
///
/// # Example
///
/// ```
/// use sybil_churn::model::ChurnModel;
/// use sybil_churn::arrival::ArrivalProcess;
/// use sybil_churn::session::SessionModel;
/// use sybil_sim::time::Time;
///
/// let model = ChurnModel {
///     name: "toy",
///     initial_size: 100,
///     arrival: ArrivalProcess::Poisson { rate: 0.5 },
///     session: SessionModel::Exponential { mean: 300.0 },
/// };
/// let workload = model.generate(Time(1000.0), 42);
/// assert_eq!(workload.initial_size(), 100);
/// workload.validate().unwrap();
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnModel {
    /// Network name for reports.
    pub name: &'static str,
    /// Good IDs present at `t = 0`.
    pub initial_size: u64,
    /// Join process for new good IDs.
    pub arrival: ArrivalProcess,
    /// Session-length distribution.
    pub session: SessionModel,
}

impl ChurnModel {
    /// The steady-state population this model sustains
    /// (`arrival rate × mean session`, by Little's law).
    pub fn steady_state_size(&self) -> f64 {
        self.arrival.mean_rate() * self.session.mean()
    }

    /// Generates the good-ID workload over `[0, horizon]`.
    ///
    /// Initial members draw *residual* (equilibrium) lifetimes, so their
    /// departure process is stationary from `t = 0` — fresh sessions would
    /// create a departure burst under heavy-tailed models, whose hazard
    /// rate diverges at zero.
    ///
    /// Lifetimes and session lengths are drawn in blocks
    /// ([`SessionModel::sample_fill`]): the RNG stream is consumed exactly
    /// as one-at-a-time sampling would (generation stays bit-identical per
    /// seed), but the transform math runs in tight per-block loops, which
    /// cuts cold-cell generation cost at million-ID scale.
    pub fn generate(&self, horizon: Time, seed: u64) -> Workload {
        /// Samples per block: big enough to amortize dispatch, small
        /// enough to stay in L1.
        const BLOCK: usize = 4096;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut buf = [0.0f64; BLOCK];

        let residual = self.session.residual_sampler();
        let mut initial_departures: Vec<Time> = Vec::with_capacity(self.initial_size as usize);
        let mut remaining = self.initial_size as usize;
        while remaining > 0 {
            let n = remaining.min(BLOCK);
            residual.sample_fill(&mut rng, &mut buf[..n]);
            initial_departures.extend(buf[..n].iter().map(|&d| Time(d)));
            remaining -= n;
        }

        let arrivals = self.arrival.arrivals(horizon.as_secs(), &mut rng);
        let mut sessions: Vec<Session> = Vec::with_capacity(arrivals.len());
        for chunk in arrivals.chunks(BLOCK) {
            let n = chunk.len();
            self.session.sample_fill(&mut rng, &mut buf[..n]);
            sessions.extend(
                chunk.iter().zip(&buf[..n]).map(|(&t, &len)| Session::new(Time(t), Time(t + len))),
            );
        }
        Workload::new(initial_departures, sessions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ChurnModel {
        ChurnModel {
            name: "toy",
            initial_size: 500,
            arrival: ArrivalProcess::Poisson { rate: 1.0 },
            session: SessionModel::Exponential { mean: 500.0 },
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = toy().generate(Time(1000.0), 9);
        let b = toy().generate(Time(1000.0), 9);
        assert_eq!(a, b);
        let c = toy().generate(Time(1000.0), 10);
        assert_ne!(a, c);
    }

    #[test]
    fn workload_is_valid_and_sized() {
        let w = toy().generate(Time(5000.0), 1);
        w.validate().unwrap();
        assert_eq!(w.initial_size(), 500);
        // ~5000 arrivals at rate 1.
        assert!((w.sessions.len() as f64 - 5000.0).abs() < 300.0);
    }

    #[test]
    fn steady_state_size_is_littles_law() {
        assert_eq!(toy().steady_state_size(), 500.0);
    }

    #[test]
    fn population_stays_near_steady_state() {
        // Replay the workload and check the population at the horizon is in
        // the steady-state ballpark (Little's law sanity).
        let w = toy().generate(Time(4000.0), 2);
        let end = Time(4000.0);
        let mut pop: i64 = 0;
        pop += w.initial_departures.iter().filter(|&&d| d > end).count() as i64;
        pop += w.sessions.iter().filter(|s| s.join <= end && s.depart > end).count() as i64;
        assert!((pop - 500).abs() < 150, "population {pop} far from steady state 500");
    }
}
