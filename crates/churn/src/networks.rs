//! The four network workloads from the paper's evaluation (Section 10).
//!
//! * **Bitcoin** — the paper replays a measured 7-day join/departure trace
//!   (Neudecker et al.), initialized with 9212 IDs. That trace is not
//!   redistributable, so this crate substitutes a synthetic model at the
//!   same scale: heavy-tailed Weibull sessions plus a diurnally modulated
//!   arrival rate. The substitution preserves what the experiments exercise
//!   — bursty, non-stationary churn at Bitcoin scale (see DESIGN.md §7).
//! * **BitTorrent** — Weibull sessions with shape 0.59 and scale 41.0
//!   (minutes), from Stutzbach & Rejaie's measurement study, exactly as the
//!   paper specifies.
//! * **Ethereum** — Weibull sessions with shape 0.52 and scale 9.8
//!   (minutes), from the Kim et al. measurement study, as the paper
//!   specifies.
//! * **Gnutella** — exponential sessions with mean 2.3 hours and Poisson
//!   arrivals at 1 ID/second, as the paper specifies.
//!
//! BitTorrent/Ethereum arrival rates are set so the population is stationary
//! at the paper's initial size of 10 000 (Little's law), matching how the
//! paper simulates those networks from their session-time distributions.

use crate::arrival::ArrivalProcess;
use crate::model::ChurnModel;
use crate::session::SessionModel;

/// Seconds per minute, for the minute-denominated Weibull scales.
const MIN: f64 = 60.0;

/// The paper's initial population for BitTorrent/Ethereum/Gnutella.
pub const DEFAULT_INITIAL: u64 = 10_000;

/// Bitcoin's initial population (paper Section 10.2: 9212 IDs).
pub const BITCOIN_INITIAL: u64 = 9212;

/// Synthetic Bitcoin-scale workload (measured-trace substitute).
pub fn bitcoin() -> ChurnModel {
    // Mean session ≈ 6 h (Weibull shape 0.6), diurnal arrivals balancing
    // the 9212-node population.
    let session = SessionModel::Weibull { shape: 0.6, scale: 14_360.0 };
    let mean = 21_600.0;
    ChurnModel {
        name: "bitcoin",
        initial_size: BITCOIN_INITIAL,
        arrival: ArrivalProcess::Diurnal {
            base: BITCOIN_INITIAL as f64 / mean,
            amplitude: 0.5,
            period: 86_400.0,
        },
        session,
    }
}

/// BitTorrent: Weibull(0.59, 41.0 min) sessions (Stutzbach & Rejaie).
pub fn bittorrent() -> ChurnModel {
    let session = SessionModel::Weibull { shape: 0.59, scale: 41.0 * MIN };
    ChurnModel {
        name: "bittorrent",
        initial_size: DEFAULT_INITIAL,
        arrival: ArrivalProcess::Poisson { rate: DEFAULT_INITIAL as f64 / session.mean() },
        session,
    }
}

/// Ethereum: Weibull(0.52, 9.8 min) sessions (Kim et al.).
pub fn ethereum() -> ChurnModel {
    let session = SessionModel::Weibull { shape: 0.52, scale: 9.8 * MIN };
    ChurnModel {
        name: "ethereum",
        initial_size: DEFAULT_INITIAL,
        arrival: ArrivalProcess::Poisson { rate: DEFAULT_INITIAL as f64 / session.mean() },
        session,
    }
}

/// Gnutella: exponential sessions (mean 2.3 h), Poisson arrivals at 1 ID/s.
pub fn gnutella() -> ChurnModel {
    ChurnModel {
        name: "gnutella",
        initial_size: DEFAULT_INITIAL,
        arrival: ArrivalProcess::Poisson { rate: 1.0 },
        session: SessionModel::Exponential { mean: 2.3 * 3600.0 },
    }
}

/// All four evaluation networks, in the paper's presentation order.
pub fn all_networks() -> Vec<ChurnModel> {
    vec![bitcoin(), bittorrent(), gnutella(), ethereum()]
}

/// A Gnutella-session-law network scaled to an arbitrary stationary
/// population (Little's law sets the arrival rate) — the model behind the
/// million-ID scale experiments (`macro_millions`, `exp_millions`).
///
/// At `initial_size = 1_000_000` this is Tor-scale: the population the
/// SybilControl-style pricing and classifier literature actually targets.
pub fn millions(initial_size: u64) -> ChurnModel {
    const MEAN_SESSION: f64 = 2.3 * 3600.0;
    ChurnModel {
        name: "millions",
        initial_size,
        arrival: ArrivalProcess::Poisson { rate: initial_size as f64 / MEAN_SESSION },
        session: SessionModel::Exponential { mean: MEAN_SESSION },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sybil_sim::time::Time;

    #[test]
    fn four_networks_with_paper_sizes() {
        let nets = all_networks();
        assert_eq!(nets.len(), 4);
        assert_eq!(nets[0].initial_size, 9212);
        for n in &nets[1..] {
            assert_eq!(n.initial_size, 10_000);
        }
    }

    #[test]
    fn bittorrent_session_mean_is_about_an_hour() {
        // Weibull(0.59, 41 min): mean = 41·Γ(1+1/0.59) ≈ 63 min.
        let mean = bittorrent().session.mean();
        assert!(mean > 50.0 * 60.0 && mean < 80.0 * 60.0, "mean {} s", mean);
    }

    #[test]
    fn ethereum_churns_faster_than_bittorrent() {
        assert!(ethereum().session.mean() < bittorrent().session.mean());
        // Faster churn ⇒ higher steady arrival rate at equal population.
        assert!(ethereum().arrival.mean_rate() > bittorrent().arrival.mean_rate());
    }

    #[test]
    fn populations_are_stationary() {
        for n in [bittorrent(), ethereum(), gnutella()] {
            let ss = n.steady_state_size();
            assert!((ss - 10_000.0).abs() / 10_000.0 < 0.25, "{}: steady state {ss}", n.name);
        }
    }

    #[test]
    fn traces_generate_and_validate() {
        for n in all_networks() {
            let w = n.generate(Time(2000.0), 7);
            w.validate().unwrap();
            assert!(w.initial_size() >= 9212);
            assert!(!w.sessions.is_empty(), "{} produced no arrivals", n.name);
        }
    }

    #[test]
    fn millions_model_is_stationary_at_requested_scale() {
        let m = millions(1_000_000);
        assert_eq!(m.initial_size, 1_000_000);
        assert!((m.steady_state_size() - 1_000_000.0).abs() < 1.0);
        // Scales linearly: the arrival rate follows the population.
        assert!(
            (millions(10_000).arrival.mean_rate() * 100.0
                - millions(1_000_000).arrival.mean_rate())
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn gnutella_arrival_rate_is_one_per_second() {
        let w = gnutella().generate(Time(10_000.0), 3);
        let rate = w.sessions.len() as f64 / 10_000.0;
        assert!((rate - 1.0).abs() < 0.05, "rate {rate}");
    }
}
