//! Session-time models.
//!
//! A session time is how long an ID stays in the system. The paper's
//! datasets characterize churn by session-time distributions (Section 10):
//! Weibull for BitTorrent and Ethereum, exponential for Gnutella. Heavy
//! tails (Weibull shape < 1, Pareto) are the realistic regime — a few IDs
//! stay very long while most churn quickly.

use rand::Rng;
use sybil_sim::dist::{Exponential, LogNormal, Pareto, Sample, Weibull};

/// A distribution over session durations, in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SessionModel {
    /// Weibull with the given shape and scale (scale in seconds).
    Weibull {
        /// Shape parameter `k`; `< 1` is heavy-tailed.
        shape: f64,
        /// Scale parameter, seconds.
        scale: f64,
    },
    /// Exponential with the given mean (seconds).
    Exponential {
        /// Mean session length, seconds.
        mean: f64,
    },
    /// Pareto with minimum session `x_min` (seconds) and tail index `alpha`.
    Pareto {
        /// Minimum session length, seconds.
        x_min: f64,
        /// Tail index; `≤ 1` has infinite mean.
        alpha: f64,
    },
    /// Log-normal with the underlying normal's parameters.
    LogNormal {
        /// Mean of `ln(session)`.
        mu: f64,
        /// Std-dev of `ln(session)`.
        sigma: f64,
    },
    /// Every session lasts exactly this long (useful in tests).
    Fixed(f64),
}

impl SessionModel {
    /// Draws one session duration in seconds.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            SessionModel::Weibull { shape, scale } => Weibull::new(shape, scale).sample(rng),
            SessionModel::Exponential { mean } => Exponential::with_mean(mean).sample(rng),
            SessionModel::Pareto { x_min, alpha } => Pareto::new(x_min, alpha).sample(rng),
            SessionModel::LogNormal { mu, sigma } => LogNormal::new(mu, sigma).sample(rng),
            SessionModel::Fixed(d) => d,
        }
    }

    /// Fills `out` with independent session durations, bit-identical to
    /// `out.len()` calls of [`sample`](Self::sample) but batched: the
    /// distribution is constructed once and the uniform draws and the
    /// `ln`/`powf` transforms run in separate tight loops (the dominant
    /// cost of cold workload generation at scale).
    pub fn sample_fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        match *self {
            SessionModel::Weibull { shape, scale } => {
                Weibull::new(shape, scale).sample_fill(rng, out)
            }
            SessionModel::Exponential { mean } => {
                Exponential::with_mean(mean).sample_fill(rng, out)
            }
            SessionModel::Pareto { x_min, alpha } => {
                Pareto::new(x_min, alpha).sample_fill(rng, out)
            }
            SessionModel::LogNormal { mu, sigma } => {
                LogNormal::new(mu, sigma).sample_fill(rng, out)
            }
            SessionModel::Fixed(d) => out.fill(d),
        }
    }

    /// The analytic mean session duration (seconds); infinite for Pareto
    /// tails with `alpha ≤ 1`.
    pub fn mean(&self) -> f64 {
        match *self {
            SessionModel::Weibull { shape, scale } => Weibull::new(shape, scale).mean(),
            SessionModel::Exponential { mean } => mean,
            SessionModel::Pareto { x_min, alpha } => Pareto::new(x_min, alpha).mean(),
            SessionModel::LogNormal { mu, sigma } => LogNormal::new(mu, sigma).mean(),
            SessionModel::Fixed(d) => d,
        }
    }

    /// The survival function `S(t) = P(session > t)`.
    pub fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 1.0;
        }
        match *self {
            SessionModel::Weibull { shape, scale } => (-(t / scale).powf(shape)).exp(),
            SessionModel::Exponential { mean } => (-t / mean).exp(),
            SessionModel::Pareto { x_min, alpha } => {
                if t < x_min {
                    1.0
                } else {
                    (x_min / t).powf(alpha)
                }
            }
            SessionModel::LogNormal { mu, sigma } => {
                if sigma == 0.0 {
                    return if t < mu.exp() { 1.0 } else { 0.0 };
                }
                1.0 - normal_cdf((t.ln() - mu) / sigma)
            }
            SessionModel::Fixed(d) => {
                if t < d {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Builds a sampler for the *residual* (equilibrium) session time — the
    /// remaining lifetime of a member observed at a random instant of a
    /// stationary system, with density `S(t)/μ`.
    ///
    /// Using this for the initial population makes departures stationary
    /// from `t = 0` (sampling fresh sessions instead creates a departure
    /// burst for heavy-tailed models, since their hazard rate diverges at
    /// zero).
    ///
    /// # Panics
    ///
    /// Panics if the session mean is not finite (e.g. Pareto with
    /// `alpha ≤ 1` has no stationary regime).
    pub fn residual_sampler(&self) -> ResidualSampler {
        let mean = self.mean();
        assert!(
            mean.is_finite() && mean > 0.0,
            "residual sampling requires a finite positive mean session"
        );
        // Trapezoid-integrate S(t) on a log-spaced grid until the integral
        // saturates at the mean; invert the normalized CDF by table lookup.
        let lo = mean * 1e-7;
        let hi = mean * 1e9;
        let points = 4096usize;
        let ratio = (hi / lo).powf(1.0 / (points - 1) as f64);
        let mut xs = Vec::with_capacity(points + 1);
        let mut cdf = Vec::with_capacity(points + 1);
        xs.push(0.0);
        cdf.push(0.0);
        let mut t_prev = 0.0f64;
        let mut s_prev = 1.0f64;
        let mut acc = 0.0f64;
        let mut t = lo;
        for _ in 0..points {
            let s = self.survival(t);
            acc += (t - t_prev) * (s + s_prev) / 2.0;
            xs.push(t);
            cdf.push(acc);
            t_prev = t;
            s_prev = s;
            if s < 1e-12 && acc > 0.999 * mean {
                break;
            }
            t *= ratio;
        }
        let total = *cdf.last().expect("nonempty table");
        for c in &mut cdf {
            *c /= total;
        }
        ResidualSampler { xs, cdf }
    }
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf approximation
/// (absolute error < 1.5e-7 — ample for workload generation).
fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = sign * (1.0 - poly * (-x * x).exp());
    0.5 * (1.0 + erf)
}

/// Inverse-CDF sampler for residual session times (see
/// [`SessionModel::residual_sampler`]).
#[derive(Clone, Debug)]
pub struct ResidualSampler {
    xs: Vec<f64>,
    cdf: Vec<f64>,
}

impl ResidualSampler {
    /// Draws one residual lifetime.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        self.invert(u)
    }

    /// Fills `out` with independent residual lifetimes — bit-identical to
    /// `out.len()` calls of [`sample`](Self::sample), but the uniform
    /// draws and the table inversions run as two tight loops.
    pub fn sample_fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for slot in out.iter_mut() {
            *slot = rng.gen();
        }
        for u in out.iter_mut() {
            *u = self.invert(*u);
        }
    }

    /// Table inversion of the normalized residual CDF at quantile `u`.
    fn invert(&self, u: f64) -> f64 {
        let idx = self.cdf.partition_point(|&c| c < u);
        if idx == 0 {
            return self.xs[0];
        }
        if idx >= self.xs.len() {
            return *self.xs.last().expect("nonempty table");
        }
        // Linear interpolation within the bracketing segment.
        let (c0, c1) = (self.cdf[idx - 1], self.cdf[idx]);
        let (x0, x1) = (self.xs[idx - 1], self.xs[idx]);
        if c1 <= c0 {
            return x1;
        }
        x0 + (x1 - x0) * (u - c0) / (c1 - c0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = SessionModel::Fixed(42.0);
        assert_eq!(m.sample(&mut rng), 42.0);
        assert_eq!(m.mean(), 42.0);
    }

    #[test]
    fn sample_means_match_analytic() {
        let mut rng = StdRng::seed_from_u64(2);
        let models = [
            SessionModel::Weibull { shape: 0.59, scale: 41.0 },
            SessionModel::Exponential { mean: 100.0 },
            SessionModel::Pareto { x_min: 10.0, alpha: 2.5 },
            SessionModel::LogNormal { mu: 3.0, sigma: 0.5 },
        ];
        for m in models {
            let n = 300_000;
            let mean: f64 = (0..n).map(|_| m.sample(&mut rng)).sum::<f64>() / n as f64;
            let analytic = m.mean();
            assert!(
                (mean - analytic).abs() / analytic < 0.05,
                "{m:?}: sample {mean} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn heavy_tail_weibull_mean_exceeds_scale() {
        let m = SessionModel::Weibull { shape: 0.52, scale: 9.8 };
        assert!(m.mean() > 9.8);
    }

    #[test]
    fn survival_is_monotone_and_bounded() {
        let models = [
            SessionModel::Weibull { shape: 0.6, scale: 100.0 },
            SessionModel::Exponential { mean: 100.0 },
            SessionModel::Pareto { x_min: 10.0, alpha: 2.0 },
            SessionModel::LogNormal { mu: 3.0, sigma: 1.0 },
            SessionModel::Fixed(50.0),
        ];
        for m in models {
            assert_eq!(m.survival(0.0), 1.0, "{m:?}");
            let mut prev = 1.0;
            for t in [1.0, 10.0, 100.0, 1000.0, 10_000.0] {
                let s = m.survival(t);
                assert!((0.0..=1.0).contains(&s), "{m:?} at {t}: {s}");
                assert!(s <= prev + 1e-12, "{m:?} not monotone at {t}");
                prev = s;
            }
        }
    }

    #[test]
    fn exponential_residual_is_memoryless() {
        // The exponential's residual life equals the original distribution.
        let m = SessionModel::Exponential { mean: 100.0 };
        let sampler = m.residual_sampler();
        let mut rng = StdRng::seed_from_u64(8);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| sampler.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 3.0, "residual mean {mean}");
    }

    #[test]
    fn weibull_residual_mean_matches_renewal_theory() {
        // Residual mean = E[S²]/(2μ); for Weibull(k, λ):
        // E[S²] = λ²Γ(1+2/k), μ = λΓ(1+1/k).
        use sybil_sim::dist::gamma;
        let (k, lambda) = (0.6, 100.0);
        let m = SessionModel::Weibull { shape: k, scale: lambda };
        let analytic = lambda * lambda * gamma(1.0 + 2.0 / k) / (2.0 * m.mean());
        let sampler = m.residual_sampler();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 300_000;
        let mean: f64 = (0..n).map(|_| sampler.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - analytic).abs() / analytic < 0.05,
            "residual mean {mean} vs analytic {analytic}"
        );
        // Heavy tails make residual life exceed the session mean.
        assert!(analytic > m.mean());
    }

    #[test]
    fn fixed_residual_is_uniform() {
        let m = SessionModel::Fixed(60.0);
        let sampler = m.residual_sampler();
        let mut rng = StdRng::seed_from_u64(10);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| sampler.sample(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 30.0).abs() < 0.5, "mean {mean}");
        // The numeric inversion smooths the survival discontinuity over one
        // log-grid step (~1% here), so allow a hair past the boundary.
        assert!(samples.iter().all(|&s| (0.0..=61.0).contains(&s)));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_mean_has_no_residual() {
        let _ = SessionModel::Pareto { x_min: 1.0, alpha: 0.9 }.residual_sampler();
    }

    /// Blocked sampling must consume the RNG exactly like one-at-a-time
    /// sampling: generated workloads are seeded and fingerprinted.
    #[test]
    fn sample_fill_matches_sequential_draws() {
        let models = [
            SessionModel::Weibull { shape: 0.59, scale: 41.0 },
            SessionModel::Exponential { mean: 100.0 },
            SessionModel::Pareto { x_min: 10.0, alpha: 2.5 },
            SessionModel::LogNormal { mu: 3.0, sigma: 0.5 },
            SessionModel::Fixed(42.0),
        ];
        for m in models {
            let n = 500;
            let mut seq_rng = StdRng::seed_from_u64(77);
            let sequential: Vec<f64> = (0..n).map(|_| m.sample(&mut seq_rng)).collect();
            let mut fill_rng = StdRng::seed_from_u64(77);
            let mut filled = vec![0.0; n];
            m.sample_fill(&mut fill_rng, &mut filled);
            assert_eq!(sequential, filled, "{m:?}");
        }
    }

    #[test]
    fn residual_sample_fill_matches_sequential_draws() {
        let sampler = SessionModel::Weibull { shape: 0.6, scale: 100.0 }.residual_sampler();
        let n = 500;
        let mut seq_rng = StdRng::seed_from_u64(21);
        let sequential: Vec<f64> = (0..n).map(|_| sampler.sample(&mut seq_rng)).collect();
        let mut fill_rng = StdRng::seed_from_u64(21);
        let mut filled = vec![0.0; n];
        sampler.sample_fill(&mut fill_rng, &mut filled);
        assert_eq!(sequential, filled);
    }
}
