//! Synthetic social graphs with a Sybil region.
//!
//! Graph-based Sybil classifiers (SybilGuard, SybilFuse — paper Section 6)
//! exploit the structure of social networks under Sybil attack: the good
//! region is fast-mixing, the Sybil region is internally well-connected, and
//! the two are joined by a *limited number of attack edges* (creating real
//! social ties to honest users is expensive for an attacker).
//!
//! This module generates that topology: a preferential-attachment good
//! region, a preferential-attachment Sybil region, and a bounded set of
//! random attack edges.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected social graph with ground-truth labels.
#[derive(Clone, Debug)]
pub struct SocialGraph {
    /// Adjacency lists; node `i`'s neighbors.
    adjacency: Vec<Vec<usize>>,
    /// Ground truth: `true` = Sybil.
    labels: Vec<bool>,
    n_good: usize,
}

impl SocialGraph {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Number of good (honest) nodes; good nodes have indices `0..n_good()`.
    pub fn n_good(&self) -> usize {
        self.n_good
    }

    /// Neighbors of node `i`.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adjacency[i]
    }

    /// Ground-truth label of node `i` (`true` = Sybil).
    pub fn is_sybil(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Number of attack edges (edges crossing the good/Sybil cut).
    pub fn attack_edge_count(&self) -> usize {
        let mut count = 0;
        for (i, neigh) in self.adjacency.iter().enumerate() {
            for &j in neigh {
                if self.labels[i] != self.labels[j] {
                    count += 1;
                }
            }
        }
        count / 2
    }
}

/// Parameters for [`generate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphParams {
    /// Honest nodes.
    pub n_good: usize,
    /// Sybil nodes.
    pub n_sybil: usize,
    /// Edges each new node attaches with (preferential attachment `m`).
    pub edges_per_node: usize,
    /// Attack edges joining the two regions.
    pub attack_edges: usize,
}

impl Default for GraphParams {
    fn default() -> Self {
        GraphParams { n_good: 1000, n_sybil: 200, edges_per_node: 4, attack_edges: 20 }
    }
}

/// Generates a labeled social graph with a Sybil region.
///
/// # Panics
///
/// Panics if either region is smaller than `edges_per_node + 1`.
pub fn generate(params: GraphParams, seed: u64) -> SocialGraph {
    let GraphParams { n_good, n_sybil, edges_per_node, attack_edges } = params;
    assert!(n_good > edges_per_node && n_sybil > edges_per_node, "regions too small");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = n_good + n_sybil;
    let mut adjacency = vec![Vec::new(); n];
    let mut labels = vec![false; n];
    for label in labels.iter_mut().skip(n_good) {
        *label = true;
    }

    // Preferential attachment within a region [lo, hi): each new node links
    // to `m` targets sampled proportionally to degree (approximated by
    // sampling endpoints of existing edges).
    let attach = |adjacency: &mut Vec<Vec<usize>>, lo: usize, hi: usize, rng: &mut StdRng| {
        let m = edges_per_node;
        // Seed clique on the first m+1 nodes of the region.
        for i in lo..lo + m + 1 {
            for j in lo..i {
                adjacency[i].push(j);
                adjacency[j].push(i);
            }
        }
        // Endpoint pool for degree-proportional sampling.
        let mut pool: Vec<usize> = Vec::new();
        for neighbors in adjacency.iter().take(lo + m + 1).skip(lo) {
            for &j in neighbors {
                if j >= lo {
                    pool.push(j);
                }
            }
        }
        for i in lo + m + 1..hi {
            let mut targets = Vec::with_capacity(m);
            let mut guard = 0;
            while targets.len() < m && guard < 100 * m {
                guard += 1;
                let t = pool[rng.gen_range(0..pool.len())];
                if t != i && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            for t in targets {
                adjacency[i].push(t);
                adjacency[t].push(i);
                pool.push(t);
                pool.push(i);
            }
        }
    };

    attach(&mut adjacency, 0, n_good, &mut rng);
    attach(&mut adjacency, n_good, n, &mut rng);

    // Attack edges: random good–Sybil pairs.
    for _ in 0..attack_edges {
        let g = rng.gen_range(0..n_good);
        let s = rng.gen_range(n_good..n);
        if !adjacency[g].contains(&s) {
            adjacency[g].push(s);
            adjacency[s].push(g);
        }
    }

    SocialGraph { adjacency, labels, n_good }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_sizes() {
        let g = generate(GraphParams::default(), 1);
        assert_eq!(g.len(), 1200);
        assert_eq!(g.n_good(), 1000);
        assert!(!g.is_empty());
        assert!(!g.is_sybil(0));
        assert!(g.is_sybil(1100));
    }

    #[test]
    fn attack_edges_are_bounded() {
        let g = generate(GraphParams { attack_edges: 15, ..Default::default() }, 2);
        let cut = g.attack_edge_count();
        assert!(cut <= 15, "cut {cut}");
        assert!(cut >= 10, "cut {cut} suspiciously small");
    }

    #[test]
    fn every_node_has_neighbors() {
        let g = generate(GraphParams::default(), 3);
        for i in 0..g.len() {
            assert!(!g.neighbors(i).is_empty(), "node {i} isolated");
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = generate(GraphParams::default(), 4);
        for i in 0..g.len() {
            for &j in g.neighbors(i) {
                assert!(g.neighbors(j).contains(&i), "asymmetric edge {i}-{j}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(GraphParams::default(), 5);
        let b = generate(GraphParams::default(), 5);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.attack_edge_count(), b.attack_edge_count());
    }
}
