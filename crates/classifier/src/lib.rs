//! Sybil classification (the SybilFuse stand-in for ERGO-SF, Heuristic 4).
//!
//! The paper's ERGO-SF experiments reduce the SybilFuse classifier (reference 41) to
//! its measured accuracy (0.98), refusing entry to joiners classified as
//! Sybil. This crate grounds that number:
//!
//! * [`graph`] — synthetic social graphs with a bounded attack-edge cut;
//! * [`sybilfuse`] — a local-score + propagation classifier in SybilFuse's
//!   style whose measured accuracy lands where the paper's citation does;
//! * [`metrics`] — confusion matrices, accuracy/precision/recall/F1, AUC.
//!
//! The measured accuracy feeds `ergo_core::gate::ClassifierGate`, which is
//! what the Ergo defense consults per join.
//!
//! # Example
//!
//! ```
//! use sybil_classifier::graph::{generate, GraphParams};
//! use sybil_classifier::sybilfuse::{SybilFuse, SybilFuseConfig};
//!
//! let graph = generate(GraphParams::default(), 7);
//! let clf = SybilFuse::train(&graph, SybilFuseConfig::default(), 8);
//! let accuracy = clf.evaluate(&graph).accuracy();
//! assert!(accuracy > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod metrics;
pub mod sybilfuse;

pub use graph::{generate, GraphParams, SocialGraph};
pub use metrics::{auc, Confusion};
pub use sybilfuse::{SybilFuse, SybilFuseConfig};
