//! Classifier evaluation metrics.

/// A binary confusion matrix where the positive class is "Sybil".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Sybil classified Sybil.
    pub true_positive: u64,
    /// Good classified good.
    pub true_negative: u64,
    /// Good classified Sybil (a refused honest user).
    pub false_positive: u64,
    /// Sybil classified good (an admitted attacker).
    pub false_negative: u64,
}

impl Confusion {
    /// Records one labeled prediction.
    pub fn record(&mut self, actual_sybil: bool, predicted_sybil: bool) {
        match (actual_sybil, predicted_sybil) {
            (true, true) => self.true_positive += 1,
            (false, false) => self.true_negative += 1,
            (false, true) => self.false_positive += 1,
            (true, false) => self.false_negative += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.true_positive + self.true_negative + self.false_positive + self.false_negative
    }

    /// Fraction of correct predictions (0 if empty).
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        (self.true_positive + self.true_negative) as f64 / t as f64
    }

    /// Of predicted Sybils, the fraction that are Sybil (1 if none predicted).
    pub fn precision(&self) -> f64 {
        let p = self.true_positive + self.false_positive;
        if p == 0 {
            return 1.0;
        }
        self.true_positive as f64 / p as f64
    }

    /// Of actual Sybils, the fraction caught (1 if there are none).
    pub fn recall(&self) -> f64 {
        let p = self.true_positive + self.false_negative;
        if p == 0 {
            return 1.0;
        }
        self.true_positive as f64 / p as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// The false-negative rate: admitted Sybils over actual Sybils — the
    /// quantity that drives ERGO-SF's residual attack flow.
    pub fn false_negative_rate(&self) -> f64 {
        1.0 - self.recall()
    }
}

/// Area under the ROC curve for scored predictions.
///
/// `scored` holds `(score, is_sybil)` pairs; higher scores should indicate
/// Sybil. Returns 0.5 for degenerate inputs (single class).
pub fn auc(scored: &[(f64, bool)]) -> f64 {
    let positives = scored.iter().filter(|&&(_, y)| y).count() as f64;
    let negatives = scored.len() as f64 - positives;
    if positives == 0.0 || negatives == 0.0 {
        return 0.5;
    }
    // Rank-sum (Mann–Whitney) formulation with midranks for ties.
    let mut sorted: Vec<&(f64, bool)> = scored.iter().collect();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut rank_sum = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1].0 == sorted[i].0 {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for item in sorted.iter().take(j + 1).skip(i) {
            if item.1 {
                rank_sum += midrank;
            }
        }
        i = j + 1;
    }
    (rank_sum - positives * (positives + 1.0) / 2.0) / (positives * negatives)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts_and_rates() {
        let mut c = Confusion::default();
        c.record(true, true); // tp
        c.record(true, true);
        c.record(true, false); // fn
        c.record(false, false); // tn
        c.record(false, true); // fp
        assert_eq!(c.total(), 5);
        assert_eq!(c.accuracy(), 3.0 / 5.0);
        assert_eq!(c.precision(), 2.0 / 3.0);
        assert_eq!(c.recall(), 2.0 / 3.0);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.false_negative_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_confusion() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
    }

    #[test]
    fn auc_perfect_and_random() {
        let perfect = [(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        assert_eq!(auc(&perfect), 1.0);
        let inverted = [(0.1, true), (0.2, true), (0.8, false), (0.9, false)];
        assert_eq!(auc(&inverted), 0.0);
        let single_class = [(0.5, true), (0.6, true)];
        assert_eq!(auc(&single_class), 0.5);
    }

    #[test]
    fn auc_with_ties() {
        let tied = [(0.5, true), (0.5, false)];
        assert_eq!(auc(&tied), 0.5);
    }
}
