//! A SybilFuse-style classifier: noisy local scores fused with graph
//! structure by weighted score propagation.
//!
//! SybilFuse (Gao et al., CNS 2018 — the paper's reference 41) combines a
//! *local* classifier (per-node attributes, modest accuracy) with *global*
//! structure propagation. We reproduce that pipeline: each node gets a noisy
//! local prior, then scores diffuse over the social graph for a few rounds;
//! the limited attack-edge cut keeps the Sybil region's scores high.
//!
//! The resulting measured accuracy (~0.98 on default parameters, matching
//! the figure the paper takes from the SybilFuse evaluation) is what feeds
//! `ergo_core::gate::ClassifierGate` in the ERGO-SF experiments — this
//! module exists to *ground* that number in an actual classifier rather
//! than assume it.

use crate::graph::SocialGraph;
use crate::metrics::Confusion;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`SybilFuse`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SybilFuseConfig {
    /// Probability the local classifier scores a node on the correct side
    /// (SybilFuse's local classifiers are weak, ~0.7).
    pub local_accuracy: f64,
    /// Propagation rounds.
    pub rounds: usize,
    /// Weight on neighbor average vs own score per round.
    pub diffusion: f64,
    /// Decision threshold on the final score (`> threshold` ⇒ Sybil).
    pub threshold: f64,
}

impl Default for SybilFuseConfig {
    fn default() -> Self {
        SybilFuseConfig { local_accuracy: 0.75, rounds: 12, diffusion: 0.85, threshold: 0.5 }
    }
}

/// The classifier: holds per-node scores after propagation.
#[derive(Clone, Debug)]
pub struct SybilFuse {
    scores: Vec<f64>,
    cfg: SybilFuseConfig,
}

impl SybilFuse {
    /// Trains (runs propagation) on the graph.
    ///
    /// # Panics
    ///
    /// Panics if config values are out of range.
    pub fn train(graph: &SocialGraph, cfg: SybilFuseConfig, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&cfg.local_accuracy));
        assert!((0.0..=1.0).contains(&cfg.diffusion));
        assert!((0.0..=1.0).contains(&cfg.threshold));
        let mut rng = StdRng::seed_from_u64(seed);
        let n = graph.len();

        // Local priors: correct side of 0.5 with probability local_accuracy.
        let mut scores: Vec<f64> = (0..n)
            .map(|i| {
                let correct = rng.gen::<f64>() < cfg.local_accuracy;
                let sybil_side = graph.is_sybil(i) == correct;
                if sybil_side {
                    rng.gen_range(0.5..1.0)
                } else {
                    rng.gen_range(0.0..0.5)
                }
            })
            .collect();

        // Weighted score propagation.
        let mut next = vec![0.0f64; n];
        for _ in 0..cfg.rounds {
            for i in 0..n {
                let neigh = graph.neighbors(i);
                let avg = if neigh.is_empty() {
                    scores[i]
                } else {
                    neigh.iter().map(|&j| scores[j]).sum::<f64>() / neigh.len() as f64
                };
                next[i] = (1.0 - cfg.diffusion) * scores[i] + cfg.diffusion * avg;
            }
            std::mem::swap(&mut scores, &mut next);
        }

        SybilFuse { scores, cfg }
    }

    /// The propagated score of node `i` (higher = more Sybil-like).
    pub fn score(&self, i: usize) -> f64 {
        self.scores[i]
    }

    /// The classifier's verdict for node `i` (`true` = Sybil).
    pub fn classify(&self, i: usize) -> bool {
        self.scores[i] > self.cfg.threshold
    }

    /// Evaluates against the graph's ground truth.
    pub fn evaluate(&self, graph: &SocialGraph) -> Confusion {
        let mut c = Confusion::default();
        for i in 0..graph.len() {
            c.record(graph.is_sybil(i), self.classify(i));
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{generate, GraphParams};

    #[test]
    fn propagation_beats_local_classifier() {
        let graph = generate(GraphParams::default(), 21);
        let cfg = SybilFuseConfig::default();
        let fused = SybilFuse::train(&graph, cfg, 22);
        let acc = fused.evaluate(&graph).accuracy();
        assert!(
            acc > cfg.local_accuracy + 0.1,
            "fused accuracy {acc} should beat local {l}",
            l = cfg.local_accuracy
        );
    }

    #[test]
    fn default_accuracy_is_in_sybilfuse_territory() {
        // The paper cites 0.98 average accuracy for SybilFuse; our stand-in
        // should land in the same neighborhood on default parameters.
        let graph = generate(GraphParams::default(), 31);
        let fused = SybilFuse::train(&graph, SybilFuseConfig::default(), 32);
        let acc = fused.evaluate(&graph).accuracy();
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn more_attack_edges_hurt_accuracy() {
        let few = generate(GraphParams { attack_edges: 5, ..Default::default() }, 41);
        let many = generate(GraphParams { attack_edges: 2000, ..Default::default() }, 41);
        let cfg = SybilFuseConfig::default();
        let acc_few = SybilFuse::train(&few, cfg, 42).evaluate(&few).accuracy();
        let acc_many = SybilFuse::train(&many, cfg, 42).evaluate(&many).accuracy();
        assert!(acc_few > acc_many, "few-edges {acc_few} should beat many-edges {acc_many}");
    }

    #[test]
    fn scores_are_probabilities() {
        let graph = generate(GraphParams::default(), 51);
        let fused = SybilFuse::train(&graph, SybilFuseConfig::default(), 52);
        for i in 0..graph.len() {
            let s = fused.score(i);
            assert!((0.0..=1.0).contains(&s), "score {s} out of range");
        }
    }

    #[test]
    fn no_propagation_equals_local_prior_quality() {
        let graph = generate(GraphParams::default(), 61);
        let cfg = SybilFuseConfig { rounds: 0, ..Default::default() };
        let fused = SybilFuse::train(&graph, cfg, 62);
        let acc = fused.evaluate(&graph).accuracy();
        assert!((acc - cfg.local_accuracy).abs() < 0.05, "accuracy {acc}");
    }
}
