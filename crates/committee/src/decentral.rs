//! Decentralized Ergo (paper Section 12, Theorem 4).
//!
//! Replaces the coordinating server with a `Θ(log n)` committee holding a
//! good majority: the committee sequences membership events through SMR,
//! runs GoodJEst and Ergo on the agreed order, and elects its successor at
//! the end of every iteration. Theorem 4: the spend-rate bound of Theorem 1
//! carries over, the system keeps a `< 1/6` bad fraction, and the committee
//! keeps a `≤ 1/8` bad fraction (Lemma 18).
//!
//! [`DecentralizedErgo`] wraps the core [`Ergo`] defense: membership logic
//! is byte-identical to the centralized version (the committee agrees on
//! the same event order the server would have seen), while this wrapper
//! tracks the committee's evolution — per-iteration attrition of good seats
//! (departing good IDs are uniform over good IDs, so seats fall with them)
//! and re-election from the post-purge membership — plus the SMR message
//! complexity.

use crate::election::{attrition, committee_size, elect, Committee};
use ergo_core::ergo::Ergo;
use ergo_core::params::ErgoConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sybil_sim::cost::Cost;
use sybil_sim::defense::{
    Admission, BatchAdmission, Defense, DefenseEvent, PeriodicReport, PurgeReport,
};
use sybil_sim::time::Time;

/// Configuration for [`DecentralizedErgo`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecentralConfig {
    /// Core Ergo configuration.
    pub ergo: ErgoConfig,
    /// Committee-size constant `C` in `C·log N` (Lemma 18 requires it large
    /// enough; 30 keeps the 7/8 bound comfortably at n ≈ 10⁴).
    pub committee_c: f64,
    /// RNG seed for elections (models the committee's Rabin–Ben-Or coin).
    pub seed: u64,
}

impl Default for DecentralConfig {
    fn default() -> Self {
        DecentralConfig { ergo: ErgoConfig::default(), committee_c: 30.0, seed: 0 }
    }
}

/// A committee snapshot taken at an iteration boundary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommitteeRecord {
    /// When the new committee was elected.
    pub at: Time,
    /// The committee as elected.
    pub elected: Committee,
    /// The *outgoing* committee after its within-iteration attrition — the
    /// low-water mark the 7/8 bound must survive.
    pub outgoing: Committee,
}

/// Committee-coordinated Ergo.
pub struct DecentralizedErgo {
    inner: Ergo,
    cfg: DecentralConfig,
    rng: StdRng,
    committee: Committee,
    n_good_at_iter_start: u64,
    iter_good_departs: u64,
    history: Vec<CommitteeRecord>,
    messages: u64,
}

impl DecentralizedErgo {
    /// Creates an instance; call [`Defense::init`] before use.
    pub fn new(cfg: DecentralConfig) -> Self {
        DecentralizedErgo {
            inner: Ergo::new(cfg.ergo),
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            committee: Committee { good: 0, bad: 0 },
            n_good_at_iter_start: 0,
            iter_good_departs: 0,
            history: Vec::new(),
            messages: 0,
        }
    }

    /// The current committee composition.
    pub fn committee(&self) -> Committee {
        self.committee
    }

    /// Committee snapshots at every iteration boundary.
    pub fn history(&self) -> &[CommitteeRecord] {
        &self.history
    }

    /// Total SMR messages exchanged (each sequenced event or batch costs
    /// one broadcast-and-vote round: `O(committee²)` messages).
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// The smallest good fraction any (possibly attrited) committee held.
    pub fn min_committee_good_fraction(&self) -> f64 {
        self.history
            .iter()
            .map(|r| r.outgoing.good_fraction())
            .fold(self.committee.good_fraction(), f64::min)
    }

    fn sequence_event(&mut self) {
        // One SMR propose+vote round over the committee.
        let s = self.committee.size();
        self.messages += s + s * s;
    }

    fn elect_new_committee(&mut self, at: Time) {
        // Within-iteration attrition: each good seat departed with the same
        // probability as any good ID (departures are u.a.r. over good IDs).
        let depart_prob = if self.n_good_at_iter_start == 0 {
            0.0
        } else {
            (self.iter_good_departs as f64 / self.n_good_at_iter_start as f64).min(1.0)
        };
        let outgoing = attrition(self.committee, depart_prob, &mut self.rng);
        let seats = committee_size(self.inner.n_members(), self.cfg.committee_c);
        let elected = elect(self.inner.n_good(), self.inner.n_bad(), seats, &mut self.rng);
        self.history.push(CommitteeRecord { at, elected, outgoing });
        self.committee = elected;
        self.n_good_at_iter_start = self.inner.n_good();
        self.iter_good_departs = 0;
    }
}

impl Defense for DecentralizedErgo {
    fn name(&self) -> String {
        format!("decentralized-{}", self.inner.name())
    }

    fn init(&mut self, now: Time, n_good: u64, n_bad: u64) -> Cost {
        let cost = self.inner.init(now, n_good, n_bad);
        let seats = committee_size(self.inner.n_members(), self.cfg.committee_c);
        self.committee = elect(n_good, n_bad, seats, &mut self.rng);
        self.n_good_at_iter_start = n_good;
        self.iter_good_departs = 0;
        cost
    }

    fn quote(&self, now: Time) -> Cost {
        self.inner.quote(now)
    }

    fn good_join(&mut self, now: Time) -> Admission {
        self.sequence_event();
        self.inner.good_join(now)
    }

    fn good_depart(&mut self, now: Time, joined_at: Time) {
        self.sequence_event();
        self.iter_good_departs += 1;
        self.inner.good_depart(now, joined_at);
    }

    fn bad_join_batch(&mut self, now: Time, budget: Cost, max_attempts: u64) -> BatchAdmission {
        self.sequence_event();
        self.inner.bad_join_batch(now, budget, max_attempts)
    }

    fn bad_depart(&mut self, now: Time, n: u64) -> u64 {
        self.sequence_event();
        self.inner.bad_depart(now, n)
    }

    fn purge_due(&self, now: Time) -> bool {
        self.inner.purge_due(now)
    }

    fn purge(&mut self, now: Time, retain_bad: u64) -> PurgeReport {
        self.sequence_event();
        let report = self.inner.purge(now, retain_bad);
        if !report.skipped {
            self.elect_new_committee(now);
        }
        report
    }

    fn next_periodic(&self) -> Option<Time> {
        self.inner.next_periodic()
    }

    fn periodic_cost_per_member(&self, now: Time) -> Cost {
        self.inner.periodic_cost_per_member(now)
    }

    fn periodic_apply(&mut self, now: Time, bad_retained: u64) -> PeriodicReport {
        self.inner.periodic_apply(now, bad_retained)
    }

    fn n_members(&self) -> u64 {
        self.inner.n_members()
    }

    fn n_bad(&self) -> u64 {
        self.inner.n_bad()
    }

    fn drain_events_into(&mut self, out: &mut Vec<DefenseEvent>) {
        self.inner.drain_events_into(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sybil_sim::adversary::BudgetJoiner;
    use sybil_sim::engine::{SimConfig, Simulation};
    use sybil_sim::workload::{Session, Workload};

    fn workload() -> Workload {
        Workload::new(
            (0..2000).map(|i| Time(1.0 + i as f64)).collect(),
            (0..2000)
                .map(|i| Session::new(Time(i as f64 * 0.5), Time(i as f64 * 0.5 + 500.0)))
                .collect(),
        )
    }

    #[test]
    fn behaves_like_centralized_ergo() {
        // Same workload, same adversary, same seed: the decentralized
        // variant must make identical membership decisions.
        let cfg = SimConfig { horizon: Time(500.0), adv_rate: 200.0, ..SimConfig::default() };
        let central = Simulation::new(
            cfg,
            Ergo::new(ErgoConfig::default()),
            BudgetJoiner::new(200.0),
            workload(),
        )
        .run();
        let decentral = Simulation::new(
            cfg,
            DecentralizedErgo::new(DecentralConfig::default()),
            BudgetJoiner::new(200.0),
            workload(),
        )
        .run();
        assert_eq!(central.bad_joins_admitted, decentral.bad_joins_admitted);
        assert_eq!(central.purges, decentral.purges);
        assert_eq!(central.final_members, decentral.final_members);
        assert_eq!(central.ledger.good_total(), decentral.ledger.good_total());
    }

    #[test]
    fn committee_maintains_good_supermajority_under_attack() {
        let cfg = SimConfig { horizon: Time(1000.0), adv_rate: 500.0, ..SimConfig::default() };
        let mut defense = DecentralizedErgo::new(DecentralConfig::default());
        // Run via the engine by moving the defense in, then inspect history
        // through a second instance... instead drive the defense directly:
        defense.init(Time::ZERO, 10_000, 0);
        // Burst joins and purges across many iterations.
        let _ = cfg;
        let mut t = 0.0;
        for _ in 0..50 {
            t += 1.0;
            let now = Time(t);
            let _ = defense.bad_join_batch(now, Cost(1e12), u64::MAX);
            // Some good departures within the iteration.
            for _ in 0..50 {
                defense.good_depart(now, Time::ZERO);
            }
            if defense.purge_due(now) {
                defense.purge(now, defense.n_bad().min(defense.n_members() / 18));
            }
        }
        assert!(!defense.history().is_empty());
        let min_frac = defense.min_committee_good_fraction();
        assert!(min_frac >= 7.0 / 8.0, "min committee good fraction {min_frac}");
        assert!(defense.messages() > 0);
    }

    #[test]
    fn committee_size_is_logarithmic() {
        let mut d = DecentralizedErgo::new(DecentralConfig::default());
        d.init(Time::ZERO, 10_000, 0);
        let size = d.committee().size();
        // 30·ln(10000) ≈ 277.
        assert!((250..=300).contains(&size), "size {size}");
    }

    #[test]
    fn elections_happen_at_purges() {
        let mut d = DecentralizedErgo::new(DecentralConfig::default());
        d.init(Time::ZERO, 110, 0);
        let before = d.history().len();
        let _ = d.bad_join_batch(Time(1.0), Cost(1e9), u64::MAX);
        d.purge(Time(1.0), 0);
        assert_eq!(d.history().len(), before + 1);
        let rec = d.history().last().unwrap();
        assert!(rec.elected.size() > 0);
    }
}
