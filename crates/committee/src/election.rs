//! Committee election (paper Section 12.2).
//!
//! At the end of each iteration the old committee elects a new one of size
//! `C·log N` by selecting IDs "independently and uniformly at random from
//! the set `S_i`" — implementable with the Rabin–Ben-Or secure multiparty
//! coin (the paper's suggestion) whose output we model as a seeded RNG.
//! Lemma 18: with `C` large enough the committee keeps a ≥ 7/8 good
//! fraction and Θ(log n₀) size throughout, w.h.p.

use rand::rngs::StdRng;
use rand::Rng;

/// The composition of an elected committee (seat counts).
///
/// Seats are sampled independently with replacement, exactly as Lemma 18
/// analyzes; a seat is good with probability equal to the good fraction of
/// the current membership.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Committee {
    /// Seats held by good IDs.
    pub good: u64,
    /// Seats held by Sybil IDs.
    pub bad: u64,
}

impl Committee {
    /// Total seats.
    pub fn size(&self) -> u64 {
        self.good + self.bad
    }

    /// Fraction of seats held by good IDs (1.0 for an empty committee).
    pub fn good_fraction(&self) -> f64 {
        if self.size() == 0 {
            return 1.0;
        }
        self.good as f64 / self.size() as f64
    }

    /// True if good IDs hold a strict majority.
    pub fn good_majority(&self) -> bool {
        2 * self.good > self.size()
    }
}

/// The committee size rule `⌈C·ln N⌉` (paper: `C log N_i` for constant C).
pub fn committee_size(n_members: u64, c: f64) -> u64 {
    assert!(c > 0.0, "C must be positive");
    let n = n_members.max(2) as f64;
    (c * n.ln()).ceil() as u64
}

/// Elects a committee of `seats` from a population with `n_good` good and
/// `n_bad` Sybil members, sampling seats independently and uniformly.
pub fn elect(n_good: u64, n_bad: u64, seats: u64, rng: &mut StdRng) -> Committee {
    let n = n_good + n_bad;
    if n == 0 || seats == 0 {
        return Committee { good: 0, bad: 0 };
    }
    let p_good = n_good as f64 / n as f64;
    let mut good = 0;
    for _ in 0..seats {
        if rng.gen::<f64>() < p_good {
            good += 1;
        }
    }
    Committee { good, bad: seats - good }
}

/// Applies within-iteration attrition: each good seat departs independently
/// with probability `depart_prob` (good departures are uniform over good
/// IDs, so a seat departs with the same probability as any good ID).
pub fn attrition(committee: Committee, depart_prob: f64, rng: &mut StdRng) -> Committee {
    assert!((0.0..=1.0).contains(&depart_prob), "probability out of range");
    let mut departed = 0;
    for _ in 0..committee.good {
        if rng.gen::<f64>() < depart_prob {
            departed += 1;
        }
    }
    Committee { good: committee.good - departed, bad: committee.bad }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn size_rule_is_logarithmic() {
        let s10k = committee_size(10_000, 30.0);
        let s100k = committee_size(100_000, 30.0);
        assert!((270..=285).contains(&s10k), "{s10k}");
        // 10x population → additive log growth, not multiplicative.
        assert!(s100k < s10k + 100, "{s100k}");
    }

    #[test]
    fn election_tracks_population_composition() {
        let mut r = rng(1);
        // 6% bad population, 276 seats: expect ~6% bad seats.
        let c = elect(9400, 600, 276, &mut r);
        assert_eq!(c.size(), 276);
        let bad_frac = 1.0 - c.good_fraction();
        assert!(bad_frac < 0.12, "bad fraction {bad_frac}");
        assert!(c.good_majority());
    }

    #[test]
    fn lemma18_good_fraction_holds_across_many_elections() {
        // Post-purge bad fraction ≤ κ/(1−ε) ≈ 6%; Lemma 18 claims the
        // committee keeps ≥ 7/8 good w.h.p. Run 2000 elections and check
        // every one (276 seats ⇒ the tail is tiny).
        let mut r = rng(2);
        let mut min_frac = 1.0f64;
        for _ in 0..2000 {
            let c = elect(9400, 600, 276, &mut r);
            min_frac = min_frac.min(c.good_fraction());
        }
        assert!(min_frac >= 7.0 / 8.0, "min good fraction {min_frac}");
    }

    #[test]
    fn attrition_only_removes_good_seats() {
        let mut r = rng(3);
        let before = Committee { good: 200, bad: 20 };
        let after = attrition(before, 1.0 / 11.0, &mut r);
        assert_eq!(after.bad, 20);
        assert!(after.good <= 200);
        // ~18 departures expected; stay within generous bounds.
        assert!(after.good >= 160, "good {}", after.good);
    }

    #[test]
    fn empty_and_degenerate_cases() {
        let mut r = rng(4);
        let c = elect(0, 0, 10, &mut r);
        assert_eq!(c.size(), 0);
        assert_eq!(c.good_fraction(), 1.0);
        let c = elect(10, 0, 0, &mut r);
        assert_eq!(c.size(), 0);
        let all_bad = elect(0, 10, 8, &mut r);
        assert_eq!(all_bad.good, 0);
        assert!(!all_bad.good_majority());
    }
}
