//! GenID bootstrap (paper Sections 2.2 and 12.1).
//!
//! GenID initializes a permissionless system: all good IDs agree on a set
//! `S` containing every good ID with at most a `κ`-fraction bad, plus a
//! logarithmic committee with a good majority. The paper points to existing
//! solutions (e.g. Aggarwal et al., reference 38: expected O(1) rounds, O(n) bits per
//! good ID, O(1) challenges each).
//!
//! We model the bootstrap's *outcome* (its internals are prior work): every
//! participant solves a 1-hard challenge — optionally a real
//! `sybil-crypto` proof-of-work — and the adversary's κ-bounded solving
//! capacity caps its share of the resulting set.

use crate::election::{committee_size, elect, Committee};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sybil_crypto::pow::{Challenge, Solver};

/// Outcome of the GenID bootstrap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GenIdOutcome {
    /// Good IDs in the agreed set (all of them, by GenID's guarantee).
    pub n_good: u64,
    /// Sybil IDs admitted (at most a κ-fraction of the set).
    pub n_bad: u64,
    /// The initial committee.
    pub committee: Committee,
    /// Resource burned by good IDs (1 per ID).
    pub good_cost: f64,
    /// Resource burned by the adversary (1 per admitted Sybil ID).
    pub adv_cost: f64,
}

impl GenIdOutcome {
    /// Total agreed membership.
    pub fn n_members(&self) -> u64 {
        self.n_good + self.n_bad
    }

    /// Fraction of the agreed set that is Sybil.
    pub fn bad_fraction(&self) -> f64 {
        if self.n_members() == 0 {
            return 0.0;
        }
        self.n_bad as f64 / self.n_members() as f64
    }
}

/// Runs the (modeled) GenID bootstrap.
///
/// `kappa` bounds the adversary's challenge-solving capacity: it can place
/// at most a `κ`-fraction of the agreed set. `c` is the committee-size
/// constant.
///
/// # Panics
///
/// Panics if `kappa` is outside `[0, 1)` or `c ≤ 0`.
pub fn bootstrap(n_good: u64, kappa: f64, c: f64, seed: u64) -> GenIdOutcome {
    assert!((0.0..1.0).contains(&kappa), "kappa must be in [0,1)");
    let mut rng = StdRng::seed_from_u64(seed);
    // Adversary fills its κ share: n_bad / (n_good + n_bad) = κ.
    let n_bad = ((kappa / (1.0 - kappa)) * n_good as f64).floor() as u64;
    let n = n_good + n_bad;
    let committee = elect(n_good, n_bad, committee_size(n, c), &mut rng);
    GenIdOutcome { n_good, n_bad, committee, good_cost: n_good as f64, adv_cost: n_bad as f64 }
}

/// Demonstrates the bootstrap's challenge round with *real* proof-of-work:
/// each of `n` participants solves a 1-hard SHA-256 challenge bound to its
/// identity and the shared bootstrap nonce. Returns the total hash work.
///
/// Used by the examples; the simulations use the abstract cost model.
pub fn solve_bootstrap_challenges(n: u64, bootstrap_nonce: &[u8]) -> u64 {
    let mut solver = Solver::new();
    for i in 0..n {
        let challenge = Challenge::new(bootstrap_nonce, &i.to_be_bytes(), 1);
        let solution = solver.solve(&challenge);
        debug_assert!(challenge.verify(&solution));
    }
    solver.work()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_respects_kappa() {
        let out = bootstrap(10_000, 1.0 / 18.0, 30.0, 1);
        assert_eq!(out.n_good, 10_000);
        assert!(out.bad_fraction() <= 1.0 / 18.0 + 1e-9, "{}", out.bad_fraction());
        assert!(out.n_bad > 0);
        assert_eq!(out.good_cost, 10_000.0);
    }

    #[test]
    fn committee_has_good_majority() {
        for seed in 0..50 {
            let out = bootstrap(10_000, 1.0 / 18.0, 30.0, seed);
            assert!(out.committee.good_majority(), "seed {seed}");
            assert!(out.committee.size() > 0);
        }
    }

    #[test]
    fn zero_kappa_means_no_sybils() {
        let out = bootstrap(100, 0.0, 10.0, 2);
        assert_eq!(out.n_bad, 0);
        assert_eq!(out.bad_fraction(), 0.0);
        assert_eq!(out.committee.bad, 0);
    }

    #[test]
    fn real_pow_bootstrap_burns_about_one_unit_each() {
        // 1-hard challenges succeed on the first attempt.
        let work = solve_bootstrap_challenges(50, b"genesis");
        assert_eq!(work, 50);
    }
}
