//! Decentralizing Ergo (paper Section 12): GenID bootstrap, committee
//! election, synchronous state-machine replication, and the committee-
//! coordinated defense.
//!
//! * [`genid`] — the GenID bootstrap: initial agreement on a membership set
//!   with a κ-bounded Sybil fraction plus a good-majority committee;
//! * [`election`] — `C·log N` committee sampling and within-iteration
//!   attrition (Lemma 18's ≥ 7/8 good-fraction invariant);
//! * [`smr`] — broadcast-and-vote SMR over authenticated channels, with
//!   Byzantine modes (reject-all, silent, equivocating) for fault injection;
//! * [`decentral`] — [`decentral::DecentralizedErgo`]: the full Theorem 4
//!   construction, byte-identical membership decisions to centralized Ergo
//!   plus committee tracking and message-complexity accounting.
//!
//! # Example
//!
//! ```
//! use sybil_committee::genid::bootstrap;
//!
//! let out = bootstrap(10_000, 1.0 / 18.0, 30.0, 7);
//! assert!(out.bad_fraction() <= 1.0 / 18.0);
//! assert!(out.committee.good_majority());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decentral;
pub mod election;
pub mod genid;
pub mod smr;

pub use decentral::{CommitteeRecord, DecentralConfig, DecentralizedErgo};
pub use election::{attrition, committee_size, elect, Committee};
pub use genid::{bootstrap, GenIdOutcome};
pub use smr::{ByzantineMode, SmrCluster};
