//! Synchronous state-machine replication over the committee
//! (paper Section 12.2).
//!
//! The committee "makes use of State Machine Replication to agree on an
//! ordering of network events so as to execute GoodJEst and Ergo in
//! parallel". With synchrony and a good-majority committee, a two-round
//! broadcast-and-vote protocol suffices: the proposer broadcasts an entry,
//! every replica echoes a signed vote, and an entry commits when a majority
//! of votes agree. All messages travel over authenticated channels
//! ([`sybil_net::auth`]), so Byzantine replicas cannot forge votes from
//! good ones — they can only vote badly or stay silent.

use sybil_net::auth::AuthKeys;
use sybil_net::network::{Network, NodeId};

/// How a Byzantine replica misbehaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByzantineMode {
    /// Votes against every proposal.
    RejectAll,
    /// Sends no votes at all.
    Silent,
    /// Votes accept to half the replicas and reject to the other half.
    Equivocate,
}

/// One replica in the cluster.
#[derive(Clone, Debug)]
struct Replica {
    node: NodeId,
    byzantine: Option<ByzantineMode>,
    log: Vec<u64>,
}

/// Wire messages.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Msg {
    Propose { seq: usize, entry: u64 },
    Vote { seq: usize, entry: u64, accept: bool },
}

fn encode(msg: &Msg) -> Vec<u8> {
    match *msg {
        Msg::Propose { seq, entry } => {
            let mut v = vec![0u8];
            v.extend_from_slice(&(seq as u64).to_be_bytes());
            v.extend_from_slice(&entry.to_be_bytes());
            v
        }
        Msg::Vote { seq, entry, accept } => {
            let mut v = vec![1u8, accept as u8];
            v.extend_from_slice(&(seq as u64).to_be_bytes());
            v.extend_from_slice(&entry.to_be_bytes());
            v
        }
    }
}

fn decode(bytes: &[u8]) -> Option<Msg> {
    match bytes.first()? {
        0 => {
            let seq = u64::from_be_bytes(bytes.get(1..9)?.try_into().ok()?) as usize;
            let entry = u64::from_be_bytes(bytes.get(9..17)?.try_into().ok()?);
            Some(Msg::Propose { seq, entry })
        }
        1 => {
            let accept = *bytes.get(1)? != 0;
            let seq = u64::from_be_bytes(bytes.get(2..10)?.try_into().ok()?) as usize;
            let entry = u64::from_be_bytes(bytes.get(10..18)?.try_into().ok()?);
            Some(Msg::Vote { seq, entry, accept })
        }
        _ => None,
    }
}

/// A synchronous SMR cluster of committee replicas.
pub struct SmrCluster {
    net: Network<sybil_net::auth::AuthenticatedMessage>,
    keys: AuthKeys,
    replicas: Vec<Replica>,
    committed: Vec<u64>,
}

impl SmrCluster {
    /// Builds a cluster with `n_good` honest replicas and the given
    /// Byzantine replicas.
    pub fn new(n_good: usize, byzantine: &[ByzantineMode], master_secret: &[u8]) -> Self {
        let mut net = Network::new();
        let mut replicas = Vec::new();
        for _ in 0..n_good {
            let node = net.register();
            replicas.push(Replica { node, byzantine: None, log: Vec::new() });
        }
        for &mode in byzantine {
            let node = net.register();
            replicas.push(Replica { node, byzantine: Some(mode), log: Vec::new() });
        }
        SmrCluster { net, keys: AuthKeys::new(master_secret), replicas, committed: Vec::new() }
    }

    /// Number of replicas.
    pub fn size(&self) -> usize {
        self.replicas.len()
    }

    /// The committed log (the ordering Ergo/GoodJEst consume).
    pub fn committed(&self) -> &[u64] {
        &self.committed
    }

    /// Total messages delivered (message-complexity accounting).
    pub fn messages_delivered(&self) -> u64 {
        self.net.delivered()
    }

    /// Proposes `entry` as the next log entry via an honest proposer;
    /// returns `true` if it committed on a majority of votes.
    ///
    /// Two synchronous rounds: propose broadcast, then votes.
    pub fn propose(&mut self, entry: u64) -> bool {
        let seq = self.committed.len();
        let proposer = self
            .replicas
            .iter()
            .find(|r| r.byzantine.is_none())
            .expect("at least one honest replica required")
            .node;

        // Round 1: authenticated propose to every replica.
        let targets: Vec<NodeId> = self.replicas.iter().map(|r| r.node).collect();
        for &to in &targets {
            let sealed = self.keys.seal(proposer, to, &encode(&Msg::Propose { seq, entry }));
            self.net.send(proposer, to, sealed);
        }
        self.net.step();

        // Round 2: every replica processes its inbox and votes to everyone.
        let mut outgoing = Vec::new();
        for r in &self.replicas {
            let inbox = self.net.inbox(r.node).to_vec();
            let mut proposal: Option<(usize, u64)> = None;
            for env in &inbox {
                let Some(payload) = self.keys.open(&env.payload) else { continue };
                if let Some(Msg::Propose { seq, entry }) = decode(payload) {
                    proposal = Some((seq, entry));
                }
            }
            let Some((pseq, pentry)) = proposal else { continue };
            match r.byzantine {
                None => {
                    // Honest: accept iff the proposal extends its log.
                    let accept = pseq == r.log.len();
                    for &to in &targets {
                        let m = Msg::Vote { seq: pseq, entry: pentry, accept };
                        outgoing.push((r.node, to, encode(&m)));
                    }
                }
                Some(ByzantineMode::RejectAll) => {
                    for &to in &targets {
                        let m = Msg::Vote { seq: pseq, entry: pentry, accept: false };
                        outgoing.push((r.node, to, encode(&m)));
                    }
                }
                Some(ByzantineMode::Silent) => {}
                Some(ByzantineMode::Equivocate) => {
                    for (i, &to) in targets.iter().enumerate() {
                        let m = Msg::Vote { seq: pseq, entry: pentry, accept: i % 2 == 0 };
                        outgoing.push((r.node, to, encode(&m)));
                    }
                }
            }
        }
        for (from, to, bytes) in outgoing {
            let sealed = self.keys.seal(from, to, &bytes);
            self.net.send(from, to, sealed);
        }
        self.net.step();

        // Tally at each replica; commit locally on majority accept.
        let majority = self.replicas.len() / 2 + 1;
        let mut committed_anywhere = false;
        let mut updates = Vec::new();
        for (idx, r) in self.replicas.iter().enumerate() {
            let mut accepts = 0;
            for env in self.net.inbox(r.node) {
                let Some(payload) = self.keys.open(&env.payload) else { continue };
                if let Some(Msg::Vote { seq: vseq, entry: ventry, accept }) = decode(payload) {
                    if vseq == seq && ventry == entry && accept {
                        accepts += 1;
                    }
                }
            }
            if accepts >= majority && r.byzantine.is_none() {
                updates.push(idx);
                committed_anywhere = true;
            }
        }
        for idx in updates {
            self.replicas[idx].log.push(entry);
        }
        if committed_anywhere {
            self.committed.push(entry);
        }
        committed_anywhere
    }

    /// True if all honest replicas hold identical logs (safety).
    pub fn honest_logs_consistent(&self) -> bool {
        let mut honest = self.replicas.iter().filter(|r| r.byzantine.is_none());
        let Some(first) = honest.next() else { return true };
        honest.all(|r| r.log == first.log)
    }

    /// The log length agreed by honest replicas (0 if inconsistent).
    pub fn honest_log_len(&self) -> usize {
        self.replicas.iter().find(|r| r.byzantine.is_none()).map_or(0, |r| r.log.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commits_with_honest_majority() {
        let mut cluster = SmrCluster::new(7, &[ByzantineMode::RejectAll; 3], b"secret");
        assert_eq!(cluster.size(), 10);
        for entry in 0..20 {
            assert!(cluster.propose(entry), "entry {entry} failed to commit");
        }
        assert_eq!(cluster.committed().len(), 20);
        assert!(cluster.honest_logs_consistent());
        assert_eq!(cluster.honest_log_len(), 20);
    }

    #[test]
    fn stalls_without_majority() {
        // 3 honest vs 7 rejecting: no entry can reach a majority.
        let mut cluster = SmrCluster::new(3, &[ByzantineMode::RejectAll; 7], b"secret");
        assert!(!cluster.propose(1));
        assert_eq!(cluster.committed().len(), 0);
        assert!(cluster.honest_logs_consistent());
    }

    #[test]
    fn silent_byzantines_are_tolerated() {
        let mut cluster = SmrCluster::new(6, &[ByzantineMode::Silent; 4], b"secret");
        for entry in 0..10 {
            assert!(cluster.propose(entry));
        }
        assert!(cluster.honest_logs_consistent());
    }

    #[test]
    fn equivocators_cannot_split_honest_logs() {
        let mut cluster = SmrCluster::new(8, &[ByzantineMode::Equivocate; 4], b"secret");
        for entry in 0..15 {
            cluster.propose(entry);
        }
        assert!(cluster.honest_logs_consistent());
    }

    #[test]
    fn message_complexity_is_quadratic_per_entry() {
        let mut cluster = SmrCluster::new(10, &[], b"secret");
        cluster.propose(1);
        // 10 proposes + 10*10 votes.
        assert_eq!(cluster.messages_delivered(), 110);
    }

    #[test]
    fn ordering_is_preserved() {
        let mut cluster = SmrCluster::new(5, &[ByzantineMode::RejectAll; 2], b"secret");
        for entry in [42, 7, 99] {
            cluster.propose(entry);
        }
        assert_eq!(cluster.committed(), &[42, 7, 99]);
    }
}
