//! The DefID problem (paper Section 2.2) and its invariant checker.
//!
//! **DefID** generalizes the well-studied GenID problem to churn: at *every*
//! time `t`, all good IDs must know a set `S(t)` such that (1) all good IDs
//! are in `S(t)`, and (2) an `O(κ)`-fraction of `S(t)` is bad. DefID is
//! strictly harder than GenID because every bad join or good departure
//! pushes the bad fraction up, and re-running a GenID solution per event
//! costs `Ω(n)` resource burning per event.
//!
//! [`DefIdChecker`] verifies requirement (2) — the Lemma 9 invariant
//! `bad fraction < 3κ` — over a stream of membership snapshots, and is used
//! by the integration tests and the invariant benchmarks.

use crate::params::KAPPA_DEFAULT;
use sybil_sim::time::Time;

/// A violation of the DefID bad-fraction bound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Violation {
    /// When the violation was observed.
    pub at: Time,
    /// The offending bad fraction.
    pub fraction: f64,
    /// Members at the time.
    pub members: u64,
    /// Bad members at the time.
    pub bad: u64,
}

/// Streaming checker for the `bad fraction < 3κ` invariant.
///
/// # Example
///
/// ```
/// use ergo_core::defid::DefIdChecker;
/// use sybil_sim::time::Time;
///
/// let mut checker = DefIdChecker::with_kappa(1.0 / 18.0);
/// checker.observe(Time(1.0), 100, 10); // 10% < 1/6: fine
/// checker.observe(Time(2.0), 100, 20); // 20% ≥ 1/6: violation
/// assert_eq!(checker.violations().len(), 1);
/// assert!(!checker.holds());
/// ```
#[derive(Clone, Debug)]
pub struct DefIdChecker {
    bound: f64,
    max_fraction: f64,
    violations: Vec<Violation>,
    observations: u64,
}

impl Default for DefIdChecker {
    fn default() -> Self {
        Self::with_kappa(KAPPA_DEFAULT)
    }
}

impl DefIdChecker {
    /// A checker enforcing `bad fraction < 3κ` for the given `κ`.
    ///
    /// # Panics
    ///
    /// Panics if `kappa` is not in `(0, 1/3)`.
    pub fn with_kappa(kappa: f64) -> Self {
        assert!(kappa > 0.0 && kappa < 1.0 / 3.0, "kappa must be in (0, 1/3)");
        Self::with_bound(3.0 * kappa)
    }

    /// A checker enforcing an explicit fraction bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is not in `(0, 1)`.
    pub fn with_bound(bound: f64) -> Self {
        assert!(bound > 0.0 && bound < 1.0, "bound must be in (0,1)");
        DefIdChecker { bound, max_fraction: 0.0, violations: Vec::new(), observations: 0 }
    }

    /// The enforced bound (`3κ`).
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Feeds a membership snapshot.
    pub fn observe(&mut self, at: Time, members: u64, bad: u64) {
        debug_assert!(bad <= members, "bad exceeds membership");
        self.observations += 1;
        let fraction = if members == 0 { 0.0 } else { bad as f64 / members as f64 };
        if fraction > self.max_fraction {
            self.max_fraction = fraction;
        }
        if fraction >= self.bound {
            self.violations.push(Violation { at, fraction, members, bad });
        }
    }

    /// True if no snapshot violated the bound.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }

    /// The largest bad fraction observed.
    pub fn max_fraction(&self) -> f64 {
        self.max_fraction
    }

    /// All violations, in observation order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Number of snapshots observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bound_is_one_sixth() {
        let c = DefIdChecker::default();
        assert!((c.bound() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn detects_violations_at_boundary() {
        let mut c = DefIdChecker::with_bound(0.25);
        c.observe(Time(1.0), 100, 24); // below
        assert!(c.holds());
        c.observe(Time(2.0), 100, 25); // fraction == bound counts as violation (strict bound)
        assert!(!c.holds());
        assert_eq!(c.violations()[0].bad, 25);
        assert_eq!(c.max_fraction(), 0.25);
        assert_eq!(c.observations(), 2);
    }

    #[test]
    fn empty_system_is_fine() {
        let mut c = DefIdChecker::default();
        c.observe(Time(0.0), 0, 0);
        assert!(c.holds());
        assert_eq!(c.max_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "kappa")]
    fn kappa_out_of_range_panics() {
        let _ = DefIdChecker::with_kappa(0.4);
    }
}
