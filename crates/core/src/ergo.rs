//! The Ergo Sybil defense (paper Figure 4, Sections 7 and 9.2).
//!
//! Ergo executes over *iterations*:
//!
//! 1. **Entrance costs** — each joining ID solves a challenge of hardness
//!    `1 +` (number of IDs that joined in the last `1/J̃` seconds of the
//!    current iteration), where `J̃` is GoodJEst's estimate of the good join
//!    rate. Under attack this escalates arithmetically, so an adversary
//!    injecting `x` IDs per window pays `Θ(x²)` while each good joiner pays
//!    `O(x)` — the asymmetry behind Theorem 1's `O(√(TJ) + J)` bound.
//! 2. **Purges** — when the number of joins plus departures in the iteration
//!    exceeds `|S(τ)|/11`, every ID must re-solve a 1-hard challenge within
//!    one round. The adversary can keep at most a `κ`-fraction alive, which
//!    (Lemma 9) pins the bad fraction below `3κ ≤ 1/6` at all times.
//!
//! The same type implements the paper's baselines and heuristic variants via
//! [`ErgoConfig`]: CCom (constant entrance cost), ERGO-CH1/CH2 (Heuristics
//! 1–3), and ERGO-SF (classifier-gated joins, Heuristic 4).
//!
//! This struct implements [`sybil_sim::Defense`], so it plugs directly into
//! the simulation engine. Sybil joins are processed in batches with
//! closed-form arithmetic-series costs (see [`crate::window`]), keeping
//! simulations O(events) even at adversary spend rates of `2²⁰`/s.

use crate::gate::ClassifierGate;
use crate::goodjest::GoodJEst;
use crate::params::{EntrancePolicy, ErgoConfig};
use crate::symdiff::SymdiffTracker;
use crate::window::{batch_cost, max_affordable, JoinWindow};
use std::collections::VecDeque;
use sybil_sim::cost::Cost;
use sybil_sim::defense::{
    Admission, BatchAdmission, BatchStop, Defense, DefenseEvent, PeriodicReport, PurgeReport,
};
use sybil_sim::time::Time;

/// A (time, sequence) stamp totally ordering join events, including several
/// at the same instant (batched Sybil joins and inline purges can share a
/// timestamp).
type Stamp = (Time, u64);

/// A run of Sybil IDs that joined together.
#[derive(Clone, Copy, Debug)]
struct BadRun {
    stamp: Stamp,
    n: u64,
}

/// The Ergo defense state machine.
///
/// # Example
///
/// ```
/// use ergo_core::ergo::Ergo;
/// use ergo_core::params::ErgoConfig;
/// use sybil_sim::defense::Defense;
/// use sybil_sim::time::Time;
/// use sybil_sim::cost::Cost;
///
/// let mut ergo = Ergo::new(ErgoConfig::default());
/// ergo.init(Time::ZERO, 1000, 0);
/// // With no recent joins the entrance quote is the minimum, 1.
/// assert_eq!(ergo.quote(Time(1.0)), Cost(1.0));
/// ```
#[derive(Clone, Debug)]
pub struct Ergo {
    cfg: ErgoConfig,
    gate: Option<ClassifierGate>,
    est: GoodJEst,
    window: JoinWindow,
    // Membership (ground truth split is engine bookkeeping only; all
    // algorithm decisions below use aggregate counts and event streams).
    n_good: u64,
    n_bad: u64,
    bad_runs: VecDeque<BadRun>,
    // Monotone per-event sequence for same-instant ordering.
    seq: u64,
    // Estimator interval-start stamp (for classifying Sybil departures).
    est_start: Stamp,
    // Iteration state.
    iter_start: Time,
    iter_start_stamp: Stamp,
    iter_start_size: u64,
    /// Cached `⌊iter_start_size · num/den⌋` (see `recompute_admission_cap`).
    iter_admission_cap: u64,
    iter_events: u64,
    iter_joins: u64,
    iter_tracker: SymdiffTracker,
    iter_start_estimate: f64,
    events: Vec<DefenseEvent>,
    name_override: Option<String>,
}

impl Ergo {
    /// Creates an Ergo instance; call [`Defense::init`] before use.
    pub fn new(cfg: ErgoConfig) -> Self {
        Ergo {
            cfg,
            gate: None,
            est: GoodJEst::new(cfg.estimator, Time::ZERO, 0),
            window: JoinWindow::new(),
            n_good: 0,
            n_bad: 0,
            bad_runs: VecDeque::new(),
            seq: 0,
            est_start: (Time::ZERO, 0),
            iter_start: Time::ZERO,
            iter_start_stamp: (Time::ZERO, 0),
            iter_start_size: 0,
            iter_admission_cap: 0,
            iter_events: 0,
            iter_joins: 0,
            iter_tracker: SymdiffTracker::new(),
            iter_start_estimate: 0.0,
            events: Vec::new(),
            name_override: None,
        }
    }

    /// Attaches a classifier gate (Heuristic 4 / ERGO-SF).
    pub fn with_gate(mut self, gate: ClassifierGate) -> Self {
        self.gate = Some(gate);
        self
    }

    /// Overrides the reported name (e.g. `"ERGO-CH1"`).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name_override = Some(name.into());
        self
    }

    /// The estimator's current good-join-rate estimate `J̃`.
    pub fn estimate(&self) -> f64 {
        self.est.estimate()
    }

    /// Read access to the estimator (tests and analysis).
    pub fn estimator(&self) -> &GoodJEst {
        &self.est
    }

    /// Joins + departures observed in the current iteration.
    pub fn iteration_events(&self) -> u64 {
        self.iter_events
    }

    /// Start time of the current iteration (`τ` in Figure 4).
    pub fn iteration_start(&self) -> Time {
        self.iter_start
    }

    fn next_stamp(&mut self, now: Time) -> Stamp {
        let s = (now, self.seq);
        self.seq += 1;
        s
    }

    /// Re-captures the estimator interval-start stamp after estimator calls
    /// (the estimator may have rolled its interval during the call).
    fn sync_est_stamp(&mut self, _now: Time) {
        if self.est.interval_start() != self.est_start.0 {
            self.est_start = (self.est.interval_start(), self.seq);
        }
    }

    /// Window width `1/J̃` for the entrance rule.
    fn window_width(&self) -> f64 {
        let j = self.est.estimate();
        if j > 0.0 {
            1.0 / j
        } else {
            f64::INFINITY
        }
    }

    /// The iteration-progress counter: raw joins+departures by default, the
    /// symmetric difference under Heuristic 2.
    fn iter_progress(&self) -> u64 {
        if self.cfg.heuristics.h2_symdiff_trigger {
            self.iter_tracker.symdiff()
        } else {
            self.iter_events
        }
    }

    /// Admissions remaining before the purge condition trips
    /// (`progress · den > size · num`). Zero means it already has.
    ///
    /// Uses the per-iteration cached threshold `iter_admission_cap =
    /// ⌊size·num/den⌋` (see [`recompute_admission_cap`]): the condition
    /// `progress·den > size·num` is exactly `progress > cap`, so the hot
    /// path — this is consulted on every Sybil batch, and [`purge_due`]
    /// via the engine on every event — is a compare instead of 128-bit
    /// multiply/divide.
    ///
    /// [`recompute_admission_cap`]: Ergo::recompute_admission_cap
    /// [`purge_due`]: Defense::purge_due
    fn admissions_until_purge(&self) -> u64 {
        let progress = self.iter_progress();
        if progress > self.iter_admission_cap {
            return 0;
        }
        // Smallest k with progress + k > cap.
        (self.iter_admission_cap - progress).saturating_add(1)
    }

    /// Recomputes the cached `⌊iter_start_size·num/den⌋` threshold; must be
    /// called whenever `iter_start_size` changes (iteration resets).
    fn recompute_admission_cap(&mut self) {
        let th = self.cfg.iteration_threshold;
        let cap = (self.iter_start_size as u128 * th.num as u128) / th.den.max(1) as u128;
        self.iter_admission_cap = cap.min((u64::MAX - 1) as u128) as u64;
    }

    /// Records one admitted join in every counter that observes joins.
    fn note_join(&mut self, now: Time, n: u64, bad: bool) {
        if n == 0 {
            return;
        }
        let stamp = self.next_stamp(now);
        // The join-history window only feeds the rate-based quote; under a
        // constant entrance policy (CCom) recording it would be pure
        // overhead on the hottest path.
        if matches!(self.cfg.entrance, EntrancePolicy::RateBased) {
            self.window.record(now, n);
        }
        self.iter_events += n;
        self.iter_joins += n;
        self.iter_tracker.on_join(n);
        self.est.on_join(now, n);
        self.sync_est_stamp(now);
        if bad {
            self.n_bad += n;
            self.bad_runs.push_back(BadRun { stamp, n });
        } else {
            self.n_good += n;
        }
    }

    /// Removes up to `n` Sybil IDs, newest runs first, feeding the symmetric
    /// -difference trackers. Returns how many were removed.
    fn remove_bad_newest(&mut self, now: Time, n: u64, count_iter_events: bool) -> u64 {
        let mut remaining = n;
        let mut removed = 0;
        while remaining > 0 {
            let Some(run) = self.bad_runs.back_mut() else { break };
            let take = run.n.min(remaining);
            run.n -= take;
            let stamp = run.stamp;
            if run.n == 0 {
                self.bad_runs.pop_back();
            }
            remaining -= take;
            removed += take;
            self.apply_bad_departure(now, stamp, take, count_iter_events);
        }
        removed
    }

    /// Removes up to `n` Sybil IDs, oldest runs first (purge order).
    fn remove_bad_oldest(&mut self, now: Time, n: u64, count_iter_events: bool) -> u64 {
        let mut remaining = n;
        let mut removed = 0;
        while remaining > 0 {
            let Some(run) = self.bad_runs.front_mut() else { break };
            let take = run.n.min(remaining);
            run.n -= take;
            let stamp = run.stamp;
            if run.n == 0 {
                self.bad_runs.pop_front();
            }
            remaining -= take;
            removed += take;
            self.apply_bad_departure(now, stamp, take, count_iter_events);
        }
        removed
    }

    fn apply_bad_departure(&mut self, now: Time, stamp: Stamp, n: u64, count_iter_events: bool) {
        self.n_bad -= n;
        let old_for_est = stamp <= self.est_start;
        self.est.on_depart(now, old_for_est, n);
        self.sync_est_stamp(now);
        if count_iter_events {
            self.iter_events += n;
            if stamp <= self.iter_start_stamp {
                self.iter_tracker.on_depart_old(n);
            } else {
                self.iter_tracker.on_depart_new(n);
            }
        }
    }

    /// Starts a new iteration at `now` (after a purge or a Heuristic-3 skip).
    fn reset_iteration(&mut self, now: Time) {
        self.iter_start = now;
        self.iter_start_stamp = (now, self.seq);
        self.iter_start_size = self.n_members();
        self.recompute_admission_cap();
        self.iter_events = 0;
        self.iter_joins = 0;
        self.iter_tracker.reset();
        self.iter_start_estimate = self.est.estimate();
        self.window.clear();
    }

    /// Heuristic 3: should this purge be skipped? (Total join rate over the
    /// iteration below `c · J̃_prev` means the membership change was mostly
    /// benign departures, so purging buys little.)
    ///
    /// Inactive until GoodJEst has completed at least one interval: the
    /// heuristic compares against "the estimate from the prior iteration",
    /// and before the first interval only the (deliberately crude)
    /// initialization guess exists — trusting it would let the adversary
    /// accumulate Sybil IDs unboundedly during the warm-up phase.
    fn heuristic3_skips(&self, now: Time) -> bool {
        if !self.cfg.heuristics.h3_conditional_purge || self.est.update_count() == 0 {
            return false;
        }
        let dt = now - self.iter_start;
        if dt <= 0.0 {
            return false;
        }
        let join_rate = self.iter_joins as f64 / dt;
        join_rate < self.cfg.heuristics.h3_c * self.iter_start_estimate
    }
}

impl Defense for Ergo {
    fn name(&self) -> String {
        if let Some(n) = &self.name_override {
            return n.clone();
        }
        match (self.cfg.entrance, self.gate.is_some()) {
            (EntrancePolicy::Constant(_), _) => "CCOM".into(),
            (EntrancePolicy::RateBased, true) => "ERGO-SF".into(),
            (EntrancePolicy::RateBased, false) => "ERGO".into(),
        }
    }

    fn init(&mut self, now: Time, n_good: u64, n_bad: u64) -> Cost {
        self.n_good = n_good;
        self.n_bad = n_bad;
        self.seq = 0;
        self.bad_runs.clear();
        if n_bad > 0 {
            let stamp = self.next_stamp(now);
            self.bad_runs.push_back(BadRun { stamp, n: n_bad });
        }
        self.est = GoodJEst::new(self.cfg.estimator, now, n_good + n_bad);
        // Steady-state allocation budget: every growable Ergo structure
        // reserves its expected high-water here, outside the engine's
        // measured event loop, so processing events allocates nothing.
        // Clears during the run (purges, drains) all keep capacity.
        let n = (n_good + n_bad).min(1 << 16) as usize;
        self.window.reserve(n);
        self.est.reserve_log(4096);
        self.bad_runs.reserve(1024);
        // The engine drains the event log at every purge boundary (see
        // `Simulation::absorb_defense_events`), so the log holds at most
        // one iteration's worth of records between drains; a small reserve
        // covers the records logged before the first drain.
        self.events.reserve(64);
        self.est_start = (now, self.seq);
        self.reset_iteration(now);
        Cost::ONE
    }

    fn quote(&self, now: Time) -> Cost {
        match self.cfg.entrance {
            EntrancePolicy::Constant(c) => Cost(c),
            EntrancePolicy::RateBased => {
                Cost(1.0 + self.window.count_within(now, self.window_width()) as f64)
            }
        }
    }

    fn good_join(&mut self, now: Time) -> Admission {
        let cost = self.quote(now);
        if let Some(gate) = self.gate.as_mut() {
            if !gate.admit_good() {
                return Admission::Refused { cost };
            }
        }
        self.note_join(now, 1, false);
        Admission::Admitted { cost }
    }

    fn good_depart(&mut self, now: Time, joined_at: Time) {
        debug_assert!(self.n_good > 0, "good departure with no good members");
        self.n_good = self.n_good.saturating_sub(1);
        self.iter_events += 1;
        if joined_at <= self.iter_start {
            self.iter_tracker.on_depart_old(1);
        } else {
            self.iter_tracker.on_depart_new(1);
        }
        let old = self.est.classify_old(joined_at);
        self.est.on_depart(now, old, 1);
        self.sync_est_stamp(now);
    }

    fn bad_join_batch(&mut self, now: Time, budget: Cost, max_attempts: u64) -> BatchAdmission {
        let mut spent = 0.0f64;
        let mut admitted = 0u64;
        let mut attempts = 0u64;
        let budget = budget.value();

        let headroom = self.admissions_until_purge();
        if headroom == 0 {
            return BatchAdmission {
                admitted: 0,
                attempts: 0,
                spent: Cost::ZERO,
                stop: BatchStop::PurgeTriggered,
            };
        }

        match self.gate {
            None => {
                let q0 = self.quote(now).value();
                // Rate-based entrance costs escalate by 1 per admission
                // (each join enters the window); constant costs do not.
                let afford = match self.cfg.entrance {
                    EntrancePolicy::RateBased => max_affordable(q0, budget),
                    EntrancePolicy::Constant(c) => (budget / c.max(1e-12)).floor() as u64,
                };
                let n = afford.min(headroom).min(max_attempts);
                spent = match self.cfg.entrance {
                    EntrancePolicy::RateBased => batch_cost(q0, n),
                    EntrancePolicy::Constant(c) => c * n as f64,
                };
                self.note_join(now, n, true);
                admitted = n;
                attempts = n;
                let stop = if self.admissions_until_purge() == 0 {
                    BatchStop::PurgeTriggered
                } else if attempts >= max_attempts {
                    BatchStop::MaxAttempts
                } else {
                    BatchStop::Budget
                };
                BatchAdmission { admitted, attempts, spent: Cost(spent), stop }
            }
            Some(_) => {
                // Classifier-gated: each attempt pays the current quote;
                // only false negatives are admitted. Refusals between two
                // admissions all pay the same quote, so we sample the
                // geometric gap and charge it in one step.
                let stop;
                loop {
                    if attempts >= max_attempts {
                        stop = BatchStop::MaxAttempts;
                        break;
                    }
                    let q = self.quote(now).value();
                    let refusals = self
                        .gate
                        .as_mut()
                        .expect("gate present in gated branch")
                        .refusals_before_bad_admit();
                    let attempts_left = max_attempts - attempts;
                    // Can the budget fund all refusals plus the admission?
                    let affordable_attempts = ((budget - spent) / q).floor() as u64;
                    if refusals >= attempts_left || affordable_attempts <= refusals {
                        // Budget or attempt limit dies inside the refusal run.
                        let burn = affordable_attempts.min(attempts_left).min(refusals);
                        attempts += burn;
                        spent += burn as f64 * q;
                        stop = if attempts >= max_attempts {
                            BatchStop::MaxAttempts
                        } else {
                            BatchStop::Budget
                        };
                        break;
                    }
                    attempts += refusals + 1;
                    spent += (refusals + 1) as f64 * q;
                    self.note_join(now, 1, true);
                    admitted += 1;
                    if self.admissions_until_purge() == 0 {
                        stop = BatchStop::PurgeTriggered;
                        break;
                    }
                }
                BatchAdmission { admitted, attempts, spent: Cost(spent), stop }
            }
        }
    }

    fn bad_depart(&mut self, now: Time, n: u64) -> u64 {
        self.remove_bad_newest(now, n, true)
    }

    fn purge_due(&self, _now: Time) -> bool {
        // Equivalent to `iteration_threshold.lt_scaled(progress, size)`
        // via the cached cap — this runs on every engine event.
        self.iter_progress() > self.iter_admission_cap
    }

    fn purge(&mut self, now: Time, retain_bad: u64) -> PurgeReport {
        if self.heuristic3_skips(now) {
            // Not logged as a DefenseEvent: no consumer reads PurgeSkipped
            // (the report drops it on absorb, and the engine counts skips
            // from the PurgeReport), while under heavy attack skips can
            // end iterations every few admissions — logging them made the
            // event buffer the one allocation no init-time reserve could
            // bound.
            // A skipped purge still ends the iteration, so Heuristic 1's
            // deferred estimator update is released here too.
            self.est.on_purge_complete(now);
            self.sync_est_stamp(now);
            self.reset_iteration(now);
            return PurgeReport {
                good_cost: Cost::ZERO,
                adv_cost: Cost::ZERO,
                bad_removed: 0,
                skipped: true,
                good_charged: 0,
            };
        }
        let retain = retain_bad.min(self.n_bad);
        let to_remove = self.n_bad - retain;
        // Purge removals do not advance the (about-to-reset) iteration
        // counters, but they do update the estimator's symmetric difference.
        let removed = self.remove_bad_oldest(now, to_remove, false);
        debug_assert_eq!(removed, to_remove);
        let good_cost = Cost(self.n_good as f64);
        let adv_cost = Cost(retain as f64);
        self.est.on_purge_complete(now);
        self.sync_est_stamp(now);
        self.reset_iteration(now);
        self.events.push(DefenseEvent::PurgeCompleted { at: now, members_after: self.n_members() });
        PurgeReport {
            good_cost,
            adv_cost,
            bad_removed: removed,
            skipped: false,
            good_charged: self.n_good,
        }
    }

    fn next_periodic(&self) -> Option<Time> {
        None
    }

    fn periodic_cost_per_member(&self, _now: Time) -> Cost {
        Cost::ZERO
    }

    fn periodic_apply(&mut self, _now: Time, _bad_retained: u64) -> PeriodicReport {
        PeriodicReport { good_cost: Cost::ZERO, bad_dropped: 0, good_charged: 0 }
    }

    fn n_members(&self) -> u64 {
        self.n_good + self.n_bad
    }

    fn n_bad(&self) -> u64 {
        self.n_bad
    }

    fn drain_events_into(&mut self, out: &mut Vec<DefenseEvent>) {
        if out.is_empty() {
            // Hand the filled buffer to the caller and keep theirs: the two
            // buffers ping-pong between engine and defense, so once both
            // have grown to the high-water mark nothing allocates again.
            std::mem::swap(out, &mut self.events);
        } else {
            out.extend_from_slice(&self.events);
            self.events.clear();
        }
        let events = &mut *out;
        self.est.drain_intervals_with(|rec| {
            events.push(DefenseEvent::EstimateUpdated {
                start: rec.start,
                end: rec.end,
                estimate: rec.estimate,
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Heuristics;

    fn fresh(n_good: u64) -> Ergo {
        let mut e = Ergo::new(ErgoConfig::default());
        e.init(Time::ZERO, n_good, 0);
        e
    }

    #[test]
    fn quote_starts_at_one_and_escalates() {
        let mut e = fresh(1000);
        assert_eq!(e.quote(Time(0.5)), Cost(1.0));
        // Initial estimate is 1000/s → window 1 ms. Two joins 0.1 ms apart
        // land in the same window.
        let a = e.good_join(Time(0.5));
        assert_eq!(a.cost(), Cost(1.0));
        let b = e.good_join(Time(0.5001));
        assert_eq!(b.cost(), Cost(2.0));
        // Outside the 1 ms window the quote falls back to 1.
        let c = e.good_join(Time(0.6));
        assert_eq!(c.cost(), Cost(1.0));
    }

    #[test]
    fn bad_batch_pays_arithmetic_series() {
        let mut e = fresh(10_000);
        // Budget 10 at quote 1: 1+2+3+4 = 10 → 4 admitted.
        let b = e.bad_join_batch(Time(1.0), Cost(10.0), u64::MAX);
        assert_eq!(b.admitted, 4);
        assert_eq!(b.spent, Cost(10.0));
        assert_eq!(b.stop, BatchStop::Budget);
        assert_eq!(e.n_bad(), 4);
    }

    #[test]
    fn batch_stops_at_purge_threshold() {
        let mut e = fresh(110);
        // Iteration threshold 1/11 of 110 = 10: the 11th event trips it.
        let b = e.bad_join_batch(Time(1.0), Cost(1e9), u64::MAX);
        assert_eq!(b.admitted, 11);
        assert_eq!(b.stop, BatchStop::PurgeTriggered);
        assert!(e.purge_due(Time(1.0)));
        // No more admissions until the purge resolves.
        let b2 = e.bad_join_batch(Time(1.0), Cost(1e9), u64::MAX);
        assert_eq!(b2.admitted, 0);
        assert_eq!(b2.stop, BatchStop::PurgeTriggered);
    }

    #[test]
    fn purge_flushes_unretained_bad_and_charges_good() {
        let mut e = fresh(110);
        e.bad_join_batch(Time(1.0), Cost(1e9), u64::MAX);
        let r = e.purge(Time(1.0), 3);
        assert_eq!(r.bad_removed, 8);
        assert_eq!(e.n_bad(), 3);
        assert_eq!(r.good_cost, Cost(110.0));
        assert_eq!(r.adv_cost, Cost(3.0));
        assert!(!e.purge_due(Time(1.0)));
        // New iteration: quote resets (window cleared).
        assert_eq!(e.quote(Time(1.0)), Cost(1.0));
    }

    #[test]
    fn departures_count_toward_iteration() {
        let mut e = fresh(110);
        for i in 0..10 {
            e.good_depart(Time(1.0 + i as f64), Time::ZERO);
        }
        assert!(!e.purge_due(Time(11.0)));
        e.good_depart(Time(11.0), Time::ZERO);
        assert!(e.purge_due(Time(11.0)));
    }

    #[test]
    fn ccom_quote_is_constant() {
        let mut e = Ergo::new(ErgoConfig::ccom());
        e.init(Time::ZERO, 1000, 0);
        assert_eq!(e.name(), "CCOM");
        for i in 0..50 {
            let a = e.good_join(Time(0.001 * i as f64));
            assert_eq!(a.cost(), Cost(1.0));
        }
    }

    #[test]
    fn heuristic2_ignores_join_depart_cycles() {
        // A churn-forcing adversary joins and departs the same IDs; the raw
        // counter trips the purge, the symmetric-difference trigger does not.
        let cfg_plain = ErgoConfig::default();
        let cfg_h2 = ErgoConfig::with_heuristics(Heuristics {
            h2_symdiff_trigger: true,
            ..Heuristics::none()
        });
        for (cfg, expect_due) in [(cfg_plain, true), (cfg_h2, false)] {
            let mut e = Ergo::new(cfg);
            e.init(Time::ZERO, 110, 0);
            for i in 0..12 {
                let t = Time(1.0 + i as f64);
                e.bad_join_batch(t, Cost(2.0), 1);
                e.bad_depart(t, 1);
            }
            assert_eq!(
                e.purge_due(Time(20.0)),
                expect_due,
                "h2={}",
                cfg.heuristics.h2_symdiff_trigger
            );
        }
    }

    #[test]
    fn heuristic3_skips_departure_driven_purges() {
        let cfg = ErgoConfig::with_heuristics(Heuristics::ch2());
        let mut e = Ergo::new(cfg);
        e.init(Time::ZERO, 400, 0);
        // Warm-up: Heuristic 3 is inactive until GoodJEst completes an
        // interval (118 old departures cross the 5/12 threshold on a
        // 400-member system), so the first purge is NOT skipped.
        for i in 0..118 {
            e.good_depart(Time(1.0 + i as f64), Time::ZERO);
        }
        assert!(e.purge_due(Time(119.0)));
        let first = e.purge(Time(119.0), 0);
        assert!(!first.skipped, "warm-up purge must execute");
        assert!(e.estimator().update_count() >= 1, "H1 released the estimate at the purge");
        // Second iteration ends purely by departures again: join rate 0 is
        // below c·J̃, so now Heuristic 3 skips the purge.
        for i in 0..30 {
            e.good_depart(Time(121.0 + i as f64), Time::ZERO);
        }
        assert!(e.purge_due(Time(160.0)));
        let second = e.purge(Time(160.0), 0);
        assert!(second.skipped);
        assert_eq!(second.good_cost, Cost::ZERO);
        // The iteration reset: not due anymore.
        assert!(!e.purge_due(Time(160.0)));
    }

    #[test]
    fn gate_refuses_bad_probabilistically() {
        let mut e =
            Ergo::new(ErgoConfig::default()).with_gate(ClassifierGate::with_accuracy(0.98, 42));
        e.init(Time::ZERO, 1_000_000, 0); // huge so no purge interferes
        let b = e.bad_join_batch(Time(1.0), Cost(10_000.0), u64::MAX);
        // ~2% of attempts admitted; refusal runs pay the current quote, which
        // climbs by 1 per admission, so ~k admissions cost ≈ 25k² total.
        assert!(b.attempts >= 500, "attempts {}", b.attempts);
        assert!(b.admitted < b.attempts / 10, "admitted {} of {}", b.admitted, b.attempts);
        assert!(b.spent.value() <= 10_000.0);
        assert_eq!(e.n_bad(), b.admitted);
    }

    #[test]
    fn gate_refuses_some_good() {
        let mut e =
            Ergo::new(ErgoConfig::default()).with_gate(ClassifierGate::with_accuracy(0.5, 7));
        e.init(Time::ZERO, 1000, 0);
        let outcomes: Vec<bool> =
            (0..200).map(|i| e.good_join(Time(i as f64)).is_admitted()).collect();
        let admitted = outcomes.iter().filter(|&&x| x).count();
        assert!(admitted > 60 && admitted < 140, "admitted {admitted}");
        // Refused good IDs still paid.
        assert!(outcomes.iter().any(|&x| !x));
    }

    #[test]
    fn estimator_intervals_logged() {
        let mut e = fresh(12);
        for k in 1..=40 {
            e.good_join(Time(k as f64));
        }
        let events = e.drain_events();
        let estimates: Vec<_> =
            events.iter().filter(|ev| matches!(ev, DefenseEvent::EstimateUpdated { .. })).collect();
        assert!(!estimates.is_empty());
    }

    #[test]
    fn purge_events_logged() {
        let mut e = fresh(110);
        e.bad_join_batch(Time(1.0), Cost(1e9), u64::MAX);
        e.purge(Time(1.0), 0);
        let events = e.drain_events();
        assert!(events.iter().any(|ev| matches!(ev, DefenseEvent::PurgeCompleted { .. })));
    }

    #[test]
    fn initial_bad_members_are_purgeable() {
        let mut e = Ergo::new(ErgoConfig::default());
        e.init(Time::ZERO, 100, 20);
        assert_eq!(e.n_members(), 120);
        assert_eq!(e.n_bad(), 20);
        // Force the iteration to end, then purge everything bad.
        for i in 0..12 {
            e.good_depart(Time(1.0 + i as f64), Time::ZERO);
        }
        let r = e.purge(Time(13.0), 0);
        assert_eq!(r.bad_removed, 20);
        assert_eq!(e.n_bad(), 0);
        assert_eq!(e.n_good(), 88);
    }

    #[test]
    fn voluntary_bad_departures_update_state() {
        let mut e = fresh(10_000);
        e.bad_join_batch(Time(1.0), Cost(100.0), u64::MAX);
        let before = e.n_bad();
        assert!(before > 0);
        let removed = e.bad_depart(Time(2.0), 3);
        assert_eq!(removed, 3.min(before));
        assert_eq!(e.n_bad(), before - removed);
        // Departing more than exist is clamped.
        let removed2 = e.bad_depart(Time(3.0), 1_000_000);
        assert_eq!(removed2, before - removed);
        assert_eq!(e.n_bad(), 0);
    }

    #[test]
    fn entrance_cost_asymmetry_good_pays_sqrt_of_adversary() {
        // Paper Section 7.1's intuition: if the adversary joins x IDs per
        // window, it pays Θ(x²) while a good joiner pays O(x).
        let mut e = fresh(1_000_000);
        // Pin the estimate via a long quiet period; initial estimate is 1e6/s
        // (window ~1 µs) — join bad IDs within one instant so they share a
        // window regardless.
        let b = e.bad_join_batch(Time(5.0), Cost(5050.0), u64::MAX);
        assert_eq!(b.admitted, 100); // 1+2+...+100 = 5050
        let good = e.good_join(Time(5.0));
        assert_eq!(good.cost(), Cost(101.0)); // pays x+1, not Θ(x²)
    }
}
