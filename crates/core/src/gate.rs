//! Classifier gating for joins (Heuristic 4 / ERGO-SF, paper Section 10).
//!
//! The paper's ERGO-SF experiment models an ML classifier (SybilFuse, reference 41)
//! by its accuracy: each joining ID is classified, and "all IDs that are
//! classified as bad are refused entry". The classifier is applied after the
//! joiner solves its entrance challenge, so refused Sybil attempts still
//! burn adversary resources — this is what produces the up-to-3-orders-of-
//! magnitude improvement for large attacks.
//!
//! By itself classification cannot solve DefID (Section 6): a false-negative
//! rate of even `10⁻⁶` lets the adversary accumulate a bad majority over
//! enough attempts. Gating *Ergo* with a classifier keeps Theorem 1's
//! guarantees while cutting costs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A join classifier characterized by its per-class accuracy.
///
/// `accuracy_good` is the probability a good joiner is (correctly) admitted;
/// `accuracy_bad` is the probability a Sybil joiner is (correctly) refused.
/// The paper uses a single accuracy for both (0.98 from the SybilFuse
/// evaluation, and 0.92 as a sensitivity check).
#[derive(Clone, Debug)]
pub struct ClassifierGate {
    accuracy_good: f64,
    accuracy_bad: f64,
    rng: StdRng,
}

impl ClassifierGate {
    /// A gate with symmetric accuracy (the paper's ERGO-SF reduction).
    ///
    /// # Panics
    ///
    /// Panics if `accuracy` is outside `[0, 1]`.
    pub fn with_accuracy(accuracy: f64, seed: u64) -> Self {
        Self::with_accuracies(accuracy, accuracy, seed)
    }

    /// A gate with separate per-class accuracies.
    ///
    /// # Panics
    ///
    /// Panics if either accuracy is outside `[0, 1]`.
    pub fn with_accuracies(accuracy_good: f64, accuracy_bad: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&accuracy_good), "accuracy must be in [0,1]");
        assert!((0.0..=1.0).contains(&accuracy_bad), "accuracy must be in [0,1]");
        ClassifierGate { accuracy_good, accuracy_bad, rng: StdRng::seed_from_u64(seed) }
    }

    /// Probability a good joiner is admitted.
    pub fn accuracy_good(&self) -> f64 {
        self.accuracy_good
    }

    /// Probability a Sybil joiner is refused.
    pub fn accuracy_bad(&self) -> f64 {
        self.accuracy_bad
    }

    /// Classifies a (truly) good joiner; `true` admits.
    pub fn admit_good(&mut self) -> bool {
        self.rng.gen::<f64>() < self.accuracy_good
    }

    /// Probability that a (truly) Sybil joiner slips past the classifier.
    pub fn bad_admit_prob(&self) -> f64 {
        1.0 - self.accuracy_bad
    }

    /// Classifies a (truly) Sybil joiner; `true` admits (false negative).
    pub fn admit_bad(&mut self) -> bool {
        self.rng.gen::<f64>() < self.bad_admit_prob()
    }

    /// Samples how many consecutive Sybil attempts are refused before the
    /// next one slips through (geometric law). Returns `u64::MAX` if Sybil
    /// IDs can never be admitted.
    ///
    /// Used to process large Sybil batches in O(admissions) rather than
    /// O(attempts).
    pub fn refusals_before_bad_admit(&mut self) -> u64 {
        let p = self.bad_admit_prob();
        if p >= 1.0 {
            return 0;
        }
        if p <= 0.0 {
            return u64::MAX;
        }
        // Geometric: floor(ln U / ln(1-p)) failures before the first success.
        let u: f64 = loop {
            let u = self.rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        let v = u.ln() / (1.0 - p).ln();
        if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v.floor() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracies_are_respected_statistically() {
        let mut g = ClassifierGate::with_accuracy(0.98, 7);
        let n = 50_000;
        let good_admitted = (0..n).filter(|_| g.admit_good()).count() as f64 / n as f64;
        assert!((good_admitted - 0.98).abs() < 0.01, "{good_admitted}");
        let bad_admitted = (0..n).filter(|_| g.admit_bad()).count() as f64 / n as f64;
        assert!((bad_admitted - 0.02).abs() < 0.01, "{bad_admitted}");
    }

    #[test]
    fn geometric_refusals_mean() {
        // Mean failures before success = (1-p)/p with p = 0.02 → 49.
        let mut g = ClassifierGate::with_accuracy(0.98, 11);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| g.refusals_before_bad_admit()).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 49.0).abs() < 2.5, "mean {mean}");
    }

    #[test]
    fn degenerate_accuracies() {
        let mut always_refuse = ClassifierGate::with_accuracy(1.0, 1);
        assert_eq!(always_refuse.refusals_before_bad_admit(), u64::MAX);
        assert!(!always_refuse.admit_bad());
        assert!(always_refuse.admit_good());

        let mut never_refuse = ClassifierGate::with_accuracy(0.0, 1);
        assert_eq!(never_refuse.refusals_before_bad_admit(), 0);
        assert!(never_refuse.admit_bad());
        assert!(!never_refuse.admit_good());
    }

    #[test]
    fn asymmetric_accuracies() {
        let g = ClassifierGate::with_accuracies(0.9, 0.8, 3);
        assert_eq!(g.accuracy_good(), 0.9);
        assert_eq!(g.accuracy_bad(), 0.8);
        assert!((g.bad_admit_prob() - 0.2).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "accuracy")]
    fn invalid_accuracy_panics() {
        let _ = ClassifierGate::with_accuracy(1.5, 0);
    }
}
