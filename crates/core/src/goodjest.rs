//! The GoodJEst good-join-rate estimator (paper Figure 5, Section 8).
//!
//! GoodJEst divides time into *intervals*: an interval ends at the first
//! time `t'` with `|S(t') △ S(t)| ≥ 5/12·|S(t')|`, where `t` is the interval
//! start. At that point the estimate is set to `J̃ ← |S(t')| / (t' − t)` and
//! a new interval begins.
//!
//! The estimator never learns which IDs are good: it observes only the join
//! and departure stream over *all* IDs. Theorem 2 proves that as long as the
//! fraction of bad IDs stays below 1/6 (which Ergo guarantees), `J̃` is
//! within `α,β`-polynomial factors of the true good join rate.
//!
//! # Example
//!
//! ```
//! use ergo_core::goodjest::GoodJEst;
//! use ergo_core::params::GoodJEstConfig;
//! use sybil_sim::time::Time;
//!
//! // 100 IDs at start; the initial estimate is |S(0)| / init_duration.
//! let mut est = GoodJEst::new(GoodJEstConfig::default(), Time::ZERO, 100);
//! assert_eq!(est.estimate(), 100.0);
//!
//! // Joins accumulate symmetric difference; with k joins the interval ends
//! // once 12·k ≥ 5·(100+k), i.e. at the 72nd join.
//! for i in 0..80 {
//!     est.on_join(Time(i as f64 + 1.0), 1);
//! }
//! // The interval rolled: the estimate now reflects ~2.4 IDs/s (172 IDs
//! // over 72 s) instead of the wild initialization guess.
//! assert!(est.estimate() < 10.0);
//! ```

use crate::params::GoodJEstConfig;
use crate::symdiff::SymdiffTracker;
use sybil_sim::time::Time;

/// A completed estimator interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntervalRecord {
    /// Interval start `t`.
    pub start: Time,
    /// Interval end `t'`.
    pub end: Time,
    /// The estimate set at the end: `|S(t')| / (t' − t)`.
    pub estimate: f64,
}

/// The GoodJEst estimator state machine.
#[derive(Clone, Debug)]
pub struct GoodJEst {
    cfg: GoodJEstConfig,
    /// Interval start `t` (the last estimate-update time).
    t_start: Time,
    /// Symmetric difference vs membership at `t_start`.
    tracker: SymdiffTracker,
    /// Current system size `|S(t')|`.
    size: u64,
    /// Incremental threshold gap `den·symdiff − num·size` (for the
    /// interval threshold `num/den`). The end-of-interval condition
    /// `|S(t')△S(t)| ≥ num/den·|S(t')|` is exactly `gap ≥ 0`, so the
    /// per-event check — this estimator is consulted on every join and
    /// departure the engine dispatches — is a sign test on a running
    /// counter instead of two multiplications. Maintained exactly in
    /// integers (i128; [`GoodJEst::new`] bounds the ratio parts so the
    /// products can never overflow), so the semantics are bit-identical
    /// to recomputing `den·symdiff ≥ num·size`.
    gap: i128,
    /// Current estimate `J̃`.
    estimate: f64,
    /// Heuristic 1: the threshold has been crossed and the update is
    /// deferred until the iteration ends (post-purge).
    pending: bool,
    /// Intervals completed so far (estimate updates performed).
    updates: u64,
    /// Completed intervals, drained by the caller for analysis.
    log: Vec<IntervalRecord>,
}

impl GoodJEst {
    /// Initializes the estimator at time `now` with `initial_size` members.
    ///
    /// The initial estimate is `initial_size / cfg.init_duration`, mirroring
    /// the paper's "number of IDs at system initialization divided by the
    /// total time taken for initialization".
    pub fn new(cfg: GoodJEstConfig, now: Time, initial_size: u64) -> Self {
        assert!(cfg.init_duration > 0.0, "init duration must be positive");
        // The gap counter multiplies the ratio parts by u64 counters in
        // i128; bounding them at 2³² keeps every product (and the running
        // sum, whose magnitude is bounded by the current `den·symdiff` and
        // `num·size` terms) exactly representable.
        assert!(
            cfg.interval_threshold.num < (1 << 32) && cfg.interval_threshold.den < (1 << 32),
            "interval threshold parts must fit 32 bits"
        );
        GoodJEst {
            cfg,
            t_start: now,
            tracker: SymdiffTracker::new(),
            size: initial_size,
            gap: -(cfg.interval_threshold.num as i128) * initial_size as i128,
            estimate: initial_size as f64 / cfg.init_duration,
            pending: false,
            updates: 0,
            log: Vec::new(),
        }
    }

    /// Pre-reserves room for `n` interval records in the log. Called from
    /// `Defense::init` (outside the engine's measured steady-state span) so
    /// interval rolls never grow the log mid-loop; the drain-by-visit path
    /// keeps the capacity afterwards.
    pub fn reserve_log(&mut self, n: usize) {
        self.log.reserve(n);
    }

    /// Number of completed intervals (estimate updates) so far. Zero means
    /// the current estimate is still the initialization guess.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// The current estimate `J̃` of the good join rate (IDs/second).
    pub fn estimate(&self) -> f64 {
        self.estimate
    }

    /// Start time of the current interval.
    pub fn interval_start(&self) -> Time {
        self.t_start
    }

    /// Current tracked system size `|S(t')|`.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Current symmetric difference vs the interval-start membership.
    pub fn symdiff(&self) -> u64 {
        self.tracker.symdiff()
    }

    /// True if a departure of an ID that joined at `joined_at` counts as an
    /// *old* member (present at the interval start) for this estimator.
    pub fn classify_old(&self, joined_at: Time) -> bool {
        joined_at <= self.t_start
    }

    /// Records `n` simultaneous joins.
    pub fn on_join(&mut self, now: Time, n: u64) {
        self.size += n;
        self.tracker.on_join(n);
        // Δsymdiff = +n, Δsize = +n.
        let th = self.cfg.interval_threshold;
        self.gap += (th.den as i128 - th.num as i128) * n as i128;
        debug_assert_eq!(self.gap >= 0, th.le_scaled(self.tracker.symdiff(), self.size));
        self.maybe_roll(now);
    }

    /// Records `n` simultaneous departures; `old` says whether the departing
    /// IDs were members at the interval start (see [`classify_old`]).
    ///
    /// [`classify_old`]: GoodJEst::classify_old
    pub fn on_depart(&mut self, now: Time, old: bool, n: u64) {
        debug_assert!(self.size >= n, "departure underflow");
        let th = self.cfg.interval_threshold;
        // Mirror the counters' saturation exactly so the gap stays equal
        // to `den·symdiff − num·size` even for a misclassifying caller.
        let size_removed = n.min(self.size);
        self.size -= size_removed;
        if old {
            self.tracker.on_depart_old(n);
            // Δsymdiff = +n, Δsize = −size_removed.
            self.gap += th.den as i128 * n as i128 + th.num as i128 * size_removed as i128;
        } else {
            let sym_removed = n.min(self.tracker.new_present());
            self.tracker.on_depart_new(n);
            // Δsymdiff = −sym_removed, Δsize = −size_removed.
            self.gap +=
                th.num as i128 * size_removed as i128 - th.den as i128 * sym_removed as i128;
        }
        debug_assert_eq!(self.gap >= 0, th.le_scaled(self.tracker.symdiff(), self.size));
        self.maybe_roll(now);
    }

    /// Heuristic 1 hook: called at each iteration end (after the purge, or
    /// after a Heuristic-3 skip decision) so a deferred update uses the
    /// iteration-boundary membership. Skipped purges must still release
    /// deferred updates — otherwise Heuristics 1 and 3 deadlock, freezing
    /// the estimate and skipping purges forever.
    pub fn on_purge_complete(&mut self, now: Time) {
        if self.cfg.align_to_iterations && self.pending && now > self.t_start {
            self.roll(now);
        }
    }

    /// True if the interval-end condition `|S(t')△S(t)| ≥ 5/12·|S(t')|` holds.
    ///
    /// A sign test on the incrementally maintained gap counter — exactly
    /// equivalent to `interval_threshold.le_scaled(symdiff, size)`, which
    /// would cost two multiplications on the per-event path.
    pub fn threshold_met(&self) -> bool {
        self.gap >= 0
    }

    fn maybe_roll(&mut self, now: Time) {
        if !self.threshold_met() {
            return;
        }
        if self.cfg.align_to_iterations {
            self.pending = true;
        } else if now > self.t_start {
            self.roll(now);
        }
        // If now == t_start the update waits for time to advance (a zero-
        // length interval would produce an infinite estimate); the threshold
        // re-fires on the next event.
    }

    fn roll(&mut self, now: Time) {
        let dt = now - self.t_start;
        debug_assert!(dt > 0.0);
        self.estimate = self.size as f64 / dt;
        self.log.push(IntervalRecord { start: self.t_start, end: now, estimate: self.estimate });
        self.t_start = now;
        self.tracker.reset();
        // symdiff re-anchors to 0: gap = −num·size (one multiply per
        // interval, not per event).
        self.gap = -(self.cfg.interval_threshold.num as i128) * self.size as i128;
        self.pending = false;
        self.updates += 1;
    }

    /// Drains the completed-interval log.
    pub fn drain_intervals(&mut self) -> Vec<IntervalRecord> {
        std::mem::take(&mut self.log)
    }

    /// Visits and clears the completed-interval log without allocating —
    /// the log's capacity is retained for the next intervals.
    pub fn drain_intervals_with(&mut self, mut f: impl FnMut(IntervalRecord)) {
        for rec in self.log.drain(..) {
            f(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Ratio;

    fn cfg() -> GoodJEstConfig {
        GoodJEstConfig::default()
    }

    #[test]
    fn initial_estimate_uses_init_duration() {
        let est = GoodJEst::new(GoodJEstConfig { init_duration: 2.0, ..cfg() }, Time::ZERO, 100);
        assert_eq!(est.estimate(), 50.0);
    }

    #[test]
    fn interval_rolls_at_symdiff_threshold() {
        // Size 12; threshold 5/12 → symdiff 5 with size fixed... but size
        // grows with joins. Use joins only: after k joins size = 12 + k,
        // symdiff = k; roll when 12·k ≥ 5·(12+k) → 7k ≥ 60 → k = 9
        // (12·9=108 ≥ 5·21=105).
        let mut est = GoodJEst::new(cfg(), Time::ZERO, 12);
        for k in 1..=8 {
            est.on_join(Time(k as f64), 1);
            assert!(est.drain_intervals().is_empty(), "rolled early at k={k}");
        }
        est.on_join(Time(9.0), 1);
        let log = est.drain_intervals();
        assert_eq!(log.len(), 1);
        // |S(t')| = 21 over 9 seconds.
        assert!((log[0].estimate - 21.0 / 9.0).abs() < 1e-12);
        assert_eq!(est.interval_start(), Time(9.0));
        assert_eq!(est.symdiff(), 0);
    }

    #[test]
    fn departures_of_old_ids_count_once() {
        // Old departures keep inflating the symmetric difference even after
        // the IDs are gone; new-join + new-depart pairs cancel.
        let mut est = GoodJEst::new(cfg(), Time::ZERO, 100);
        est.on_join(Time(1.0), 1);
        assert_eq!(est.symdiff(), 1);
        est.on_depart(Time(2.0), false, 1); // the new ID leaves: cancels
        assert_eq!(est.symdiff(), 0);
        est.on_depart(Time(3.0), true, 1); // an old ID leaves: sticks
        assert_eq!(est.symdiff(), 1);
        assert_eq!(est.size(), 99);
    }

    #[test]
    fn classify_old_uses_interval_start() {
        let mut est = GoodJEst::new(cfg(), Time(10.0), 50);
        assert!(est.classify_old(Time(10.0)));
        assert!(est.classify_old(Time(3.0)));
        assert!(!est.classify_old(Time(11.0)));
        // Roll the interval; the boundary moves.
        for k in 0..40 {
            est.on_join(Time(20.0 + k as f64), 1);
        }
        assert!(est.interval_start() > Time(10.0));
        assert!(est.classify_old(est.interval_start()));
    }

    #[test]
    fn heuristic1_defers_until_purge() {
        let mut est =
            GoodJEst::new(GoodJEstConfig { align_to_iterations: true, ..cfg() }, Time::ZERO, 12);
        for k in 1..=20 {
            est.on_join(Time(k as f64), 1);
        }
        // Threshold long since crossed, but no roll yet.
        assert!(est.drain_intervals().is_empty());
        let before = est.estimate();
        est.on_purge_complete(Time(25.0));
        let log = est.drain_intervals();
        assert_eq!(log.len(), 1);
        assert_ne!(est.estimate(), before);
        assert_eq!(log[0].end, Time(25.0));
    }

    #[test]
    fn zero_length_interval_deferred() {
        // All events at t=0: threshold crossing must not divide by zero.
        let mut est = GoodJEst::new(cfg(), Time::ZERO, 12);
        for _ in 0..30 {
            est.on_join(Time::ZERO, 1);
        }
        assert_eq!(est.estimate(), 12.0); // unchanged
                                          // Time advances: the next event rolls the interval.
        est.on_join(Time(2.0), 1);
        assert!(est.drain_intervals().len() == 1);
    }

    #[test]
    fn batch_events_are_counted() {
        let mut est = GoodJEst::new(cfg(), Time::ZERO, 1000);
        est.on_join(Time(1.0), 500);
        // 12·500 ≥ 5·1500 → 6000 ≥ 7500: not yet.
        assert_eq!(est.drain_intervals().len(), 0);
        est.on_join(Time(2.0), 200);
        // symdiff 700, size 1700: 8400 ≥ 8500? No.
        est.on_join(Time(3.0), 50);
        // symdiff 750, size 1750: 9000 ≥ 8750 → rolls.
        let log = est.drain_intervals();
        assert_eq!(log.len(), 1);
        assert!((log[0].estimate - 1750.0 / 3.0).abs() < 1e-9);
    }

    /// The incremental gap counter agrees with recomputing the threshold
    /// from scratch under arbitrary valid join/departure interleavings
    /// (hand-rolled property loop; ops are a pure function of the seed).
    #[test]
    fn gap_counter_matches_recomputed_threshold() {
        for case in 0u64..48 {
            let threshold = match case % 3 {
                0 => Ratio::new(5, 12),
                1 => Ratio::new(1, 2),
                _ => Ratio::new(7, 9),
            };
            let cfg = GoodJEstConfig { interval_threshold: threshold, ..cfg() };
            let mut est = GoodJEst::new(cfg, Time::ZERO, 40);
            // Present IDs, tracked by join time so departures classify
            // against the estimator's *current* interval boundary.
            let mut present: Vec<Time> = vec![Time::ZERO; 40];
            let mut state = 99u64.wrapping_add(case.wrapping_mul(0x9E3779B97F4A7C15));
            for step in 0..300u64 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let now = Time(step as f64 * 0.5 + 0.5);
                if (state >> 33) % 2 == 0 || present.is_empty() {
                    // Batched joins exercise the n > 1 gap deltas.
                    let n = 1 + (state >> 40) % 3;
                    est.on_join(now, n);
                    present.extend(std::iter::repeat_n(now, n as usize));
                } else {
                    let idx = (state >> 7) as usize % present.len();
                    let joined_at = present.swap_remove(idx);
                    est.on_depart(now, est.classify_old(joined_at), 1);
                }
                // The estimator rolls intervals internally; after each op
                // the sign test must equal the two-multiply recomputation.
                assert_eq!(
                    est.threshold_met(),
                    threshold.le_scaled(est.symdiff(), est.size()),
                    "case {case} step {step}"
                );
                assert_eq!(est.size(), present.len() as u64, "case {case} step {step}");
            }
        }
    }

    #[test]
    fn huge_threshold_parts_are_rejected() {
        let c = GoodJEstConfig { interval_threshold: Ratio::new(1 << 33, 1 << 34), ..cfg() };
        let result = std::panic::catch_unwind(|| GoodJEst::new(c, Time::ZERO, 10));
        assert!(result.is_err(), "32-bit bound on ratio parts must be enforced");
    }

    #[test]
    fn custom_threshold() {
        // Section 13.3 variant: interval threshold 1/2.
        let c = GoodJEstConfig { interval_threshold: Ratio::new(1, 2), ..cfg() };
        let mut est = GoodJEst::new(c, Time::ZERO, 10);
        for k in 1..=9 {
            est.on_join(Time(k as f64), 1);
        }
        // After k joins: 2k ≥ 10 + k → k ≥ 10.
        assert!(est.drain_intervals().is_empty());
        est.on_join(Time(10.0), 1);
        assert_eq!(est.drain_intervals().len(), 1);
    }
}
