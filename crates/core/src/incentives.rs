//! Incentivizing puzzle solving (paper Sections 3.1 and 13.1).
//!
//! Ergo requires good IDs to solve 1-hard challenges at every purge; the
//! paper sketches how to motivate this with cryptocurrency-style rewards:
//! *"during the purge, competition for a reward could be used... the ID
//! that finds the smallest solution during this period could receive units
//! of cryptocurrency"*, and *"the difficulty of a 1-hard puzzle could be
//! tuned, based on measured computational effort, to automatically adjust
//! to new, faster hardware"*. This module builds both sketches:
//!
//! * [`PurgeLottery`] — a verifiable smallest-digest competition: every
//!   purge participant's solution digest enters; the smallest wins the
//!   reward. Any party can re-verify the winner from public data.
//! * [`expected_profit`] / [`is_individually_rational`] — the
//!   participation calculus: solving costs 1 unit; a reward of at least
//!   `n` units makes participation a positive-expectation bet for each of
//!   `n` members.
//! * [`DifficultyController`] — Bitcoin-style retargeting of the "1-hard"
//!   unit: keeps the measured round duration near a target as hardware
//!   speeds change, with bounded per-step swing.

use sybil_crypto::sha256::{Digest, Sha256};

/// A purge-round lottery entry: a participant and its solution digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LotteryEntry {
    /// Participant identifier bytes (e.g. `Id::to_bytes`).
    pub participant: Vec<u8>,
    /// The digest of the participant's challenge solution.
    pub digest: Digest,
}

/// The smallest-digest purge lottery.
///
/// # Example
///
/// ```
/// use ergo_core::incentives::PurgeLottery;
///
/// let lottery = PurgeLottery::new(b"purge-round-812");
/// let entries: Vec<_> = (0u64..50)
///     .map(|i| lottery.enter(&i.to_be_bytes(), i))
///     .collect();
/// let winner = PurgeLottery::winner(&entries).unwrap();
/// // Anyone can re-verify the winner from public data.
/// assert!(entries.iter().all(|e| winner.digest <= e.digest));
/// ```
#[derive(Clone, Debug)]
pub struct PurgeLottery {
    round_nonce: Vec<u8>,
}

impl PurgeLottery {
    /// A lottery for the purge round identified by `round_nonce`.
    pub fn new(round_nonce: &[u8]) -> Self {
        PurgeLottery { round_nonce: round_nonce.to_vec() }
    }

    /// Computes a participant's entry from its solution nonce.
    ///
    /// Binding the round nonce and the participant identity means entries
    /// cannot be precomputed or stolen — the same properties as the
    /// challenges themselves.
    pub fn enter(&self, participant: &[u8], solution_nonce: u64) -> LotteryEntry {
        let mut h = Sha256::new();
        h.update(&self.round_nonce);
        h.update(participant);
        h.update(&solution_nonce.to_be_bytes());
        LotteryEntry { participant: participant.to_vec(), digest: h.finalize() }
    }

    /// The winning entry: smallest digest (ties broken by participant
    /// bytes, deterministically). `None` on an empty round.
    pub fn winner(entries: &[LotteryEntry]) -> Option<&LotteryEntry> {
        entries
            .iter()
            .min_by(|a, b| a.digest.cmp(&b.digest).then(a.participant.cmp(&b.participant)))
    }
}

/// Expected profit of participating in a purge lottery: the reward is won
/// uniformly (digests are uniform), so `E[profit] = reward/n − cost`.
pub fn expected_profit(reward: f64, participants: u64, solve_cost: f64) -> f64 {
    assert!(participants > 0, "no participants");
    reward / participants as f64 - solve_cost
}

/// True if solving is a non-negative-expectation action for each of `n`
/// members — the individual-rationality condition for honest participation.
pub fn is_individually_rational(reward: f64, participants: u64, solve_cost: f64) -> bool {
    expected_profit(reward, participants, solve_cost) >= 0.0
}

/// Retargets the hardness of a "1-hard" challenge to hold a target solve
/// duration as hardware throughput drifts, like Bitcoin's difficulty
/// adjustment: `new = old · target/measured`, with the per-step swing
/// clamped to a factor of [`DifficultyController::MAX_STEP`].
#[derive(Clone, Debug)]
pub struct DifficultyController {
    target_duration: f64,
    hardness: f64,
    /// EWMA of measured durations (smoothing factor 0.3).
    smoothed: Option<f64>,
}

impl DifficultyController {
    /// Maximum per-retarget swing factor (Bitcoin uses 4).
    pub const MAX_STEP: f64 = 4.0;

    /// A controller holding solve time at `target_duration` seconds,
    /// starting from `initial_hardness` hash units.
    ///
    /// # Panics
    ///
    /// Panics on non-positive inputs.
    pub fn new(target_duration: f64, initial_hardness: f64) -> Self {
        assert!(target_duration > 0.0 && initial_hardness > 0.0);
        DifficultyController { target_duration, hardness: initial_hardness, smoothed: None }
    }

    /// The current hardness of a "1-hard" challenge, in hash units.
    pub fn hardness(&self) -> f64 {
        self.hardness
    }

    /// The integer hardness to issue (at least 1).
    pub fn issue_hardness(&self) -> u64 {
        (self.hardness.round() as u64).max(1)
    }

    /// Feeds one measured solve duration and retargets.
    ///
    /// # Panics
    ///
    /// Panics if `measured_duration` is not positive.
    pub fn observe(&mut self, measured_duration: f64) {
        assert!(measured_duration > 0.0, "duration must be positive");
        let s = match self.smoothed {
            Some(prev) => 0.7 * prev + 0.3 * measured_duration,
            None => measured_duration,
        };
        self.smoothed = Some(s);
        let raw = self.target_duration / s;
        let factor = raw.clamp(1.0 / Self::MAX_STEP, Self::MAX_STEP);
        self.hardness = (self.hardness * factor).max(1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lottery_winner_is_minimum_and_deterministic() {
        let lottery = PurgeLottery::new(b"round-1");
        let entries: Vec<_> = (0u64..200).map(|i| lottery.enter(&i.to_be_bytes(), i)).collect();
        let w1 = PurgeLottery::winner(&entries).unwrap().clone();
        let w2 = PurgeLottery::winner(&entries).unwrap().clone();
        assert_eq!(w1, w2);
        assert!(entries.iter().all(|e| w1.digest <= e.digest));
    }

    #[test]
    fn lottery_is_fair_across_rounds() {
        // Each participant should win roughly uniformly over many rounds.
        let n = 10u64;
        let rounds = 3000;
        let mut wins = vec![0u32; n as usize];
        for r in 0..rounds {
            let lottery = PurgeLottery::new(&(r as u64).to_be_bytes());
            let entries: Vec<_> =
                (0..n).map(|i| lottery.enter(&i.to_be_bytes(), r as u64)).collect();
            let w = PurgeLottery::winner(&entries).unwrap();
            let idx = u64::from_be_bytes(w.participant.clone().try_into().unwrap());
            wins[idx as usize] += 1;
        }
        let expect = rounds as f64 / n as f64;
        for (i, &w) in wins.iter().enumerate() {
            assert!(
                (w as f64 - expect).abs() < expect * 0.35,
                "participant {i} won {w} of ~{expect}"
            );
        }
    }

    #[test]
    fn empty_lottery_has_no_winner() {
        assert!(PurgeLottery::winner(&[]).is_none());
    }

    #[test]
    fn different_rounds_give_different_winners_sometimes() {
        let entries = |nonce: &[u8]| -> Vec<LotteryEntry> {
            let l = PurgeLottery::new(nonce);
            (0u64..20).map(|i| l.enter(&i.to_be_bytes(), 0)).collect()
        };
        let winners: std::collections::HashSet<Vec<u8>> = (0u64..20)
            .map(|r| PurgeLottery::winner(&entries(&r.to_be_bytes())).unwrap().participant.clone())
            .collect();
        assert!(winners.len() > 3, "winners too concentrated: {}", winners.len());
    }

    #[test]
    fn rationality_threshold() {
        assert!(is_individually_rational(100.0, 100, 1.0));
        assert!(!is_individually_rational(99.0, 100, 1.0));
        assert_eq!(expected_profit(200.0, 100, 1.0), 1.0);
    }

    #[test]
    fn difficulty_converges_to_target() {
        // Hardware solves 1000 hash units/second; target round = 2 s.
        let hash_rate = 1000.0;
        let mut ctl = DifficultyController::new(2.0, 100.0);
        for _ in 0..60 {
            let duration = ctl.hardness() / hash_rate;
            ctl.observe(duration);
        }
        let settled = ctl.hardness() / hash_rate;
        assert!((settled - 2.0).abs() < 0.2, "settled at {settled}s");
        assert!(ctl.issue_hardness() >= 1);
    }

    #[test]
    fn difficulty_tracks_hardware_speedup() {
        let mut ctl = DifficultyController::new(1.0, 1000.0);
        let mut rate = 1000.0;
        for round in 0..200 {
            if round == 100 {
                rate *= 8.0; // new ASICs arrive
            }
            ctl.observe(ctl.hardness() / rate);
        }
        let settled = ctl.hardness() / rate;
        assert!((settled - 1.0).abs() < 0.15, "settled at {settled}s after speedup");
        assert!(ctl.hardness() > 4000.0, "hardness should have risen: {}", ctl.hardness());
    }

    #[test]
    fn retarget_swing_is_clamped() {
        let mut ctl = DifficultyController::new(1.0, 100.0);
        ctl.observe(1e-6); // absurdly fast measurement
        assert!(ctl.hardness() <= 400.0 + 1e-9, "clamped to 4x: {}", ctl.hardness());
        let mut ctl = DifficultyController::new(1.0, 100.0);
        ctl.observe(1e6); // absurdly slow
        assert!(ctl.hardness() >= 25.0 - 1e-9, "clamped to 1/4: {}", ctl.hardness());
    }
}
