//! The primary contribution of *Bankrupting Sybil Despite Churn* (Gupta,
//! Saia, Young — ICDCS 2021): the **Ergo** Sybil defense and the
//! **GoodJEst** good-join-rate estimator.
//!
//! Ergo guarantees (for `κ ≤ 1/18`) that the fraction of Sybil IDs stays
//! below `3κ ≤ 1/6` at all times, while the total resource-burning rate of
//! good IDs is `O(√(T·J) + J)` — asymptotically *less* than the adversary's
//! spend rate `T` during significant attacks, and proportional only to the
//! good join rate `J` when there is no attack.
//!
//! # Crate layout
//!
//! * [`ergo`] — the defense itself ([`ergo::Ergo`]), implementing
//!   [`sybil_sim::Defense`]; also expresses the CCom baseline and the
//!   heuristic variants ERGO-CH1/CH2/SF through [`params::ErgoConfig`].
//! * [`goodjest`] — the estimator ([`goodjest::GoodJEst`]): interval
//!   detection by symmetric difference and the `J̃ ← |S(t')|/(t'−t)` update.
//! * [`window`] — the sliding-window entrance-cost rule with closed-form
//!   batch costs.
//! * [`symdiff`] — O(1) symmetric-difference tracking shared by the
//!   estimator, Heuristic 2, and epoch analysis.
//! * [`gate`] — classifier gating (Heuristic 4 / ERGO-SF).
//! * [`defid`] — the DefID problem statement and invariant checker.
//! * [`incentives`] — the Section 13.1 reward-lottery and difficulty-
//!   retargeting sketches, built out.
//! * [`params`] — the paper's constants (`5/12`, `1/11`, `κ ≤ 1/18`,
//!   `ε < 1/12`) and configuration types.
//!
//! # Quick start
//!
//! Ergo and the CCom baseline under the same attack: both keep the Sybil
//! fraction below 1/6, but Ergo's escalating entrance costs throttle the
//! adversary's join rate and with it the purge frequency, so good IDs burn
//! a fraction of what they burn under CCom.
//!
//! ```
//! use ergo_core::{Ergo, ErgoConfig};
//! use sybil_sim::adversary::BudgetJoiner;
//! use sybil_sim::engine::{SimConfig, Simulation};
//! use sybil_sim::time::Time;
//! use sybil_sim::workload::{Session, Workload};
//!
//! // 1100 initial good IDs churning out over ~600 s, 2 arrivals/s, and an
//! // adversary spending T = 2000 resource units per second.
//! let workload = Workload::new(
//!     (0..1100).map(|i| Time(0.5 + i as f64 * 0.55)).collect(),
//!     (0..600)
//!         .map(|i| Session::new(Time(i as f64 * 0.5), Time(i as f64 * 0.5 + 200.0)))
//!         .collect(),
//! );
//! let cfg = SimConfig { horizon: Time(300.0), adv_rate: 2000.0, ..SimConfig::default() };
//!
//! let ergo = Simulation::new(
//!     cfg, Ergo::new(ErgoConfig::default()), BudgetJoiner::new(2000.0), workload.clone(),
//! ).run();
//! let ccom = Simulation::new(
//!     cfg, Ergo::new(ErgoConfig::ccom()), BudgetJoiner::new(2000.0), workload,
//! ).run();
//!
//! // The Lemma 9 invariant: the Sybil fraction never reaches 1/6.
//! assert!(ergo.max_bad_fraction < 1.0 / 6.0);
//! assert!(ccom.max_bad_fraction < 1.0 / 6.0);
//! // Ergo's good IDs spend a fraction of what CCom's do under this attack.
//! // (At this toy scale the gap is ~2x; at the paper's Figure-8 scale —
//! // 10 000 s horizons, T up to 2^20 — it reaches two orders of magnitude.)
//! assert!(ergo.good_spend_rate() < 0.7 * ccom.good_spend_rate());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod defid;
pub mod ergo;
pub mod gate;
pub mod goodjest;
pub mod incentives;
pub mod params;
pub mod symdiff;
pub mod window;

pub use defid::DefIdChecker;
pub use ergo::Ergo;
pub use gate::ClassifierGate;
pub use goodjest::GoodJEst;
pub use params::{ErgoConfig, GoodJEstConfig, Heuristics, Ratio};
