//! Model parameters and algorithm constants.
//!
//! The paper fixes several constants (Section 9.3): the `5/12` symmetric-
//! difference threshold delineating GoodJEst intervals, the `1/11` membership
//! -change threshold delineating Ergo iterations, the adversary power bound
//! `κ ≤ 1/18` (giving the `3κ ≤ 1/6` bad-fraction invariant), and the
//! departure bound `ε < 1/12`. Section 13.3 discusses alternative constants
//! (e.g. interval threshold `1/2` with epoch threshold `3/5`), so all of them
//! are configurable here, with the paper's values as defaults.

/// A ratio expressed as `num/den` with exact integer comparisons.
///
/// Thresholds like "symmetric difference ≥ 5/12 of system size" are checked
/// as `den·lhs ≥ num·rhs`, avoiding floating-point drift at boundaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ratio {
    /// Numerator.
    pub num: u64,
    /// Denominator.
    pub den: u64,
}

impl Ratio {
    /// Creates a ratio.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub const fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "ratio denominator must be nonzero");
        Ratio { num, den }
    }

    /// True if `lhs ≥ (num/den)·rhs`, computed exactly in integers.
    ///
    /// Takes a single-width multiply fast path when the products fit in
    /// `u64` (they essentially always do: realistic counters and the
    /// paper's small ratio constants); the exact 128-bit form remains the
    /// overflow fallback. These compares sit on the estimator's
    /// per-event path.
    pub fn le_scaled(&self, lhs: u64, rhs: u64) -> bool {
        match (lhs.checked_mul(self.den), rhs.checked_mul(self.num)) {
            (Some(l), Some(r)) => l >= r,
            _ => (lhs as u128) * (self.den as u128) >= (rhs as u128) * (self.num as u128),
        }
    }

    /// True if `lhs > (num/den)·rhs`, computed exactly in integers.
    pub fn lt_scaled(&self, lhs: u64, rhs: u64) -> bool {
        match (lhs.checked_mul(self.den), rhs.checked_mul(self.num)) {
            (Some(l), Some(r)) => l > r,
            _ => (lhs as u128) * (self.den as u128) > (rhs as u128) * (self.num as u128),
        }
    }

    /// The ratio as a float.
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl std::fmt::Display for Ratio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

/// The paper's bound on adversary power: `κ ≤ 1/18` (Theorem 1).
pub const KAPPA_DEFAULT: f64 = 1.0 / 18.0;

/// The strict bound on the fraction of bad IDs: `3κ ≤ 1/6` (Lemma 9).
pub const BAD_FRACTION_BOUND: f64 = 1.0 / 6.0;

/// The bound on per-round good departures: `ε < 1/12` (Section 2).
pub const EPSILON_BOUND: f64 = 1.0 / 12.0;

/// GoodJEst interval threshold: intervals end when `|S(t')△S(t)| ≥ 5/12·|S(t')|`.
pub const INTERVAL_THRESHOLD: Ratio = Ratio::new(5, 12);

/// Ergo iteration threshold: purge when joins+departures exceed `|S(τ)|/11`.
pub const ITERATION_THRESHOLD: Ratio = Ratio::new(1, 11);

/// Epoch threshold from the ABC churn model: epochs end when the symmetric
/// difference of *good* sets reaches `1/2` the starting good population.
pub const EPOCH_THRESHOLD: Ratio = Ratio::new(1, 2);

/// Heuristic 3's constant `c` (Section 10.3: "we set c = 1/11").
pub const HEURISTIC3_C: f64 = 1.0 / 11.0;

/// Minimum good population `n₀` required by the analysis
/// (Section 2.1.2): `n₀ ≥ max{6000, (720(γ+1))^{4/3}, (41β)²}`.
///
/// Returns the required bound for lifetime exponent `gamma` and burstiness
/// `beta`. Simulations below this bound still run (the paper's own
/// experiments use n₀ ≈ 9–10k with γ small), but the w.h.p. guarantees are
/// only proven above it.
pub fn n0_lower_bound(gamma: f64, beta: f64) -> f64 {
    let a = 6000.0f64;
    let b = (720.0 * (gamma + 1.0)).powf(4.0 / 3.0);
    let c = (41.0 * beta) * (41.0 * beta);
    a.max(b).max(c)
}

/// How the entrance cost is set (paper Figure 4, Step 1 vs the CCom baseline).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EntrancePolicy {
    /// Ergo: hardness `1 +` (number of IDs that joined in the last `1/J̃`
    /// seconds of the current iteration).
    RateBased,
    /// CCom: constant hardness (always 1 in the paper).
    Constant(f64),
}

/// Configuration for [`crate::goodjest::GoodJEst`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GoodJEstConfig {
    /// Interval threshold (default `5/12`).
    pub interval_threshold: Ratio,
    /// Assumed duration of system initialization, used for the initial
    /// estimate `J̃ ← |S(0)| / init_duration` (default 1 round = 1 s).
    pub init_duration: f64,
    /// Heuristic 1: defer estimate updates to the end of the current
    /// iteration (i.e. just after the purge removes Sybil IDs).
    pub align_to_iterations: bool,
}

impl Default for GoodJEstConfig {
    fn default() -> Self {
        GoodJEstConfig {
            interval_threshold: INTERVAL_THRESHOLD,
            init_duration: 1.0,
            align_to_iterations: false,
        }
    }
}

/// Which cost-reduction heuristics (Section 10.3) are active.
///
/// `ERGO-CH1` = Heuristics 1+2; `ERGO-CH2` = Heuristics 1+2+3;
/// `ERGO-SF` additionally gates joins through a classifier (Heuristic 4,
/// configured separately on [`crate::ergo::Ergo`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Heuristics {
    /// Heuristic 1: align estimator updates with iteration ends.
    pub h1_align_estimates: bool,
    /// Heuristic 2: trigger purges on the symmetric difference rather than
    /// the raw join+departure count.
    pub h2_symdiff_trigger: bool,
    /// Heuristic 3: skip a purge when the iteration's total join rate is
    /// below `c ·` (previous iteration's good join-rate estimate).
    pub h3_conditional_purge: bool,
    /// The constant `c` for Heuristic 3.
    pub h3_c: f64,
}

impl Heuristics {
    /// No heuristics: plain Ergo as specified in Figure 4.
    pub fn none() -> Self {
        Heuristics { h3_c: HEURISTIC3_C, ..Default::default() }
    }

    /// `ERGO-CH1`: Heuristics 1 and 2.
    pub fn ch1() -> Self {
        Heuristics {
            h1_align_estimates: true,
            h2_symdiff_trigger: true,
            h3_conditional_purge: false,
            h3_c: HEURISTIC3_C,
        }
    }

    /// `ERGO-CH2`: Heuristics 1, 2, and 3.
    pub fn ch2() -> Self {
        Heuristics { h3_conditional_purge: true, ..Self::ch1() }
    }
}

/// Configuration for [`crate::ergo::Ergo`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErgoConfig {
    /// Entrance-cost policy (Ergo's rate-based rule or CCom's constant).
    pub entrance: EntrancePolicy,
    /// Iteration threshold (default `1/11`).
    pub iteration_threshold: Ratio,
    /// Estimator configuration.
    pub estimator: GoodJEstConfig,
    /// Active heuristics.
    pub heuristics: Heuristics,
}

impl Default for ErgoConfig {
    fn default() -> Self {
        ErgoConfig {
            entrance: EntrancePolicy::RateBased,
            iteration_threshold: ITERATION_THRESHOLD,
            estimator: GoodJEstConfig::default(),
            heuristics: Heuristics::none(),
        }
    }
}

impl ErgoConfig {
    /// The paper's CCom baseline: constant entrance cost 1, same purges.
    pub fn ccom() -> Self {
        ErgoConfig { entrance: EntrancePolicy::Constant(1.0), ..Default::default() }
    }

    /// Ergo with a heuristic set, propagating Heuristic 1 to the estimator.
    pub fn with_heuristics(h: Heuristics) -> Self {
        let mut cfg = ErgoConfig { heuristics: h, ..Default::default() };
        cfg.estimator.align_to_iterations = h.h1_align_estimates;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_comparisons_are_exact() {
        let r = Ratio::new(5, 12);
        // 5/12 of 24 = 10.
        assert!(r.le_scaled(10, 24));
        assert!(!r.le_scaled(9, 24));
        assert!(r.lt_scaled(11, 24));
        assert!(!r.lt_scaled(10, 24));
        assert!((r.as_f64() - 5.0 / 12.0).abs() < 1e-15);
        assert_eq!(r.to_string(), "5/12");
    }

    #[test]
    fn ratio_handles_huge_values_without_overflow() {
        let r = Ratio::new(5, 12);
        assert!(r.le_scaled(u64::MAX / 2, u64::MAX));
    }

    #[test]
    fn n0_bound_matches_paper() {
        // For small gamma and beta the 6000 floor dominates... gamma=1 gives
        // (720*2)^(4/3) ≈ 16279 which dominates instead.
        assert!(n0_lower_bound(0.0, 1.0) >= 6000.0);
        let g1 = n0_lower_bound(1.0, 1.0);
        assert!((g1 - (1440.0f64).powf(4.0 / 3.0)).abs() < 1e-6);
        // Large beta: the (41β)² term dominates.
        assert_eq!(n0_lower_bound(0.0, 10.0), 410.0 * 410.0);
    }

    #[test]
    fn heuristic_presets() {
        assert!(!Heuristics::none().h1_align_estimates);
        let ch1 = Heuristics::ch1();
        assert!(ch1.h1_align_estimates && ch1.h2_symdiff_trigger && !ch1.h3_conditional_purge);
        let ch2 = Heuristics::ch2();
        assert!(ch2.h3_conditional_purge);
        assert_eq!(ch2.h3_c, HEURISTIC3_C);
    }

    #[test]
    fn config_presets() {
        let ergo = ErgoConfig::default();
        assert_eq!(ergo.entrance, EntrancePolicy::RateBased);
        let ccom = ErgoConfig::ccom();
        assert_eq!(ccom.entrance, EntrancePolicy::Constant(1.0));
        let ch1 = ErgoConfig::with_heuristics(Heuristics::ch1());
        assert!(ch1.estimator.align_to_iterations);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }
}
