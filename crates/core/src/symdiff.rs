//! O(1) symmetric-difference tracking.
//!
//! Because every joining ID is new (paper Section 2.1.1), the symmetric
//! difference between the membership set at an interval start and now
//! decomposes exactly as
//!
//! ```text
//! |S(now) △ S(start)| = (old members that have departed)
//!                     + (new members currently present)
//! ```
//!
//! where *old* means "was a member at `start`". Both counts update in O(1)
//! per event, so GoodJEst's `5/12` rule, Heuristic 2's purge trigger, and
//! the ABC model's epoch detection all run in constant time per event.
//! The caller classifies each departure as old or new (it knows join times);
//! this tracker just maintains the two counters.

/// Incremental symmetric-difference counter relative to a reference set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SymdiffTracker {
    old_departed: u64,
    new_present: u64,
}

impl SymdiffTracker {
    /// A tracker whose reference set is the current membership.
    pub fn new() -> Self {
        SymdiffTracker::default()
    }

    /// Records `n` joins (all new by definition).
    pub fn on_join(&mut self, n: u64) {
        self.new_present += n;
    }

    /// Records `n` departures of IDs that were members at the reference point.
    pub fn on_depart_old(&mut self, n: u64) {
        self.old_departed += n;
    }

    /// Records `n` departures of IDs that joined after the reference point.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if more new IDs depart than are present —
    /// that would mean the caller misclassified a departure.
    pub fn on_depart_new(&mut self, n: u64) {
        debug_assert!(self.new_present >= n, "more new departures than new members");
        self.new_present = self.new_present.saturating_sub(n);
    }

    /// The current symmetric difference versus the reference set.
    pub fn symdiff(&self) -> u64 {
        self.old_departed + self.new_present
    }

    /// Number of new members currently present (the `|B − A|` half).
    pub fn new_present(&self) -> u64 {
        self.new_present
    }

    /// Number of reference-set members that have departed (the `|A − B|` half).
    pub fn old_departed(&self) -> u64 {
        self.old_departed
    }

    /// Re-anchors the reference set to the current membership.
    pub fn reset(&mut self) {
        self.old_departed = 0;
        self.new_present = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn basic_accounting() {
        let mut t = SymdiffTracker::new();
        assert_eq!(t.symdiff(), 0);
        t.on_join(3);
        assert_eq!(t.symdiff(), 3);
        t.on_depart_new(1);
        assert_eq!(t.symdiff(), 2);
        t.on_depart_old(4);
        assert_eq!(t.symdiff(), 6);
        assert_eq!(t.new_present(), 2);
        assert_eq!(t.old_departed(), 4);
        t.reset();
        assert_eq!(t.symdiff(), 0);
    }

    /// Reference model: explicit sets, |A △ B| recomputed from scratch.
    struct SetModel {
        start: HashSet<u64>,
        current: HashSet<u64>,
        next_id: u64,
    }

    impl SetModel {
        fn new(initial: u64) -> Self {
            let start: HashSet<u64> = (0..initial).collect();
            SetModel { current: start.clone(), start, next_id: initial }
        }

        fn join(&mut self) -> u64 {
            let id = self.next_id;
            self.next_id += 1;
            self.current.insert(id);
            id
        }

        fn depart(&mut self, id: u64) -> bool {
            let was_old = self.start.contains(&id);
            self.current.remove(&id);
            was_old
        }

        fn symdiff(&self) -> u64 {
            self.start.symmetric_difference(&self.current).count() as u64
        }
    }

    /// The O(1) tracker agrees with brute-force set recomputation under
    /// arbitrary interleavings of joins and departures. (Hand-rolled
    /// property loop: ops are a pure function of the case seed.)
    #[test]
    fn tracker_matches_brute_force() {
        for case in 0u64..64 {
            let mut model = SetModel::new(10);
            let mut tracker = SymdiffTracker::new();
            let mut present: Vec<u64> = (0..10).collect();
            let mut rng_state = 12345u64.wrapping_add(case.wrapping_mul(0x9E3779B97F4A7C15));
            let n_ops = 1 + (case as usize * 3) % 199;
            for _ in 0..n_ops {
                // Cheap deterministic op/index selection.
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                match (rng_state >> 33) & 1 {
                    0 => {
                        let id = model.join();
                        present.push(id);
                        tracker.on_join(1);
                    }
                    _ => {
                        if present.is_empty() {
                            continue;
                        }
                        let idx = (rng_state % present.len() as u64) as usize;
                        let id = present.swap_remove(idx);
                        if model.depart(id) {
                            tracker.on_depart_old(1);
                        } else {
                            tracker.on_depart_new(1);
                        }
                    }
                }
                assert_eq!(tracker.symdiff(), model.symdiff(), "case {case}");
            }
        }
    }
}
