//! Sliding-window join counting for the entrance cost.
//!
//! Ergo's Step 1 (paper Figure 4) quotes each joiner a challenge of hardness
//! "1 plus the number of IDs that have joined in the last `1/J̃` seconds of
//! the current iteration". This module maintains the join history of the
//! current iteration as a cumulative-count array with a sliding window
//! cursor, so the windowed count is O(1) for the engine's monotone query
//! pattern, and admitting a *batch* of `n` simultaneous joins has a
//! closed-form total cost
//!
//! ```text
//! cost(n) = n·q₀ + n(n−1)/2      where q₀ is the current quote,
//! ```
//!
//! because each admission raises the next joiner's quote by one. This is the
//! arithmetic-series escalation behind the paper's `Θ(x²)` adversary cost
//! intuition (Section 7.1).

use std::cell::Cell;
use sybil_sim::time::Time;

/// Join history of the current iteration, supporting O(1) amortized
/// appends and windowed counts that are O(1) for the monotone query
/// pattern the engine produces (a maintained sliding cursor), with an
/// O(log n) binary-search fallback when the window edge jumps.
#[derive(Clone, Debug, Default)]
pub struct JoinWindow {
    /// Join timestamps, time-sorted. Structure-of-arrays with `counts`:
    /// the window-boundary walks and searches in [`count_within`] read
    /// only timestamps, so splitting the former `(f64, u64)` pairs halves
    /// the bytes those scans pull through cache.
    ///
    /// [`count_within`]: JoinWindow::count_within
    times: Vec<f64>,
    /// Cumulative joins up to and including the same-index timestamp.
    counts: Vec<u64>,
    /// Memoized window boundary from the previous [`count_within`]
    /// query: the index of the first entry strictly inside that window.
    /// Simulation time is monotone and the window width (`1/J̃`) only
    /// moves at estimator updates, so consecutive queries' boundaries are
    /// usually within a step or two of each other — the next query walks
    /// from here instead of searching. Interior-mutable because quoting
    /// is a read-only operation to callers.
    ///
    /// [`count_within`]: JoinWindow::count_within
    cursor: Cell<usize>,
}

impl JoinWindow {
    /// An empty window.
    pub fn new() -> Self {
        JoinWindow::default()
    }

    /// Records `n` joins at time `now`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `now` precedes the last recorded join.
    pub fn record(&mut self, now: Time, n: u64) {
        if n == 0 {
            return;
        }
        let t = now.as_secs();
        let total = self.total() + n;
        if let Some(&last_t) = self.times.last() {
            debug_assert!(t >= last_t, "joins must be recorded in time order");
            if last_t == t {
                *self.counts.last_mut().expect("times and counts stay in lockstep") = total;
                return;
            }
        }
        self.times.push(t);
        self.counts.push(total);
    }

    /// Pre-reserves room for `n` distinct join timestamps. Called from
    /// `Defense::init` (outside the engine's measured steady-state span)
    /// so iteration-long histories never grow the arrays mid-loop;
    /// [`clear`] keeps capacity, so one reservation covers the whole run.
    ///
    /// [`clear`]: JoinWindow::clear
    pub fn reserve(&mut self, n: usize) {
        self.times.reserve(n);
        self.counts.reserve(n);
    }

    /// Total joins recorded this iteration.
    pub fn total(&self) -> u64 {
        self.counts.last().copied().unwrap_or(0)
    }

    /// Number of joins in the half-open window `(now − width, now]`.
    ///
    /// A non-positive or non-finite `width` counts nothing / everything
    /// respectively consistent with `1/J̃` semantics: `width = ∞` (estimate
    /// 0) counts the whole iteration; `width = 0` counts only joins at
    /// exactly `now`.
    pub fn count_within(&self, now: Time, width: f64) -> u64 {
        let n = self.times.len();
        if n == 0 {
            return 0;
        }
        let cutoff = now.as_secs() - width;
        if cutoff.is_nan() {
            // A NaN width (or NaN `now`) compares false to everything: the
            // cursor walks below would silently stay wherever the previous
            // query left them. Pin the pre-cursor behavior: count nothing,
            // deterministically.
            self.cursor.set(n);
            return 0;
        }
        // Joins strictly after `cutoff` are inside the window. Between
        // estimator updates the width is constant and `now` is monotone,
        // so the boundary index only creeps forward: resume the walk from
        // the previous query's boundary instead of searching. A few steps
        // in either direction covers the overwhelming share of queries;
        // if the boundary jumped (width change at an estimator update, or
        // a burst of appends), gallop outward from the stale cursor and
        // binary-search the bracket — O(log distance) over entries near
        // the cursor, never a cold full-array search.
        const MAX_WALK: usize = 8;
        let mut idx = self.cursor.get().min(n);
        let mut walked = 0usize;
        while walked < MAX_WALK && idx < n && self.times[idx] <= cutoff {
            idx += 1;
            walked += 1;
        }
        while walked < MAX_WALK && idx > 0 && self.times[idx - 1] > cutoff {
            idx -= 1;
            walked += 1;
        }
        if idx < n && self.times[idx] <= cutoff {
            // Boundary is further right: bracket it in (lo, hi].
            let mut step = 1usize;
            let mut lo = idx;
            while idx + step < n && self.times[idx + step] <= cutoff {
                lo = idx + step;
                step *= 2;
            }
            let hi = (idx + step).min(n);
            idx = lo + 1 + self.times[lo + 1..hi].partition_point(|&t| t <= cutoff);
        } else if idx > 0 && self.times[idx - 1] > cutoff {
            // Boundary is further left: gallop down, bracket in
            // [lo, lo + step/2] (clamped — we know it is below idx).
            let mut step = 1usize;
            let mut lo = idx;
            while lo > 0 && self.times[lo - 1] > cutoff {
                lo = lo.saturating_sub(step);
                step *= 2;
            }
            let hi = (lo + step / 2).min(idx);
            idx = lo + self.times[lo..hi].partition_point(|&t| t <= cutoff);
        }
        self.cursor.set(idx);
        let before = if idx == 0 { 0 } else { self.counts[idx - 1] };
        self.total() - before
    }

    /// Clears the history (called at each purge: the entrance rule reads
    /// "of the current iteration").
    pub fn clear(&mut self) {
        self.times.clear();
        self.counts.clear();
        self.cursor.set(0);
    }
}

/// Total cost of `n` simultaneous admissions starting from quote `q0`:
/// `n·q0 + n(n−1)/2`.
pub fn batch_cost(q0: f64, n: u64) -> f64 {
    let n = n as f64;
    n * q0 + n * (n - 1.0) / 2.0
}

/// The largest `n` with [`batch_cost`]`(q0, n) ≤ budget`.
///
/// The fixup loops below define the exact integer boundary; the closed
/// form only seeds them. The seed uses the cancellation-free form of the
/// quadratic root, `2·budget / (b + √(b² + 2·budget))`: the naive
/// `−b + √(b² + 2·budget)` loses all precision when `q0 ≫ budget` (large
/// standing quote, small increment), which used to send the fixup loops
/// walking hundreds of steps — a measurable fraction of whole-simulation
/// time under heavy attack.
pub fn max_affordable(q0: f64, budget: f64) -> u64 {
    if budget < q0 {
        return 0;
    }
    // Solve n²/2 + n(q0 − 1/2) − budget = 0 for the positive root.
    let b = q0 - 0.5;
    let disc = (b * b + 2.0 * budget).sqrt();
    let root = if b >= 0.0 { 2.0 * budget / (b + disc) } else { (disc - b).max(0.0) };
    let mut n = root.floor() as u64;
    // Floating-point safety: adjust to the exact integer boundary.
    while batch_cost(q0, n + 1) <= budget {
        n += 1;
    }
    while n > 0 && batch_cost(q0, n) > budget {
        n -= 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_window_counts_zero() {
        let w = JoinWindow::new();
        assert_eq!(w.count_within(Time(10.0), 5.0), 0);
        assert_eq!(w.total(), 0);
    }

    #[test]
    fn windowed_count() {
        let mut w = JoinWindow::new();
        w.record(Time(1.0), 2);
        w.record(Time(2.0), 3);
        w.record(Time(5.0), 1);
        assert_eq!(w.total(), 6);
        // Window (4, 5]: only the join at t=5.
        assert_eq!(w.count_within(Time(5.0), 1.0), 1);
        // Window (2, 5]: join at 5 only (t=2 is excluded: strictly after cutoff).
        assert_eq!(w.count_within(Time(5.0), 3.0), 1);
        // Window (1.5, 5]: joins at 2 and 5.
        assert_eq!(w.count_within(Time(5.0), 3.5), 4);
        // Whole history.
        assert_eq!(w.count_within(Time(5.0), 100.0), 6);
        // Zero width: only joins exactly at now... cutoff = now, t <= cutoff
        // excludes everything at or before now.
        assert_eq!(w.count_within(Time(5.0), 0.0), 0);
    }

    #[test]
    fn same_time_joins_merge() {
        let mut w = JoinWindow::new();
        w.record(Time(1.0), 1);
        w.record(Time(1.0), 2);
        assert_eq!(w.total(), 3);
        assert_eq!(w.count_within(Time(1.0), 0.5), 3);
    }

    /// A NaN width must return 0 regardless of where earlier queries left
    /// the cursor (regression: the walk loops all compare false on NaN and
    /// would otherwise serve a stale-cursor-dependent count).
    #[test]
    fn nan_width_counts_nothing_independent_of_cursor_state() {
        let mut w = JoinWindow::new();
        for i in 0..20 {
            w.record(Time(i as f64), 1);
        }
        for prime_width in [0.0, 3.0, 1e9] {
            w.count_within(Time(19.0), prime_width); // park the cursor somewhere
            assert_eq!(w.count_within(Time(19.0), f64::NAN), 0, "after width {prime_width}");
        }
        // And the cursor recovers for ordinary queries afterwards.
        assert_eq!(w.count_within(Time(19.0), 1e9), 20);
    }

    #[test]
    fn clear_resets() {
        let mut w = JoinWindow::new();
        w.record(Time(1.0), 5);
        w.clear();
        assert_eq!(w.total(), 0);
        assert_eq!(w.count_within(Time(2.0), 10.0), 0);
    }

    #[test]
    fn batch_cost_matches_series() {
        // q0=3, n=4: 3+4+5+6 = 18.
        assert_eq!(batch_cost(3.0, 4), 18.0);
        assert_eq!(batch_cost(1.0, 1), 1.0);
        assert_eq!(batch_cost(5.0, 0), 0.0);
    }

    #[test]
    fn max_affordable_boundaries() {
        // q0=1: cost(n) = n(n+1)/2. budget 10 → n=4 (cost 10).
        assert_eq!(max_affordable(1.0, 10.0), 4);
        assert_eq!(max_affordable(1.0, 9.99), 3);
        assert_eq!(max_affordable(1.0, 0.5), 0);
        assert_eq!(max_affordable(10.0, 9.0), 0);
        assert_eq!(max_affordable(10.0, 10.0), 1);
    }

    /// Closed-form affordability agrees with the greedy series sum.
    /// (Hand-rolled property loop: cases derive from deterministic seeds.)
    #[test]
    fn max_affordable_is_exact() {
        for case in 0u64..256 {
            let mut rng = StdRng::seed_from_u64(0x11aa_0000 + case);
            let q0 = rng.gen_range(1.0f64..1000.0);
            let budget = rng.gen_range(0.0f64..100_000.0);
            let n = max_affordable(q0, budget);
            assert!(batch_cost(q0, n) <= budget || n == 0, "case {case}");
            assert!(batch_cost(q0, n + 1) > budget, "case {case}");
        }
    }

    /// The stable root seed stays exact in the cancellation regime the
    /// naive `−b + √(b² + 2B)` form loses: a huge standing quote and a
    /// budget far below/near it.
    #[test]
    fn max_affordable_survives_cancellation_regime() {
        for &(q0, budget) in
            &[(1.0e9, 1.0e9), (1.0e9, 2.5e9), (5.0e8, 6.0e8), (1.0e12, 1.0e12), (3.7e10, 9.9e10)]
        {
            let n = max_affordable(q0, budget);
            assert!(batch_cost(q0, n) <= budget || n == 0, "q0={q0} budget={budget}");
            assert!(batch_cost(q0, n + 1) > budget, "q0={q0} budget={budget}");
        }
    }

    /// Windowed counts agree with brute force over the raw history.
    #[test]
    fn count_matches_brute_force() {
        for case in 0u64..128 {
            let mut rng = StdRng::seed_from_u64(0x22bb_0000 + case);
            let n_joins = rng.gen_range(0usize..50);
            let mut joins: Vec<(f64, u64)> = (0..n_joins)
                .map(|_| (rng.gen_range(0.0f64..100.0), rng.gen_range(1u64..5)))
                .collect();
            let width = rng.gen_range(0.0f64..50.0);
            joins.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut w = JoinWindow::new();
            for &(t, n) in &joins {
                w.record(Time(t), n);
            }
            let now = Time(100.0);
            let cutoff = 100.0 - width;
            let expect: u64 = joins.iter().filter(|&&(t, _)| t > cutoff).map(|&(_, n)| n).sum();
            assert_eq!(w.count_within(now, width), expect, "case {case}");
        }
    }

    /// The sliding cursor stays exact over realistic query *sequences*:
    /// monotone `now` interleaved with appends, widths that shrink and
    /// grow (moving the cutoff backwards), zero/huge widths, and clears.
    /// Every answer must match brute force over the raw history.
    #[test]
    fn cursor_sequences_match_brute_force() {
        for case in 0u64..64 {
            let mut rng = StdRng::seed_from_u64(0x33cc_0000 + case);
            let mut w = JoinWindow::new();
            let mut joins: Vec<(f64, u64)> = Vec::new();
            let mut now = 0.0f64;
            for step in 0..200 {
                match rng.gen_range(0u32..10) {
                    0..=3 => {
                        now += rng.gen_range(0.0f64..2.0);
                        let n = rng.gen_range(1u64..4);
                        w.record(Time(now), n);
                        joins.push((now, n));
                    }
                    4 if step % 37 == 4 => {
                        w.clear();
                        joins.clear();
                    }
                    _ => {
                        now += rng.gen_range(0.0f64..0.5);
                        // Mix tiny, medium, and whole-history widths so the
                        // cutoff sweeps forward and backward across queries.
                        let width = match rng.gen_range(0u32..4) {
                            0 => 0.0,
                            1 => rng.gen_range(0.0f64..1.0),
                            2 => rng.gen_range(0.0f64..20.0),
                            _ => 1e9,
                        };
                        let cutoff = now - width;
                        let expect: u64 =
                            joins.iter().filter(|&&(t, _)| t > cutoff).map(|&(_, n)| n).sum();
                        assert_eq!(
                            w.count_within(Time(now), width),
                            expect,
                            "case {case} step {step} width {width}"
                        );
                    }
                }
            }
        }
    }
}
