//! Sliding-window join counting for the entrance cost.
//!
//! Ergo's Step 1 (paper Figure 4) quotes each joiner a challenge of hardness
//! "1 plus the number of IDs that have joined in the last `1/J̃` seconds of
//! the current iteration". This module maintains the join history of the
//! current iteration as a cumulative-count array, so the windowed count is a
//! binary search and admitting a *batch* of `n` simultaneous joins has a
//! closed-form total cost
//!
//! ```text
//! cost(n) = n·q₀ + n(n−1)/2      where q₀ is the current quote,
//! ```
//!
//! because each admission raises the next joiner's quote by one. This is the
//! arithmetic-series escalation behind the paper's `Θ(x²)` adversary cost
//! intuition (Section 7.1).

use sybil_sim::time::Time;

/// Join history of the current iteration, supporting O(log n) windowed
/// counts and O(1) amortized appends.
#[derive(Clone, Debug, Default)]
pub struct JoinWindow {
    /// `(time, cumulative joins up to and including time)`, time-sorted.
    entries: Vec<(f64, u64)>,
}

impl JoinWindow {
    /// An empty window.
    pub fn new() -> Self {
        JoinWindow::default()
    }

    /// Records `n` joins at time `now`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `now` precedes the last recorded join.
    pub fn record(&mut self, now: Time, n: u64) {
        if n == 0 {
            return;
        }
        let t = now.as_secs();
        let total = self.total() + n;
        if let Some(last) = self.entries.last_mut() {
            debug_assert!(t >= last.0, "joins must be recorded in time order");
            if last.0 == t {
                last.1 = total;
                return;
            }
        }
        self.entries.push((t, total));
    }

    /// Total joins recorded this iteration.
    pub fn total(&self) -> u64 {
        self.entries.last().map_or(0, |&(_, c)| c)
    }

    /// Number of joins in the half-open window `(now − width, now]`.
    ///
    /// A non-positive or non-finite `width` counts nothing / everything
    /// respectively consistent with `1/J̃` semantics: `width = ∞` (estimate
    /// 0) counts the whole iteration; `width = 0` counts only joins at
    /// exactly `now`.
    pub fn count_within(&self, now: Time, width: f64) -> u64 {
        let n = self.entries.len();
        if n == 0 {
            return 0;
        }
        let cutoff = now.as_secs() - width;
        // Joins strictly after `cutoff` are inside the window. The window
        // is a recent suffix of a long history, so gallop backwards from
        // the end (recently-appended, cache-hot entries) to bracket the
        // boundary, then binary-search the bracket. Equivalent to
        // `partition_point` over the whole array, but touches O(log w)
        // hot lines for a width-w window instead of O(log n) cold ones.
        let mut step = 1usize;
        let mut hi = n; // entries[hi..] are known > cutoff
        while hi > 0 && self.entries[hi - 1].0 > cutoff {
            hi = hi.saturating_sub(step);
            step *= 2;
        }
        // Boundary is within entries[hi..hi + step/2] (clamped).
        let idx =
            hi + self.entries[hi..(hi + step / 2).min(n)].partition_point(|&(t, _)| t <= cutoff);
        let before = if idx == 0 { 0 } else { self.entries[idx - 1].1 };
        self.total() - before
    }

    /// Clears the history (called at each purge: the entrance rule reads
    /// "of the current iteration").
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Total cost of `n` simultaneous admissions starting from quote `q0`:
/// `n·q0 + n(n−1)/2`.
pub fn batch_cost(q0: f64, n: u64) -> f64 {
    let n = n as f64;
    n * q0 + n * (n - 1.0) / 2.0
}

/// The largest `n` with [`batch_cost`]`(q0, n) ≤ budget`.
///
/// The fixup loops below define the exact integer boundary; the closed
/// form only seeds them. The seed uses the cancellation-free form of the
/// quadratic root, `2·budget / (b + √(b² + 2·budget))`: the naive
/// `−b + √(b² + 2·budget)` loses all precision when `q0 ≫ budget` (large
/// standing quote, small increment), which used to send the fixup loops
/// walking hundreds of steps — a measurable fraction of whole-simulation
/// time under heavy attack.
pub fn max_affordable(q0: f64, budget: f64) -> u64 {
    if budget < q0 {
        return 0;
    }
    // Solve n²/2 + n(q0 − 1/2) − budget = 0 for the positive root.
    let b = q0 - 0.5;
    let disc = (b * b + 2.0 * budget).sqrt();
    let root = if b >= 0.0 { 2.0 * budget / (b + disc) } else { (disc - b).max(0.0) };
    let mut n = root.floor() as u64;
    // Floating-point safety: adjust to the exact integer boundary.
    while batch_cost(q0, n + 1) <= budget {
        n += 1;
    }
    while n > 0 && batch_cost(q0, n) > budget {
        n -= 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_window_counts_zero() {
        let w = JoinWindow::new();
        assert_eq!(w.count_within(Time(10.0), 5.0), 0);
        assert_eq!(w.total(), 0);
    }

    #[test]
    fn windowed_count() {
        let mut w = JoinWindow::new();
        w.record(Time(1.0), 2);
        w.record(Time(2.0), 3);
        w.record(Time(5.0), 1);
        assert_eq!(w.total(), 6);
        // Window (4, 5]: only the join at t=5.
        assert_eq!(w.count_within(Time(5.0), 1.0), 1);
        // Window (2, 5]: join at 5 only (t=2 is excluded: strictly after cutoff).
        assert_eq!(w.count_within(Time(5.0), 3.0), 1);
        // Window (1.5, 5]: joins at 2 and 5.
        assert_eq!(w.count_within(Time(5.0), 3.5), 4);
        // Whole history.
        assert_eq!(w.count_within(Time(5.0), 100.0), 6);
        // Zero width: only joins exactly at now... cutoff = now, t <= cutoff
        // excludes everything at or before now.
        assert_eq!(w.count_within(Time(5.0), 0.0), 0);
    }

    #[test]
    fn same_time_joins_merge() {
        let mut w = JoinWindow::new();
        w.record(Time(1.0), 1);
        w.record(Time(1.0), 2);
        assert_eq!(w.total(), 3);
        assert_eq!(w.count_within(Time(1.0), 0.5), 3);
    }

    #[test]
    fn clear_resets() {
        let mut w = JoinWindow::new();
        w.record(Time(1.0), 5);
        w.clear();
        assert_eq!(w.total(), 0);
        assert_eq!(w.count_within(Time(2.0), 10.0), 0);
    }

    #[test]
    fn batch_cost_matches_series() {
        // q0=3, n=4: 3+4+5+6 = 18.
        assert_eq!(batch_cost(3.0, 4), 18.0);
        assert_eq!(batch_cost(1.0, 1), 1.0);
        assert_eq!(batch_cost(5.0, 0), 0.0);
    }

    #[test]
    fn max_affordable_boundaries() {
        // q0=1: cost(n) = n(n+1)/2. budget 10 → n=4 (cost 10).
        assert_eq!(max_affordable(1.0, 10.0), 4);
        assert_eq!(max_affordable(1.0, 9.99), 3);
        assert_eq!(max_affordable(1.0, 0.5), 0);
        assert_eq!(max_affordable(10.0, 9.0), 0);
        assert_eq!(max_affordable(10.0, 10.0), 1);
    }

    /// Closed-form affordability agrees with the greedy series sum.
    /// (Hand-rolled property loop: cases derive from deterministic seeds.)
    #[test]
    fn max_affordable_is_exact() {
        for case in 0u64..256 {
            let mut rng = StdRng::seed_from_u64(0x11aa_0000 + case);
            let q0 = rng.gen_range(1.0f64..1000.0);
            let budget = rng.gen_range(0.0f64..100_000.0);
            let n = max_affordable(q0, budget);
            assert!(batch_cost(q0, n) <= budget || n == 0, "case {case}");
            assert!(batch_cost(q0, n + 1) > budget, "case {case}");
        }
    }

    /// The stable root seed stays exact in the cancellation regime the
    /// naive `−b + √(b² + 2B)` form loses: a huge standing quote and a
    /// budget far below/near it.
    #[test]
    fn max_affordable_survives_cancellation_regime() {
        for &(q0, budget) in
            &[(1.0e9, 1.0e9), (1.0e9, 2.5e9), (5.0e8, 6.0e8), (1.0e12, 1.0e12), (3.7e10, 9.9e10)]
        {
            let n = max_affordable(q0, budget);
            assert!(batch_cost(q0, n) <= budget || n == 0, "q0={q0} budget={budget}");
            assert!(batch_cost(q0, n + 1) > budget, "q0={q0} budget={budget}");
        }
    }

    /// Windowed counts agree with brute force over the raw history.
    #[test]
    fn count_matches_brute_force() {
        for case in 0u64..128 {
            let mut rng = StdRng::seed_from_u64(0x22bb_0000 + case);
            let n_joins = rng.gen_range(0usize..50);
            let mut joins: Vec<(f64, u64)> = (0..n_joins)
                .map(|_| (rng.gen_range(0.0f64..100.0), rng.gen_range(1u64..5)))
                .collect();
            let width = rng.gen_range(0.0f64..50.0);
            joins.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut w = JoinWindow::new();
            for &(t, n) in &joins {
                w.record(Time(t), n);
            }
            let now = Time(100.0);
            let cutoff = 100.0 - width;
            let expect: u64 = joins.iter().filter(|&&(t, _)| t > cutoff).map(|&(_, n)| n).sum();
            assert_eq!(w.count_within(now, width), expect, "case {case}");
        }
    }
}
