//! A minimal, dependency-free stand-in for the `criterion` benchmarking
//! crate (the build environment is offline).
//!
//! Provides the subset used by this workspace's benches: [`Criterion`] with
//! `bench_function` / `benchmark_group`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`], [`Throughput`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurements are a
//! simple warmup-then-sample loop printing mean time per iteration (plus
//! derived throughput); there is no statistical analysis or HTML output.

#![forbid(unsafe_code)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility, the shim
/// always materializes one input per routine call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Units processed per iteration, used to derive throughput.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Measures one closure: short warmup, then timed samples.
pub struct Bencher {
    measured: Option<Duration>,
    iters: u64,
    measure_for: Duration,
}

impl Bencher {
    fn new(measure_for: Duration) -> Self {
        Bencher { measured: None, iters: 0, measure_for }
    }

    /// Times `f` in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: find an iteration count filling the window.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < self.measure_for / 4 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        let n = ((self.measure_for.as_secs_f64() / per_iter).ceil() as u64).max(1);
        let timed = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.measured = Some(timed.elapsed());
        self.iters = n;
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let start = Instant::now();
        let mut warm_iters = 0u64;
        let mut spent = Duration::ZERO;
        while start.elapsed() < self.measure_for / 4 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
            warm_iters += 1;
        }
        let per_iter = (spent.as_secs_f64() / warm_iters as f64).max(1e-9);
        let n = ((self.measure_for.as_secs_f64() / per_iter).ceil() as u64).max(1);
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        self.measured = Some(total);
        self.iters = n;
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let Some(total) = b.measured else {
        println!("{name:<40} (no measurement)");
        return;
    };
    let per_iter = total.as_secs_f64() / b.iters.max(1) as f64;
    let time_str = if per_iter >= 1.0 {
        format!("{per_iter:.3} s")
    } else if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else if per_iter >= 1e-6 {
        format!("{:.3} µs", per_iter * 1e6)
    } else {
        format!("{:.1} ns", per_iter * 1e9)
    };
    let extra = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => {
            format!("  ({:.3e} elem/s)", n as f64 / per_iter)
        }
        None => String::new(),
    };
    println!("{name:<40} {time_str:>12}/iter{extra}  [{} iters]", b.iters);
}

/// Benchmark driver; collects and prints measurements.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs short: this shim is for trend-spotting, not statistics.
        let ms = std::env::var("CRITERION_SHIM_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion { measure_for: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Measures a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher::new(self.measure_for);
        f(&mut b);
        report(&name, &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, prefix: name.into(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name.into());
        let mut b = Bencher::new(self.criterion.measure_for);
        f(&mut b);
        report(&full, &b, self.throughput);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("CRITERION_SHIM_MEASURE_MS", "10");
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(8));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 8],
                |v| {
                    ran += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert!(ran > 0);
    }
}
