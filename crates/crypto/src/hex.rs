//! Minimal hexadecimal encode/decode helpers.

/// Encodes `bytes` as a lowercase hex string.
///
/// # Example
///
/// ```
/// assert_eq!(sybil_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0xf) as usize] as char);
    }
    out
}

/// Decodes a hex string (upper or lower case) into bytes.
///
/// Returns `None` on odd length or non-hex characters.
///
/// # Example
///
/// ```
/// assert_eq!(sybil_crypto::hex::decode("DEAD"), Some(vec![0xde, 0xad]));
/// assert_eq!(sybil_crypto::hex::decode("xy"), None);
/// ```
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    fn nibble(c: u8) -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_bytes() {
        let data: Vec<u8> = (0u8..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(decode("abc").is_none(), "odd length");
        assert!(decode("zz").is_none(), "non-hex char");
        assert!(decode("a ").is_none(), "whitespace");
    }

    #[test]
    fn mixed_case() {
        assert_eq!(decode("AaBb").unwrap(), vec![0xaa, 0xbb]);
    }
}
