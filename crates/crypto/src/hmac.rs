//! HMAC-SHA256 (RFC 2104), used for the authenticated channels that the
//! decentralized committee (paper Section 12) assumes between IDs.

use crate::sha256::{Digest, Sha256};

const BLOCK_LEN: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// A streaming HMAC-SHA256 context.
///
/// Allocation-free: the key block and pads live on the stack, and message
/// parts are absorbed incrementally — callers authenticating a composite
/// message (header fields followed by a payload) never concatenate into a
/// heap buffer first. The result is bit-identical to
/// [`hmac_sha256`] over the concatenation of the parts.
///
/// # Example
///
/// ```
/// use sybil_crypto::hmac::{hmac_sha256, HmacSha256};
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"header|");
/// mac.update(b"payload");
/// assert_eq!(mac.finalize(), hmac_sha256(b"key", b"header|payload"));
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    /// The outer pad (`key ⊕ opad`), kept for [`finalize`](Self::finalize).
    opad_block: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Starts an HMAC computation with `key` (hashed first if longer than
    /// the 64-byte block, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            key_block[..32].copy_from_slice(Sha256::digest(key).as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad_block = key_block;
        let mut opad_block = key_block;
        for (i, o) in ipad_block.iter_mut().zip(opad_block.iter_mut()) {
            *i ^= IPAD;
            *o ^= OPAD;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad_block);
        HmacSha256 { inner, opad_block }
    }

    /// Absorbs the next message part.
    pub fn update(&mut self, part: &[u8]) {
        self.inner.update(part);
    }

    /// Finishes the computation and returns the tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_block);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }
}

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block are first hashed, per RFC 2104.
///
/// # Example
///
/// ```
/// use sybil_crypto::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     tag.to_string(),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Constant-time-ish comparison of two digests.
///
/// The simulation does not face real timing attacks, but providing the
/// correct primitive keeps the API honest for library users.
pub fn verify_tag(expected: &Digest, actual: &Digest) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.as_bytes().iter().zip(actual.as_bytes()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_string(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_string(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            tag.to_string(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            tag.to_string(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let message = b"a composite message long enough to cross a block boundary when \
                        combined with the 64-byte ipad prefix absorbed before it";
        let expect = hmac_sha256(b"stream-key", message);
        for split in 0..=message.len() {
            let (a, b) = message.split_at(split);
            let mut mac = HmacSha256::new(b"stream-key");
            mac.update(a);
            mac.update(b);
            assert_eq!(mac.finalize(), expect, "split {split}");
        }
    }

    #[test]
    fn streaming_long_key_matches_one_shot() {
        let key = [0xaau8; 131];
        let mut mac = HmacSha256::new(&key);
        mac.update(b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            mac.finalize().to_string(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_tag_matches_equality() {
        let a = hmac_sha256(b"k", b"m");
        let b = hmac_sha256(b"k", b"m");
        let c = hmac_sha256(b"k", b"n");
        assert!(verify_tag(&a, &b));
        assert!(!verify_tag(&a, &c));
    }
}
