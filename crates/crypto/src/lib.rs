//! From-scratch cryptographic substrate for resource-burning (RB) challenges.
//!
//! The paper's defenses are agnostic to the concrete resource-burning scheme
//! (Section 2: "Our results are agnostic to the type of challenges employed").
//! This crate provides a complete, dependency-free proof-of-work instantiation:
//!
//! * [`sha256`] — the SHA-256 compression function and streaming hasher,
//!   validated against the NIST/FIPS 180-4 test vectors;
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), used by the decentralized variant for
//!   authenticated committee channels;
//! * [`pow`] — `k`-hard resource-burning challenges: a challenge whose solution
//!   requires, in expectation, `k` units of hashing work and whose solutions
//!   "cannot be stolen or pre-computed" because they bind the challenger nonce
//!   and the solver identity;
//! * [`hex`] — small hex encode/decode helpers for display and tests.
//!
//! # Example
//!
//! ```
//! use sybil_crypto::pow::{Challenge, Solver};
//!
//! // The server issues an 8-hard challenge bound to the joining ID "alice".
//! let challenge = Challenge::new(b"server-nonce-1", b"alice", 8);
//! let solution = Solver::new().solve(&challenge);
//! assert!(challenge.verify(&solution));
//! // A different identity cannot reuse the solution.
//! let stolen = Challenge::new(b"server-nonce-1", b"mallory", 8);
//! assert!(!stolen.verify(&solution));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hex;
pub mod hmac;
pub mod pow;
pub mod sha256;

pub use hmac::{hmac_sha256, HmacSha256};
pub use pow::{Challenge, Solution, Solver, ZeroHardness};
pub use sha256::{Digest, Sha256};
