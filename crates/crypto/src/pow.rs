//! `k`-hard resource-burning challenges backed by SHA-256 proof-of-work.
//!
//! Paper Section 2: *"a `k`-hard RB challenge for any integer `k >= 1`
//! imposes a resource cost of `k` on the challenge solver"*, and solutions
//! *"cannot be stolen or pre-computed"*.
//!
//! We realize this as hash preimage search: a solution is a nonce `s` such
//! that `SHA256(challenge-nonce || solver-id || s)` has a 128-bit big-endian
//! prefix below `u128::MAX / k`. The expected number of hash evaluations is
//! exactly `k`, so hash evaluations are the burned resource unit:
//!
//! * binding the **challenge nonce** prevents pre-computation (the server
//!   draws a fresh nonce per challenge);
//! * binding the **solver identity** prevents theft (a solution found for
//!   one ID does not verify for another).
//!
//! Simulations use the abstract cost model (cost `k` for a `k`-hard
//! challenge, exactly as the paper's experiments do); this module is the
//! concrete backend a deployment would use, and the micro-benchmarks measure
//! its real cost scaling.

use crate::sha256::Sha256;

/// A resource-burning challenge of integer hardness `k >= 1`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Challenge {
    nonce: Vec<u8>,
    solver_id: Vec<u8>,
    hardness: u64,
}

/// A solution to a [`Challenge`]: the nonce found by the solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Solution {
    /// The solving nonce; feeding it back into the challenge hash meets the target.
    pub nonce: u64,
}

/// The one way a challenge construction can fail: hardness 0.
///
/// A 0-hard challenge is meaningless (its target would divide by zero), but
/// services that *compute* hardness from live load must be able to handle a
/// bad schedule without panicking — hence [`Challenge::try_new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZeroHardness;

impl std::fmt::Display for ZeroHardness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("challenge hardness must be >= 1 (a 0-hard challenge is meaningless)")
    }
}

impl std::error::Error for ZeroHardness {}

impl Challenge {
    /// Creates a challenge binding `nonce` (challenger randomness) and
    /// `solver_id` (the identity that must do the work) at the given
    /// `hardness`, or [`ZeroHardness`] if `hardness == 0`.
    ///
    /// This is the constructor for callers whose hardness is *computed* —
    /// e.g. a difficulty schedule driven by a live load estimate — where a
    /// bad schedule must surface as an error, not a panic.
    pub fn try_new(nonce: &[u8], solver_id: &[u8], hardness: u64) -> Result<Self, ZeroHardness> {
        if hardness == 0 {
            return Err(ZeroHardness);
        }
        Ok(Challenge { nonce: nonce.to_vec(), solver_id: solver_id.to_vec(), hardness })
    }

    /// Creates a challenge like [`Challenge::try_new`], clamping
    /// `hardness` up to the minimum of 1.
    ///
    /// A convenience for callers with literal or already-validated
    /// hardness; computed schedules should prefer [`Challenge::try_new`]
    /// so a zero surfaces instead of being silently rounded up.
    pub fn new(nonce: &[u8], solver_id: &[u8], hardness: u64) -> Self {
        Challenge::try_new(nonce, solver_id, hardness.max(1)).expect("hardness clamped to >= 1")
    }

    /// The hardness `k` of this challenge.
    pub fn hardness(&self) -> u64 {
        self.hardness
    }

    /// The target threshold: digests with a 128-bit prefix strictly below
    /// this value are valid solutions.
    pub fn target(&self) -> u128 {
        // floor(2^128 / k) so that success probability is ~1/k per attempt.
        u128::MAX / self.hardness as u128
    }

    fn attempt_digest(&self, solution_nonce: u64) -> u128 {
        let mut h = Sha256::new();
        h.update(&(self.nonce.len() as u64).to_be_bytes());
        h.update(&self.nonce);
        h.update(&(self.solver_id.len() as u64).to_be_bytes());
        h.update(&self.solver_id);
        h.update(&solution_nonce.to_be_bytes());
        h.finalize().prefix_u128()
    }

    /// Checks whether `solution` solves this challenge.
    pub fn verify(&self, solution: &Solution) -> bool {
        self.attempt_digest(solution.nonce) < self.target()
    }
}

/// A brute-force challenge solver.
///
/// Tracks the total number of hash evaluations performed, which is the
/// "resource burned" in the concrete cost model.
#[derive(Clone, Debug, Default)]
pub struct Solver {
    work: u64,
}

impl Solver {
    /// Creates a solver with a zeroed work counter.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Total hash evaluations performed by this solver across all calls.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Solves `challenge` by iterating nonces from 0.
    ///
    /// Deterministic given the challenge; the expected number of hash
    /// evaluations equals the challenge hardness.
    pub fn solve(&mut self, challenge: &Challenge) -> Solution {
        let target = challenge.target();
        let mut nonce = 0u64;
        loop {
            self.work += 1;
            if challenge.attempt_digest(nonce) < target {
                return Solution { nonce };
            }
            nonce = nonce.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_verify_roundtrip() {
        let c = Challenge::new(b"nonce", b"id-1", 4);
        let s = Solver::new().solve(&c);
        assert!(c.verify(&s));
    }

    #[test]
    fn solution_bound_to_identity() {
        let c1 = Challenge::new(b"n", b"alice", 8);
        let sol = Solver::new().solve(&c1);
        let c2 = Challenge::new(b"n", b"bob", 8);
        // With overwhelming probability the stolen solution fails; hardness 8
        // gives a 1/8 chance per nonce, so re-verify on failure tolerance:
        // this is deterministic for the fixed inputs used here.
        assert!(c1.verify(&sol));
        assert!(!c2.verify(&sol));
    }

    #[test]
    fn solution_bound_to_challenger_nonce() {
        let c1 = Challenge::new(b"nonce-a", b"alice", 8);
        let sol = Solver::new().solve(&c1);
        let c2 = Challenge::new(b"nonce-b", b"alice", 8);
        assert!(!c2.verify(&sol));
    }

    #[test]
    fn one_hard_challenge_is_free() {
        // hardness 1 => target = u128::MAX, every digest qualifies.
        let c = Challenge::new(b"x", b"y", 1);
        let mut solver = Solver::new();
        let s = solver.solve(&c);
        assert!(c.verify(&s));
        assert_eq!(solver.work(), 1, "first attempt must succeed at k=1");
    }

    #[test]
    fn expected_work_scales_with_hardness() {
        // Average work over many challenges should be within a factor ~2 of k.
        let k = 32u64;
        let mut solver = Solver::new();
        let trials = 60;
        for i in 0..trials as u64 {
            let c = Challenge::new(&i.to_be_bytes() as &[u8], b"scaling", k);
            let s = solver.solve(&c);
            assert!(c.verify(&s));
        }
        let avg = solver.work() as f64 / trials as f64;
        assert!(
            avg > k as f64 * 0.5 && avg < k as f64 * 2.0,
            "avg work {avg} not within factor 2 of k={k}"
        );
    }

    #[test]
    fn zero_hardness_is_fallible_not_fatal() {
        // try_new surfaces the error a computed schedule needs to see…
        assert_eq!(Challenge::try_new(b"a", b"b", 0), Err(ZeroHardness));
        assert!(!ZeroHardness.to_string().is_empty());
        // …while the literal-hardness convenience clamps to 1.
        let clamped = Challenge::new(b"a", b"b", 0);
        assert_eq!(clamped.hardness(), 1);
        assert_eq!(clamped, Challenge::try_new(b"a", b"b", 1).unwrap());
    }

    #[test]
    fn target_monotone_in_hardness() {
        let easy = Challenge::new(b"a", b"b", 2);
        let hard = Challenge::new(b"a", b"b", 1000);
        assert!(hard.target() < easy.target());
    }

    #[test]
    fn target_boundary_at_hardness_one() {
        // k = 1 must accept every digest: the target is the full range, so
        // the very first attempt succeeds (pinned by one_hard_challenge_is_free)
        // and no u128 prefix can miss it short of the all-ones digest.
        let c = Challenge::try_new(b"a", b"b", 1).unwrap();
        assert_eq!(c.target(), u128::MAX);
        // k = 2 halves the range — the boundary moves strictly down from k = 1.
        assert_eq!(Challenge::new(b"a", b"b", 2).target(), u128::MAX / 2);
    }

    /// Property: for a fixed (nonce, id), the work to solve is monotone
    /// non-decreasing in hardness — raising k shrinks the target, so the
    /// first qualifying attempt index can only move later. Deterministic
    /// (no tolerance) because the attempt sequence is fixed.
    #[test]
    fn solve_work_monotone_in_hardness() {
        for case in 0u64..8 {
            let nonce = case.to_be_bytes();
            let mut prev_work = 0u64;
            for k in [1u64, 2, 4, 16, 64, 256] {
                let c = Challenge::try_new(&nonce, b"monotone", k).unwrap();
                let mut solver = Solver::new();
                let s = solver.solve(&c);
                assert!(c.verify(&s));
                assert!(
                    solver.work() >= prev_work,
                    "case {case}: work {} at k={k} fell below {prev_work}",
                    solver.work()
                );
                prev_work = solver.work();
            }
        }
    }

    /// Property: a solution verifies under a *re-constructed* challenge
    /// (same nonce, id, hardness built from scratch) — the service-side
    /// pattern where the verifier never holds the solver's instance — and
    /// fails under any reconstruction that differs in one component.
    #[test]
    fn roundtrip_survives_challenge_reconstruction() {
        for i in 0u64..16 {
            let nonce = (i * 31).to_be_bytes();
            let id = (i * 131).to_be_bytes();
            let k = 1 + i % 7;
            let sol = Solver::new().solve(&Challenge::try_new(&nonce, &id, k).unwrap());
            let rebuilt = Challenge::try_new(&nonce, &id, k).unwrap();
            assert!(rebuilt.verify(&sol), "case {i}: rebuilt challenge rejected the solution");
            // Tightening the hardness far enough must reject: the digest is
            // fixed, so it falls out of a small enough target. k·2¹⁶ keeps
            // the acceptance odds per nonce at 2⁻¹⁶ — any accidental pass
            // here is a real bug, not noise, for these fixed inputs.
            let tightened = Challenge::try_new(&nonce, &id, k << 16).unwrap();
            if tightened.verify(&sol) {
                panic!("case {i}: solution survived a 2^16 hardness tightening");
            }
        }
    }
}
