//! `k`-hard resource-burning challenges backed by SHA-256 proof-of-work.
//!
//! Paper Section 2: *"a `k`-hard RB challenge for any integer `k >= 1`
//! imposes a resource cost of `k` on the challenge solver"*, and solutions
//! *"cannot be stolen or pre-computed"*.
//!
//! We realize this as hash preimage search: a solution is a nonce `s` such
//! that `SHA256(challenge-nonce || solver-id || s)` has a 128-bit big-endian
//! prefix below `u128::MAX / k`. The expected number of hash evaluations is
//! exactly `k`, so hash evaluations are the burned resource unit:
//!
//! * binding the **challenge nonce** prevents pre-computation (the server
//!   draws a fresh nonce per challenge);
//! * binding the **solver identity** prevents theft (a solution found for
//!   one ID does not verify for another).
//!
//! Simulations use the abstract cost model (cost `k` for a `k`-hard
//! challenge, exactly as the paper's experiments do); this module is the
//! concrete backend a deployment would use, and the micro-benchmarks measure
//! its real cost scaling.

use crate::sha256::Sha256;

/// A resource-burning challenge of integer hardness `k >= 1`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Challenge {
    nonce: Vec<u8>,
    solver_id: Vec<u8>,
    hardness: u64,
}

/// A solution to a [`Challenge`]: the nonce found by the solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Solution {
    /// The solving nonce; feeding it back into the challenge hash meets the target.
    pub nonce: u64,
}

impl Challenge {
    /// Creates a challenge binding `nonce` (challenger randomness) and
    /// `solver_id` (the identity that must do the work) at the given
    /// `hardness`.
    ///
    /// # Panics
    ///
    /// Panics if `hardness == 0`; a 0-hard challenge is meaningless.
    pub fn new(nonce: &[u8], solver_id: &[u8], hardness: u64) -> Self {
        assert!(hardness >= 1, "challenge hardness must be >= 1");
        Challenge { nonce: nonce.to_vec(), solver_id: solver_id.to_vec(), hardness }
    }

    /// The hardness `k` of this challenge.
    pub fn hardness(&self) -> u64 {
        self.hardness
    }

    /// The target threshold: digests with a 128-bit prefix strictly below
    /// this value are valid solutions.
    pub fn target(&self) -> u128 {
        // floor(2^128 / k) so that success probability is ~1/k per attempt.
        u128::MAX / self.hardness as u128
    }

    fn attempt_digest(&self, solution_nonce: u64) -> u128 {
        let mut h = Sha256::new();
        h.update(&(self.nonce.len() as u64).to_be_bytes());
        h.update(&self.nonce);
        h.update(&(self.solver_id.len() as u64).to_be_bytes());
        h.update(&self.solver_id);
        h.update(&solution_nonce.to_be_bytes());
        h.finalize().prefix_u128()
    }

    /// Checks whether `solution` solves this challenge.
    pub fn verify(&self, solution: &Solution) -> bool {
        self.attempt_digest(solution.nonce) < self.target()
    }
}

/// A brute-force challenge solver.
///
/// Tracks the total number of hash evaluations performed, which is the
/// "resource burned" in the concrete cost model.
#[derive(Clone, Debug, Default)]
pub struct Solver {
    work: u64,
}

impl Solver {
    /// Creates a solver with a zeroed work counter.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Total hash evaluations performed by this solver across all calls.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Solves `challenge` by iterating nonces from 0.
    ///
    /// Deterministic given the challenge; the expected number of hash
    /// evaluations equals the challenge hardness.
    pub fn solve(&mut self, challenge: &Challenge) -> Solution {
        let target = challenge.target();
        let mut nonce = 0u64;
        loop {
            self.work += 1;
            if challenge.attempt_digest(nonce) < target {
                return Solution { nonce };
            }
            nonce = nonce.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_verify_roundtrip() {
        let c = Challenge::new(b"nonce", b"id-1", 4);
        let s = Solver::new().solve(&c);
        assert!(c.verify(&s));
    }

    #[test]
    fn solution_bound_to_identity() {
        let c1 = Challenge::new(b"n", b"alice", 8);
        let sol = Solver::new().solve(&c1);
        let c2 = Challenge::new(b"n", b"bob", 8);
        // With overwhelming probability the stolen solution fails; hardness 8
        // gives a 1/8 chance per nonce, so re-verify on failure tolerance:
        // this is deterministic for the fixed inputs used here.
        assert!(c1.verify(&sol));
        assert!(!c2.verify(&sol));
    }

    #[test]
    fn solution_bound_to_challenger_nonce() {
        let c1 = Challenge::new(b"nonce-a", b"alice", 8);
        let sol = Solver::new().solve(&c1);
        let c2 = Challenge::new(b"nonce-b", b"alice", 8);
        assert!(!c2.verify(&sol));
    }

    #[test]
    fn one_hard_challenge_is_free() {
        // hardness 1 => target = u128::MAX, every digest qualifies.
        let c = Challenge::new(b"x", b"y", 1);
        let mut solver = Solver::new();
        let s = solver.solve(&c);
        assert!(c.verify(&s));
        assert_eq!(solver.work(), 1, "first attempt must succeed at k=1");
    }

    #[test]
    fn expected_work_scales_with_hardness() {
        // Average work over many challenges should be within a factor ~2 of k.
        let k = 32u64;
        let mut solver = Solver::new();
        let trials = 60;
        for i in 0..trials as u64 {
            let c = Challenge::new(&i.to_be_bytes() as &[u8], b"scaling", k);
            let s = solver.solve(&c);
            assert!(c.verify(&s));
        }
        let avg = solver.work() as f64 / trials as f64;
        assert!(
            avg > k as f64 * 0.5 && avg < k as f64 * 2.0,
            "avg work {avg} not within factor 2 of k={k}"
        );
    }

    #[test]
    #[should_panic(expected = "hardness")]
    fn zero_hardness_panics() {
        let _ = Challenge::new(b"a", b"b", 0);
    }

    #[test]
    fn target_monotone_in_hardness() {
        let easy = Challenge::new(b"a", b"b", 2);
        let hard = Challenge::new(b"a", b"b", 1000);
        assert!(hard.target() < easy.target());
    }
}
