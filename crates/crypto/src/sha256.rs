//! A from-scratch implementation of SHA-256 (FIPS 180-4).
//!
//! The implementation favors clarity over raw speed but is still fast enough
//! to solve millions of hash units per second, which is what the
//! [`crate::pow`] challenge backend needs.

/// A 32-byte SHA-256 digest.
///
/// Digests order lexicographically, which [`crate::pow`] exploits: a
/// `k`-hard challenge asks for a digest below a target value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Returns the digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Interprets the first 16 bytes as a big-endian `u128`.
    ///
    /// This prefix is what proof-of-work hardness comparisons use: a uniform
    /// digest yields a uniform `u128` prefix, so `prefix < u128::MAX / k`
    /// holds with probability `1/k`.
    pub fn prefix_u128(&self) -> u128 {
        let mut b = [0u8; 16];
        b.copy_from_slice(&self.0[..16]);
        u128::from_be_bytes(b)
    }

    /// Parses a digest from a 64-character hex string.
    ///
    /// Returns `None` if the string is not exactly 64 hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        let bytes = crate::hex::decode(s)?;
        let arr: [u8; 32] = bytes.try_into().ok()?;
        Some(Digest(arr))
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", crate::hex::encode(&self.0))
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&crate::hex::encode(&self.0))
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// SHA-256 round constants: the first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes (FIPS 180-4 Section 4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 Section 5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// A streaming SHA-256 hasher.
///
/// # Example
///
/// ```
/// use sybil_crypto::sha256::Sha256;
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// let digest = hasher.finalize();
/// assert_eq!(digest, Sha256::digest(b"hello world"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (used for the length suffix in padding).
    len: u64,
    /// Partially filled block.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, len: 0, buf: [0; 64], buf_len: 0 }
    }

    /// One-shot convenience: hash `data` and return the digest.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the computation and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Append the 0x80 marker, zero padding, and the 64-bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
            // `update` counts padding bytes into `len`, so restore it below.
        }
        // The padding bytes should not count toward the message length; we
        // already captured `bit_len`, so just write the length block now.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_digest(data: &[u8]) -> String {
        Sha256::digest(data).to_string()
    }

    #[test]
    fn nist_empty_string() {
        assert_eq!(
            hex_digest(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            hex_digest(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block_message() {
        assert_eq!(
            hex_digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex_digest(&data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn fox_vectors() {
        assert_eq!(
            hex_digest(b"The quick brown fox jumps over the lazy dog"),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
        );
        assert_eq!(
            hex_digest(b"The quick brown fox jumps over the lazy dog."),
            "ef537f25c895bfa782526529a9b63d97aa631564d5d789c2b765448c8635fb6c"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_all_split_points() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let expect = Sha256::digest(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn streaming_many_small_updates() {
        let data = vec![7u8; 1000];
        let mut h = Sha256::new();
        for b in &data {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn boundary_lengths_hash_consistently() {
        // Lengths around the 55/56/64-byte padding boundaries are the classic
        // place for padding bugs; check self-consistency of streaming.
        for len in [0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129] {
            let data = vec![0xabu8; len];
            let mut h = Sha256::new();
            let mid = len / 2;
            h.update(&data[..mid]);
            h.update(&data[mid..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "len {len}");
        }
    }

    #[test]
    fn digest_prefix_is_big_endian() {
        let d = Digest([
            0x01, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, //
            0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        ]);
        assert_eq!(d.prefix_u128(), 1u128 << 120);
    }

    #[test]
    fn digest_from_hex_roundtrip() {
        let d = Sha256::digest(b"roundtrip");
        let parsed = Digest::from_hex(&d.to_string()).unwrap();
        assert_eq!(parsed, d);
        assert!(Digest::from_hex("xyz").is_none());
        assert!(Digest::from_hex("aabb").is_none());
    }

    #[test]
    fn digest_debug_is_nonempty_and_ordered() {
        let a = Sha256::digest(b"a");
        assert!(!format!("{a:?}").is_empty());
        let b = Sha256::digest(b"b");
        // Ordering is lexicographic on bytes; just check it is total/consistent.
        assert_eq!(a.cmp(&b), a.as_bytes().cmp(b.as_bytes()));
    }
}
