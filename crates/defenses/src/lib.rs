//! Baseline Sybil defenses and evaluation constructs from the paper.
//!
//! * [`variants`] — named constructors for everything in the plots: ERGO,
//!   CCOM, ERGO-CH1, ERGO-CH2, ERGO-SF(92/98);
//! * [`sybilcontrol`] — the SybilControl baseline (uncoordinated recurring
//!   tests every 0.5 s);
//! * [`remp`] — the REMP baseline (constant `(1−κ)Tmax/κ` spend rate);
//! * [`lower_bound`] — the Theorem 3 B1–B3 algorithm family and the
//!   adversary that forces `Ω(√(T·J) + J)` spending.
//!
//! # Example
//!
//! ```
//! use sybil_defenses::lower_bound::{run_lower_bound, CostFunction};
//!
//! let out = run_lower_bound(CostFunction::RatioTotalGood, 1e6, 2.0, 10_000, 1.0 / 11.0, 1000.0);
//! // Theorem 3: no B1-B3 algorithm beats Ω(√(T·J) + J).
//! assert!(out.spend_rate >= 0.5 * out.bound);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lower_bound;
pub mod remp;
pub mod sybilcontrol;
pub mod variants;

pub use lower_bound::{run_lower_bound, CostFunction, LowerBoundOutcome};
pub use remp::{Remp, RempConfig};
pub use sybilcontrol::{SybilControl, SybilControlConfig};
pub use variants::{ccom, ergo, ergo_ch1, ergo_ch2, ergo_sf, ergo_sf_full};
