//! The Theorem 3 lower bound (paper Section 11).
//!
//! Theorem 3: any algorithm with properties **B1–B3** —
//!
//! * **B1** — entrance fees set by a cost function `f(J_B, J)` of the bad
//!   and good join rates;
//! * **B2** — iterations delimited by `a + d ≥ δn` (arrivals + departures
//!   reaching a δ-fraction of membership);
//! * **B3** — every ID pays `Ω(1)` at each iteration end to remain;
//!
//! — can be forced to spend at rate `Ω(√(T·J) + J)` by an adversary that
//! joins Sybil IDs uniformly at the maximum affordable rate
//! (`J_B = T / f(J_B, J)`, a fixed point in `J_B`) and lets them die at
//! each purge.
//!
//! [`run_lower_bound`] simulates exactly that strategy against a pluggable
//! B1–B3 algorithm and reports the measured spend rate next to the
//! `√(T·J) + J` bound, so the benchmark can sweep cost functions and show
//! the bound is respected by all of them — including Ergo-like
//! (`f = J_B/J`), CCom-like (`f = 1`), and over-aggressive choices.

/// The entrance cost function `f(J_B, J)` of a B1 algorithm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CostFunction {
    /// Constant entrance fee (CCom's choice, `f = c`).
    Constant(f64),
    /// Ergo's choice: the total-to-good join-rate ratio `f = (J_B + J)/J`.
    RatioTotalGood,
    /// Geometric middle ground `f = √(J_B/J) + 1`.
    SqrtRatio,
    /// Aggressive linear-in-attack pricing `f = c·J_B + 1`.
    ScaledBad(f64),
}

impl CostFunction {
    /// Evaluates `f(J_B, J)`.
    pub fn eval(&self, j_bad: f64, j_good: f64) -> f64 {
        let j = j_good.max(1e-12);
        match *self {
            CostFunction::Constant(c) => c.max(1e-12),
            CostFunction::RatioTotalGood => (j_bad + j) / j,
            CostFunction::SqrtRatio => (j_bad / j).sqrt() + 1.0,
            CostFunction::ScaledBad(c) => c * j_bad + 1.0,
        }
    }

    /// Solves the Theorem 3 fixed point `J_B = T / f(J_B, J)` by bisection.
    ///
    /// `f` is non-decreasing in `J_B` for all variants here, so
    /// `g(J_B) = J_B·f(J_B, J) − T` is increasing and has a unique root.
    pub fn adversary_rate(&self, t: f64, j_good: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let g = |jb: f64| jb * self.eval(jb, j_good) - t;
        let mut lo = 0.0f64;
        let mut hi = t.max(1.0);
        while g(hi) < 0.0 {
            hi *= 2.0;
        }
        for _ in 0..200 {
            let mid = (lo + hi) / 2.0;
            if g(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo + hi) / 2.0
    }

    /// Display name for tables.
    pub fn label(&self) -> String {
        match *self {
            CostFunction::Constant(c) => format!("f=const({c})"),
            CostFunction::RatioTotalGood => "f=(J_B+J)/J (Ergo)".into(),
            CostFunction::SqrtRatio => "f=sqrt(J_B/J)+1".into(),
            CostFunction::ScaledBad(c) => format!("f={c}*J_B+1"),
        }
    }
}

/// Outcome of one lower-bound run.
#[derive(Clone, Debug, PartialEq)]
pub struct LowerBoundOutcome {
    /// Cost function label.
    pub label: String,
    /// Adversary spend rate `T`.
    pub t: f64,
    /// Good join rate `J`.
    pub j: f64,
    /// Fixed-point Sybil join rate `J_B`.
    pub j_bad: f64,
    /// Measured algorithm (good-ID) spend rate.
    pub spend_rate: f64,
    /// The Theorem 3 bound `√(T·J) + J`.
    pub bound: f64,
    /// `spend_rate / bound` — Theorem 3 says this is `Ω(1)`.
    pub ratio: f64,
}

/// Simulates a B1–B3 algorithm against the Theorem 3 adversary.
///
/// Good IDs join at rate `j`; Sybil IDs join at the fixed-point rate
/// `J_B = T/f(J_B, J)` and abandon at purges; iterations end when arrivals
/// reach `δ·n`; at each iteration end every remaining ID pays 1 (B3).
///
/// # Panics
///
/// Panics if rates or parameters are non-positive.
pub fn run_lower_bound(
    f: CostFunction,
    t: f64,
    j: f64,
    n0: u64,
    delta: f64,
    horizon: f64,
) -> LowerBoundOutcome {
    assert!(j > 0.0 && horizon > 0.0 && delta > 0.0 && n0 > 0);
    let j_bad = f.adversary_rate(t, j);
    let fee = f.eval(j_bad, j);

    let mut good_spend = 0.0f64;
    let mut n_good = n0 as f64;
    let mut now = 0.0f64;
    // Event-free closed-iteration simulation: within an iteration the join
    // mix is stationary, so we can step iteration by iteration.
    while now < horizon {
        let n = n_good; // Sybil population is zero right after each purge
        let events_needed = (delta * n).max(1.0);
        let total_rate = j + j_bad;
        let iter_len = events_needed / total_rate;
        let step = iter_len.min(horizon - now);
        let frac = step / iter_len;
        // B1: good entrance fees over the iteration.
        good_spend += fee * j * step;
        n_good += j * step;
        if frac >= 1.0 {
            // B3: every good ID pays 1 at the iteration end; Sybil IDs
            // abandon (the Theorem 3 adversary strategy).
            good_spend += n_good;
        }
        now += step;
    }

    let spend_rate = good_spend / horizon;
    let bound = (t * j).sqrt() + j;
    LowerBoundOutcome {
        label: f.label(),
        t,
        j,
        j_bad,
        spend_rate,
        bound,
        ratio: spend_rate / bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_solves_jb_times_fee_equals_t() {
        for f in [
            CostFunction::Constant(1.0),
            CostFunction::RatioTotalGood,
            CostFunction::SqrtRatio,
            CostFunction::ScaledBad(0.5),
        ] {
            let t = 1e5;
            let j = 2.0;
            let jb = f.adversary_rate(t, j);
            let residual = (jb * f.eval(jb, j) - t).abs() / t;
            assert!(residual < 1e-6, "{}: residual {residual}", f.label());
        }
    }

    #[test]
    fn ergo_cost_function_gives_sqrt_jb() {
        // f = (J_B+J)/J ⇒ J_B(J_B+J)/J = T ⇒ J_B ≈ √(TJ) for T ≫ J.
        let jb = CostFunction::RatioTotalGood.adversary_rate(1e8, 1.0);
        assert!((jb - 1e4).abs() / 1e4 < 0.01, "jb {jb}");
    }

    #[test]
    fn all_cost_functions_respect_the_bound() {
        // Theorem 3: spend ≥ c·(√(TJ)+J). With δ = 1/11 the purge term alone
        // gives spend ≳ 11·J_B ≥ 11·√(TJ) for f ≤ (J_B+J)/J.
        for f in [
            CostFunction::Constant(1.0),
            CostFunction::RatioTotalGood,
            CostFunction::SqrtRatio,
            CostFunction::ScaledBad(0.1),
        ] {
            for t in [1e2, 1e4, 1e6] {
                let out = run_lower_bound(f, t, 2.0, 10_000, 1.0 / 11.0, 10_000.0);
                assert!(out.ratio > 0.5, "{} at T={t}: ratio {}", out.label, out.ratio);
            }
        }
    }

    #[test]
    fn zero_attack_costs_order_j() {
        let out =
            run_lower_bound(CostFunction::RatioTotalGood, 0.0, 2.0, 10_000, 1.0 / 11.0, 10_000.0);
        assert_eq!(out.j_bad, 0.0);
        // bound = J; spend is entrance (≈J) plus occasional purges.
        assert!(out.ratio >= 1.0, "ratio {}", out.ratio);
        assert!(out.spend_rate < 100.0 * out.j, "spend {}", out.spend_rate);
    }

    #[test]
    fn ergo_choice_is_near_optimal_among_family() {
        // At large T, the Ergo cost function should be within a constant of
        // the best of the family, while f = const is far worse.
        let t = 1e6;
        let ergo =
            run_lower_bound(CostFunction::RatioTotalGood, t, 2.0, 10_000, 1.0 / 11.0, 10_000.0);
        let constant =
            run_lower_bound(CostFunction::Constant(1.0), t, 2.0, 10_000, 1.0 / 11.0, 10_000.0);
        assert!(
            constant.spend_rate > 10.0 * ergo.spend_rate,
            "const {} vs ergo {}",
            constant.spend_rate,
            ergo.spend_rate
        );
    }
}
