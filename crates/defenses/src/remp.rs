//! The REMP baseline (Rowaihy, Enck, McDaniel, La Porta — paper reference 99).
//!
//! Each ID solves a challenge to join and then recurring challenges every
//! `W` seconds, sized so that an adversary with maximum spend rate `Tmax`
//! cannot hold a Sybil majority: per Equation (4) of that paper (Equation 13 in
//! the paper), `L/W = Tmax/(κ·N)`, making the total good spend rate
//!
//! ```text
//! A_REMP = (1−κ)·N·L/W = (1−κ)·Tmax/κ
//! ```
//!
//! — a *constant*, paid whether or not an attack is underway, and valid only
//! for `T ≤ Tmax`. The paper runs REMP with `Tmax = 10⁷`.

use sybil_sim::cost::Cost;
use sybil_sim::defense::{
    Admission, BatchAdmission, BatchStop, Defense, DefenseEvent, PeriodicReport, PurgeReport,
};
use sybil_sim::time::Time;

/// Configuration for [`Remp`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RempConfig {
    /// The maximum adversary spend rate the deployment provisions against
    /// (paper: 10⁷).
    pub t_max: f64,
    /// Adversary power fraction κ (paper: 1/18).
    pub kappa: f64,
    /// Seconds between recurring challenges.
    pub period: f64,
}

impl Default for RempConfig {
    fn default() -> Self {
        RempConfig { t_max: 1e7, kappa: 1.0 / 18.0, period: 1.0 }
    }
}

/// The REMP defense.
#[derive(Clone, Debug)]
pub struct Remp {
    cfg: RempConfig,
    n_good: u64,
    n_bad: u64,
    next_charge: Time,
}

impl Remp {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `t_max`/`period` or `kappa` outside `(0, 1)`.
    pub fn new(cfg: RempConfig) -> Self {
        assert!(cfg.t_max > 0.0 && cfg.period > 0.0);
        assert!(cfg.kappa > 0.0 && cfg.kappa < 1.0);
        Remp { cfg, n_good: 0, n_bad: 0, next_charge: Time::ZERO }
    }

    /// The analytic good spend rate `(1−κ)·Tmax/κ` (Equation 13).
    pub fn analytic_good_rate(&self) -> f64 {
        (1.0 - self.cfg.kappa) * self.cfg.t_max / self.cfg.kappa
    }

    /// True if REMP's minority guarantee covers adversary spend rate `t`.
    pub fn guarantee_covers(&self, t: f64) -> bool {
        t <= self.cfg.t_max
    }
}

impl Default for Remp {
    fn default() -> Self {
        Self::new(RempConfig::default())
    }
}

impl Defense for Remp {
    fn name(&self) -> String {
        format!("REMP-{:.0e}", self.cfg.t_max)
    }

    fn init(&mut self, now: Time, n_good: u64, n_bad: u64) -> Cost {
        self.n_good = n_good;
        self.n_bad = n_bad;
        self.next_charge = now + self.cfg.period;
        Cost::ONE
    }

    /// Joining costs the same `L` as one recurring-challenge period: in
    /// Rowaihy et al.'s scheme newcomers prove the same work admission
    /// control demands of members. This is what keeps `N` stable and the
    /// cost line flat under Sybil floods.
    fn quote(&self, now: Time) -> Cost {
        self.periodic_cost_per_member(now)
    }

    fn good_join(&mut self, now: Time) -> Admission {
        let cost = self.quote(now);
        self.n_good += 1;
        Admission::Admitted { cost }
    }

    fn good_depart(&mut self, _now: Time, _joined_at: Time) {
        self.n_good = self.n_good.saturating_sub(1);
    }

    fn bad_join_batch(&mut self, now: Time, budget: Cost, max_attempts: u64) -> BatchAdmission {
        let join_cost = self.quote(now).value().max(f64::MIN_POSITIVE);
        let affordable = (budget.value() / join_cost).floor() as u64;
        let n = affordable.min(max_attempts);
        self.n_bad += n;
        BatchAdmission {
            admitted: n,
            attempts: n,
            spent: Cost(n as f64 * join_cost),
            stop: if n == max_attempts { BatchStop::MaxAttempts } else { BatchStop::Budget },
        }
    }

    fn bad_depart(&mut self, _now: Time, n: u64) -> u64 {
        let d = n.min(self.n_bad);
        self.n_bad -= d;
        d
    }

    fn purge_due(&self, _now: Time) -> bool {
        false
    }

    fn purge(&mut self, _now: Time, _retain_bad: u64) -> PurgeReport {
        PurgeReport {
            good_cost: Cost::ZERO,
            adv_cost: Cost::ZERO,
            bad_removed: 0,
            skipped: true,
            good_charged: 0,
        }
    }

    fn next_periodic(&self) -> Option<Time> {
        Some(self.next_charge)
    }

    fn periodic_cost_per_member(&self, _now: Time) -> Cost {
        // L = Tmax·W/(κ·N): sized so holding κN Sybil IDs costs Tmax.
        let n = self.n_members().max(1) as f64;
        Cost(self.cfg.t_max * self.cfg.period / (self.cfg.kappa * n))
    }

    fn periodic_apply(&mut self, now: Time, bad_retained: u64) -> PeriodicReport {
        let per_id = self.periodic_cost_per_member(now).value();
        let dropped = self.n_bad - bad_retained.min(self.n_bad);
        self.n_bad = bad_retained.min(self.n_bad);
        self.next_charge = now + self.cfg.period;
        PeriodicReport {
            good_cost: Cost(self.n_good as f64 * per_id),
            bad_dropped: dropped,
            good_charged: self.n_good,
        }
    }

    fn n_members(&self) -> u64 {
        self.n_good + self.n_bad
    }

    fn n_bad(&self) -> u64 {
        self.n_bad
    }

    fn drain_events_into(&mut self, _out: &mut Vec<DefenseEvent>) {
        // REMP logs no events; nothing to drain, nothing to allocate.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sybil_sim::adversary::NullAdversary;
    use sybil_sim::engine::{SimConfig, Simulation};
    use sybil_sim::workload::Workload;

    #[test]
    fn analytic_rate_matches_equation_13() {
        let r = Remp::default();
        // (1 − 1/18)·18·10⁷ = 17·10⁷.
        assert!((r.analytic_good_rate() - 17.0e7).abs() < 1.0);
    }

    #[test]
    fn simulated_rate_matches_analytic_constant() {
        // Small Tmax so the numbers stay readable: Tmax = 1000, κ = 1/18.
        // With no Sybil members every member is good, so the measured rate
        // is Tmax/κ; under attack a κ-fraction of that capacity is Sybil-
        // funded, recovering the paper's (1−κ)·Tmax/κ. Either way it is a
        // constant independent of T.
        let cfg = RempConfig { t_max: 1000.0, ..RempConfig::default() };
        let remp = Remp::new(cfg);
        let analytic_no_attack = cfg.t_max / cfg.kappa;
        let w = Workload::new(vec![Time(1e9); 500], vec![]);
        let sim_cfg = SimConfig { horizon: Time(100.0), ..SimConfig::default() };
        let rep = Simulation::new(sim_cfg, remp, NullAdversary, w).run();
        let measured = rep.ledger.good_periodic().value() / 100.0;
        assert!(
            (measured - analytic_no_attack).abs() / analytic_no_attack < 0.05,
            "measured {measured} vs analytic {analytic_no_attack}"
        );
    }

    #[test]
    fn guarantee_cutoff() {
        let r = Remp::default();
        assert!(r.guarantee_covers(1e7));
        assert!(!r.guarantee_covers(1.1e7));
    }

    #[test]
    fn cost_independent_of_population() {
        // The constant A = (1−κ)Tmax/κ must not depend on N: doubling the
        // population halves the per-ID charge.
        let mut r = Remp::new(RempConfig { t_max: 900.0, ..RempConfig::default() });
        r.init(Time::ZERO, 100, 0);
        let c100 = r.periodic_cost_per_member(Time(1.0)).value();
        for _ in 0..100 {
            r.good_join(Time(1.0));
        }
        let c200 = r.periodic_cost_per_member(Time(1.0)).value();
        assert!((c100 / c200 - 2.0).abs() < 1e-9, "{c100} vs {c200}");
    }
}
