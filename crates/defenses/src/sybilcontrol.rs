//! The SybilControl baseline (Li, Mittal, Caesar, Borisov — paper reference 67).
//!
//! Each ID solves a challenge to join, and every 0.5 seconds each ID tests
//! its neighbors with resource-burning challenges, dropping non-responders.
//! The tests are uncoordinated, so every live ID continuously burns
//! resources regardless of whether the system is under attack — the
//! always-on cost the paper contrasts Ergo against.
//!
//! The adversary keeps a Sybil ID alive by paying its test cost each period,
//! so the sustainable Sybil population scales linearly with `T`: the defense
//! cannot bound the bad fraction once
//! `T ≥ (test cost rate) × (good population) / 5` (bad/(bad+good) ≥ 1/6).
//! Figure 8 cuts the SybilControl curve at exactly that point.

use sybil_sim::cost::Cost;
use sybil_sim::defense::{
    Admission, BatchAdmission, BatchStop, Defense, DefenseEvent, PeriodicReport, PurgeReport,
};
use sybil_sim::time::Time;

/// Configuration for [`SybilControl`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SybilControlConfig {
    /// Seconds between test rounds (paper: 0.5 s).
    pub test_period: f64,
    /// Challenges each ID solves per test round (its own liveness proofs
    /// toward its neighbors; 1 with aggregated per-neighbor proofs).
    pub tests_per_round: f64,
    /// Entrance-challenge hardness.
    pub join_cost: f64,
}

impl Default for SybilControlConfig {
    fn default() -> Self {
        SybilControlConfig { test_period: 0.5, tests_per_round: 1.0, join_cost: 1.0 }
    }
}

/// The SybilControl defense.
#[derive(Clone, Debug)]
pub struct SybilControl {
    cfg: SybilControlConfig,
    n_good: u64,
    n_bad: u64,
    next_test: Time,
}

impl SybilControl {
    /// Creates an instance with the given configuration.
    pub fn new(cfg: SybilControlConfig) -> Self {
        assert!(cfg.test_period > 0.0 && cfg.tests_per_round >= 0.0 && cfg.join_cost >= 0.0);
        SybilControl { cfg, n_good: 0, n_bad: 0, next_test: Time::ZERO }
    }

    /// The spend rate (per second) this defense imposes on each live ID.
    pub fn per_id_rate(&self) -> f64 {
        self.cfg.tests_per_round / self.cfg.test_period
    }

    /// The adversary spend rate above which a `bound` bad fraction cannot be
    /// enforced (e.g. `1/6`), for a good population `n_good`.
    pub fn breakdown_rate(&self, n_good: u64, bound: f64) -> f64 {
        // Sustainable bad population b satisfies b·rate = T; fraction bound:
        // b/(b+g) < bound ⟺ b < g·bound/(1−bound).
        self.per_id_rate() * n_good as f64 * bound / (1.0 - bound)
    }
}

impl Default for SybilControl {
    fn default() -> Self {
        Self::new(SybilControlConfig::default())
    }
}

impl Defense for SybilControl {
    fn name(&self) -> String {
        "SybilControl".into()
    }

    fn init(&mut self, now: Time, n_good: u64, n_bad: u64) -> Cost {
        self.n_good = n_good;
        self.n_bad = n_bad;
        self.next_test = now + self.cfg.test_period;
        Cost(self.cfg.join_cost)
    }

    fn quote(&self, _now: Time) -> Cost {
        Cost(self.cfg.join_cost)
    }

    fn good_join(&mut self, _now: Time) -> Admission {
        self.n_good += 1;
        Admission::Admitted { cost: Cost(self.cfg.join_cost) }
    }

    fn good_depart(&mut self, _now: Time, _joined_at: Time) {
        self.n_good = self.n_good.saturating_sub(1);
    }

    fn bad_join_batch(&mut self, _now: Time, budget: Cost, max_attempts: u64) -> BatchAdmission {
        let affordable = if self.cfg.join_cost > 0.0 {
            (budget.value() / self.cfg.join_cost).floor() as u64
        } else {
            max_attempts
        };
        let n = affordable.min(max_attempts);
        self.n_bad += n;
        BatchAdmission {
            admitted: n,
            attempts: n,
            spent: Cost(n as f64 * self.cfg.join_cost),
            stop: if n == max_attempts { BatchStop::MaxAttempts } else { BatchStop::Budget },
        }
    }

    fn bad_depart(&mut self, _now: Time, n: u64) -> u64 {
        let d = n.min(self.n_bad);
        self.n_bad -= d;
        d
    }

    fn purge_due(&self, _now: Time) -> bool {
        false
    }

    fn purge(&mut self, _now: Time, retain_bad: u64) -> PurgeReport {
        // SybilControl has no global purge; nothing happens.
        let retain = retain_bad.min(self.n_bad);
        PurgeReport {
            good_cost: Cost::ZERO,
            adv_cost: Cost(retain as f64) * 0.0,
            bad_removed: 0,
            skipped: true,
            good_charged: 0,
        }
    }

    fn next_periodic(&self) -> Option<Time> {
        Some(self.next_test)
    }

    fn periodic_cost_per_member(&self, _now: Time) -> Cost {
        Cost(self.cfg.tests_per_round)
    }

    fn periodic_apply(&mut self, now: Time, bad_retained: u64) -> PeriodicReport {
        let dropped = self.n_bad - bad_retained.min(self.n_bad);
        self.n_bad = bad_retained.min(self.n_bad);
        self.next_test = now + self.cfg.test_period;
        PeriodicReport {
            good_cost: Cost(self.n_good as f64 * self.cfg.tests_per_round),
            bad_dropped: dropped,
            good_charged: self.n_good,
        }
    }

    fn n_members(&self) -> u64 {
        self.n_good + self.n_bad
    }

    fn n_bad(&self) -> u64 {
        self.n_bad
    }

    fn drain_events_into(&mut self, _out: &mut Vec<DefenseEvent>) {
        // SybilControl logs no events; nothing to drain, nothing to allocate.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sybil_sim::adversary::{BudgetJoiner, FractionKeeper, NullAdversary};
    use sybil_sim::engine::{SimConfig, Simulation};
    use sybil_sim::workload::Workload;

    #[test]
    fn periodic_cost_is_always_on() {
        // 100 good IDs, no attack, 100 s: 2 tests/s each → ~20 000 periodic.
        let w = Workload::new(vec![Time(1e9); 100], vec![]);
        let cfg = SimConfig { horizon: Time(100.0), ..SimConfig::default() };
        let r = Simulation::new(cfg, SybilControl::default(), NullAdversary, w).run();
        let periodic = r.ledger.good_periodic().value();
        assert!((periodic - 20_000.0).abs() < 300.0, "periodic {periodic}");
    }

    #[test]
    fn adversary_can_sustain_bad_ids_by_paying_tests() {
        // A maintaining adversary holds a 2% Sybil fraction by funding their
        // recurring tests; SybilControl never removes paying members.
        let w = Workload::new(vec![Time(1e9); 1000], vec![]);
        let cfg = SimConfig { horizon: Time(50.0), adv_rate: 100.0, ..SimConfig::default() };
        let r =
            Simulation::new(cfg, SybilControl::default(), FractionKeeper::new(0.02, 0.0), w).run();
        assert!(r.final_bad >= 15 && r.final_bad <= 25, "sustained {} Sybil IDs", r.final_bad);
        // Upkeep was charged to the adversary, not the good IDs.
        assert!(r.ledger.adversary_periodic().value() > 0.0);
    }

    #[test]
    fn join_only_adversary_cannot_hold_membership() {
        // The Figure-8 adversary spends only on entrance challenges; under
        // SybilControl its IDs die within one 0.5 s test round.
        let w = Workload::new(vec![Time(1e9); 1000], vec![]);
        let cfg = SimConfig { horizon: Time(100.0), adv_rate: 50.0, ..SimConfig::default() };
        let r = Simulation::new(cfg, SybilControl::default(), BudgetJoiner::new(50.0), w).run();
        assert!(r.bad_joins_admitted > 1000, "joined {}", r.bad_joins_admitted);
        assert!(r.final_bad < 60, "held {}", r.final_bad);
    }

    #[test]
    fn breakdown_rate_formula() {
        let sc = SybilControl::default();
        // 2 RB/s per ID, 10 000 good, bound 1/6: T* = 2·10⁴/5 = 4000.
        let t_star = sc.breakdown_rate(10_000, 1.0 / 6.0);
        assert!((t_star - 4000.0).abs() < 1e-9, "{t_star}");
        assert_eq!(sc.per_id_rate(), 2.0);
    }

    #[test]
    fn join_and_depart_bookkeeping() {
        let mut sc = SybilControl::default();
        sc.init(Time::ZERO, 10, 0);
        assert!(sc.good_join(Time(1.0)).is_admitted());
        assert_eq!(sc.n_members(), 11);
        sc.good_depart(Time(2.0), Time(1.0));
        assert_eq!(sc.n_good(), 10);
        let b = sc.bad_join_batch(Time(3.0), Cost(7.9), u64::MAX);
        assert_eq!(b.admitted, 7);
        assert_eq!(sc.bad_depart(Time(4.0), 3), 3);
        assert_eq!(sc.n_bad(), 4);
    }
}
