//! Named constructors for every algorithm in the paper's evaluation
//! (Sections 10.1 and 10.3).

use ergo_core::ergo::Ergo;
use ergo_core::gate::ClassifierGate;
use ergo_core::params::{ErgoConfig, Heuristics};

/// Plain Ergo as specified in Figure 4 ("ERGO" in the plots).
pub fn ergo() -> Ergo {
    Ergo::new(ErgoConfig::default())
}

/// The CCom baseline: Ergo's purges with constant entrance cost 1
/// ("CCOM" in the plots; Gupta, Saia, Young, reference 98).
pub fn ccom() -> Ergo {
    Ergo::new(ErgoConfig::ccom())
}

/// ERGO-CH1: Heuristics 1 (estimate/iteration alignment) and 2
/// (symmetric-difference purge trigger).
pub fn ergo_ch1() -> Ergo {
    Ergo::new(ErgoConfig::with_heuristics(Heuristics::ch1())).with_name("ERGO-CH1")
}

/// ERGO-CH2: Heuristics 1, 2, and 3 (conditional purge).
pub fn ergo_ch2() -> Ergo {
    Ergo::new(ErgoConfig::with_heuristics(Heuristics::ch2())).with_name("ERGO-CH2")
}

/// ERGO-SF: plain Ergo joined with a SybilFuse-style classifier gate of the
/// given accuracy (the paper evaluates 0.98 and 0.92). Used for the
/// Figure 8 ERGO-SF curve.
pub fn ergo_sf(accuracy: f64, seed: u64) -> Ergo {
    Ergo::new(ErgoConfig::default())
        .with_gate(ClassifierGate::with_accuracy(accuracy, seed))
        .with_name(format!("ERGO-SF({:.0})", accuracy * 100.0))
}

/// ERGO-SF(x) as evaluated in Figure 10: Heuristics 1–3 *plus* the
/// classifier gate (the paper defines ERGO-SF(92)/(98) as Heuristics
/// 1, 2, 3, and 4 combined).
pub fn ergo_sf_full(accuracy: f64, seed: u64) -> Ergo {
    Ergo::new(ErgoConfig::with_heuristics(Heuristics::ch2()))
        .with_gate(ClassifierGate::with_accuracy(accuracy, seed))
        .with_name(format!("ERGO-SF({:.0})", accuracy * 100.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sybil_sim::defense::Defense;
    use sybil_sim::time::Time;

    #[test]
    fn names_match_the_paper() {
        let mut e = ergo();
        e.init(Time::ZERO, 10, 0);
        assert_eq!(e.name(), "ERGO");
        assert_eq!(ccom().name(), "CCOM");
        assert_eq!(ergo_ch1().name(), "ERGO-CH1");
        assert_eq!(ergo_ch2().name(), "ERGO-CH2");
        assert_eq!(ergo_sf(0.98, 1).name(), "ERGO-SF(98)");
        assert_eq!(ergo_sf_full(0.92, 1).name(), "ERGO-SF(92)");
    }
}
