//! The DHT experiment (extension E7): lookup success rate vs Sybil
//! fraction, across routing strategies.
//!
//! The table this produces makes the Section 13.2 argument quantitative:
//!
//! * a single greedy path collapses as soon as any hop is Sybil;
//! * independent path retries saturate (capture compounds per hop);
//! * *wide paths* (per-hop redundancy) stay near-perfect — but **only**
//!   while the Sybil fraction is bounded, which is exactly what Ergo's
//!   `< 1/6` invariant supplies. Without the bound (30–50% Sybil), no
//!   constant redundancy survives.

use crate::lookup::{lookup_redundant, lookup_wide, LookupOutcome};
use crate::ring::Ring;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sybil_sim::id::Id;

/// A lookup routing strategy under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// One greedy finger-routing path.
    Greedy,
    /// `n` independent greedy paths from random good entry points.
    RedundantPaths(u32),
    /// A frontier of `n` nodes per hop (per-hop redundancy).
    WidePath(usize),
}

impl Strategy {
    /// Label for tables.
    pub fn label(&self) -> String {
        match *self {
            Strategy::Greedy => "greedy-1".into(),
            Strategy::RedundantPaths(n) => format!("paths-{n}"),
            Strategy::WidePath(n) => format!("wide-{n}"),
        }
    }

    fn run(&self, ring: &Ring, key: u64, rng: &mut StdRng) -> LookupOutcome {
        match *self {
            Strategy::Greedy => lookup_redundant(ring, key, 1, rng).0,
            Strategy::RedundantPaths(n) => lookup_redundant(ring, key, n, rng).0,
            Strategy::WidePath(w) => lookup_wide(ring, key, w, rng),
        }
    }
}

/// One cell of the success-rate grid.
#[derive(Clone, Debug, PartialEq)]
pub struct DhtCell {
    /// Fraction of ring nodes that are Sybil.
    pub bad_fraction: f64,
    /// Strategy label.
    pub strategy: String,
    /// Measured lookup success rate.
    pub success_rate: f64,
}

/// Builds a ring of `n` nodes with the given Sybil fraction.
pub fn build_ring(n: u64, bad_fraction: f64) -> Ring {
    assert!((0.0..1.0).contains(&bad_fraction));
    let n_bad = (n as f64 * bad_fraction).round() as u64;
    let n_good = n - n_bad;
    Ring::from_members(
        (0..n_good).map(|i| (Id(i), false)).chain((0..n_bad).map(|i| (Id(1 << 40 | i), true))),
    )
}

/// Runs one cell: `trials` random-key lookups with the given strategy.
pub fn run_cell(n: u64, bad_fraction: f64, strategy: Strategy, trials: u32, seed: u64) -> DhtCell {
    let ring = build_ring(n, bad_fraction);
    let mut rng = StdRng::seed_from_u64(seed);
    let successes =
        (0..trials).filter(|_| strategy.run(&ring, rng.gen(), &mut rng).is_success()).count();
    DhtCell {
        bad_fraction: ring.bad_fraction(),
        strategy: strategy.label(),
        success_rate: successes as f64 / trials as f64,
    }
}

/// The full grid: Sybil fractions from "well under Ergo's bound" to
/// "defense-less majority", for all three strategies.
pub fn run_grid(n: u64, trials: u32, seed: u64) -> Vec<DhtCell> {
    let fractions = [0.0, 0.05, 1.0 / 6.0 - 0.01, 0.30, 0.50];
    let strategies = [Strategy::Greedy, Strategy::RedundantPaths(8), Strategy::WidePath(8)];
    let mut out = Vec::new();
    for &f in &fractions {
        for &s in &strategies {
            out.push(run_cell(n, f, s, trials, seed));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_strategy_ordering() {
        let grid = run_grid(600, 150, 9);
        assert_eq!(grid.len(), 15);
        // At every attacked fraction: wide-8 ≥ paths-8 ≥ greedy-1.
        for chunk in grid.chunks(3).skip(1) {
            assert!(
                chunk[2].success_rate + 1e-9 >= chunk[1].success_rate,
                "wide should beat paths: {chunk:?}"
            );
            assert!(
                chunk[1].success_rate + 1e-9 >= chunk[0].success_rate,
                "paths should beat greedy: {chunk:?}"
            );
        }
        // Clean ring is perfect for everything.
        assert!(grid[..3].iter().all(|c| c.success_rate == 1.0));
    }

    #[test]
    fn ergo_bound_cell_is_recoverable_with_wide_paths() {
        let under_bound = run_cell(1000, 1.0 / 6.0 - 0.01, Strategy::WidePath(8), 300, 11);
        assert!(
            under_bound.success_rate > 0.98,
            "rate {} under the Ergo bound",
            under_bound.success_rate
        );
        let majority = run_cell(1000, 0.5, Strategy::WidePath(8), 300, 11);
        assert!(
            majority.success_rate < under_bound.success_rate,
            "bound {} vs majority {}",
            under_bound.success_rate,
            majority.success_rate
        );
    }
}
