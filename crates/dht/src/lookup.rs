//! Greedy, redundant, and wide-path lookup with successor-list replication.
//!
//! Data for `key` is replicated on the first `r` successors of `key`'s
//! position (the classic Chord defense against unreliable owners — here,
//! against a *Sybil* owner: with bad fraction `f < 1/6`, all `r` replicas
//! are Sybil with probability `≈ f^r`). A lookup succeeds when it reaches
//! any good replica.
//!
//! Three routing strategies, in increasing robustness:
//!
//! * **greedy** — one finger-routed path; touching a Sybil node loses the
//!   query, so success decays like `(1−f)^{hops}`;
//! * **redundant paths** — `q` independent greedy paths: success
//!   `1 − (1 − (1−f)^{hops})^q`, which *saturates* well below 1 for
//!   realistic hop counts;
//! * **wide path** — a frontier of `w` nodes advances together; a hop is
//!   lost only if the whole frontier is Sybil (`≈ f^w`), so success stays
//!   near-perfect exactly while `f` is bounded — the bound Ergo provides.

use crate::ring::{key_position, NodeEntry, Ring};
use rand::rngs::StdRng;
use rand::Rng;

/// The result of a lookup attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Reached a good replica of the key.
    Success {
        /// Hops taken.
        hops: u32,
    },
    /// A Sybil node captured the query.
    Captured {
        /// Hops taken before capture.
        hops: u32,
    },
    /// Hop budget exhausted (routing loop / stall).
    Exhausted,
}

impl LookupOutcome {
    /// True on success.
    pub fn is_success(&self) -> bool {
        matches!(self, LookupOutcome::Success { .. })
    }
}

/// The maximum hops before a lookup gives up.
const MAX_HOPS: u32 = 128;

/// Default replication factor: data lives on the key's first 8 successors.
pub const REPLICATION: usize = 8;

/// The positions of the key's replica set (first `r` successors).
fn replica_positions(ring: &Ring, key: u64, r: usize) -> Vec<u64> {
    let first = ring.successor_of(key);
    let mut out = vec![first.position];
    out.extend(
        ring.successors_after(first.position, r.saturating_sub(1)).iter().map(|e| e.position),
    );
    out
}

/// True if a good node at `current` can finish the lookup: it is itself a
/// good replica, or its successor-list knowledge reaches a good replica.
fn can_finish(ring: &Ring, current: &NodeEntry, replicas: &[u64], r: usize) -> bool {
    debug_assert!(!current.is_bad);
    if replicas.contains(&current.position) {
        return true;
    }
    ring.successors_after(current.position, r)
        .iter()
        .any(|s| !s.is_bad && replicas.contains(&s.position))
}

/// One greedy lookup from `origin` for `key` with replication `r`.
pub fn lookup_greedy_replicated(
    ring: &Ring,
    origin: NodeEntry,
    key: u64,
    r: usize,
) -> LookupOutcome {
    let replicas = replica_positions(ring, key, r);
    let mut current = origin;
    for hops in 0..MAX_HOPS {
        if current.is_bad {
            return LookupOutcome::Captured { hops };
        }
        if can_finish(ring, &current, &replicas, r) {
            return LookupOutcome::Success { hops };
        }
        // Greedy: the known node that most reduces clockwise distance to
        // the key.
        let dist = |p: u64| Ring::distance(p, key);
        let mut best = ring.successor_of(current.position.wrapping_add(1));
        let mut best_dist = dist(best.position);
        for f in ring.fingers(current.position) {
            let d = dist(f.position);
            if d < best_dist {
                best = f;
                best_dist = d;
            }
        }
        if best.position == current.position {
            return LookupOutcome::Exhausted;
        }
        current = best;
    }
    LookupOutcome::Exhausted
}

/// One greedy lookup with the default replication factor.
pub fn lookup_greedy(ring: &Ring, origin: NodeEntry, key: u64) -> LookupOutcome {
    lookup_greedy_replicated(ring, origin, key, REPLICATION)
}

/// A redundant lookup: `paths` greedy attempts from random good entry
/// points; succeeds if any path reaches a good replica. Returns the
/// outcome and the number of paths consumed.
///
/// Entry-point diversity models a joining ID knowing several members (the
/// paper's standard bootstrap assumption, Section 2.1.1).
pub fn lookup_redundant(
    ring: &Ring,
    key: u64,
    paths: u32,
    rng: &mut StdRng,
) -> (LookupOutcome, u32) {
    let good: Vec<NodeEntry> = ring.iter().filter(|n| !n.is_bad).copied().collect();
    assert!(!good.is_empty(), "no good entry points");
    let mut last = LookupOutcome::Exhausted;
    for attempt in 1..=paths {
        let origin = good[rng.gen_range(0..good.len())];
        last = lookup_greedy(ring, origin, key);
        if last.is_success() {
            return (last, attempt);
        }
    }
    (last, paths)
}

/// Convenience: look up a byte key.
pub fn lookup_key(ring: &Ring, key: &[u8], paths: u32, rng: &mut StdRng) -> (LookupOutcome, u32) {
    lookup_redundant(ring, key_position(key), paths, rng)
}

/// A *wide-path* lookup: the frontier holds up to `width` nodes per hop;
/// every good frontier node contributes its fingers toward the key, and
/// the next frontier is the `width` closest candidates.
///
/// Sybil frontier nodes stall (contribute nothing); they cannot inject
/// fake placements because a position is the hash of an ID. The lookup
/// fails at a hop only if no good frontier node remains.
pub fn lookup_wide(ring: &Ring, key: u64, width: usize, rng: &mut StdRng) -> LookupOutcome {
    assert!(width >= 1, "width must be at least 1");
    let r = REPLICATION;
    let replicas = replica_positions(ring, key, r);
    let all: Vec<NodeEntry> = ring.iter().copied().collect();
    if all.iter().all(|n| n.is_bad) {
        return LookupOutcome::Exhausted;
    }
    // Diverse entry points sampled from the membership (some may be Sybil).
    let mut frontier: Vec<NodeEntry> =
        (0..width).map(|_| all[rng.gen_range(0..all.len())]).collect();

    let dist = |p: u64| Ring::distance(p, key);
    for hops in 0..MAX_HOPS {
        if frontier.iter().any(|n| !n.is_bad && can_finish(ring, n, &replicas, r)) {
            return LookupOutcome::Success { hops };
        }
        let mut candidates: Vec<NodeEntry> = Vec::new();
        for node in &frontier {
            if node.is_bad {
                continue; // stalls
            }
            for f in ring.fingers(node.position) {
                candidates.push(f);
            }
            candidates.push(ring.successor_of(node.position.wrapping_add(1)));
        }
        if candidates.is_empty() {
            return LookupOutcome::Captured { hops };
        }
        candidates.sort_by_key(|n| dist(n.position));
        candidates.dedup_by_key(|n| n.position);
        candidates.truncate(width);
        if candidates == frontier {
            return LookupOutcome::Exhausted;
        }
        frontier = candidates;
    }
    LookupOutcome::Exhausted
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sybil_sim::id::Id;

    fn mixed_ring(n_good: u64, n_bad: u64) -> Ring {
        Ring::from_members(
            (0..n_good)
                .map(|i| (Id(i), false))
                .chain((0..n_bad).map(|i| (Id(1_000_000 + i), true))),
        )
    }

    #[test]
    fn all_good_ring_always_succeeds_in_log_hops() {
        let ring = mixed_ring(1024, 0);
        let origin = ring.any_good().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let key: u64 = rng.gen();
            match lookup_greedy(&ring, origin, key) {
                LookupOutcome::Success { hops } => {
                    assert!(hops <= 24, "too many hops: {hops} for n=1024");
                }
                other => panic!("lookup failed on clean ring: {other:?}"),
            }
        }
    }

    #[test]
    fn lookup_reaches_every_owner() {
        let ring = mixed_ring(64, 0);
        let origin = ring.any_good().unwrap();
        for target in ring.iter() {
            match lookup_greedy(&ring, origin, target.position) {
                LookupOutcome::Success { .. } => {}
                other => panic!("failed to reach {target:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn sybil_nodes_capture_single_paths_sometimes() {
        let ring = mixed_ring(500, 250); // 1/3 bad: beyond Ergo's bound
        let mut rng = StdRng::seed_from_u64(2);
        let good: Vec<NodeEntry> = ring.iter().filter(|n| !n.is_bad).copied().collect();
        let captured = (0..300)
            .filter(|_| {
                let origin = good[rng.gen_range(0..good.len())];
                !lookup_greedy(&ring, origin, rng.gen()).is_success()
            })
            .count();
        assert!(captured > 50, "only {captured} captures at 1/3 bad");
    }

    #[test]
    fn path_redundancy_helps_but_saturates() {
        // At ~15% bad, one greedy path succeeds ~(1-f)^hops of the time;
        // 8 independent paths lift that substantially but stay visibly
        // below the wide-path strategy.
        let ring = mixed_ring(1000, 180); // ~15.3% bad
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 400;
        let one = (0..trials)
            .filter(|_| lookup_redundant(&ring, rng.gen(), 1, &mut rng).0.is_success())
            .count() as f64
            / trials as f64;
        let eight = (0..trials)
            .filter(|_| lookup_redundant(&ring, rng.gen(), 8, &mut rng).0.is_success())
            .count() as f64
            / trials as f64;
        assert!(one < 0.8, "single path too strong: {one}");
        assert!(eight > one, "redundancy must help: {eight} vs {one}");
    }

    #[test]
    fn wide_paths_recover_under_ergo_bound() {
        // Per-hop redundancy + replication: with the bad fraction under
        // Ergo's 1/6 bound, lookups become near-perfect.
        let ring = mixed_ring(1000, 180);
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 400;
        let ok =
            (0..trials).filter(|_| lookup_wide(&ring, rng.gen(), 8, &mut rng).is_success()).count();
        let rate = ok as f64 / trials as f64;
        assert!(rate > 0.99, "wide-path success rate {rate} under the bound");
    }

    #[test]
    fn wide_paths_still_fail_against_a_majority() {
        let ring = mixed_ring(200, 800);
        let mut rng = StdRng::seed_from_u64(6);
        let trials = 200;
        let ok =
            (0..trials).filter(|_| lookup_wide(&ring, rng.gen(), 8, &mut rng).is_success()).count();
        let rate = ok as f64 / trials as f64;
        assert!(rate < 0.95, "even wide paths degrade at 80% bad: {rate}");
    }

    #[test]
    fn byte_key_lookup_works() {
        let ring = mixed_ring(256, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let (outcome, attempts) = lookup_key(&ring, b"block/0000abcd", 4, &mut rng);
        assert!(outcome.is_success());
        assert_eq!(attempts, 1);
    }

    #[test]
    fn replication_covers_sybil_owners() {
        // Keys whose first successor is Sybil are still retrievable from a
        // good replica further along the successor list.
        let ring = mixed_ring(900, 100);
        let mut rng = StdRng::seed_from_u64(7);
        let mut sybil_owned_successes = 0;
        let mut sybil_owned = 0;
        for _ in 0..2000 {
            let key: u64 = rng.gen();
            if ring.successor_of(key).is_bad {
                sybil_owned += 1;
                if lookup_wide(&ring, key, 8, &mut rng).is_success() {
                    sybil_owned_successes += 1;
                }
            }
        }
        assert!(sybil_owned > 50, "not enough Sybil-owned keys sampled");
        let rate = sybil_owned_successes as f64 / sybil_owned as f64;
        assert!(rate > 0.95, "Sybil-owned keys recovered at only {rate}");
    }
}
