//! Ring maintenance under churn.
//!
//! Section 13.2 asks for a DHT that is both *built and maintained* under
//! the paper's churn model. [`MaintainedRing`] replays a good-ID workload
//! (plus adversary-driven Sybil joins bounded by Ergo's invariant) into the
//! ring, and [`probe_under_churn`] interleaves lookups with the churn to
//! measure routing health over the system's lifetime rather than on a
//! static snapshot.

use crate::lookup::lookup_wide;
use crate::ring::Ring;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sybil_sim::id::Id;
use sybil_sim::time::Time;
use sybil_sim::workload::Workload;

/// A ring kept in sync with a replayed churn schedule.
#[derive(Clone, Debug)]
pub struct MaintainedRing {
    ring: Ring,
    /// (event time, id, is_join) schedule, time-sorted.
    schedule: Vec<(Time, Id, bool)>,
    cursor: usize,
    next_id: u64,
}

impl MaintainedRing {
    /// Builds the initial ring from a workload's initial population and
    /// prepares its join/departure schedule up to `horizon`.
    pub fn new(workload: &Workload, horizon: Time) -> Self {
        let mut next_id = 0u64;
        let mut ring = Ring::new();
        let mut schedule: Vec<(Time, Id, bool)> = Vec::new();
        for &depart in &workload.initial_departures {
            let id = Id(next_id);
            next_id += 1;
            ring.join(id, false);
            if depart <= horizon {
                schedule.push((depart, id, false));
            }
        }
        for s in &workload.sessions {
            if s.join > horizon {
                continue;
            }
            let id = Id(next_id);
            next_id += 1;
            schedule.push((s.join, id, true));
            if s.depart <= horizon {
                schedule.push((s.depart, id, false));
            }
        }
        schedule.sort_by_key(|e| e.0);
        MaintainedRing { ring, schedule, cursor: 0, next_id }
    }

    /// Injects `n` Sybil nodes (e.g. the Ergo-bounded population).
    pub fn inject_sybils(&mut self, n: u64) {
        for _ in 0..n {
            let id = Id((1 << 42) | self.next_id);
            self.next_id += 1;
            self.ring.join(id, true);
        }
    }

    /// Advances the ring to time `now`, applying all scheduled events.
    pub fn advance_to(&mut self, now: Time) {
        while self.cursor < self.schedule.len() && self.schedule[self.cursor].0 <= now {
            let (_, id, is_join) = self.schedule[self.cursor];
            if is_join {
                self.ring.join(id, false);
            } else {
                self.ring.leave(id);
            }
            self.cursor += 1;
        }
    }

    /// The ring at its current point in time.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Remaining scheduled events.
    pub fn pending_events(&self) -> usize {
        self.schedule.len() - self.cursor
    }
}

/// A probe measurement taken during churn replay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbePoint {
    /// When the probe ran.
    pub at: Time,
    /// Ring size at the probe.
    pub ring_size: usize,
    /// Sybil fraction at the probe.
    pub bad_fraction: f64,
    /// Wide-path lookup success rate at the probe.
    pub success_rate: f64,
}

/// Replays churn while probing lookup health every `probe_interval`
/// seconds with `lookups` random keys per probe (wide-path, width 8).
pub fn probe_under_churn(
    workload: &Workload,
    horizon: Time,
    sybils: u64,
    probe_interval: f64,
    lookups: u32,
    seed: u64,
) -> Vec<ProbePoint> {
    assert!(probe_interval > 0.0 && lookups > 0);
    let mut maintained = MaintainedRing::new(workload, horizon);
    maintained.inject_sybils(sybils);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut t = probe_interval;
    while t <= horizon.as_secs() {
        maintained.advance_to(Time(t));
        let ring = maintained.ring();
        if ring.is_empty() || ring.any_good().is_none() {
            break;
        }
        let ok =
            (0..lookups).filter(|_| lookup_wide(ring, rng.gen(), 8, &mut rng).is_success()).count();
        out.push(ProbePoint {
            at: Time(t),
            ring_size: ring.len(),
            bad_fraction: ring.bad_fraction(),
            success_rate: ok as f64 / lookups as f64,
        });
        t += probe_interval;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sybil_sim::workload::Session;

    /// Initial members churn out over [5, 405]; arrivals at 2/s with 150 s
    /// sessions keep the good population in the 250-500 band throughout.
    fn churny_workload() -> Workload {
        Workload::new(
            (0..400).map(|i| Time(5.0 + i as f64)).collect(),
            (0..800)
                .map(|i| Session::new(Time(i as f64 * 0.5), Time(i as f64 * 0.5 + 150.0)))
                .collect(),
        )
    }

    #[test]
    fn maintenance_applies_joins_and_departures_in_order() {
        let w = churny_workload();
        let mut m = MaintainedRing::new(&w, Time(500.0));
        assert_eq!(m.ring().len(), 400);
        let before = m.pending_events();
        m.advance_to(Time(100.0));
        assert!(m.pending_events() < before);
        // ~95 initial departed (t in [5,100]), ~200 arrivals joined, none of
        // which have departed yet (first session ends at t=150).
        let size = m.ring().len();
        assert!((480..=530).contains(&size), "size {size} at t=100");
        m.advance_to(Time(500.0));
        assert_eq!(m.pending_events(), 0);
    }

    #[test]
    fn advance_is_idempotent_and_monotone() {
        let w = churny_workload();
        let mut m = MaintainedRing::new(&w, Time(500.0));
        m.advance_to(Time(200.0));
        let size = m.ring().len();
        m.advance_to(Time(200.0));
        assert_eq!(m.ring().len(), size);
        m.advance_to(Time(150.0)); // going "back" is a no-op
        assert_eq!(m.ring().len(), size);
    }

    #[test]
    fn lookups_stay_healthy_under_churn_with_bounded_sybils() {
        let w = churny_workload();
        // Sybil count held inside Ergo's bound at the population trough.
        let probes = probe_under_churn(&w, Time(400.0), 45, 50.0, 60, 17);
        assert!(probes.len() >= 6);
        for p in &probes {
            assert!(p.bad_fraction < 1.0 / 6.0, "fraction {} at {}", p.bad_fraction, p.at);
            assert!(
                p.success_rate > 0.95,
                "success {} at {} (size {})",
                p.success_rate,
                p.at,
                p.ring_size
            );
        }
    }

    #[test]
    fn unbounded_sybils_degrade_lookups_under_churn() {
        let w = churny_workload();
        // Sybils piling up with no defense: fraction grows past 1/2 as good
        // nodes churn away.
        let probes = probe_under_churn(&w, Time(400.0), 450, 50.0, 60, 19);
        let last = probes.last().expect("probes");
        assert!(last.bad_fraction > 0.4, "fraction {}", last.bad_fraction);
        let min_rate = probes.iter().map(|p| p.success_rate).fold(1.0, f64::min);
        assert!(min_rate < 0.999, "no degradation observed: {min_rate}");
    }
}
