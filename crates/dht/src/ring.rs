//! The Chord-style ring.
//!
//! Node positions are the first 8 bytes of `SHA-256(id)`, so an adversary
//! cannot choose placements (IDs are assigned by the join-event counter,
//! paper Section 2.1.1) — it can only add *more* IDs, which is exactly
//! what Ergo prices.

use std::collections::BTreeMap;
use sybil_crypto::sha256::Sha256;
use sybil_sim::id::Id;

/// A node on the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeEntry {
    /// The node's identifier.
    pub id: Id,
    /// Ring position (hash of the ID).
    pub position: u64,
    /// Ground truth for experiments: is this a Sybil node?
    pub is_bad: bool,
}

/// Hashes an ID to its ring position.
pub fn position_of(id: Id) -> u64 {
    let digest = Sha256::digest(&id.to_bytes());
    u64::from_be_bytes(digest.as_bytes()[..8].try_into().expect("8 bytes"))
}

/// Hashes an arbitrary key to a ring position.
pub fn key_position(key: &[u8]) -> u64 {
    let digest = Sha256::digest(key);
    u64::from_be_bytes(digest.as_bytes()[..8].try_into().expect("8 bytes"))
}

/// A consistent-hashing ring with successor lists and finger tables.
#[derive(Clone, Debug, Default)]
pub struct Ring {
    nodes: BTreeMap<u64, NodeEntry>,
}

impl Ring {
    /// An empty ring.
    pub fn new() -> Self {
        Ring::default()
    }

    /// Builds a ring from `(id, is_bad)` pairs (position collisions — a
    /// 2⁻⁶⁴ event — keep the first occupant).
    pub fn from_members<I: IntoIterator<Item = (Id, bool)>>(members: I) -> Self {
        let mut ring = Ring::new();
        for (id, is_bad) in members {
            ring.join(id, is_bad);
        }
        ring
    }

    /// Adds a node.
    pub fn join(&mut self, id: Id, is_bad: bool) {
        let position = position_of(id);
        self.nodes.entry(position).or_insert(NodeEntry { id, position, is_bad });
    }

    /// Removes a node by ID; returns true if it was present.
    pub fn leave(&mut self, id: Id) -> bool {
        let position = position_of(id);
        match self.nodes.get(&position) {
            Some(e) if e.id == id => {
                self.nodes.remove(&position);
                true
            }
            _ => false,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Fraction of nodes that are Sybil.
    pub fn bad_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.values().filter(|n| n.is_bad).count() as f64 / self.nodes.len() as f64
    }

    /// The node responsible for `key`: the first node at or clockwise after
    /// the key's position.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn successor_of(&self, key: u64) -> NodeEntry {
        assert!(!self.nodes.is_empty(), "successor on empty ring");
        *self
            .nodes
            .range(key..)
            .next()
            .map(|(_, e)| e)
            .unwrap_or_else(|| self.nodes.iter().next().map(|(_, e)| e).expect("nonempty"))
    }

    /// The `count` nodes clockwise after `position` (exclusive), wrapping.
    pub fn successors_after(&self, position: u64, count: usize) -> Vec<NodeEntry> {
        let mut out = Vec::with_capacity(count);
        for (_, e) in
            self.nodes.range(position.wrapping_add(1)..).chain(self.nodes.range(..=position))
        {
            if out.len() >= count {
                break;
            }
            out.push(*e);
        }
        out
    }

    /// The finger table of the node at `position`: successors of
    /// `position + 2^k` for `k = 0..64`, deduplicated.
    pub fn fingers(&self, position: u64) -> Vec<NodeEntry> {
        let mut out: Vec<NodeEntry> = Vec::with_capacity(64);
        for k in 0..64u32 {
            let target = position.wrapping_add(1u64 << k);
            let f = self.successor_of(target);
            if out.last().map(|l: &NodeEntry| l.position) != Some(f.position) {
                out.push(f);
            }
        }
        out
    }

    /// Clockwise distance from `from` to `to`.
    pub fn distance(from: u64, to: u64) -> u64 {
        to.wrapping_sub(from)
    }

    /// Iterates all nodes in position order.
    pub fn iter(&self) -> impl Iterator<Item = &NodeEntry> {
        self.nodes.values()
    }

    /// An arbitrary good node to originate lookups from (None if all bad).
    pub fn any_good(&self) -> Option<NodeEntry> {
        self.nodes.values().find(|n| !n.is_bad).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(n: u64) -> Ring {
        Ring::from_members((0..n).map(|i| (Id(i), false)))
    }

    #[test]
    fn positions_are_deterministic_and_spread() {
        let a = position_of(Id(1));
        assert_eq!(a, position_of(Id(1)));
        assert_ne!(a, position_of(Id(2)));
        // Hash spreading: 1000 nodes should not all land in one half.
        let ring = ring_of(1000);
        let below = ring.iter().filter(|e| e.position < u64::MAX / 2).count();
        assert!((300..700).contains(&below), "skewed spread: {below}");
    }

    #[test]
    fn successor_wraps_around() {
        let ring = ring_of(10);
        let max_pos = ring.iter().map(|e| e.position).max().unwrap();
        let min_pos = ring.iter().map(|e| e.position).min().unwrap();
        let succ = ring.successor_of(max_pos.wrapping_add(1));
        assert_eq!(succ.position, min_pos, "wrap to the smallest position");
    }

    #[test]
    fn successor_is_owner() {
        let ring = ring_of(100);
        // Every node is its own successor.
        for e in ring.iter() {
            assert_eq!(ring.successor_of(e.position).position, e.position);
        }
    }

    #[test]
    fn join_leave_roundtrip() {
        let mut ring = ring_of(10);
        assert_eq!(ring.len(), 10);
        ring.join(Id(100), true);
        assert_eq!(ring.len(), 11);
        assert!(ring.bad_fraction() > 0.0);
        assert!(ring.leave(Id(100)));
        assert!(!ring.leave(Id(100)));
        assert_eq!(ring.len(), 10);
        assert_eq!(ring.bad_fraction(), 0.0);
    }

    #[test]
    fn successors_after_wraps_and_bounds() {
        let ring = ring_of(8);
        let first = ring.iter().next().unwrap().position;
        let succ = ring.successors_after(first, 8);
        assert_eq!(succ.len(), 8, "wraps all the way around");
        // Positions unique.
        let mut ps: Vec<u64> = succ.iter().map(|e| e.position).collect();
        ps.sort_unstable();
        ps.dedup();
        assert_eq!(ps.len(), 8);
    }

    #[test]
    fn fingers_shrink_distance() {
        let ring = ring_of(256);
        let origin = ring.iter().next().unwrap().position;
        let fingers = ring.fingers(origin);
        assert!(fingers.len() >= 6, "only {} fingers", fingers.len());
        // Fingers are roughly sorted by distance from the origin.
        let dists: Vec<u64> = fingers.iter().map(|f| Ring::distance(origin, f.position)).collect();
        let mut sorted = dists.clone();
        sorted.sort_unstable();
        assert_eq!(dists, sorted, "fingers out of distance order");
    }

    #[test]
    fn any_good_skips_sybils() {
        let ring = Ring::from_members([(Id(1), true), (Id(2), false), (Id(3), true)]);
        assert_eq!(ring.any_good().unwrap().id, Id(2));
        let all_bad = Ring::from_members([(Id(1), true)]);
        assert!(all_bad.any_good().is_none());
    }
}
