//! Heap-allocation counting for allocation-budget enforcement.
//!
//! The simulation's hot loop is supposed to allocate *nothing* in steady
//! state, and "supposed to" is worthless without a measurement. This module
//! provides a [`CountingAlloc`] global-allocator wrapper that counts every
//! allocation (and its bytes) on thread-local counters, plus a scoped
//! [`AllocStats`] guard for reading the deltas around a region of code.
//!
//! # Wiring
//!
//! The counters are always compiled; what is feature-gated is the
//! *registration*. A consuming binary or test opts in by registering the
//! wrapper as its global allocator under the `alloc-count` feature:
//!
//! ```ignore
//! #[cfg(feature = "alloc-count")]
//! #[global_allocator]
//! static ALLOC: sybil_exp::alloc::CountingAlloc = sybil_exp::alloc::CountingAlloc;
//! ```
//!
//! Without the feature the guard still compiles but every delta reads zero;
//! [`counting_enabled`] probes at runtime whether counting is actually live,
//! so reports can be self-describing regardless of how they were built.
//!
//! # Thread-awareness
//!
//! Counters are thread-local: a guard measures allocations made by *its*
//! thread only. That is exactly the right scope for the engine's
//! steady-state budget — the coordinator loop of a sharded run is measured
//! without charging it for what producer threads allocate (their batches
//! are pooled separately; see `sybil-sim::shard`). It also keeps the
//! counting overhead to two thread-local increments per allocation, cheap
//! enough to leave on for whole benchmark runs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
    /// One-shot trap countdown: negative = disarmed.
    static TRAP: Cell<i64> = const { Cell::new(-1) };
    /// Reentrancy guard: capturing the trap backtrace itself allocates.
    static IN_TRAP: Cell<bool> = const { Cell::new(false) };
}

/// A [`GlobalAlloc`] wrapper around [`System`] that counts allocations and
/// allocated bytes on thread-local counters. Frees are not tracked: the
/// budget is "how often does the hot path hit the allocator", and
/// deallocation churn always pairs with an allocation that is.
pub struct CountingAlloc;

// The allocator trait is inherently unsafe to implement; the wrapper adds
// only Cell increments around a direct System delegation.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow-in-place still round-trips the allocator; count it.
        note(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[inline]
fn note(size: usize) {
    ALLOCS.with(|c| c.set(c.get().wrapping_add(1)));
    BYTES.with(|c| c.set(c.get().wrapping_add(size as u64)));
    TRAP.with(|c| {
        let remaining = c.get();
        if remaining < 0 {
            return;
        }
        if remaining == 0 {
            c.set(-1);
            trap_fire(size);
        } else {
            c.set(remaining - 1);
        }
    });
}

#[cold]
fn trap_fire(size: usize) {
    if IN_TRAP.with(|f| f.replace(true)) {
        return;
    }
    // Attribution beats survival here: this path only runs when a human
    // armed the trap to find a hot-path allocation site.
    let bt = std::backtrace::Backtrace::force_capture();
    eprintln!("== allocation trap fired ({size} bytes) ==\n{bt}");
    std::process::abort();
}

/// Arms a one-shot trap on this thread: the `n`-th subsequent allocation
/// (0 = the very next one) prints a backtrace to stderr and aborts the
/// process. A debugging aid for *attributing* residual hot-path
/// allocations once the counters say they exist — arm it at the top of
/// the measured region, binary-search `n`, read the backtrace. Run with
/// `RUST_BACKTRACE=1` for symbol names. Never armed in normal runs.
pub fn trap_after(n: u64) {
    TRAP.with(|c| c.set(n.min(i64::MAX as u64) as i64));
}

/// Disarms a pending [`trap_after`] trap on this thread.
pub fn disarm_trap() {
    TRAP.with(|c| c.set(-1));
}

/// This thread's cumulative `(allocations, bytes)` counters. Zero forever
/// unless a [`CountingAlloc`] is registered as the global allocator.
pub fn thread_counters() -> (u64, u64) {
    (ALLOCS.with(Cell::get), BYTES.with(Cell::get))
}

/// True if allocation counting is live in this process — i.e. the binary
/// registered [`CountingAlloc`] as its global allocator. Probed at runtime
/// (one boxed allocation) so callers can record in their output whether
/// their numbers are real measurements or structural zeros.
pub fn counting_enabled() -> bool {
    let before = ALLOCS.with(Cell::get);
    let probe = Box::new(0u64);
    std::hint::black_box(&probe);
    let after = ALLOCS.with(Cell::get);
    after != before
}

/// Scoped read of this thread's allocation counters: construct with
/// [`AllocStats::begin`], read deltas with [`allocs`](AllocStats::allocs) /
/// [`bytes`](AllocStats::bytes). Reads are non-destructive, so guards nest
/// freely.
#[derive(Clone, Copy, Debug)]
pub struct AllocStats {
    start_allocs: u64,
    start_bytes: u64,
}

impl AllocStats {
    /// Snapshots this thread's counters.
    pub fn begin() -> Self {
        let (start_allocs, start_bytes) = thread_counters();
        AllocStats { start_allocs, start_bytes }
    }

    /// Allocations on this thread since [`begin`](AllocStats::begin).
    pub fn allocs(&self) -> u64 {
        ALLOCS.with(Cell::get).wrapping_sub(self.start_allocs)
    }

    /// Bytes allocated on this thread since [`begin`](AllocStats::begin).
    pub fn bytes(&self) -> u64 {
        BYTES.with(Cell::get).wrapping_sub(self.start_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not register the allocator unless built with
    // `--features alloc-count`, so assertions branch on the live probe.

    #[test]
    fn guard_reads_zero_or_counts_consistently() {
        let live = counting_enabled();
        let stats = AllocStats::begin();
        let v: Vec<u64> = Vec::with_capacity(32);
        std::hint::black_box(&v);
        drop(v);
        if live {
            assert!(stats.allocs() >= 1, "allocation went uncounted");
            assert!(stats.bytes() >= 32 * 8, "bytes went uncounted");
        } else {
            assert_eq!(stats.allocs(), 0);
            assert_eq!(stats.bytes(), 0);
        }
    }

    #[test]
    fn guards_nest_non_destructively() {
        let outer = AllocStats::begin();
        let _x = std::hint::black_box(Box::new(1u8));
        let inner = AllocStats::begin();
        let _y = std::hint::black_box(Box::new(2u8));
        assert!(outer.allocs() >= inner.allocs());
        assert!(outer.bytes() >= inner.bytes());
    }

    #[test]
    fn probe_is_stable() {
        // Whatever the build, the probe must answer the same thing twice.
        assert_eq!(counting_enabled(), counting_enabled());
    }
}
