//! Content-addressed on-disk workload cache.
//!
//! Grid sweeps replay the same good-ID schedule for every (algorithm, T)
//! cell of a trial — Figure 8 alone replays each network's workload 60
//! times — and at million-ID scale a single generation is seconds of
//! inverse-transform sampling plus tens of megabytes that must not stay
//! resident. The cache materializes each `(churn model, seed, horizon)`
//! workload **once** through [`sybil_sim::workload_io`] and hands every
//! subsequent cell a [`DiskWorkload`] that streams it back through two
//! 8 KiB read buffers.
//!
//! # Keying
//!
//! The cache is content-addressed: the key is
//! `SHA-256(model debug representation ‖ seed ‖ horizon bits)`, truncated
//! to 32 hex chars in the filename `wk_<hash>.wkld`. The model's full
//! `Debug` form goes into the hash, so two models that merely share a name
//! cannot collide, and any parameter change produces a fresh entry.
//!
//! # Validation and eviction
//!
//! Reuse always re-validates the file header (magic, version, record
//! counts vs file length) via [`DiskWorkload::open`]; a truncated or
//! corrupt entry is deleted and regenerated, never silently replayed.
//! After each insertion the cache enforces a byte budget by evicting
//! oldest-modified entries first, ties broken by path so 1-second-mtime
//! filesystems still evict deterministically (the just-written file is
//! exempt, and entries whose mtime cannot be read are never preferred
//! victims).

use crate::fault::{self, Site};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use sybil_churn::model::ChurnModel;
use sybil_sim::time::Time;
use sybil_sim::workload_io::{write_workload_file, DiskWorkload};

/// Default cache byte budget: 4 GiB (a million-ID workload file is ~10 MB,
/// so this comfortably holds hundreds of trials before evicting).
pub const DEFAULT_BUDGET_BYTES: u64 = 4 << 30;

/// Counters describing how the cache behaved over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries served from an existing valid file.
    pub hits: u64,
    /// Entries generated and written because no file existed.
    pub misses: u64,
    /// Existing files rejected by header validation and regenerated.
    pub rejected: u64,
    /// Files evicted by the size budget.
    pub evictions: u64,
    /// Stale `.tmp_*` files removed by the open-time sweep. Unlike the
    /// other counters this is absolute per cache open, not per call.
    pub temps_swept: u64,
    /// Stale temp files the open-time sweep could not inspect or remove —
    /// each one is a multi-megabyte leak outside the byte budget, so a
    /// nonzero count here deserves a look at the cache directory.
    pub temp_sweep_failures: u64,
}

impl CacheStats {
    /// Renders as a compact `hits/misses/rejected/evictions` summary, with
    /// temp-sweep activity appended only when there was any.
    pub fn render(&self) -> String {
        let mut out = format!(
            "cache: {} hits, {} misses, {} rejected, {} evicted",
            self.hits, self.misses, self.rejected, self.evictions
        );
        if self.temps_swept > 0 {
            out.push_str(&format!(", {} stale temps swept", self.temps_swept));
        }
        if self.temp_sweep_failures > 0 {
            out.push_str(&format!(", {} temp sweeps FAILED", self.temp_sweep_failures));
        }
        out
    }
}

/// A content-addressed workload cache rooted at one directory.
///
/// Thread-safe: worker threads resolving different keys generate in
/// parallel (generation happens outside the internal lock); racing
/// generators of the *same* key produce byte-identical files and the
/// atomic rename makes either result valid.
#[derive(Debug)]
pub struct WorkloadCache {
    dir: PathBuf,
    budget_bytes: u64,
    stats: Mutex<CacheStats>,
}

impl WorkloadCache {
    /// Opens (creating if needed) a cache rooted at `dir` with the default
    /// size budget.
    pub fn open<P: AsRef<Path>>(dir: P) -> io::Result<WorkloadCache> {
        Self::with_budget(dir, DEFAULT_BUDGET_BYTES)
    }

    /// Opens a cache with an explicit byte budget.
    pub fn with_budget<P: AsRef<Path>>(dir: P, budget_bytes: u64) -> io::Result<WorkloadCache> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let (temps_swept, temp_sweep_failures) = sweep_stale_temps(&dir);
        let stats = CacheStats { temps_swept, temp_sweep_failures, ..CacheStats::default() };
        Ok(WorkloadCache { dir, budget_bytes, stats: Mutex::new(stats) })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of the behavior counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().expect("cache stats poisoned")
    }

    /// The content-addressed key for `(model, seed, horizon)`.
    pub fn key(model: &ChurnModel, horizon: Time, seed: u64) -> String {
        let mut hasher = sybil_crypto::sha256::Sha256::new();
        hasher.update(format!("{model:?}").as_bytes());
        hasher.update(&seed.to_le_bytes());
        hasher.update(&horizon.as_secs().to_bits().to_le_bytes());
        sybil_crypto::hex::encode(&hasher.finalize().as_bytes()[..16])
    }

    /// Path of the cache entry for `(model, seed, horizon)`.
    pub fn entry_path(&self, model: &ChurnModel, horizon: Time, seed: u64) -> PathBuf {
        self.dir.join(format!("wk_{}.wkld", Self::key(model, horizon, seed)))
    }

    /// Returns a disk-streamed workload for `(model, seed, horizon)`,
    /// generating and writing it on first use.
    ///
    /// A pre-existing file is validated (header magic, version, and record
    /// counts vs length) before reuse; validation failure deletes and
    /// regenerates it. Generation runs outside the cache lock so worker
    /// threads warming different keys never serialize on it.
    pub fn get_or_create(
        &self,
        model: &ChurnModel,
        horizon: Time,
        seed: u64,
    ) -> io::Result<DiskWorkload> {
        let path = self.entry_path(model, horizon, seed);
        // Bounded retries: a concurrent insert's eviction pass (which only
        // exempts *its own* new entry) can remove this entry between our
        // rename and open. Regenerating self-heals; the bound keeps a
        // genuinely broken filesystem from looping forever.
        let mut last_err = None;
        for _ in 0..4 {
            if path.exists() {
                match DiskWorkload::open(&path) {
                    Ok(disk) => {
                        self.stats.lock().expect("cache stats poisoned").hits += 1;
                        return Ok(disk);
                    }
                    Err(_) => {
                        // Truncated/corrupt/foreign: remove and fall
                        // through to regeneration. Losing the race to
                        // another remover is fine — the file is gone
                        // either way.
                        fs::remove_file(&path).ok();
                        self.stats.lock().expect("cache stats poisoned").rejected += 1;
                    }
                }
            }
            // Generate OUTSIDE the lock; write to a unique temp name, then
            // rename into place. Racing generators produce byte-identical
            // deterministic files, so whichever rename lands last is
            // correct. A failed write or rename (real or injected) removes
            // the temp and retries the whole attempt — regeneration is the
            // fallback, never a propagated panic.
            let workload = model.generate(horizon, seed);
            let tmp = self.dir.join(format!(
                ".tmp_{}_{}_{}",
                std::process::id(),
                unique_suffix(),
                path.file_name().and_then(|n| n.to_str()).unwrap_or("wk")
            ));
            let key = Self::key(model, horizon, seed);
            if let Err(e) = write_entry(&tmp, &path, &workload, &key) {
                fs::remove_file(&tmp).ok();
                last_err = Some(e);
                drop(workload);
                continue;
            }
            drop(workload);
            self.stats.lock().expect("cache stats poisoned").misses += 1;
            self.enforce_budget(&path)?;
            match DiskWorkload::open(&path) {
                Ok(disk) => return Ok(disk),
                Err(e) => last_err = Some(e), // likely evicted by a peer
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::other(format!("cache entry {} unobtainable", path.display()))
        }))
    }

    /// Evicts oldest-modified entries until the cache fits the budget.
    /// `keep` (the entry just written) is never evicted, so a single
    /// workload larger than the whole budget still works.
    ///
    /// Eviction order is `(mtime, path)`: on filesystems with 1-second
    /// mtime granularity a whole batch of entries can tie, and sorting by
    /// mtime alone made the victim depend on directory iteration order —
    /// the path tie-break keeps it deterministic. An entry whose mtime
    /// cannot be read still counts toward the total but is skipped as a
    /// victim (the old `UNIX_EPOCH` fallback made exactly the entries we
    /// know least about the *first* to die).
    fn enforce_budget(&self, keep: &Path) -> io::Result<()> {
        // Serialize eviction passes; concurrent evictors would both scan
        // and could double-count removals.
        let mut stats = self.stats.lock().expect("cache stats poisoned");
        let mut entries: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
        let mut total = 0u64;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.starts_with("wk_") || !name.ends_with(".wkld") {
                continue;
            }
            let meta = match entry.metadata() {
                Ok(m) => m,
                Err(_) => continue, // raced with another evictor
            };
            total += meta.len();
            // Unreadable mtime: counts toward the total, never a victim.
            if let Ok(mtime) = meta.modified() {
                entries.push((mtime, entry.path(), meta.len()));
            }
        }
        entries.sort();
        for (_, path, len) in entries {
            if total <= self.budget_bytes {
                break;
            }
            if path == keep {
                continue;
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                stats.evictions += 1;
            }
        }
        Ok(())
    }
}

/// Process-wide unique suffix for temp files (no tempfile crate offline).
fn unique_suffix() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

/// Writes `workload` to `tmp` and renames it into place at `path`, routed
/// through the fault seam: under `fault-inject` an active plan can fail the
/// write outright ([`Site::CacheWrite`]), truncate it to a short write
/// (leaving a torn temp, as `ENOSPC` mid-write would), or fail the rename
/// ([`Site::CacheRename`]). Without the feature the seam calls compile to
/// no-ops and this is exactly write-then-rename.
fn write_entry(
    tmp: &Path,
    path: &Path,
    workload: &sybil_sim::workload::Workload,
    key: &str,
) -> io::Result<()> {
    fault::check_io(Site::CacheWrite, key)?;
    write_workload_file(tmp, workload)?;
    let full = fs::metadata(tmp)?.len();
    if let Some(n) = fault::short_write_len(Site::CacheWrite, key, full as usize) {
        // Simulate a torn write by cutting the finished file: the bytes
        // past `n` never reached the disk.
        fs::OpenOptions::new().write(true).open(tmp)?.set_len(n as u64)?;
        return Err(io::Error::other(format!(
            "injected fault: short cache write for {key} ({n}/{full} bytes)"
        )));
    }
    fault::check_io(Site::CacheRename, key)?;
    fs::rename(tmp, path)
}

/// Removes `.tmp_*` files left behind by interrupted runs, returning
/// `(swept, failures)`.
///
/// The eviction pass only sees `wk_*.wkld` names, so a run killed between
/// write and rename would otherwise leak multi-megabyte temp files outside
/// the byte budget forever. Only files older than an hour are swept: a
/// live writer (this process or another) finishes its write-then-rename in
/// seconds, so age is a safe liveness proxy. Best-effort, but no longer
/// silent: a temp whose age cannot be read or whose removal fails counts
/// as a failure so leaked files show up in [`CacheStats`] instead of
/// accumulating invisibly. (An unlisted directory counts as one failure —
/// nothing in it could be inspected.)
fn sweep_stale_temps(dir: &Path) -> (u64, u64) {
    const STALE_SECS: u64 = 3600;
    let (mut swept, mut failures) = (0u64, 0u64);
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return (0, 1),
    };
    for entry in entries.flatten() {
        if !entry.file_name().to_string_lossy().starts_with(".tmp_") {
            continue;
        }
        match entry.metadata().and_then(|m| m.modified()) {
            Ok(mtime) => {
                let stale = mtime.elapsed().is_ok_and(|age| age.as_secs() > STALE_SECS);
                if !stale {
                    continue; // live writer (or clock skew): leave it alone
                }
                match fs::remove_file(entry.path()) {
                    Ok(()) => swept += 1,
                    // Losing the remove race to a peer sweep is success,
                    // not a leak.
                    Err(e) if e.kind() == io::ErrorKind::NotFound => swept += 1,
                    Err(_) => failures += 1,
                }
            }
            Err(_) => failures += 1,
        }
    }
    (swept, failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sybil_churn::arrival::ArrivalProcess;
    use sybil_churn::session::SessionModel;

    fn toy_model() -> ChurnModel {
        ChurnModel {
            name: "cache-toy",
            initial_size: 50,
            arrival: ArrivalProcess::Poisson { rate: 1.0 },
            session: SessionModel::Exponential { mean: 100.0 },
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sybil_exp_cache_{tag}_{}_{}",
            std::process::id(),
            unique_suffix()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn miss_then_hit_serves_same_bytes() {
        let dir = temp_dir("hit");
        let cache = WorkloadCache::open(&dir).unwrap();
        let model = toy_model();
        let a = cache.get_or_create(&model, Time(200.0), 3).unwrap();
        assert_eq!(cache.stats().misses, 1);
        let bytes_a = fs::read(a.path()).unwrap();
        let b = cache.get_or_create(&model, Time(200.0), 3).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(bytes_a, fs::read(b.path()).unwrap());
        // Distinct seed → distinct entry.
        cache.get_or_create(&model, Time(200.0), 4).unwrap();
        assert_eq!(cache.stats().misses, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn key_depends_on_model_content_not_just_name() {
        let a = toy_model();
        let mut b = toy_model();
        b.initial_size += 1;
        assert_ne!(WorkloadCache::key(&a, Time(10.0), 1), WorkloadCache::key(&b, Time(10.0), 1));
        assert_ne!(WorkloadCache::key(&a, Time(10.0), 1), WorkloadCache::key(&a, Time(11.0), 1));
        assert_ne!(WorkloadCache::key(&a, Time(10.0), 1), WorkloadCache::key(&a, Time(10.0), 2));
        assert_eq!(WorkloadCache::key(&a, Time(10.0), 1), WorkloadCache::key(&a, Time(10.0), 1));
    }

    #[test]
    fn corrupt_entry_is_rejected_and_regenerated() {
        let dir = temp_dir("corrupt");
        let cache = WorkloadCache::open(&dir).unwrap();
        let model = toy_model();
        let first = cache.get_or_create(&model, Time(200.0), 9).unwrap();
        let path = first.path().to_path_buf();
        let good = fs::read(&path).unwrap();
        // Truncate the file mid-record.
        fs::write(&path, &good[..good.len() - 5]).unwrap();
        let again = cache.get_or_create(&model, Time(200.0), 9).unwrap();
        assert_eq!(cache.stats().rejected, 1);
        assert_eq!(fs::read(again.path()).unwrap(), good, "regenerated bytes differ");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_evicts_oldest_entries_but_not_the_new_one() {
        let dir = temp_dir("evict");
        // Budget below one file: every insertion evicts all others.
        let cache = WorkloadCache::with_budget(&dir, 1).unwrap();
        let model = toy_model();
        let a = cache.get_or_create(&model, Time(200.0), 1).unwrap();
        assert!(a.path().exists(), "newest entry must survive its own eviction pass");
        let b = cache.get_or_create(&model, Time(200.0), 2).unwrap();
        assert!(b.path().exists());
        assert!(!a.path().exists(), "older entry should have been evicted");
        assert!(cache.stats().evictions >= 1);
        fs::remove_dir_all(&dir).ok();
    }

    /// Same-second mtimes (ubiquitous on 1 s-granularity filesystems) must
    /// not make the victim depend on directory iteration order: ties break
    /// by path, lexicographically smallest first.
    #[test]
    fn eviction_ties_break_deterministically_by_path() {
        let dir = temp_dir("tie");
        let model = toy_model();
        // Materialize two entries and pin them to one identical mtime.
        let sizes: Vec<(PathBuf, u64)> = (1u64..=2)
            .map(|seed| {
                let cache = WorkloadCache::open(&dir).unwrap();
                let w = cache.get_or_create(&model, Time(200.0), seed).unwrap();
                let p = w.path().to_path_buf();
                let len = fs::metadata(&p).unwrap().len();
                (p, len)
            })
            .collect();
        let stamp = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_000_000);
        for (p, _) in &sizes {
            fs::File::options().write(true).open(p).unwrap().set_modified(stamp).unwrap();
        }
        let survivor_by_path = sizes.iter().map(|(p, _)| p).max().unwrap().clone();
        let victim_by_path = sizes.iter().map(|(p, _)| p).min().unwrap().clone();

        // A third insertion over-budget by one byte must evict exactly one
        // of the tied pair: the lexicographically smaller path.
        let third_probe = {
            let probe_dir = temp_dir("tie_probe");
            let cache = WorkloadCache::open(&probe_dir).unwrap();
            let w = cache.get_or_create(&model, Time(200.0), 3).unwrap();
            let len = fs::metadata(w.path()).unwrap().len();
            fs::remove_dir_all(&probe_dir).ok();
            len
        };
        let budget = sizes.iter().map(|(_, l)| l).sum::<u64>() + third_probe - 1;
        let cache = WorkloadCache::with_budget(&dir, budget).unwrap();
        let third = cache.get_or_create(&model, Time(200.0), 3).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert!(third.path().exists(), "the just-written entry is exempt");
        assert!(survivor_by_path.exists(), "tie must evict the smaller path first");
        assert!(!victim_by_path.exists(), "smaller path should have been evicted");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_inserts_under_tiny_budget_all_succeed() {
        // Budget 1 byte: every insert's eviction pass tries to delete every
        // other entry, so writers race evictors constantly. get_or_create
        // must self-heal (regenerate) rather than surface NotFound.
        let dir = temp_dir("evict_race");
        let cache = WorkloadCache::with_budget(&dir, 1).unwrap();
        let model = toy_model();
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let cache = &cache;
                let model = &model;
                scope.spawn(move || {
                    for round in 0..8u64 {
                        let seed = (w + round) % 3;
                        cache.get_or_create(model, Time(80.0), seed).unwrap();
                    }
                });
            }
        });
        assert!(cache.stats().evictions > 0, "budget 1 must evict");
        fs::remove_dir_all(&dir).ok();
    }

    /// Sweeping is no longer silent: removed stale temps are counted into
    /// the open-time stats, and fresh temps (a live writer's) are spared.
    #[test]
    fn stale_temp_sweep_is_counted_not_silent() {
        let dir = temp_dir("sweep");
        let stale = dir.join(".tmp_stale_leftover");
        let fresh = dir.join(".tmp_fresh_writer");
        fs::write(&stale, b"torn").unwrap();
        fs::write(&fresh, b"torn").unwrap();
        let old = std::time::SystemTime::now() - std::time::Duration::from_secs(2 * 3600);
        fs::File::options().write(true).open(&stale).unwrap().set_modified(old).unwrap();

        let cache = WorkloadCache::open(&dir).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.temps_swept, 1, "exactly the stale temp is swept");
        assert_eq!(stats.temp_sweep_failures, 0);
        assert!(!stale.exists() && fresh.exists());
        assert!(stats.render().contains("1 stale temps swept"), "{}", stats.render());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_warmers_do_not_corrupt() {
        let dir = temp_dir("race");
        let cache = WorkloadCache::open(&dir).unwrap();
        let model = toy_model();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for seed in 0..6u64 {
                        cache.get_or_create(&model, Time(150.0), seed).unwrap();
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 24);
        // All six entries valid on disk.
        for seed in 0..6u64 {
            DiskWorkload::open(cache.entry_path(&model, Time(150.0), seed)).unwrap();
        }
        fs::remove_dir_all(&dir).ok();
    }
}
