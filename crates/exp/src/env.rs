//! Strict environment-variable parsing, shared by every `SYBIL_*` knob.
//!
//! The repo's contract for configuration knobs: unset means the default,
//! a valid value overrides, and *anything else aborts with an actionable
//! message* — a typo like `SYBIL_BENCH_WORKERS=all` must never silently
//! launch an hours-long run with the wrong shape. This pattern used to be
//! hand-rolled in three places (`SYBIL_BENCH_FAST`, `SYBIL_BENCH_SHARDS`,
//! `SYBIL_BENCH_CHUNK`); this module is the one implementation, and the
//! gate service's `SYBIL_GATE_*` knobs use it too.
//!
//! Parsers are pure over the raw `std::env::var` result so tests exercise
//! them without touching the process environment (env mutation would race
//! parallel tests).

/// Parses the raw `std::env::var(name)` result with `parse`.
///
/// * unset → `Ok(None)` (the caller's default applies);
/// * non-unicode → `Err` naming the variable;
/// * set → `parse` sees the trimmed value; its error is a *reason
///   fragment* (e.g. `"is not a positive integer"`) that gets prefixed
///   with `name="value"` so every knob's errors read the same way.
pub fn parse<T>(
    name: &str,
    raw: Result<String, std::env::VarError>,
    parse: impl FnOnce(&str) -> Result<T, String>,
) -> Result<Option<T>, String> {
    match raw {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(e) => Err(format!("{name} is not valid unicode: {e}")),
        Ok(v) => {
            let trimmed = v.trim();
            parse(trimmed).map(Some).map_err(|reason| format!("{name}={trimmed:?} {reason}"))
        }
    }
}

/// [`parse`] for the common positive-integer knob: `0` is rejected with
/// `zero_reason` (each knob has its own story for why zero is
/// meaningless), garbage with an example of a valid setting.
pub fn positive_usize(
    name: &str,
    raw: Result<String, std::env::VarError>,
    zero_reason: &str,
) -> Result<Option<usize>, String> {
    parse(name, raw, |v| match v.parse::<usize>() {
        Ok(0) => Err(format!("is invalid: {zero_reason}")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("is not a positive integer (example: {name}=4)")),
    })
}

/// Unwraps an env parse result, aborting the process (exit code 2) with
/// the parse error on stderr — the shared "garbage knob" failure path.
pub fn or_abort<T>(parsed: Result<T, String>) -> T {
    match parsed {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::env::VarError;

    #[test]
    fn unset_is_the_default() {
        assert_eq!(parse("X", Err(VarError::NotPresent), |_| Ok::<u32, String>(1)), Ok(None));
        assert_eq!(positive_usize("X", Err(VarError::NotPresent), "zero"), Ok(None));
    }

    #[test]
    fn values_are_trimmed_before_parsing() {
        assert_eq!(positive_usize("X", Ok(" 16 ".into()), "zero"), Ok(Some(16)));
    }

    #[test]
    fn errors_name_the_variable_and_the_value() {
        let err = positive_usize("SYBIL_TEST_KNOB", Ok("four".into()), "zero").unwrap_err();
        assert!(err.contains("SYBIL_TEST_KNOB=\"four\""), "{err}");
        assert!(err.contains("example: SYBIL_TEST_KNOB=4"), "{err}");
    }

    #[test]
    fn zero_gets_the_knob_specific_reason() {
        let err = positive_usize("K", Ok("0".into()), "this knob needs at least 1").unwrap_err();
        assert!(err.contains("this knob needs at least 1"), "{err}");
        assert!(err.contains("K=\"0\""), "{err}");
    }

    #[test]
    fn custom_parsers_compose() {
        let parse_bit = |v: &str| match v {
            "1" => Ok(true),
            "0" => Ok(false),
            _ => Err("is not valid: use 1 or 0".to_string()),
        };
        assert_eq!(parse("B", Ok("1".into()), parse_bit), Ok(Some(true)));
        assert_eq!(parse("B", Ok("0".into()), parse_bit), Ok(Some(false)));
        let err = parse("B", Ok("yes".into()), parse_bit).unwrap_err();
        assert!(err.contains("B=\"yes\"") && err.contains("use 1 or 0"), "{err}");
    }

    #[test]
    fn or_abort_passes_ok_through() {
        assert_eq!(or_abort(Ok::<_, String>(7)), 7);
        // The Err arm exits the process; exercising it would kill the test
        // runner, so it is covered by the bins' integration with a bad env.
    }
}
