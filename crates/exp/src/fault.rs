//! Deterministic fault injection for the orchestration stack.
//!
//! The paper's claim is that the defense keeps working while the
//! adversary induces churn and failure; this module lets the *experiment
//! pipeline* be tested under the same duress. A [`FaultPlan`] is a seeded
//! description of how often to inject worker panics, IO errors, short
//! (torn) writes, and per-job delays. The store, cache, and grid runner
//! route their fallible operations through the seam functions here
//! ([`check_io`], [`short_write_len`], [`maybe_panic`], [`maybe_delay`]),
//! so a single installed plan perturbs the whole stack.
//!
//! # Zero cost when disabled
//!
//! Everything here is gated on the `fault-inject` cargo feature. Without
//! it, every seam function is an `#[inline(always)]` no-op returning
//! "no fault" — the hot path carries no branches, no locks, and no plan
//! state. Release builds of the drivers never enable the feature.
//!
//! # Determinism
//!
//! Every decision is a pure function of `(plan seed, site, key, attempt)`
//! where `attempt` is a per-`(site, key)` counter. Keys are stable
//! identities (cell ids, cache file names), never thread ids or wall
//! clock, so a plan injects the *same* faults into the same logical
//! operations regardless of worker count or scheduling — chaos runs are
//! reproducible bit-for-bit. The attempt counter makes retries of the
//! same operation draw fresh decisions (otherwise a deterministic
//! function of the key alone would fail the same cell forever), and
//! [`FaultPlan::fault_cap`] bounds the total faults per `(site, key)` so
//! convergence tests terminate by construction.
//!
//! # Enabling
//!
//! Tests install a plan with [`with_plan`] (which also serializes chaos
//! tests against each other — the plan is process-global). Binaries built
//! with the feature can set the `SYBIL_FAULT_PLAN` environment variable,
//! e.g. `SYBIL_FAULT_PLAN=seed=3,panic=0.1,io=0.05,short=0.05,delay=0.2:10,cap=2`;
//! the grid runner calls [`init_from_env`] once per run.

/// Where in the stack a fault is injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Site {
    /// A grid-cell job, before its closure runs (panic / delay faults).
    Job,
    /// A results-store append ([`crate::store::ResultsStore::append`]).
    StoreAppend,
    /// A workload-cache entry write (the temp-file serialization).
    CacheWrite,
    /// The workload cache's temp→entry rename.
    CacheRename,
}

impl Site {
    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    fn tag(self) -> u64 {
        match self {
            Site::Job => 0x4a4f42,
            Site::StoreAppend => 0x53544f52,
            Site::CacheWrite => 0x43575254,
            Site::CacheRename => 0x43524e4d,
        }
    }
}

/// A seeded description of which faults to inject and how often.
///
/// All probabilities are in `[0, 1]`; a plan with every probability zero
/// injects nothing. Construct with [`FaultPlan::new`] and the builder
/// methods, or [`FaultPlan::chaos`] for the canonical mixed plan the
/// chaos suite replays.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Base seed; every decision hashes it with site, key, and attempt.
    pub seed: u64,
    /// Probability a [`Site::Job`] panics before its closure runs.
    pub panic_prob: f64,
    /// Probability an IO operation fails outright.
    pub io_error_prob: f64,
    /// Probability a write is torn: a strict prefix is written, then the
    /// operation fails.
    pub short_write_prob: f64,
    /// Probability a [`Site::Job`] sleeps before running.
    pub delay_prob: f64,
    /// Upper bound (ms) on an injected delay.
    pub max_delay_ms: u64,
    /// Maximum faults injected per `(site, key)` before that operation is
    /// left alone — the convergence bound for chaos tests. `u32::MAX`
    /// means unbounded.
    pub fault_cap: u32,
}

impl FaultPlan {
    /// A plan that injects nothing until builder methods enable faults.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            panic_prob: 0.0,
            io_error_prob: 0.0,
            short_write_prob: 0.0,
            delay_prob: 0.0,
            max_delay_ms: 0,
            fault_cap: u32::MAX,
        }
    }

    /// The canonical mixed plan the chaos suite replays per seed: every
    /// fault class enabled at moderate rates, capped so any single
    /// operation is eventually left alone.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .with_panics(0.3)
            .with_io_errors(0.2)
            .with_short_writes(0.2)
            .with_delays(0.2, 2)
            .with_cap(3)
    }

    /// Sets the job-panic probability.
    pub fn with_panics(mut self, p: f64) -> FaultPlan {
        self.panic_prob = check_prob(p);
        self
    }

    /// Sets the IO-error probability.
    pub fn with_io_errors(mut self, p: f64) -> FaultPlan {
        self.io_error_prob = check_prob(p);
        self
    }

    /// Sets the short-write probability.
    pub fn with_short_writes(mut self, p: f64) -> FaultPlan {
        self.short_write_prob = check_prob(p);
        self
    }

    /// Sets the job-delay probability and maximum delay.
    pub fn with_delays(mut self, p: f64, max_delay_ms: u64) -> FaultPlan {
        self.delay_prob = check_prob(p);
        self.max_delay_ms = max_delay_ms;
        self
    }

    /// Bounds injected faults per `(site, key)`.
    pub fn with_cap(mut self, cap: u32) -> FaultPlan {
        self.fault_cap = cap;
        self
    }
}

fn check_prob(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "fault probability {p} outside [0, 1]");
    p
}

/// SplitMix64 finalizer — the same mix the seed derivations use. Also
/// used by the grid runner's deterministic retry jitter.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string, for hashing keys into the decision stream.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
impl FaultPlan {
    /// The decision stream for `(site, key, attempt, salt)`: a uniform
    /// u64, pure in its inputs. `salt` separates independent draws for
    /// the same operation (fire/don't-fire vs magnitude).
    fn roll(&self, site: Site, key: &str, attempt: u32, salt: u64) -> u64 {
        mix(self
            .seed
            .wrapping_add(mix(site.tag()))
            .wrapping_add(mix(fnv1a(key.as_bytes())))
            .wrapping_add(mix(attempt as u64))
            .wrapping_add(mix(salt)))
    }

    fn decide(&self, prob: f64, site: Site, key: &str, attempt: u32, salt: u64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        // 53 high bits → uniform in [0, 1).
        let u = (self.roll(site, key, attempt, salt) >> 11) as f64 / (1u64 << 53) as f64;
        u < prob
    }
}

#[cfg(feature = "fault-inject")]
mod active {
    use super::{FaultPlan, Site};
    use std::collections::HashMap;
    use std::io;
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// The installed plan plus its per-`(site, key)` attempt and injected
    /// counters. Attempt counters are keyed — not global — so the
    /// decision sequence for one logical operation is independent of how
    /// operations interleave across threads.
    struct ActivePlan {
        plan: FaultPlan,
        attempts: HashMap<(Site, String), u32>,
        injected: HashMap<(Site, String), u32>,
    }

    fn state() -> MutexGuard<'static, Option<ActivePlan>> {
        static STATE: OnceLock<Mutex<Option<ActivePlan>>> = OnceLock::new();
        STATE.get_or_init(|| Mutex::new(None)).lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Serializes [`super::with_plan`] callers: the plan is process-global,
    /// so two concurrent chaos tests would otherwise see each other's
    /// faults.
    fn serial_lock() -> MutexGuard<'static, ()> {
        static SERIAL: OnceLock<Mutex<()>> = OnceLock::new();
        SERIAL.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Uninstalls the plan when a `with_plan` scope ends, even by panic.
    struct Uninstall;
    impl Drop for Uninstall {
        fn drop(&mut self) {
            *state() = None;
        }
    }

    /// Installs `plan` for the duration of `f`, then uninstalls it (even
    /// if `f` panics). Callers are serialized process-wide: the plan is
    /// global state, so concurrent chaos tests must not overlap.
    pub fn with_plan<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
        let _serial = serial_lock();
        *state() = Some(ActivePlan { plan, attempts: HashMap::new(), injected: HashMap::new() });
        let _uninstall = Uninstall;
        f()
    }

    /// Installs a plan from `SYBIL_FAULT_PLAN` (see [`super::parse_plan`])
    /// if the variable is set and no plan is already installed. A plan
    /// installed by [`with_plan`] always wins.
    pub fn init_from_env() {
        let Ok(text) = std::env::var("SYBIL_FAULT_PLAN") else { return };
        let mut guard = state();
        if guard.is_some() {
            return; // an explicitly installed plan wins
        }
        let plan =
            super::parse_plan(&text).unwrap_or_else(|e| panic!("SYBIL_FAULT_PLAN {text:?}: {e}"));
        *guard = Some(ActivePlan { plan, attempts: HashMap::new(), injected: HashMap::new() });
    }

    /// One decision against the active plan: bumps the attempt counter,
    /// enforces the fault cap, and returns the roll salt-stream if the
    /// fault fires.
    fn fire(
        site: Site,
        key: &str,
        prob_of: impl Fn(&FaultPlan) -> f64,
    ) -> Option<(FaultPlan, u32)> {
        let mut guard = state();
        let active = guard.as_mut()?;
        let slot = (site, key.to_string());
        let attempt = {
            let a = active.attempts.entry(slot.clone()).or_insert(0);
            *a += 1;
            *a
        };
        let injected = active.injected.get(&slot).copied().unwrap_or(0);
        if injected >= active.plan.fault_cap {
            return None;
        }
        if active.plan.decide(prob_of(&active.plan), site, key, attempt, 0) {
            *active.injected.entry(slot).or_insert(0) += 1;
            Some((active.plan, attempt))
        } else {
            None
        }
    }

    /// The [`Site::Job`] panic seam: panics if the active plan says this
    /// `(key, attempt)` should.
    pub fn maybe_panic(key: &str) {
        if let Some((_, attempt)) = fire(Site::Job, key, |p| p.panic_prob) {
            panic!("injected fault: worker panic for {key} (attempt {attempt})");
        }
    }

    /// The [`Site::Job`] delay seam: sleeps up to the plan's
    /// `max_delay_ms` if the decision stream says so.
    pub fn maybe_delay(key: &str) {
        if let Some((plan, attempt)) = fire(Site::Job, key, |p| p.delay_prob) {
            if plan.max_delay_ms > 0 {
                let ms = plan.roll(Site::Job, key, attempt, 1) % (plan.max_delay_ms + 1);
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
    }

    /// The IO-error seam: returns an injected [`io::Error`] if the plan
    /// fails this `(site, key, attempt)`.
    pub fn check_io(site: Site, key: &str) -> io::Result<()> {
        if let Some((_, attempt)) = fire(site, key, |p| p.io_error_prob) {
            return Err(io::Error::other(format!(
                "injected fault: {site:?} IO error for {key} (attempt {attempt})"
            )));
        }
        Ok(())
    }

    /// The short-write seam: `Some(n)` means only the first `n < full`
    /// bytes of this write should land before it fails.
    pub fn short_write_len(site: Site, key: &str, full: usize) -> Option<usize> {
        if full == 0 {
            return None;
        }
        let (plan, attempt) = fire(site, key, |p| p.short_write_prob)?;
        // A strict prefix: at least 0, at most full - 1 bytes land.
        Some((plan.roll(site, key, attempt, 2) % full as u64) as usize)
    }
}

#[cfg(feature = "fault-inject")]
pub use active::{check_io, init_from_env, maybe_delay, maybe_panic, short_write_len, with_plan};

/// Parses a `SYBIL_FAULT_PLAN` comma-list, e.g.
/// `seed=3,panic=0.1,io=0.05,short=0.05,delay=0.2:10,cap=2`.
/// Unknown keys are errors — a typo must not silently run fault-free.
pub fn parse_plan(text: &str) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::new(0);
    for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (key, value) =
            part.split_once('=').ok_or_else(|| format!("expected key=value, got {part:?}"))?;
        let fval = || value.parse::<f64>().map_err(|e| format!("{key}: {e}"));
        match key {
            "seed" => plan.seed = value.parse().map_err(|e| format!("seed: {e}"))?,
            "panic" => plan = plan.with_panics(fval()?),
            "io" => plan = plan.with_io_errors(fval()?),
            "short" => plan = plan.with_short_writes(fval()?),
            "delay" => {
                let (p, ms) = value
                    .split_once(':')
                    .ok_or_else(|| format!("delay wants prob:max_ms, got {value:?}"))?;
                plan = plan.with_delays(
                    p.parse().map_err(|e| format!("delay prob: {e}"))?,
                    ms.parse().map_err(|e| format!("delay max_ms: {e}"))?,
                );
            }
            "cap" => plan = plan.with_cap(value.parse().map_err(|e| format!("cap: {e}"))?),
            other => return Err(format!("unknown fault-plan key {other:?}")),
        }
    }
    Ok(plan)
}

// ---- Disabled: every seam compiles to a no-op. -------------------------

/// No-op without the `fault-inject` feature.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn maybe_panic(_key: &str) {}

/// No-op without the `fault-inject` feature.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn maybe_delay(_key: &str) {}

/// No-op without the `fault-inject` feature.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn check_io(_site: Site, _key: &str) -> std::io::Result<()> {
    Ok(())
}

/// No-op without the `fault-inject` feature.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn short_write_len(_site: Site, _key: &str, _full: usize) -> Option<usize> {
    None
}

/// No-op without the `fault-inject` feature.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn init_from_env() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parse_roundtrips_every_key() {
        let plan = parse_plan("seed=7,panic=0.25,io=0.5,short=0.125,delay=0.1:12,cap=3").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.panic_prob, 0.25);
        assert_eq!(plan.io_error_prob, 0.5);
        assert_eq!(plan.short_write_prob, 0.125);
        assert_eq!(plan.delay_prob, 0.1);
        assert_eq!(plan.max_delay_ms, 12);
        assert_eq!(plan.fault_cap, 3);
        assert_eq!(parse_plan("").unwrap(), FaultPlan::new(0));
        assert!(parse_plan("typo=1").unwrap_err().contains("unknown"));
        assert!(parse_plan("panic").unwrap_err().contains("key=value"));
        assert!(parse_plan("delay=0.5").unwrap_err().contains("prob:max_ms"));
    }

    #[test]
    fn decisions_are_deterministic_in_their_inputs() {
        let plan = FaultPlan::new(42).with_io_errors(0.5);
        for attempt in 0..8 {
            let a = plan.decide(0.5, Site::StoreAppend, "cell-a", attempt, 0);
            let b = plan.decide(0.5, Site::StoreAppend, "cell-a", attempt, 0);
            assert_eq!(a, b, "same inputs must decide identically");
        }
        // Distinct keys / attempts / sites draw independent streams: over
        // many draws at p = 0.5 both outcomes must occur.
        let fired = (0..64)
            .filter(|&i| plan.decide(0.5, Site::StoreAppend, &format!("cell-{i}"), 1, 0))
            .count();
        assert!(fired > 8 && fired < 56, "p=0.5 fired {fired}/64");
    }

    #[test]
    fn zero_and_one_probabilities_are_exact() {
        let plan = FaultPlan::new(9);
        for i in 0..32 {
            assert!(!plan.decide(0.0, Site::Job, &format!("k{i}"), i, 0));
            assert!(plan.decide(1.0, Site::Job, &format!("k{i}"), i, 0));
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_probability_is_rejected() {
        let _ = FaultPlan::new(1).with_panics(1.5);
    }
}
