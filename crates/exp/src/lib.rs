//! `sybil-exp` — experiment orchestration for paper-scale sweeps.
//!
//! The figure experiments are grids: an ordered set of **named axes**
//! (churn network × defense × adversary spend rate for the spend sweeps;
//! Sybil fraction, knob values, good fractions for the irregular ones),
//! each cell repeated for several trials. This crate owns everything
//! about running such a grid *well* at million-ID scale:
//!
//! * [`spec`] — declarative [`ExperimentSpec`](spec::ExperimentSpec)
//!   (serializable, versioned, named [`Axis`](spec::Axis) lists with
//!   injective escaped cell ids) and deterministic cell→seed derivation
//!   ([`spec::trial_seed`] / [`spec::defense_seed`] /
//!   [`ExperimentSpec::cell_seed`](spec::ExperimentSpec::cell_seed));
//! * [`cache`] — content-addressed on-disk
//!   [`WorkloadCache`](cache::WorkloadCache): each (churn model, seed,
//!   horizon) workload is generated once through
//!   [`sybil_sim::workload_io`] and disk-streamed into every cell and
//!   trial that shares it, with header validation on reuse and an
//!   oldest-first size-budget eviction policy;
//! * [`env`] — the strict `SYBIL_*` environment-knob parsing contract
//!   (unset → default, valid → override, garbage → abort with an
//!   actionable message), shared by the bench knobs and the gate
//!   service's `SYBIL_GATE_*` settings;
//! * [`stats`] — streaming [`Welford`](stats::Welford) mean/variance and
//!   t-based 95 % confidence intervals, so multi-trial aggregation never
//!   holds a cell's reports resident together;
//! * [`store`] — append-only [`ResultsStore`](store::ResultsStore): one
//!   flushed line per finished cell, so interrupted grids resume by
//!   skipping completed cells;
//! * [`pool`] — the chunked work-stealing pool (moved from the bench
//!   crate), instrumented with per-worker job/chunk/busy counters
//!   ([`PoolStats`](pool::PoolStats)) and panic-isolated: each job runs
//!   under `catch_unwind`, so one poisoned cell never aborts its
//!   siblings ([`run_parallel_catch`](pool::run_parallel_catch));
//! * [`fault`] — deterministic, seeded fault injection
//!   ([`FaultPlan`](fault::FaultPlan)) behind the `fault-inject` cargo
//!   feature: worker panics, IO errors, torn writes, and delays, pure in
//!   `(seed, site, key, attempt)` so chaos runs reproduce bit-for-bit;
//! * [`runner`] — [`run_grid`](runner::run_grid) /
//!   [`run_cell_grid`](runner::run_cell_grid) /
//!   [`run_spec_grid`](runner::run_spec_grid) tying the pieces together
//!   with a [`RunSummary`](runner::RunSummary), rejecting duplicate cell
//!   ids up front, retrying failed cells with bounded backoff, and
//!   quarantining cells that exhaust their retries as explicit holes
//!   (see the [`runner`] module docs for the failure semantics).
//!
//! The bench crate's figure drivers (`figure8`, `figure9`, `figure10`,
//! `lower_bound_exp`, `ablation_exp`) are thin maps from paper rosters to
//! this machinery. See `crates/exp/README.md` for the file formats,
//! resume semantics, and failure semantics.

// Deny rather than forbid: the one sanctioned exception is the
// `GlobalAlloc` impl in [`alloc`], which carries a scoped allow.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod cache;
pub mod env;
pub mod fault;
pub mod pool;
pub mod runner;
pub mod spec;
pub mod stats;
pub mod store;

pub use alloc::{counting_enabled, disarm_trap, trap_after, AllocStats, CountingAlloc};
pub use cache::{CacheStats, WorkloadCache};
pub use fault::FaultPlan;
pub use pool::{
    default_shards, run_parallel, run_parallel_catch, run_parallel_scratch, run_parallel_stats,
    shard_budget, JobOutcome, PoolStats, Scratch,
};
pub use runner::{
    run_cell_grid, run_cell_grid_opts, run_grid, run_grid_opts, run_spec_grid, run_spec_grid_opts,
    CellFailure, GridOptions, GridOutcome, RetryPolicy, RunSummary,
};
pub use spec::{defense_seed, trial_seed, Axis, AxisValue, CellSpec, ExperimentSpec};
pub use stats::{MetricSummary, Welford};
pub use store::{Durability, Record, ResultsStore};
