//! The chunked work-stealing job pool, with per-worker instrumentation
//! and a per-worker [`Scratch`] arena reset between jobs (so a grid's
//! trials reuse staging capacity instead of allocating per trial).
//!
//! Moved here from the bench crate's `sweep` module so the experiment
//! runner and the figure drivers share one scheduler; `sweep` re-exports
//! these names, so existing callers are unaffected.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{OnceLock, PoisonError};
use std::time::Instant;

/// Parses a `SYBIL_BENCH_CHUNK` setting: a positive integer overrides the
/// pool's computed chunk size for cursor claims.
///
/// Strict, like `SYBIL_BENCH_WORKERS`: garbage (including `0`, which
/// would make the claim cursor spin forever without claiming) is an
/// error, not a silently ignored knob. The hard-coded
/// `n / (workers · 8)` heuristic has only ever been observed on 1-core
/// CI; this override exists so multi-core hosts can tune it and record
/// the effective value through [`PoolStats::chunk_size`].
pub fn parse_chunk(raw: Result<String, std::env::VarError>) -> Result<Option<usize>, String> {
    crate::env::positive_usize(
        "SYBIL_BENCH_CHUNK",
        raw,
        "workers claim at least one job per chunk (unset the variable for the computed default)",
    )
}

/// Reads [`parse_chunk`] from the environment.
pub fn chunk_from_env() -> Result<Option<usize>, String> {
    parse_chunk(std::env::var("SYBIL_BENCH_CHUNK"))
}

/// The cached `SYBIL_BENCH_CHUNK` override; an invalid setting aborts with
/// the parse error rather than being silently ignored.
fn chunk_override() -> Option<usize> {
    static CHUNK: OnceLock<Option<usize>> = OnceLock::new();
    *CHUNK.get_or_init(|| crate::env::or_abort(chunk_from_env()))
}

/// Parses a `SYBIL_BENCH_SHARDS` setting: how many engine shards each
/// grid cell's simulation replays with (see `sybil_sim::shard`). Each
/// shard owns its slice of the defense state too — admission bits and
/// integer spend ledgers, reduced deterministically at epoch boundaries
/// (see `sybil_sim::shard_state`) — so the count never changes results,
/// only the work split.
///
/// Strict, like `SYBIL_BENCH_WORKERS`: `0` or garbage aborts instead of
/// silently running unsharded.
pub fn parse_shards(raw: Result<String, std::env::VarError>) -> Result<Option<usize>, String> {
    crate::env::positive_usize(
        "SYBIL_BENCH_SHARDS",
        raw,
        "a simulation needs at least one shard (unset the variable to run unsharded)",
    )
}

/// Reads [`parse_shards`] from the environment.
pub fn shards_from_env() -> Result<Option<usize>, String> {
    parse_shards(std::env::var("SYBIL_BENCH_SHARDS"))
}

/// Shards per cell: the `SYBIL_BENCH_SHARDS` override, else 1 (unsharded —
/// the pre-sharding behavior). Aborts on an invalid override.
pub fn default_shards() -> usize {
    static SHARDS: OnceLock<usize> = OnceLock::new();
    *SHARDS.get_or_init(|| crate::env::or_abort(shards_from_env()).unwrap_or(1))
}

/// Splits a worker budget between the cell pool and in-cell shards.
///
/// With `shards` worker threads running inside every cell, an outer pool
/// of `workers` would put `workers × shards` runnable threads on the
/// machine. This keeps the product within the original budget by shrinking
/// the outer pool: `max(1, workers / shards)`. Shards beyond the whole
/// budget are allowed (a single cell may legitimately want more shards
/// than cores — correctness never depends on shard count), so the outer
/// pool just degrades to 1.
///
/// # Panics
///
/// Panics if either argument is 0 — both are validated counts
/// ([`default_shards`], `default_workers`) by the time they get here.
pub fn shard_budget(workers: usize, shards: usize) -> usize {
    assert!(workers > 0, "need at least one worker");
    assert!(shards > 0, "need at least one shard");
    (workers / shards).max(1)
}

/// Per-worker scheduling counters from one pool run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkerStats {
    /// Jobs this worker executed.
    pub jobs: u64,
    /// Chunks this worker claimed off the shared cursor. A worker claiming
    /// many more chunks than `jobs / chunk size` would imply under static
    /// partitioning has been stealing slack from slower siblings.
    pub chunks: u64,
    /// Jobs whose closure panicked (caught; the worker kept running).
    pub panics: u64,
    /// Wall seconds this worker spent inside job closures.
    pub busy_secs: f64,
}

/// Aggregate pool efficiency counters from one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolStats {
    /// Per-worker counters, indexed by worker.
    pub workers: Vec<WorkerStats>,
    /// Wall seconds from first spawn to last join.
    pub wall_secs: f64,
    /// Chunk size used for cursor claims.
    pub chunk_size: usize,
}

impl PoolStats {
    /// Total jobs executed.
    pub fn total_jobs(&self) -> u64 {
        self.workers.iter().map(|w| w.jobs).sum()
    }

    /// Fraction of total worker-seconds spent *outside* job closures —
    /// scheduling overhead plus tail idling while the last chunks drain.
    /// Near 0 is perfect scaling; large values at high core counts mean
    /// the chunking (or the job mix) is leaving workers starved.
    pub fn idle_fraction(&self) -> f64 {
        let capacity = self.wall_secs * self.workers.len() as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.workers.iter().map(|w| w.busy_secs).sum();
        ((capacity - busy) / capacity).max(0.0)
    }

    /// Ratio of the busiest worker's job count to the mean — 1.0 is a
    /// perfectly balanced run; high values mean a few workers carried the
    /// grid (long-tailed cells).
    pub fn job_imbalance(&self) -> f64 {
        if self.workers.is_empty() {
            return 1.0;
        }
        let max = self.workers.iter().map(|w| w.jobs).max().unwrap_or(0) as f64;
        let mean = self.total_jobs() as f64 / self.workers.len() as f64;
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Total jobs whose closure panicked (caught, not fatal).
    pub fn total_panics(&self) -> u64 {
        self.workers.iter().map(|w| w.panics).sum()
    }

    /// Merges another run's counters into this one: per-worker counters
    /// add elementwise (extra workers append), wall time accumulates.
    /// Used by the grid runner to fold retry rounds into one report; the
    /// chunk size stays the first (bulk) round's.
    pub fn absorb(&mut self, other: &PoolStats) {
        for (i, w) in other.workers.iter().enumerate() {
            if i < self.workers.len() {
                let mine = &mut self.workers[i];
                mine.jobs += w.jobs;
                mine.chunks += w.chunks;
                mine.panics += w.panics;
                mine.busy_secs += w.busy_secs;
            } else {
                self.workers.push(*w);
            }
        }
        self.wall_secs += other.wall_secs;
        if self.chunk_size == 0 {
            self.chunk_size = other.chunk_size;
        }
    }

    /// One-line human summary for experiment run reports.
    pub fn render(&self) -> String {
        let jobs: Vec<u64> = self.workers.iter().map(|w| w.jobs).collect();
        let panics = self.total_panics();
        let panic_note = if panics > 0 { format!(", {panics} panicked") } else { String::new() };
        format!(
            "pool: {} jobs on {} workers in {:.2}s (chunk {}, idle {:.1}%, imbalance {:.2}{panic_note}, per-worker jobs {:?})",
            self.total_jobs(),
            self.workers.len(),
            self.wall_secs,
            self.chunk_size,
            self.idle_fraction() * 100.0,
            self.job_imbalance(),
            jobs,
        )
    }
}

/// What happened to one job under [`run_parallel_catch`].
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome<T> {
    /// The closure returned normally.
    Done(T),
    /// The closure panicked; the payload's message (panics are caught per
    /// job, so one poisoned cell can never abort its siblings).
    Panicked(String),
}

impl<T> JobOutcome<T> {
    /// The value, if the job completed.
    pub fn into_done(self) -> Option<T> {
        match self {
            JobOutcome::Done(v) => Some(v),
            JobOutcome::Panicked(_) => None,
        }
    }
}

/// Per-worker scratch arena, reset (capacity-preserving) between jobs.
///
/// Every worker thread owns exactly one `Scratch` for the lifetime of a
/// pool run and hands it to each job it executes via
/// [`run_parallel_scratch`]. Before a job runs, the arena is cleared but
/// its backing capacity is kept, so a grid of ten thousand trials that
/// each need a staging buffer performs the allocation once per worker —
/// on the first trial — and zero times after warmup, instead of once per
/// trial. A panicking job leaves its arena in an arbitrary state; the
/// pre-job reset restores the clean-arena invariant before the next trial.
///
/// The buffers are deliberately plain so any trial shape can stage into
/// them; a job must not assume anything about contents on entry beyond
/// "empty with whatever capacity earlier trials grew".
#[derive(Debug, Default)]
pub struct Scratch {
    bytes: Vec<u8>,
    ids: Vec<u64>,
    text: String,
}

impl Scratch {
    /// Byte staging buffer (serialization, record assembly).
    pub fn bytes(&mut self) -> &mut Vec<u8> {
        &mut self.bytes
    }

    /// Index/ID staging buffer (candidate lists, sort keys).
    pub fn ids(&mut self) -> &mut Vec<u64> {
        &mut self.ids
    }

    /// Text staging buffer (cell ids, rendered records).
    pub fn text(&mut self) -> &mut String {
        &mut self.text
    }

    /// Clears every buffer, keeping capacity (the arena reset).
    fn reset(&mut self) {
        self.bytes.clear();
        self.ids.clear();
        self.text.clear();
    }
}

/// Renders a caught panic payload (the `&str` / `String` forms `panic!`
/// produces; anything else is labelled opaquely).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `jobs` on `workers` threads, preserving input order of results.
/// See [`run_parallel_stats`] for the scheduling contract; this variant
/// drops the instrumentation.
pub fn run_parallel<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_parallel_stats(jobs, workers).0
}

/// Runs `jobs` on `workers` threads, preserving input order of results,
/// and reports per-worker scheduling stats.
///
/// Scheduling is chunked work-stealing: workers claim contiguous chunks of
/// roughly `n / (workers · 8)` jobs off a shared atomic cursor, so fast
/// workers steal the slack of slow ones at chunk granularity while the
/// claim itself is a single uncontended `fetch_add`. Results land in
/// per-worker buffers; no lock is held while a job runs.
///
/// Determinism: a job closure must depend only on what it captured (the
/// experiment drivers capture fixed seeds; multi-trial drivers derive
/// theirs from `trial_seed`) and never on which worker runs it, so the
/// returned vector is identical regardless of `workers` or scheduling —
/// only [`PoolStats`] varies between runs.
///
/// # Panics
///
/// Panics *after every job has been given its chance to run* if any job
/// panicked — one panic per run on the calling thread, never a cascade of
/// poisoned-mutex aborts across workers. Callers that need per-job panic
/// outcomes use [`run_parallel_catch`].
pub fn run_parallel_stats<T, F>(jobs: Vec<F>, workers: usize) -> (Vec<T>, PoolStats)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let (outcomes, stats) = run_parallel_catch(jobs, workers);
    let mut first_panic: Option<String> = None;
    let mut panics = 0usize;
    let results: Vec<T> = outcomes
        .into_iter()
        .filter_map(|o| match o {
            JobOutcome::Done(v) => Some(v),
            JobOutcome::Panicked(msg) => {
                panics += 1;
                first_panic.get_or_insert(msg);
                None
            }
        })
        .collect();
    if let Some(msg) = first_panic {
        panic!("{panics} pool job(s) panicked; first: {msg}");
    }
    (results, stats)
}

/// One worker's buffered output: `(job index, outcome)` pairs plus stats.
type WorkerBuffer<T> = (Vec<(usize, JobOutcome<T>)>, WorkerStats);

/// Runs `jobs` on `workers` threads, catching per-job panics.
///
/// Same scheduling contract as [`run_parallel_stats`], but each job runs
/// under [`catch_unwind`]: a panicking closure yields
/// [`JobOutcome::Panicked`] with its message while every other job — on
/// the same worker or its siblings — runs to completion. Job-slot claims
/// ignore mutex poisoning (a slot's guard is never held across user code,
/// so poison there can only mean a *sibling* worker's panic mid-claim,
/// which must not cascade).
pub fn run_parallel_catch<T, F>(jobs: Vec<F>, workers: usize) -> (Vec<JobOutcome<T>>, PoolStats)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let jobs: Vec<_> = jobs.into_iter().map(|f| move |_: &mut Scratch| f()).collect();
    run_parallel_scratch(jobs, workers)
}

/// Runs scratch-aware `jobs` on `workers` threads, catching per-job
/// panics — the core loop every `run_parallel*` variant rides.
///
/// Same scheduling and panic contract as [`run_parallel_catch`], but each
/// closure receives its worker's [`Scratch`] arena, reset
/// (capacity-preserving) before the job runs. Determinism is unchanged:
/// the arena is always empty on entry, so a job observing only contents
/// (never capacity) behaves identically regardless of which worker runs
/// it or what ran before.
pub fn run_parallel_scratch<T, F>(jobs: Vec<F>, workers: usize) -> (Vec<JobOutcome<T>>, PoolStats)
where
    T: Send,
    F: FnOnce(&mut Scratch) -> T + Send,
{
    assert!(workers > 0, "need at least one worker");
    let n = jobs.len();
    if n == 0 {
        return (Vec::new(), PoolStats::default());
    }
    let workers = workers.min(n);
    // Chunks small enough that a slow chunk can be compensated by steals,
    // large enough to amortize the atomic claim; SYBIL_BENCH_CHUNK
    // overrides the heuristic (the effective value is recorded in
    // PoolStats::chunk_size either way).
    let chunk = chunk_override().unwrap_or_else(|| (n / (workers * 8)).max(1));
    let jobs: Vec<std::sync::Mutex<Option<F>>> =
        jobs.into_iter().map(|f| std::sync::Mutex::new(Some(f))).collect();
    let cursor = AtomicUsize::new(0);
    let started = Instant::now();
    let mut buffers: Vec<WorkerBuffer<T>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, JobOutcome<T>)> = Vec::new();
                    let mut stats = WorkerStats::default();
                    let mut scratch = Scratch::default();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        stats.chunks += 1;
                        let end = (start + chunk).min(n);
                        for (slot, idx) in jobs[start..end].iter().zip(start..end) {
                            let f = slot
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .take()
                                .expect("job claimed twice");
                            let job_started = Instant::now();
                            scratch.reset();
                            let outcome = match catch_unwind(AssertUnwindSafe(|| f(&mut scratch))) {
                                Ok(value) => JobOutcome::Done(value),
                                Err(payload) => {
                                    stats.panics += 1;
                                    JobOutcome::Panicked(panic_message(payload))
                                }
                            };
                            local.push((idx, outcome));
                            stats.busy_secs += job_started.elapsed().as_secs_f64();
                            stats.jobs += 1;
                        }
                    }
                    (local, stats)
                })
            })
            .collect();
        // Workers catch job panics, so a join can only fail if the worker
        // thread itself died (e.g. an abort) — genuinely unrecoverable.
        buffers = handles.into_iter().map(|h| h.join().expect("worker thread died")).collect();
    });
    let wall_secs = started.elapsed().as_secs_f64();
    let mut results: Vec<Option<JobOutcome<T>>> = (0..n).map(|_| None).collect();
    let mut worker_stats = Vec::with_capacity(buffers.len());
    for (buffer, stats) in buffers {
        worker_stats.push(stats);
        for (idx, value) in buffer {
            results[idx] = Some(value);
        }
    }
    let stats = PoolStats { workers: worker_stats, wall_secs, chunk_size: chunk };
    (results.into_iter().map(|r| r.expect("job resolved")).collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_parallel_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..20usize).map(|i| Box::new(move || i * i) as _).collect();
        let out = run_parallel(jobs, 4);
        assert_eq!(out, (0..20usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_parallel_handles_edge_shapes() {
        // Empty job list.
        let none: Vec<Box<dyn FnOnce() -> u32 + Send>> = Vec::new();
        assert!(run_parallel(none, 4).is_empty());
        // More workers than jobs.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..3usize).map(|i| Box::new(move || i) as _).collect();
        assert_eq!(run_parallel(jobs, 64), vec![0, 1, 2]);
        // Single worker degrades to sequential.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..7usize).map(|i| Box::new(move || i + 1) as _).collect();
        assert_eq!(run_parallel(jobs, 1), (1..=7).collect::<Vec<_>>());
    }

    #[test]
    fn stats_account_for_every_job_and_chunk() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..40usize).map(|i| Box::new(move || i) as _).collect();
        let (out, stats) = run_parallel_stats(jobs, 4);
        assert_eq!(out.len(), 40);
        assert_eq!(stats.total_jobs(), 40);
        assert_eq!(stats.workers.len(), 4);
        let chunks: u64 = stats.workers.iter().map(|w| w.chunks).sum();
        // Every claimed chunk is non-empty, and together they cover the
        // jobs exactly once.
        assert!((1..=40).contains(&chunks));
        assert!(stats.chunk_size >= 1);
        assert!(stats.wall_secs >= 0.0);
        assert!((0.0..=1.0).contains(&stats.idle_fraction()));
        assert!(stats.job_imbalance() >= 1.0 - 1e-9);
        // Render mentions the headline numbers.
        let line = stats.render();
        assert!(line.contains("40 jobs") && line.contains("4 workers"), "{line}");
    }

    /// Regression for the pre-hardening cascade: a deliberately panicking
    /// job used to poison shared state and convert every sibling worker's
    /// slot claim into an `expect("job slot poisoned")` abort, and the
    /// join into `expect("worker panicked")`. Now the panic is caught per
    /// job: every other job completes and reports its value.
    #[test]
    fn panicking_job_does_not_cascade_to_siblings() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..24usize)
            .map(|i| {
                Box::new(move || {
                    if i == 7 {
                        panic!("deliberate test panic in job {i}");
                    }
                    i * 10
                }) as _
            })
            .collect();
        let (outcomes, stats) = run_parallel_catch(jobs, 4);
        assert_eq!(outcomes.len(), 24);
        assert_eq!(stats.total_jobs(), 24, "every job must still be claimed and run");
        assert_eq!(stats.total_panics(), 1);
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                JobOutcome::Done(v) => {
                    assert_ne!(i, 7);
                    assert_eq!(v, i * 10);
                }
                JobOutcome::Panicked(msg) => {
                    assert_eq!(i, 7);
                    assert!(msg.contains("deliberate test panic in job 7"), "{msg}");
                }
            }
        }
        let line = stats.render();
        assert!(line.contains("1 panicked"), "{line}");
    }

    /// The strict variant still fails loudly — but with one aggregate
    /// panic on the caller after all jobs ran, never a worker-side abort.
    #[test]
    fn run_parallel_stats_reports_panics_once_after_draining() {
        let ran = std::sync::atomic::AtomicUsize::new(0);
        let ran_ref = &ran;
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send + '_>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    ran_ref.fetch_add(1, Ordering::Relaxed);
                    if i == 2 {
                        panic!("boom");
                    }
                    i
                }) as _
            })
            .collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| run_parallel_stats(jobs, 2)));
        let msg = panic_message(caught.unwrap_err());
        assert!(msg.contains("1 pool job(s) panicked") && msg.contains("boom"), "{msg}");
        assert_eq!(ran.load(Ordering::Relaxed), 8, "siblings must drain before the panic");
    }

    /// A boxed scratch-aware job, as the arena tests build them.
    type ScratchJob<T> = Box<dyn FnOnce(&mut Scratch) -> T + Send>;

    /// The arena contract: one worker runs every job in sequence, job 0
    /// grows the scratch, and every later job must see it *empty* (reset)
    /// but still *capacious* (no per-trial reallocation).
    #[test]
    fn scratch_is_reset_but_keeps_capacity_across_jobs() {
        const GROW: usize = 1 << 16;
        let jobs: Vec<ScratchJob<(usize, usize)>> = (0..10usize)
            .map(|i| {
                Box::new(move |s: &mut Scratch| {
                    let observed = (s.bytes().len(), s.bytes().capacity());
                    if i == 0 {
                        s.bytes().resize(GROW, 0);
                        s.ids().extend(0..128);
                        s.text().push_str("warmup");
                    } else {
                        assert!(s.ids().is_empty() && s.text().is_empty(), "arena not reset");
                    }
                    observed
                }) as _
            })
            .collect();
        let (outcomes, _) = run_parallel_scratch(jobs, 1);
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let (len, cap) = match outcome {
                JobOutcome::Done(v) => v,
                JobOutcome::Panicked(msg) => panic!("job {i} panicked: {msg}"),
            };
            assert_eq!(len, 0, "job {i} saw a dirty arena");
            if i > 0 {
                assert!(cap >= GROW, "job {i} saw capacity {cap}: warmup allocation was lost");
            }
        }
    }

    /// A panicking job must not poison the arena for its successors: the
    /// pre-job reset restores the clean state.
    #[test]
    fn scratch_survives_a_panicking_job() {
        let jobs: Vec<ScratchJob<usize>> = (0..4usize)
            .map(|i| {
                Box::new(move |s: &mut Scratch| {
                    assert!(s.bytes().is_empty(), "job {i} saw a dirty arena");
                    s.bytes().push(i as u8);
                    if i == 1 {
                        panic!("mid-write panic");
                    }
                    s.bytes().len()
                }) as _
            })
            .collect();
        let (outcomes, stats) = run_parallel_scratch(jobs, 1);
        assert_eq!(stats.total_panics(), 1);
        assert_eq!(outcomes.iter().filter(|o| matches!(o, JobOutcome::Done(1))).count(), 3);
    }

    #[test]
    fn chunk_and_shard_parsing_is_strict() {
        use std::env::VarError;
        // Valid values and absence.
        assert_eq!(parse_chunk(Err(VarError::NotPresent)), Ok(None));
        assert_eq!(parse_chunk(Ok("4".into())), Ok(Some(4)));
        assert_eq!(parse_chunk(Ok(" 16 ".into())), Ok(Some(16)));
        assert_eq!(parse_shards(Err(VarError::NotPresent)), Ok(None));
        assert_eq!(parse_shards(Ok("2".into())), Ok(Some(2)));
        // Garbage aborts the run (here: errors), never a silent default.
        for bad in ["0", "-1", "four", "4.5", ""] {
            let err = parse_chunk(Ok(bad.into())).unwrap_err();
            assert!(err.contains("SYBIL_BENCH_CHUNK"), "{err}");
            let err = parse_shards(Ok(bad.into())).unwrap_err();
            assert!(err.contains("SYBIL_BENCH_SHARDS"), "{err}");
        }
    }

    #[test]
    fn shard_budget_keeps_the_thread_product_bounded() {
        assert_eq!(shard_budget(8, 1), 8);
        assert_eq!(shard_budget(8, 2), 4);
        assert_eq!(shard_budget(8, 3), 2);
        assert_eq!(shard_budget(4, 4), 1);
        // Oversubscribed shards: outer pool degrades to 1, never 0.
        assert_eq!(shard_budget(2, 16), 1);
        assert_eq!(shard_budget(1, 1), 1);
    }

    #[test]
    fn chunk_override_is_recorded_in_stats() {
        // The override is a process-global OnceLock, so this test cannot
        // set the env var without racing siblings; it pins the *absence*
        // path: stats report the computed chunk.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..64usize).map(|i| Box::new(move || i) as _).collect();
        let (_, stats) = run_parallel_stats(jobs, 2);
        let expected = chunk_from_env().unwrap().unwrap_or(64 / (2 * 8));
        assert_eq!(stats.chunk_size, expected);
    }

    #[test]
    fn absorb_merges_worker_counters_elementwise() {
        let mut a = PoolStats {
            workers: vec![WorkerStats { jobs: 3, chunks: 1, panics: 0, busy_secs: 0.5 }],
            wall_secs: 1.0,
            chunk_size: 2,
        };
        let b = PoolStats {
            workers: vec![
                WorkerStats { jobs: 2, chunks: 2, panics: 1, busy_secs: 0.25 },
                WorkerStats { jobs: 4, chunks: 1, panics: 0, busy_secs: 0.75 },
            ],
            wall_secs: 0.5,
            chunk_size: 1,
        };
        a.absorb(&b);
        assert_eq!(a.total_jobs(), 9);
        assert_eq!(a.total_panics(), 1);
        assert_eq!(a.workers.len(), 2);
        assert_eq!(a.workers[0].jobs, 5);
        assert_eq!(a.wall_secs, 1.5);
        assert_eq!(a.chunk_size, 2, "first round's chunk size wins");
    }

    #[test]
    fn single_worker_stats_are_fully_busy_shaped() {
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..8u64)
            .map(|i| {
                Box::new(move || {
                    // A tiny but nonzero workload so busy_secs registers.
                    let mut acc = i;
                    for k in 0..2000u64 {
                        acc = acc.wrapping_mul(31).wrapping_add(k);
                    }
                    std::hint::black_box(acc)
                }) as _
            })
            .collect();
        let (_, stats) = run_parallel_stats(jobs, 1);
        assert_eq!(stats.workers.len(), 1);
        assert_eq!(stats.workers[0].jobs, 8);
        assert!(stats.workers[0].busy_secs > 0.0);
    }
}
