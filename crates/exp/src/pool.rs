//! The chunked work-stealing job pool, with per-worker instrumentation.
//!
//! Moved here from the bench crate's `sweep` module so the experiment
//! runner and the figure drivers share one scheduler; `sweep` re-exports
//! these names, so existing callers are unaffected.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Per-worker scheduling counters from one pool run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkerStats {
    /// Jobs this worker executed.
    pub jobs: u64,
    /// Chunks this worker claimed off the shared cursor. A worker claiming
    /// many more chunks than `jobs / chunk size` would imply under static
    /// partitioning has been stealing slack from slower siblings.
    pub chunks: u64,
    /// Wall seconds this worker spent inside job closures.
    pub busy_secs: f64,
}

/// Aggregate pool efficiency counters from one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolStats {
    /// Per-worker counters, indexed by worker.
    pub workers: Vec<WorkerStats>,
    /// Wall seconds from first spawn to last join.
    pub wall_secs: f64,
    /// Chunk size used for cursor claims.
    pub chunk_size: usize,
}

impl PoolStats {
    /// Total jobs executed.
    pub fn total_jobs(&self) -> u64 {
        self.workers.iter().map(|w| w.jobs).sum()
    }

    /// Fraction of total worker-seconds spent *outside* job closures —
    /// scheduling overhead plus tail idling while the last chunks drain.
    /// Near 0 is perfect scaling; large values at high core counts mean
    /// the chunking (or the job mix) is leaving workers starved.
    pub fn idle_fraction(&self) -> f64 {
        let capacity = self.wall_secs * self.workers.len() as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.workers.iter().map(|w| w.busy_secs).sum();
        ((capacity - busy) / capacity).max(0.0)
    }

    /// Ratio of the busiest worker's job count to the mean — 1.0 is a
    /// perfectly balanced run; high values mean a few workers carried the
    /// grid (long-tailed cells).
    pub fn job_imbalance(&self) -> f64 {
        if self.workers.is_empty() {
            return 1.0;
        }
        let max = self.workers.iter().map(|w| w.jobs).max().unwrap_or(0) as f64;
        let mean = self.total_jobs() as f64 / self.workers.len() as f64;
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// One-line human summary for experiment run reports.
    pub fn render(&self) -> String {
        let jobs: Vec<u64> = self.workers.iter().map(|w| w.jobs).collect();
        format!(
            "pool: {} jobs on {} workers in {:.2}s (chunk {}, idle {:.1}%, imbalance {:.2}, per-worker jobs {:?})",
            self.total_jobs(),
            self.workers.len(),
            self.wall_secs,
            self.chunk_size,
            self.idle_fraction() * 100.0,
            self.job_imbalance(),
            jobs,
        )
    }
}

/// Runs `jobs` on `workers` threads, preserving input order of results.
/// See [`run_parallel_stats`] for the scheduling contract; this variant
/// drops the instrumentation.
pub fn run_parallel<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_parallel_stats(jobs, workers).0
}

/// Runs `jobs` on `workers` threads, preserving input order of results,
/// and reports per-worker scheduling stats.
///
/// Scheduling is chunked work-stealing: workers claim contiguous chunks of
/// roughly `n / (workers · 8)` jobs off a shared atomic cursor, so fast
/// workers steal the slack of slow ones at chunk granularity while the
/// claim itself is a single uncontended `fetch_add`. Results land in
/// per-worker buffers; no lock is held while a job runs.
///
/// Determinism: a job closure must depend only on what it captured (the
/// experiment drivers capture fixed seeds; multi-trial drivers derive
/// theirs from `trial_seed`) and never on which worker runs it, so the
/// returned vector is identical regardless of `workers` or scheduling —
/// only [`PoolStats`] varies between runs.
pub fn run_parallel_stats<T, F>(jobs: Vec<F>, workers: usize) -> (Vec<T>, PoolStats)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    assert!(workers > 0, "need at least one worker");
    let n = jobs.len();
    if n == 0 {
        return (Vec::new(), PoolStats::default());
    }
    let workers = workers.min(n);
    // Chunks small enough that a slow chunk can be compensated by steals,
    // large enough to amortize the atomic claim.
    let chunk = (n / (workers * 8)).max(1);
    let jobs: Vec<std::sync::Mutex<Option<F>>> =
        jobs.into_iter().map(|f| std::sync::Mutex::new(Some(f))).collect();
    let cursor = AtomicUsize::new(0);
    let started = Instant::now();
    let mut buffers: Vec<(Vec<(usize, T)>, WorkerStats)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    let mut stats = WorkerStats::default();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        stats.chunks += 1;
                        let end = (start + chunk).min(n);
                        for (slot, idx) in jobs[start..end].iter().zip(start..end) {
                            let f = slot
                                .lock()
                                .expect("job slot poisoned")
                                .take()
                                .expect("job claimed twice");
                            let job_started = Instant::now();
                            local.push((idx, f()));
                            stats.busy_secs += job_started.elapsed().as_secs_f64();
                            stats.jobs += 1;
                        }
                    }
                    (local, stats)
                })
            })
            .collect();
        buffers = handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();
    });
    let wall_secs = started.elapsed().as_secs_f64();
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut worker_stats = Vec::with_capacity(buffers.len());
    for (buffer, stats) in buffers {
        worker_stats.push(stats);
        for (idx, value) in buffer {
            results[idx] = Some(value);
        }
    }
    let stats = PoolStats { workers: worker_stats, wall_secs, chunk_size: chunk };
    (results.into_iter().map(|r| r.expect("job completed")).collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_parallel_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..20usize).map(|i| Box::new(move || i * i) as _).collect();
        let out = run_parallel(jobs, 4);
        assert_eq!(out, (0..20usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_parallel_handles_edge_shapes() {
        // Empty job list.
        let none: Vec<Box<dyn FnOnce() -> u32 + Send>> = Vec::new();
        assert!(run_parallel(none, 4).is_empty());
        // More workers than jobs.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..3usize).map(|i| Box::new(move || i) as _).collect();
        assert_eq!(run_parallel(jobs, 64), vec![0, 1, 2]);
        // Single worker degrades to sequential.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..7usize).map(|i| Box::new(move || i + 1) as _).collect();
        assert_eq!(run_parallel(jobs, 1), (1..=7).collect::<Vec<_>>());
    }

    #[test]
    fn stats_account_for_every_job_and_chunk() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..40usize).map(|i| Box::new(move || i) as _).collect();
        let (out, stats) = run_parallel_stats(jobs, 4);
        assert_eq!(out.len(), 40);
        assert_eq!(stats.total_jobs(), 40);
        assert_eq!(stats.workers.len(), 4);
        let chunks: u64 = stats.workers.iter().map(|w| w.chunks).sum();
        // Every claimed chunk is non-empty, and together they cover the
        // jobs exactly once.
        assert!((1..=40).contains(&chunks));
        assert!(stats.chunk_size >= 1);
        assert!(stats.wall_secs >= 0.0);
        assert!((0.0..=1.0).contains(&stats.idle_fraction()));
        assert!(stats.job_imbalance() >= 1.0 - 1e-9);
        // Render mentions the headline numbers.
        let line = stats.render();
        assert!(line.contains("40 jobs") && line.contains("4 workers"), "{line}");
    }

    #[test]
    fn single_worker_stats_are_fully_busy_shaped() {
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..8u64)
            .map(|i| {
                Box::new(move || {
                    // A tiny but nonzero workload so busy_secs registers.
                    let mut acc = i;
                    for k in 0..2000u64 {
                        acc = acc.wrapping_mul(31).wrapping_add(k);
                    }
                    std::hint::black_box(acc)
                }) as _
            })
            .collect();
        let (_, stats) = run_parallel_stats(jobs, 1);
        assert_eq!(stats.workers.len(), 1);
        assert_eq!(stats.workers[0].jobs, 8);
        assert!(stats.workers[0].busy_secs > 0.0);
    }
}
