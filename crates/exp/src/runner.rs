//! Grid orchestration: resume-aware parallel execution of experiment cells.
//!
//! [`run_grid`] is the generic engine: given `(cell id, payload)` pairs and
//! a cell-runner closure, it loads the results store, skips every cell the
//! store already has, executes the remainder on the work-stealing pool
//! (appending each record as its cell finishes, so a killed run resumes
//! mid-grid), and reports a [`RunSummary`] with skip/execute counts, cache
//! behavior, and pool-efficiency stats.
//!
//! [`run_spec_grid`] layers the declarative [`ExperimentSpec`] on top: it
//! validates the spec, writes its canonical text next to the store for
//! provenance, and enumerates the named-axis grid. [`run_cell_grid`] sits
//! between the two: explicit [`CellSpec`] assignments (for cell sets that
//! are not a full cartesian product, e.g. the ablation knob list) with the
//! canonical collision-free id derivation.
//!
//! Every entry point rejects duplicate cell ids up front: two cells that
//! would share a results-store key can only be a driver bug (the aliasing
//! class the named-axis ids exist to prevent), and running them would
//! silently merge their records.

use crate::cache::{CacheStats, WorkloadCache};
use crate::pool::{run_parallel_stats, PoolStats};
use crate::spec::{CellSpec, ExperimentSpec};
use crate::store::{Record, ResultsStore};
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// What one grid run did, for operator-facing summaries.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Experiment name.
    pub experiment: String,
    /// Cells in the grid.
    pub cells_total: usize,
    /// Cells skipped because the store already had them.
    pub cells_skipped: usize,
    /// Cells executed this run.
    pub cells_executed: usize,
    /// Whether prior results were resumed.
    pub resumed: bool,
    /// Workload-cache behavior over this run (zeroed when no cache is
    /// attached, e.g. the closed-form lower-bound experiment).
    pub cache: CacheStats,
    /// Pool scheduling stats for the executed cells.
    pub pool: PoolStats,
    /// Wall seconds for the whole grid run (including store I/O).
    pub wall_secs: f64,
    /// Where the results store lives.
    pub store_path: PathBuf,
}

impl RunSummary {
    /// Renders a compact multi-line summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "experiment {}: {} cells ({} executed, {} skipped via resume) in {:.2}s\n",
            self.experiment,
            self.cells_total,
            self.cells_executed,
            self.cells_skipped,
            self.wall_secs
        );
        out.push_str(&format!("  store: {}\n", self.store_path.display()));
        out.push_str(&format!("  {}\n", self.cache.render()));
        if self.cells_executed > 0 {
            out.push_str(&format!("  {}\n", self.pool.render()));
        }
        out
    }
}

/// Result of a grid run: per-cell records in grid order plus the summary.
#[derive(Clone, Debug)]
pub struct GridOutcome {
    /// One record per cell, in the order the cells were supplied.
    /// Skipped cells carry the record loaded from the store.
    pub records: Vec<Record>,
    /// Run accounting.
    pub summary: RunSummary,
}

/// Runs a grid of `(cell id, payload)` cells with resume.
///
/// `fingerprint` identifies the experiment configuration: a store created
/// under a different fingerprint is discarded and rebuilt, so a changed
/// grid can never silently serve stale cells. `run_cell` must be a pure
/// function of its payload (plus immutable shared state such as a
/// [`WorkloadCache`]) — it runs on pool worker threads.
///
/// Each finished cell is appended (and flushed) to the store *before* the
/// run completes, so interrupting a long grid loses at most the in-flight
/// cells.
pub fn run_grid<C, F>(
    name: &str,
    fingerprint: &str,
    store_path: &Path,
    cells: Vec<(String, C)>,
    cache: Option<&WorkloadCache>,
    workers: usize,
    run_cell: F,
) -> io::Result<GridOutcome>
where
    C: Send,
    F: Fn(&C) -> Vec<(String, f64)> + Send + Sync,
{
    let started = Instant::now();
    {
        let mut ids = std::collections::BTreeSet::new();
        for (id, _) in &cells {
            if !ids.insert(id.as_str()) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("experiment {name}: duplicate cell id {id:?} — two cells would alias in the results store"),
                ));
            }
        }
    }
    let cache_before = cache.map(|c| c.stats()).unwrap_or_default();
    let (store, resumed) = ResultsStore::open(store_path, fingerprint)?;

    // Partition into already-done (record pulled from the store) and
    // pending, remembering each cell's grid position.
    let mut records: Vec<Option<Record>> = (0..cells.len()).map(|_| None).collect();
    let mut pending: Vec<(usize, String, C)> = Vec::new();
    for (idx, (id, payload)) in cells.into_iter().enumerate() {
        if let Some(done) = store.get(&id) {
            records[idx] = Some(done.clone());
        } else {
            pending.push((idx, id, payload));
        }
    }
    let cells_total = records.len();
    let cells_skipped = cells_total - pending.len();
    let cells_executed = pending.len();

    // Execute pending cells on the pool; append to the store inside the
    // job so completion is durable immediately.
    let store_ref = &store;
    let run_ref = &run_cell;
    let jobs: Vec<_> = pending
        .into_iter()
        .map(|(idx, id, payload)| {
            move || {
                let fields = run_ref(&payload);
                let record = Record::new(id, fields);
                store_ref.append(&record).unwrap_or_else(|e| {
                    panic!("cannot append cell {} to results store: {e}", record.cell_id)
                });
                (idx, record)
            }
        })
        .collect();
    let (executed, pool) = run_parallel_stats(jobs, workers);
    for (idx, record) in executed {
        records[idx] = Some(record);
    }

    let cache_after = cache.map(|c| c.stats()).unwrap_or_default();
    let summary = RunSummary {
        experiment: name.to_string(),
        cells_total,
        cells_skipped,
        cells_executed,
        resumed,
        cache: CacheStats {
            hits: cache_after.hits - cache_before.hits,
            misses: cache_after.misses - cache_before.misses,
            rejected: cache_after.rejected - cache_before.rejected,
            evictions: cache_after.evictions - cache_before.evictions,
        },
        pool,
        wall_secs: started.elapsed().as_secs_f64(),
        store_path: store_path.to_path_buf(),
    };
    Ok(GridOutcome {
        records: records.into_iter().map(|r| r.expect("cell resolved")).collect(),
        summary,
    })
}

/// Runs an explicit list of [`CellSpec`] cells with resume.
///
/// For experiments whose cells are not a full cartesian product (the
/// ablation driver's per-knob value lists): each cell still gets the
/// canonical escaped `name=value` id, so distinct assignments can never
/// alias in the store, and `fingerprint` still binds the store to the
/// full configuration.
pub fn run_cell_grid<C, F>(
    name: &str,
    fingerprint: &str,
    store_path: &Path,
    cells: Vec<(CellSpec, C)>,
    cache: Option<&WorkloadCache>,
    workers: usize,
    run_cell: F,
) -> io::Result<GridOutcome>
where
    C: Send,
    F: Fn(&C) -> Vec<(String, f64)> + Send + Sync,
{
    let cells = cells.into_iter().map(|(cell, payload)| (cell.id(), payload)).collect();
    run_grid(name, fingerprint, store_path, cells, cache, workers, run_cell)
}

/// Runs a declarative [`ExperimentSpec`] grid with resume.
///
/// The store lives at `<store_dir>/<name>.store`; the spec's canonical
/// text is written next to it as `<name>.spec` for provenance. Cells are
/// the cartesian product of the spec's named axes; `run_cell` receives
/// each [`CellSpec`] and returns the record fields for that cell
/// (typically the multi-trial `mean,ci95_lo,ci95_hi` triples produced by
/// [`crate::stats::Welford`]).
///
/// `context` is extra text folded into the store's fingerprint alongside
/// the spec. The spec itself names networks and algorithms only by
/// *label*; the driver must put everything those labels resolve to —
/// churn-model parameters, defense configurations — into `context`, so a
/// code change to what a label means invalidates stored cells the same
/// way a spec change does.
pub fn run_spec_grid<F>(
    spec: &ExperimentSpec,
    context: &str,
    store_dir: &Path,
    cache: Option<&WorkloadCache>,
    workers: usize,
    run_cell: F,
) -> io::Result<GridOutcome>
where
    F: Fn(&CellSpec) -> Vec<(String, f64)> + Send + Sync,
{
    spec.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    std::fs::create_dir_all(store_dir)?;
    std::fs::write(store_dir.join(format!("{}.spec", spec.name)), spec.to_text())?;
    let store_path = store_dir.join(format!("{}.store", spec.name));
    let cells: Vec<(String, CellSpec)> = spec.cells().into_iter().map(|c| (c.id(), c)).collect();
    let fingerprint = crate::spec::text_fingerprint(&format!("{}\n{context}", spec.to_text()));
    run_grid(&spec.name, &fingerprint, &store_path, cells, cache, workers, run_cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("sybil_exp_runner_{tag}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn toy_spec() -> ExperimentSpec {
        ExperimentSpec::three_axis(
            "runner-test",
            vec!["netA".into(), "netB".into()],
            vec!["X".into()],
            vec![0.0, 8.0],
            2,
            10.0,
            0.05,
            1,
        )
    }

    #[test]
    fn cold_run_executes_all_and_warm_run_skips_all() {
        let dir = temp_dir("resume");
        let spec = toy_spec();
        let runs = AtomicU64::new(0);
        let run_cell = |c: &CellSpec| {
            runs.fetch_add(1, Ordering::Relaxed);
            vec![("mean".to_string(), c.f64_value(crate::spec::AXIS_T) * 2.0)]
        };
        let cold = run_spec_grid(&spec, "ctx", &dir, None, 2, run_cell).unwrap();
        assert_eq!(cold.summary.cells_total, 4);
        assert_eq!(cold.summary.cells_executed, 4);
        assert_eq!(cold.summary.cells_skipped, 0);
        assert!(!cold.summary.resumed);
        assert_eq!(runs.load(Ordering::Relaxed), 4);

        let warm = run_spec_grid(&spec, "ctx", &dir, None, 2, run_cell).unwrap();
        assert_eq!(warm.summary.cells_executed, 0);
        assert_eq!(warm.summary.cells_skipped, 4);
        assert!(warm.summary.resumed);
        assert_eq!(runs.load(Ordering::Relaxed), 4, "resume must not re-run cells");
        // Records identical (bit-level) and in grid order both times.
        assert_eq!(cold.records, warm.records);
        assert_eq!(warm.records[1].get("mean"), Some(16.0));
        // Provenance artifacts exist.
        assert!(dir.join("runner-test.spec").exists());
        assert!(dir.join("runner-test.store").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn changed_spec_invalidates_the_store() {
        let dir = temp_dir("invalidate");
        let spec = toy_spec();
        let run_cell = |c: &CellSpec| vec![("mean".to_string(), c.f64_value(crate::spec::AXIS_T))];
        run_spec_grid(&spec, "ctx", &dir, None, 1, run_cell).unwrap();
        let mut changed = toy_spec();
        changed.seed = 2;
        let out = run_spec_grid(&changed, "ctx", &dir, None, 1, run_cell).unwrap();
        assert_eq!(out.summary.cells_executed, 4, "new seed must re-run everything");
        assert_eq!(out.summary.cells_skipped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_store_resumes_only_missing_cells() {
        let dir = temp_dir("partial");
        let spec = toy_spec();
        // Must match run_spec_grid's derivation: spec text + context.
        let fingerprint = crate::spec::text_fingerprint(&format!("{}\nctx", spec.to_text()));
        let store_path = dir.join("runner-test.store");
        // Pre-record one cell by hand.
        let cells = spec.cells();
        let (store, _) = ResultsStore::open(&store_path, &fingerprint).unwrap();
        store.append(&Record::new(cells[2].id(), vec![("mean".into(), 123.0)])).unwrap();
        drop(store);

        let out = run_spec_grid(&spec, "ctx", &dir, None, 2, |c: &CellSpec| {
            vec![("mean".to_string(), c.f64_value(crate::spec::AXIS_T))]
        })
        .unwrap();
        assert_eq!(out.summary.cells_skipped, 1);
        assert_eq!(out.summary.cells_executed, 3);
        // The skipped cell serves the stored value, not a recomputed one.
        assert_eq!(out.records[2].get("mean"), Some(123.0));
        let line = out.summary.render();
        assert!(line.contains("3 executed") && line.contains("1 skipped"), "{line}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_cell_ids_are_rejected_up_front() {
        let dir = temp_dir("dup");
        let cells = vec![("same".to_string(), 1u32), ("same".to_string(), 2u32)];
        let err = run_grid("dup-test", "fp", &dir.join("dup.store"), cells, None, 1, |_| vec![])
            .unwrap_err();
        assert!(err.to_string().contains("duplicate cell id"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cell_grid_runs_explicit_assignments_with_canonical_ids() {
        use crate::spec::AxisValue;
        let dir = temp_dir("cellgrid");
        // Values that the old lossy-replace scheme would have aliased.
        let cells: Vec<(CellSpec, f64)> = [("1/2", 0.5), ("1of2", 99.0)]
            .iter()
            .map(|&(label, v)| {
                (CellSpec::new(vec![("frac".into(), AxisValue::Str(label.into()))]), v)
            })
            .collect();
        let store_path = dir.join("cells.store");
        let out =
            run_cell_grid("cell-test", "fp", &store_path, cells.clone(), None, 1, |&v: &f64| {
                vec![("mean".to_string(), v)]
            })
            .unwrap();
        assert_eq!(out.summary.cells_executed, 2);
        // Both cells landed under distinct keys and resume independently.
        let warm = run_cell_grid("cell-test", "fp", &store_path, cells, None, 1, |&v: &f64| {
            vec![("mean".to_string(), v)]
        })
        .unwrap();
        assert_eq!(warm.summary.cells_skipped, 2);
        assert_eq!(warm.records[0].get("mean"), Some(0.5));
        assert_eq!(warm.records[1].get("mean"), Some(99.0));
        std::fs::remove_dir_all(&dir).ok();
    }
}
