//! Grid orchestration: resume-aware, fault-tolerant parallel execution of
//! experiment cells.
//!
//! [`run_grid`] is the generic engine: given `(cell id, payload)` pairs and
//! a cell-runner closure, it loads the results store, skips every cell the
//! store already has, executes the remainder on the work-stealing pool
//! (appending each record as its cell finishes, so a killed run resumes
//! mid-grid), and reports a [`RunSummary`] with skip/execute counts, cache
//! behavior, and pool-efficiency stats.
//!
//! [`run_spec_grid`] layers the declarative [`ExperimentSpec`] on top: it
//! validates the spec, writes its canonical text next to the store for
//! provenance, and enumerates the named-axis grid. [`run_cell_grid`] sits
//! between the two: explicit [`CellSpec`] assignments (for cell sets that
//! are not a full cartesian product, e.g. the ablation knob list) with the
//! canonical collision-free id derivation.
//!
//! # Failure semantics
//!
//! A cell that panics or whose store append fails does **not** abort the
//! grid. It is retried up to [`RetryPolicy::max_attempts`] times with
//! bounded exponential backoff and deterministic jitter; a cell that
//! exhausts its retries is *quarantined*: the grid completes with that
//! cell as an explicit hole (`None` in [`GridOutcome::records`]), the
//! failures are listed in a `<store>.failures` manifest next to the store,
//! and [`RunSummary::has_holes`] tells the driver to exit nonzero. A plain
//! re-run resumes every recorded cell and re-attempts exactly the holes.
//!
//! Every entry point rejects duplicate cell ids up front: two cells that
//! would share a results-store key can only be a driver bug (the aliasing
//! class the named-axis ids exist to prevent), and running them would
//! silently merge their records.

use crate::cache::{CacheStats, WorkloadCache};
use crate::fault;
use crate::pool::{run_parallel_catch, JobOutcome, PoolStats};
use crate::spec::{CellSpec, ExperimentSpec};
use crate::store::{Durability, Record, ResultsStore};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Bounded-retry policy for failed (panicked or append-failed) cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per cell, including the first (`1` = never retry).
    pub max_attempts: u32,
    /// Backoff before attempt 2; doubles each further attempt.
    pub base_delay_ms: u64,
    /// Ceiling on the backoff delay.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 3, base_delay_ms: 25, max_delay_ms: 1000 }
    }
}

impl RetryPolicy {
    /// The pre-attempt backoff: exponential in the retry round, capped,
    /// plus deterministic jitter drawn from `(cell id, attempt)` — pure in
    /// its inputs, so reproducing a run reproduces its schedule, while two
    /// cells retrying in the same round still de-synchronize.
    fn backoff(&self, cell_id: &str, attempt: u32) -> Duration {
        if attempt <= 1 || self.base_delay_ms == 0 {
            return Duration::ZERO;
        }
        let exp = self.base_delay_ms.saturating_mul(1u64 << (attempt - 2).min(16));
        let capped = exp.min(self.max_delay_ms);
        let jitter = fault::mix(fault::fnv1a(cell_id.as_bytes()).wrapping_add(attempt as u64))
            % (capped / 2).max(1);
        Duration::from_millis(capped / 2 + jitter)
    }
}

/// Knobs for a grid run beyond the required arguments.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GridOptions {
    /// Retry policy for failed cells.
    pub retry: RetryPolicy,
    /// Store durability (see [`Durability`]); crash-safety-critical runs
    /// pass [`Durability::Sync`].
    pub durability: Durability,
}

/// One quarantined cell: every attempt failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellFailure {
    /// The cell's results-store id.
    pub cell_id: String,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The last attempt's failure (panic message or append error).
    pub error: String,
}

/// What one grid run did, for operator-facing summaries.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Experiment name.
    pub experiment: String,
    /// Cells in the grid.
    pub cells_total: usize,
    /// Cells skipped because the store already had them.
    pub cells_skipped: usize,
    /// Cells executed this run.
    pub cells_executed: usize,
    /// Whether prior results were resumed.
    pub resumed: bool,
    /// Workload-cache behavior over this run (zeroed when no cache is
    /// attached, e.g. the closed-form lower-bound experiment).
    pub cache: CacheStats,
    /// Pool scheduling stats for the executed cells (all retry rounds
    /// folded together).
    pub pool: PoolStats,
    /// Jobs run in retry rounds (attempt ≥ 2).
    pub retries: u64,
    /// Cell attempts that ended in a caught panic.
    pub panics: u64,
    /// Cells that exhausted every attempt and were quarantined.
    pub quarantined: Vec<CellFailure>,
    /// Where the failure manifest was written (only when cells were
    /// quarantined).
    pub manifest_path: Option<PathBuf>,
    /// Wall seconds for the whole grid run (including store I/O).
    pub wall_secs: f64,
    /// Where the results store lives.
    pub store_path: PathBuf,
}

impl RunSummary {
    /// True if the grid completed with quarantined cells — the driver
    /// should render the holes and exit nonzero.
    pub fn has_holes(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// Renders a compact multi-line summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "experiment {}: {} cells ({} executed, {} skipped via resume) in {:.2}s\n",
            self.experiment,
            self.cells_total,
            self.cells_executed,
            self.cells_skipped,
            self.wall_secs
        );
        out.push_str(&format!("  store: {}\n", self.store_path.display()));
        out.push_str(&format!("  {}\n", self.cache.render()));
        if self.cells_executed > 0 {
            out.push_str(&format!("  {}\n", self.pool.render()));
        }
        if self.retries > 0 || self.panics > 0 || !self.quarantined.is_empty() {
            out.push_str(&format!(
                "  faults: {} retried job(s), {} panic(s) caught, {} cell(s) quarantined\n",
                self.retries,
                self.panics,
                self.quarantined.len()
            ));
        }
        for failure in &self.quarantined {
            out.push_str(&format!(
                "  QUARANTINED {} after {} attempts: {}\n",
                failure.cell_id, failure.attempts, failure.error
            ));
        }
        if let Some(manifest) = &self.manifest_path {
            out.push_str(&format!("  failure manifest: {}\n", manifest.display()));
        }
        out
    }
}

/// Result of a grid run: per-cell records in grid order plus the summary.
#[derive(Clone, Debug)]
pub struct GridOutcome {
    /// One slot per cell, in the order the cells were supplied. Skipped
    /// cells carry the record loaded from the store; quarantined cells are
    /// `None` — explicit holes the drivers render as blank CSV cells.
    pub records: Vec<Option<Record>>,
    /// Run accounting.
    pub summary: RunSummary,
}

/// Runs a grid of `(cell id, payload)` cells with resume and the default
/// [`GridOptions`]. See [`run_grid_opts`].
pub fn run_grid<C, F>(
    name: &str,
    fingerprint: &str,
    store_path: &Path,
    cells: Vec<(String, C)>,
    cache: Option<&WorkloadCache>,
    workers: usize,
    run_cell: F,
) -> io::Result<GridOutcome>
where
    C: Send + Sync,
    F: Fn(&C) -> Vec<(String, f64)> + Send + Sync,
{
    run_grid_opts(
        name,
        fingerprint,
        store_path,
        cells,
        cache,
        workers,
        &GridOptions::default(),
        run_cell,
    )
}

/// Runs a grid of `(cell id, payload)` cells with resume, retry, and
/// quarantine.
///
/// `fingerprint` identifies the experiment configuration: a store created
/// under a different fingerprint is discarded and rebuilt, so a changed
/// grid can never silently serve stale cells. `run_cell` must be a pure
/// function of its payload (plus immutable shared state such as a
/// [`WorkloadCache`]) — it runs on pool worker threads, possibly more
/// than once if its first attempt fails.
///
/// Each finished cell is appended (and flushed) to the store *before* the
/// run completes, so interrupting a long grid loses at most the in-flight
/// cells. A cell whose attempt panics or whose append fails retries under
/// `opts.retry` and is quarantined (a `None` hole in the outcome) when it
/// exhausts its attempts; see the module docs for the full failure
/// semantics.
#[allow(clippy::too_many_arguments)] // one past the limit; mirrors run_grid
pub fn run_grid_opts<C, F>(
    name: &str,
    fingerprint: &str,
    store_path: &Path,
    cells: Vec<(String, C)>,
    cache: Option<&WorkloadCache>,
    workers: usize,
    opts: &GridOptions,
    run_cell: F,
) -> io::Result<GridOutcome>
where
    C: Send + Sync,
    F: Fn(&C) -> Vec<(String, f64)> + Send + Sync,
{
    let started = Instant::now();
    fault::init_from_env();
    {
        let mut ids = std::collections::BTreeSet::new();
        for (id, _) in &cells {
            if !ids.insert(id.as_str()) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("experiment {name}: duplicate cell id {id:?} — two cells would alias in the results store"),
                ));
            }
        }
    }
    let cache_before = cache.map(|c| c.stats()).unwrap_or_default();
    let (store, resumed) = ResultsStore::open_with(store_path, fingerprint, opts.durability)?;

    // Partition into already-done (record pulled from the store) and
    // pending, remembering each cell's grid position.
    let mut records: Vec<Option<Record>> = (0..cells.len()).map(|_| None).collect();
    let mut pending: Vec<(usize, String, C)> = Vec::new();
    for (idx, (id, payload)) in cells.into_iter().enumerate() {
        if let Some(done) = store.get(&id) {
            records[idx] = Some(done.clone());
        } else {
            pending.push((idx, id, payload));
        }
    }
    let cells_total = records.len();
    let cells_skipped = cells_total - pending.len();
    let cells_executed = pending.len();

    // Execute pending cells on the pool; append to the store inside the
    // job so completion is durable immediately. Failed cells go through
    // retry rounds (with per-cell backoff inside the job, so a round's
    // healthy cells are not stalled behind a sleeping sibling) until they
    // succeed or exhaust `opts.retry.max_attempts`.
    let store_ref = &store;
    let run_ref = &run_cell;
    let max_attempts = opts.retry.max_attempts.max(1);
    let mut pool = PoolStats::default();
    let mut retries = 0u64;
    let mut panics = 0u64;
    // Indices into `pending` still unresolved, plus each one's last error.
    let mut active: Vec<usize> = (0..pending.len()).collect();
    let mut last_error: Vec<String> = vec![String::new(); pending.len()];
    for attempt in 1..=max_attempts {
        if active.is_empty() {
            break;
        }
        let jobs: Vec<_> = active
            .iter()
            .map(|&slot| {
                let (idx, id, payload) = &pending[slot];
                let retry = opts.retry;
                move || {
                    std::thread::sleep(retry.backoff(id, attempt));
                    fault::maybe_delay(id);
                    fault::maybe_panic(id);
                    let record = Record::new(id.clone(), run_ref(payload));
                    match store_ref.append(&record) {
                        Ok(()) => Ok((*idx, record)),
                        Err(e) => Err(format!("results-store append failed: {e}")),
                    }
                }
            })
            .collect();
        let (outcomes, round_stats) = run_parallel_catch(jobs, workers);
        if attempt == 1 {
            pool = round_stats;
        } else {
            retries += outcomes.len() as u64;
            pool.absorb(&round_stats);
        }
        let mut still_failing = Vec::new();
        for (&slot, outcome) in active.iter().zip(outcomes) {
            match outcome {
                JobOutcome::Done(Ok((idx, record))) => records[idx] = Some(record),
                JobOutcome::Done(Err(error)) => {
                    last_error[slot] = error;
                    still_failing.push(slot);
                }
                JobOutcome::Panicked(msg) => {
                    panics += 1;
                    last_error[slot] = format!("panicked: {msg}");
                    still_failing.push(slot);
                }
            }
        }
        active = still_failing;
    }
    let quarantined: Vec<CellFailure> = active
        .iter()
        .map(|&slot| CellFailure {
            cell_id: pending[slot].1.clone(),
            attempts: max_attempts,
            error: last_error[slot].clone(),
        })
        .collect();
    let manifest_path = write_failure_manifest(name, store_path, &quarantined)?;

    let cache_after = cache.map(|c| c.stats()).unwrap_or_default();
    let summary = RunSummary {
        experiment: name.to_string(),
        cells_total,
        cells_skipped,
        cells_executed,
        resumed,
        cache: CacheStats {
            hits: cache_after.hits - cache_before.hits,
            misses: cache_after.misses - cache_before.misses,
            rejected: cache_after.rejected - cache_before.rejected,
            evictions: cache_after.evictions - cache_before.evictions,
            // Sweeps happen once, at cache open: absolute, not a delta.
            temps_swept: cache_after.temps_swept,
            temp_sweep_failures: cache_after.temp_sweep_failures,
        },
        pool,
        retries,
        panics,
        quarantined,
        manifest_path,
        wall_secs: started.elapsed().as_secs_f64(),
        store_path: store_path.to_path_buf(),
    };
    Ok(GridOutcome { records, summary })
}

/// Writes `<store>.failures` listing the quarantined cells (or removes a
/// stale manifest once a resume fills every hole). Returns the manifest
/// path when one was written.
fn write_failure_manifest(
    name: &str,
    store_path: &Path,
    quarantined: &[CellFailure],
) -> io::Result<Option<PathBuf>> {
    let manifest = store_path.with_extension(match store_path.extension() {
        Some(ext) => format!("{}.failures", ext.to_string_lossy()),
        None => "failures".to_string(),
    });
    if quarantined.is_empty() {
        std::fs::remove_file(&manifest).ok();
        return Ok(None);
    }
    let mut text = format!("experiment {name}: {} quarantined cell(s)\n", quarantined.len());
    for failure in quarantined {
        text.push_str(&format!(
            "cell {} attempts={} error={}\n",
            failure.cell_id,
            failure.attempts,
            failure.error.replace('\n', " ")
        ));
    }
    std::fs::write(&manifest, text)?;
    Ok(Some(manifest))
}

/// Runs an explicit list of [`CellSpec`] cells with resume.
///
/// For experiments whose cells are not a full cartesian product (the
/// ablation driver's per-knob value lists): each cell still gets the
/// canonical escaped `name=value` id, so distinct assignments can never
/// alias in the store, and `fingerprint` still binds the store to the
/// full configuration.
pub fn run_cell_grid<C, F>(
    name: &str,
    fingerprint: &str,
    store_path: &Path,
    cells: Vec<(CellSpec, C)>,
    cache: Option<&WorkloadCache>,
    workers: usize,
    run_cell: F,
) -> io::Result<GridOutcome>
where
    C: Send + Sync,
    F: Fn(&C) -> Vec<(String, f64)> + Send + Sync,
{
    run_cell_grid_opts(
        name,
        fingerprint,
        store_path,
        cells,
        cache,
        workers,
        &GridOptions::default(),
        run_cell,
    )
}

/// [`run_cell_grid`] with explicit [`GridOptions`].
#[allow(clippy::too_many_arguments)] // one past the limit; mirrors run_grid
pub fn run_cell_grid_opts<C, F>(
    name: &str,
    fingerprint: &str,
    store_path: &Path,
    cells: Vec<(CellSpec, C)>,
    cache: Option<&WorkloadCache>,
    workers: usize,
    opts: &GridOptions,
    run_cell: F,
) -> io::Result<GridOutcome>
where
    C: Send + Sync,
    F: Fn(&C) -> Vec<(String, f64)> + Send + Sync,
{
    let cells = cells.into_iter().map(|(cell, payload)| (cell.id(), payload)).collect();
    run_grid_opts(name, fingerprint, store_path, cells, cache, workers, opts, run_cell)
}

/// Runs a declarative [`ExperimentSpec`] grid with resume.
///
/// The store lives at `<store_dir>/<name>.store`; the spec's canonical
/// text is written next to it as `<name>.spec` for provenance. Cells are
/// the cartesian product of the spec's named axes; `run_cell` receives
/// each [`CellSpec`] and returns the record fields for that cell
/// (typically the multi-trial `mean,ci95_lo,ci95_hi` triples produced by
/// [`crate::stats::Welford`]).
///
/// `context` is extra text folded into the store's fingerprint alongside
/// the spec. The spec itself names networks and algorithms only by
/// *label*; the driver must put everything those labels resolve to —
/// churn-model parameters, defense configurations — into `context`, so a
/// code change to what a label means invalidates stored cells the same
/// way a spec change does.
pub fn run_spec_grid<F>(
    spec: &ExperimentSpec,
    context: &str,
    store_dir: &Path,
    cache: Option<&WorkloadCache>,
    workers: usize,
    run_cell: F,
) -> io::Result<GridOutcome>
where
    F: Fn(&CellSpec) -> Vec<(String, f64)> + Send + Sync,
{
    run_spec_grid_opts(spec, context, store_dir, cache, workers, &GridOptions::default(), run_cell)
}

/// [`run_spec_grid`] with explicit [`GridOptions`].
pub fn run_spec_grid_opts<F>(
    spec: &ExperimentSpec,
    context: &str,
    store_dir: &Path,
    cache: Option<&WorkloadCache>,
    workers: usize,
    opts: &GridOptions,
    run_cell: F,
) -> io::Result<GridOutcome>
where
    F: Fn(&CellSpec) -> Vec<(String, f64)> + Send + Sync,
{
    spec.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    std::fs::create_dir_all(store_dir)?;
    std::fs::write(store_dir.join(format!("{}.spec", spec.name)), spec.to_text())?;
    let store_path = store_dir.join(format!("{}.store", spec.name));
    let cells: Vec<(String, CellSpec)> = spec.cells().into_iter().map(|c| (c.id(), c)).collect();
    let fingerprint = crate::spec::text_fingerprint(&format!("{}\n{context}", spec.to_text()));
    run_grid_opts(&spec.name, &fingerprint, &store_path, cells, cache, workers, opts, run_cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("sybil_exp_runner_{tag}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn toy_spec() -> ExperimentSpec {
        ExperimentSpec::three_axis(
            "runner-test",
            vec!["netA".into(), "netB".into()],
            vec!["X".into()],
            vec![0.0, 8.0],
            2,
            10.0,
            0.05,
            1,
        )
    }

    #[test]
    fn cold_run_executes_all_and_warm_run_skips_all() {
        let dir = temp_dir("resume");
        let spec = toy_spec();
        let runs = AtomicU64::new(0);
        let run_cell = |c: &CellSpec| {
            runs.fetch_add(1, Ordering::Relaxed);
            vec![("mean".to_string(), c.f64_value(crate::spec::AXIS_T) * 2.0)]
        };
        let cold = run_spec_grid(&spec, "ctx", &dir, None, 2, run_cell).unwrap();
        assert_eq!(cold.summary.cells_total, 4);
        assert_eq!(cold.summary.cells_executed, 4);
        assert_eq!(cold.summary.cells_skipped, 0);
        assert!(!cold.summary.resumed);
        assert_eq!(runs.load(Ordering::Relaxed), 4);

        let warm = run_spec_grid(&spec, "ctx", &dir, None, 2, run_cell).unwrap();
        assert_eq!(warm.summary.cells_executed, 0);
        assert_eq!(warm.summary.cells_skipped, 4);
        assert!(warm.summary.resumed);
        assert_eq!(runs.load(Ordering::Relaxed), 4, "resume must not re-run cells");
        // Records identical (bit-level) and in grid order both times.
        assert_eq!(cold.records, warm.records);
        assert_eq!(warm.records[1].as_ref().unwrap().get("mean"), Some(16.0));
        // Provenance artifacts exist.
        assert!(dir.join("runner-test.spec").exists());
        assert!(dir.join("runner-test.store").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn changed_spec_invalidates_the_store() {
        let dir = temp_dir("invalidate");
        let spec = toy_spec();
        let run_cell = |c: &CellSpec| vec![("mean".to_string(), c.f64_value(crate::spec::AXIS_T))];
        run_spec_grid(&spec, "ctx", &dir, None, 1, run_cell).unwrap();
        let mut changed = toy_spec();
        changed.seed = 2;
        let out = run_spec_grid(&changed, "ctx", &dir, None, 1, run_cell).unwrap();
        assert_eq!(out.summary.cells_executed, 4, "new seed must re-run everything");
        assert_eq!(out.summary.cells_skipped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_store_resumes_only_missing_cells() {
        let dir = temp_dir("partial");
        let spec = toy_spec();
        // Must match run_spec_grid's derivation: spec text + context.
        let fingerprint = crate::spec::text_fingerprint(&format!("{}\nctx", spec.to_text()));
        let store_path = dir.join("runner-test.store");
        // Pre-record one cell by hand.
        let cells = spec.cells();
        let (store, _) = ResultsStore::open(&store_path, &fingerprint).unwrap();
        store.append(&Record::new(cells[2].id(), vec![("mean".into(), 123.0)])).unwrap();
        drop(store);

        let out = run_spec_grid(&spec, "ctx", &dir, None, 2, |c: &CellSpec| {
            vec![("mean".to_string(), c.f64_value(crate::spec::AXIS_T))]
        })
        .unwrap();
        assert_eq!(out.summary.cells_skipped, 1);
        assert_eq!(out.summary.cells_executed, 3);
        // The skipped cell serves the stored value, not a recomputed one.
        assert_eq!(out.records[2].as_ref().unwrap().get("mean"), Some(123.0));
        let line = out.summary.render();
        assert!(line.contains("3 executed") && line.contains("1 skipped"), "{line}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_cell_ids_are_rejected_up_front() {
        let dir = temp_dir("dup");
        let cells = vec![("same".to_string(), 1u32), ("same".to_string(), 2u32)];
        let err = run_grid("dup-test", "fp", &dir.join("dup.store"), cells, None, 1, |_| vec![])
            .unwrap_err();
        assert!(err.to_string().contains("duplicate cell id"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cell_grid_runs_explicit_assignments_with_canonical_ids() {
        use crate::spec::AxisValue;
        let dir = temp_dir("cellgrid");
        // Values that the old lossy-replace scheme would have aliased.
        let cells: Vec<(CellSpec, f64)> = [("1/2", 0.5), ("1of2", 99.0)]
            .iter()
            .map(|&(label, v)| {
                (CellSpec::new(vec![("frac".into(), AxisValue::Str(label.into()))]), v)
            })
            .collect();
        let store_path = dir.join("cells.store");
        let out =
            run_cell_grid("cell-test", "fp", &store_path, cells.clone(), None, 1, |&v: &f64| {
                vec![("mean".to_string(), v)]
            })
            .unwrap();
        assert_eq!(out.summary.cells_executed, 2);
        // Both cells landed under distinct keys and resume independently.
        let warm = run_cell_grid("cell-test", "fp", &store_path, cells, None, 1, |&v: &f64| {
            vec![("mean".to_string(), v)]
        })
        .unwrap();
        assert_eq!(warm.summary.cells_skipped, 2);
        assert_eq!(warm.records[0].as_ref().unwrap().get("mean"), Some(0.5));
        assert_eq!(warm.records[1].as_ref().unwrap().get("mean"), Some(99.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A transiently failing cell retries to success: the grid ends
    /// hole-free, with the retry visible in the summary counters.
    #[test]
    fn transient_panic_retries_to_success() {
        let dir = temp_dir("retry");
        let store_path = dir.join("retry.store");
        let cells: Vec<(String, u32)> = (0..4).map(|i| (format!("cell-{i}"), i)).collect();
        let flaky_attempts = AtomicU64::new(0);
        let opts = GridOptions {
            retry: RetryPolicy { max_attempts: 3, base_delay_ms: 1, max_delay_ms: 4 },
            ..GridOptions::default()
        };
        let out = run_grid_opts(
            "retry-test",
            "fp",
            &store_path,
            cells,
            None,
            2,
            &opts,
            |&payload: &u32| {
                if payload == 2 && flaky_attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("transient failure in cell 2");
                }
                vec![("mean".to_string(), payload as f64)]
            },
        )
        .unwrap();
        assert!(!out.summary.has_holes(), "{}", out.summary.render());
        assert_eq!(out.summary.retries, 1);
        assert_eq!(out.summary.panics, 1);
        assert_eq!(out.records[2].as_ref().unwrap().get("mean"), Some(2.0));
        assert!(out.summary.manifest_path.is_none());
        let line = out.summary.render();
        assert!(line.contains("1 retried job(s), 1 panic(s) caught"), "{line}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A persistently failing cell is quarantined: the grid completes with
    /// an explicit hole and a failure manifest, every other cell lands,
    /// and a later healthy resume re-attempts exactly the hole (clearing
    /// the manifest).
    #[test]
    fn persistent_panic_quarantines_and_resume_fills_the_hole() {
        let dir = temp_dir("quarantine");
        let store_path = dir.join("q.store");
        let cells: Vec<(String, u32)> = (0..4).map(|i| (format!("cell-{i}"), i)).collect();
        let opts = GridOptions {
            retry: RetryPolicy { max_attempts: 2, base_delay_ms: 1, max_delay_ms: 2 },
            ..GridOptions::default()
        };
        let out = run_grid_opts(
            "q-test",
            "fp",
            &store_path,
            cells.clone(),
            None,
            2,
            &opts,
            |&payload: &u32| {
                if payload == 1 {
                    panic!("cell 1 is broken");
                }
                vec![("mean".to_string(), payload as f64)]
            },
        )
        .unwrap();
        assert!(out.summary.has_holes());
        assert_eq!(out.summary.quarantined.len(), 1);
        let failure = &out.summary.quarantined[0];
        assert_eq!(failure.cell_id, "cell-1");
        assert_eq!(failure.attempts, 2);
        assert!(failure.error.contains("cell 1 is broken"), "{}", failure.error);
        assert!(out.records[1].is_none(), "quarantined cell must be a hole");
        assert!(out.records[0].is_some() && out.records[2].is_some() && out.records[3].is_some());
        // The manifest names the cell.
        let manifest = out.summary.manifest_path.clone().expect("manifest written");
        let text = std::fs::read_to_string(&manifest).unwrap();
        assert!(text.contains("cell cell-1") && text.contains("cell 1 is broken"), "{text}");
        assert!(out.summary.render().contains("QUARANTINED cell-1"), "{}", out.summary.render());

        // Healthy resume: only the hole re-runs; the manifest is cleared.
        let runs = AtomicU64::new(0);
        let resumed =
            run_grid_opts("q-test", "fp", &store_path, cells, None, 2, &opts, |&payload: &u32| {
                runs.fetch_add(1, Ordering::Relaxed);
                vec![("mean".to_string(), payload as f64)]
            })
            .unwrap();
        assert_eq!(resumed.summary.cells_skipped, 3);
        assert_eq!(resumed.summary.cells_executed, 1);
        assert_eq!(runs.load(Ordering::Relaxed), 1, "resume re-attempts exactly the hole");
        assert!(!resumed.summary.has_holes());
        assert_eq!(resumed.records[1].as_ref().unwrap().get("mean"), Some(1.0));
        assert!(!manifest.exists(), "manifest must be cleared once hole-free");
        std::fs::remove_dir_all(&dir).ok();
    }
}
