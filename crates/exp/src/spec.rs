//! Declarative experiment specifications and deterministic seed derivation.
//!
//! An [`ExperimentSpec`] names a grid as an ordered list of **named axes**
//! ([`Axis`]): each axis has a name and a list of values (strings or
//! bit-exact floats), and the grid is their cartesian product. The three
//! paper figures' canonical `network × algo × T` shape is just the
//! three-axis special case ([`ExperimentSpec::three_axis`]); irregular
//! grids (Figure 9's Sybil-fraction axis, a good-fraction sweep) declare
//! their own axes instead of smuggling extra dimensions through free-form
//! id strings.
//!
//! The spec serializes to a small versioned text format (see
//! [`ExperimentSpec::to_text`]) so a results store can record exactly
//! which grid produced it, and resumed runs can verify they are continuing
//! the *same* experiment. The current writer emits **v2** (named axes);
//! v1 texts (the fixed `networks`/`algos`/`t` keys) still parse and map
//! onto the three canonical axes with bit-identical seed derivation.
//!
//! # Cell identity
//!
//! Every cell renders a canonical id: `name=value` pairs in axis order,
//! joined by `/`, with every structural character inside a name or value
//! percent-escaped ([`escape_component`]). The escaping is injective, so
//! two distinct axis assignments can never collide in a results store —
//! the aliasing bug class where `"1/2"` and `"1of2"` mapped to the same
//! key (via a lossy `replace`) is impossible by construction.
//!
//! # Seed derivation
//!
//! Every cell's randomness is a pure function of the spec's `seed`:
//!
//! * workload seed for trial `i` = [`trial_seed`]`(seed, i)` — shared by
//!   **all** cells of the grid, so every cell of a trial replays the same
//!   good-ID schedule and the workload cache services the whole grid row
//!   from one file;
//! * defense seed = [`defense_seed`]`(workload seed)` — a distinct stream
//!   so classifier-gated defenses never share draws with trace generation;
//! * for drivers that need per-cell streams, [`ExperimentSpec::cell_seed`]
//!   keys a seed on the canonical cell id (so it inherits the id's
//!   no-collision guarantee).
//!
//! All derivations are order-free (SplitMix64 finalizer / SHA-256), so
//! results are identical regardless of worker count or cell scheduling.
//! The grid-wide `workload_seed`/`defense_seed` derivation is unchanged
//! from v1: existing three-axis grids keep bit-identical seeds.

/// Format tag on the first line of a serialized spec.
pub const SPEC_MAGIC: &str = "sybil-exp-spec";
/// Current spec format version (named axes). Version 1 still parses.
pub const SPEC_VERSION: u32 = 2;

/// Canonical axis name for churn-network labels (v1 `networks`).
pub const AXIS_NETWORK: &str = "network";
/// Canonical axis name for algorithm labels (v1 `algos`).
pub const AXIS_ALGO: &str = "algo";
/// Canonical axis name for adversary spend rates (v1 `t`).
pub const AXIS_T: &str = "T";
/// Canonical axis name for adversary strategy labels.
///
/// Values on this axis are registry names (`budget`, `burst`,
/// `churn-force`, `purge-survive`, …) that the experiment driver resolves
/// back to adversary constructors — see `sybil_sim::adversary`'s strategy
/// registry. This crate treats them as opaque labels like any other axis
/// value.
pub const AXIS_STRATEGY: &str = "strategy";

/// One value of an axis: a driver-resolved label or a bit-exact float.
///
/// Floats are carried and compared by bit pattern wherever identity
/// matters (cell ids, the spec text), so two representable floats can
/// never alias. An axis holds values of one kind only (see
/// [`ExperimentSpec::validate`]).
#[derive(Clone, Debug, PartialEq)]
pub enum AxisValue {
    /// A string label, resolved by the experiment driver.
    Str(String),
    /// A float swept directly (spend rates, durations, fractions).
    F64(f64),
}

impl AxisValue {
    /// Canonical rendering used in cell ids and the v2 text format:
    /// strings are percent-escaped, floats go through [`fmt_f64_exact`].
    ///
    /// Injective across *both* kinds: a string that would render exactly
    /// like a float rendering (`"1024"`, `"-3"`, `"0x…"` bit patterns)
    /// has its first character force-escaped — digits and `-` are never
    /// escaped otherwise and float renderings never contain `%`, so the
    /// two kinds' renderings are disjoint. A driver that changes a
    /// value's kind across releases therefore changes its cell id and
    /// can never silently resume the other kind's record.
    pub fn render(&self) -> String {
        match self {
            AxisValue::Str(s) => {
                let esc = escape_component(s);
                if looks_like_float_rendering(&esc) {
                    let first = esc.as_bytes()[0];
                    format!("%{first:02x}{}", &esc[1..])
                } else {
                    esc
                }
            }
            AxisValue::F64(x) => fmt_f64_exact(*x),
        }
    }

    /// The string label, if this is a [`AxisValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AxisValue::Str(s) => Some(s),
            AxisValue::F64(_) => None,
        }
    }

    /// The float, if this is a [`AxisValue::F64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AxisValue::F64(x) => Some(*x),
            AxisValue::Str(_) => None,
        }
    }
}

/// One named axis of an experiment grid.
#[derive(Clone, Debug, PartialEq)]
pub struct Axis {
    /// Axis name (unique within a spec; arbitrary text — it is escaped
    /// wherever it meets a structural format).
    pub name: String,
    /// The swept values, in sweep order. All of one kind.
    pub values: Vec<AxisValue>,
}

impl Axis {
    /// A string-valued axis.
    pub fn strs<N: Into<String>, S: Into<String>>(
        name: N,
        values: impl IntoIterator<Item = S>,
    ) -> Axis {
        Axis {
            name: name.into(),
            values: values.into_iter().map(|s| AxisValue::Str(s.into())).collect(),
        }
    }

    /// A float-valued axis.
    pub fn floats<N: Into<String>>(name: N, values: impl IntoIterator<Item = f64>) -> Axis {
        Axis { name: name.into(), values: values.into_iter().map(AxisValue::F64).collect() }
    }
}

/// A declarative experiment grid: the cartesian product of named axes.
///
/// Axis values are *labels* as far as this crate is concerned: the
/// experiment driver that owns the spec maps them back to concrete churn
/// models, defense constructors, fractions, and so on. Keeping the spec
/// string-typed keeps this crate independent of any particular roster.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name (also names the results store / CSV artifacts).
    pub name: String,
    /// The grid's axes, in enumeration order (first axis outermost).
    pub axes: Vec<Axis>,
    /// Independent trials per cell (distinct workload seeds).
    pub trials: u32,
    /// Simulated seconds per run.
    pub horizon: f64,
    /// Adversary power fraction κ.
    pub kappa: f64,
    /// Base seed; all cell randomness derives from it.
    pub seed: u64,
}

/// One cell of a spec's grid: an ordered assignment of one value per axis.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSpec {
    /// `(axis name, value)` pairs in the spec's axis order.
    pub assignment: Vec<(String, AxisValue)>,
}

impl CellSpec {
    /// Builds a cell from an explicit assignment. Useful for experiments
    /// whose cells are not a full cartesian product (e.g. the ablation
    /// knob list) but still want canonical, collision-free ids.
    pub fn new(assignment: Vec<(String, AxisValue)>) -> CellSpec {
        CellSpec { assignment }
    }

    /// The value assigned to `axis`, if present.
    pub fn value(&self, axis: &str) -> Option<&AxisValue> {
        self.assignment.iter().find(|(name, _)| name == axis).map(|(_, v)| v)
    }

    /// The string label assigned to `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the axis is absent or float-valued — a driver/spec
    /// mismatch, not a runtime condition.
    pub fn str_value(&self, axis: &str) -> &str {
        self.value(axis)
            .and_then(AxisValue::as_str)
            .unwrap_or_else(|| panic!("cell {} has no string axis {axis:?}", self.id()))
    }

    /// The float assigned to `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the axis is absent or string-valued.
    pub fn f64_value(&self, axis: &str) -> f64 {
        self.value(axis)
            .and_then(AxisValue::as_f64)
            .unwrap_or_else(|| panic!("cell {} has no float axis {axis:?}", self.id()))
    }

    /// Stable identifier used as the results-store key: escaped
    /// `name=value` pairs in axis order, joined by `/`.
    ///
    /// Injective: `/`, `=`, and every other structural character inside a
    /// name or value is percent-escaped, floats render bit-exactly, and
    /// string renderings are kept disjoint from float renderings (see
    /// [`AxisValue::render`]), so two distinct assignments — even ones
    /// differing only in value *kind* — always produce distinct ids.
    pub fn id(&self) -> String {
        self.assignment
            .iter()
            .map(|(name, value)| format!("{}={}", escape_component(name), value.render()))
            .collect::<Vec<_>>()
            .join("/")
    }
}

/// Bit-exact float rendering shared by cell ids and the spec text format:
/// exactly-integral values print as plain integers (readable), everything
/// else as a `0x`-prefixed bit pattern — two representable floats can
/// never alias, and parsing the bit form back is lossless.
///
/// Negative zero compares equal to `0` and truncates to integer `0`, but
/// its bit pattern differs: it takes the bit-pattern form so the two
/// representable zeros never alias.
pub fn fmt_f64_exact(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 && !(x == 0.0 && x.is_sign_negative()) {
        format!("{}", x as i64)
    } else {
        format!("0x{:016x}", x.to_bits())
    }
}

/// True iff `s` has the exact shape of a [`fmt_f64_exact`] output: an
/// optionally-negative decimal integer, or `0x` + 16 hex digits. Used by
/// [`AxisValue::render`] to keep string and float renderings disjoint.
fn looks_like_float_rendering(s: &str) -> bool {
    if let Some(hex) = s.strip_prefix("0x") {
        return hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit());
    }
    let digits = s.strip_prefix('-').unwrap_or(s);
    !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit())
}

/// Parses a float written by [`fmt_f64_exact`] (plain decimal or
/// `0x`-prefixed bit pattern).
pub fn parse_f64_exact(s: &str) -> Result<f64, String> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
            .map(f64::from_bits)
            .map_err(|e| format!("bad float bits {s:?}: {e}"))
    } else {
        s.parse::<f64>().map_err(|e| format!("bad float {s:?}: {e}"))
    }
}

/// Percent-escapes every character with structural meaning in cell ids or
/// the spec text format: `%` itself, the separators `/`, `=`, `,`, `:`,
/// and all whitespace/control characters (results-store keys must be
/// whitespace-free).
///
/// Injective: a reserved character only ever appears in the output as the
/// escape introducer `%`, and `%` is itself always escaped, so distinct
/// inputs cannot produce equal outputs. [`unescape_component`] inverts it.
pub fn escape_component(s: &str) -> String {
    let reserved =
        |c: char| matches!(c, '%' | '/' | '=' | ',' | ':') || c.is_whitespace() || c.is_control();
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if reserved(c) {
            let mut buf = [0u8; 4];
            for b in c.encode_utf8(&mut buf).bytes() {
                out.push('%');
                out.push_str(&format!("{b:02x}"));
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Inverts [`escape_component`]. Rejects malformed escapes.
pub fn unescape_component(s: &str) -> Result<String, String> {
    let mut bytes = Vec::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '%' {
            let hi = chars.next().ok_or_else(|| format!("truncated escape in {s:?}"))?;
            let lo = chars.next().ok_or_else(|| format!("truncated escape in {s:?}"))?;
            let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16)
                .map_err(|e| format!("bad escape %{hi}{lo} in {s:?}: {e}"))?;
            bytes.push(byte);
        } else {
            let mut buf = [0u8; 4];
            bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    String::from_utf8(bytes).map_err(|e| format!("escaped text {s:?} is not UTF-8: {e}"))
}

impl ExperimentSpec {
    /// The canonical three-axis (`network × algo × T`) grid every spend
    /// sweep uses — the entire shape v1 specs could express.
    #[allow(clippy::too_many_arguments)]
    pub fn three_axis(
        name: impl Into<String>,
        networks: Vec<String>,
        algos: Vec<String>,
        t_grid: Vec<f64>,
        trials: u32,
        horizon: f64,
        kappa: f64,
        seed: u64,
    ) -> ExperimentSpec {
        ExperimentSpec {
            name: name.into(),
            axes: vec![
                Axis::strs(AXIS_NETWORK, networks),
                Axis::strs(AXIS_ALGO, algos),
                Axis::floats(AXIS_T, t_grid),
            ],
            trials,
            horizon,
            kappa,
            seed,
        }
    }

    /// The values of a named axis, if present.
    pub fn axis(&self, name: &str) -> Option<&Axis> {
        self.axes.iter().find(|a| a.name == name)
    }

    /// Checks the spec is runnable: a non-empty grid of uniquely-named
    /// axes, each axis single-kind with distinct values, positive horizon
    /// and trial count, and κ in `[0, 1)`.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("spec name is empty".into());
        }
        if self.name.chars().any(|c| c == ',' || c == '\n' || c == '=' || c == '/') {
            return Err(format!(
                "spec name {:?} contains a reserved character (, = / or newline)",
                self.name
            ));
        }
        if self.axes.is_empty() {
            return Err("spec has no axes".into());
        }
        let mut seen_names = std::collections::BTreeSet::new();
        for axis in &self.axes {
            if axis.name.is_empty() {
                return Err("axis name is empty".into());
            }
            if !seen_names.insert(&axis.name) {
                return Err(format!("duplicate axis name {:?}", axis.name));
            }
            if axis.values.is_empty() {
                return Err(format!("axis {:?} has no values", axis.name));
            }
            let mixed = axis.values.iter().any(|v| v.as_str().is_some())
                && axis.values.iter().any(|v| v.as_f64().is_some());
            if mixed {
                return Err(format!(
                    "axis {:?} mixes string and float values (kinds cannot alias)",
                    axis.name
                ));
            }
            let mut seen_values = std::collections::BTreeSet::new();
            for value in &axis.values {
                if let Some(x) = value.as_f64() {
                    if !x.is_finite() {
                        return Err(format!(
                            "axis {:?} has a non-finite value {x} (domain bounds beyond \
                             finiteness are the driver's to enforce)",
                            axis.name
                        ));
                    }
                }
                if value.render().is_empty() {
                    return Err(format!(
                        "axis {:?} has an empty value (unrepresentable in the text format)",
                        axis.name
                    ));
                }
                if !seen_values.insert(value.render()) {
                    return Err(format!("axis {:?} repeats value {}", axis.name, value.render()));
                }
            }
        }
        if self.trials == 0 {
            return Err("spec needs at least one trial".into());
        }
        if !(self.horizon.is_finite() && self.horizon > 0.0) {
            return Err(format!("horizon {} must be positive and finite", self.horizon));
        }
        if !(0.0..1.0).contains(&self.kappa) {
            return Err(format!("kappa {} must be in [0, 1)", self.kappa));
        }
        Ok(())
    }

    /// Enumerates the grid in deterministic order: the first axis is the
    /// outermost loop (for the canonical three axes this is the historical
    /// network-major order).
    pub fn cells(&self) -> Vec<CellSpec> {
        let total = self.axes.iter().map(|a| a.values.len()).product();
        let mut out = Vec::with_capacity(total);
        let mut idx = vec![0usize; self.axes.len()];
        for _ in 0..total {
            out.push(CellSpec {
                assignment: self
                    .axes
                    .iter()
                    .zip(&idx)
                    .map(|(axis, &i)| (axis.name.clone(), axis.values[i].clone()))
                    .collect(),
            });
            for pos in (0..idx.len()).rev() {
                idx[pos] += 1;
                if idx[pos] < self.axes[pos].values.len() {
                    break;
                }
                idx[pos] = 0;
            }
        }
        out
    }

    /// Workload seed for trial `index` — shared across the whole grid so
    /// cells replay identical schedules (and share cache entries).
    /// Identical to the v1 derivation: migrating a spec to named axes
    /// never changes its seeds.
    pub fn workload_seed(&self, index: u32) -> u64 {
        trial_seed(self.seed, index as u64)
    }

    /// Defense seed for trial `index` (see [`defense_seed`]).
    pub fn defense_seed(&self, index: u32) -> u64 {
        defense_seed(self.workload_seed(index))
    }

    /// A per-cell seed stream, keyed on the **canonical cell id** (so it
    /// inherits the id's no-collision guarantee: distinct cells get
    /// distinct streams, and the stream survives axis renames only if the
    /// id is unchanged). Workload seeds deliberately stay grid-wide
    /// ([`workload_seed`](Self::workload_seed)) so every cell of a trial
    /// replays one cached workload; this stream is for the randomness
    /// cells must *not* share — the DHT end-to-end driver derives its
    /// per-cell lookup RNG from it, which freezes the derivation (see
    /// [`cell_seed`]) as a compatibility contract: changing it would
    /// silently change stored results under resume.
    pub fn cell_seed(&self, cell: &CellSpec, trial: u32) -> u64 {
        cell_seed(self.seed, cell, trial as u64)
    }

    /// Serializes to the versioned text format:
    ///
    /// ```text
    /// sybil-exp-spec v2
    /// name = figure8
    /// axis network = str:bitcoin,bittorrent,gnutella,ethereum
    /// axis algo = str:ERGO,CCOM
    /// axis T = f64:0,1,4,0x40a0000000000000
    /// trials = 5
    /// horizon = 10000
    /// kappa = 0x3fac71c71c71c71c
    /// seed = 1
    /// ```
    ///
    /// Axis names and string values are percent-escaped; floats serialize
    /// as plain integers when exactly integral and as `0x`-prefixed bit
    /// patterns otherwise, so a round trip is always bit-exact.
    pub fn to_text(&self) -> String {
        let mut out = format!("{SPEC_MAGIC} v{SPEC_VERSION}\nname = {}\n", self.name);
        for axis in &self.axes {
            let kind = if axis.values.iter().all(|v| v.as_f64().is_some()) { "f64" } else { "str" };
            let values: Vec<String> = axis.values.iter().map(AxisValue::render).collect();
            out.push_str(&format!(
                "axis {} = {kind}:{}\n",
                escape_component(&axis.name),
                values.join(",")
            ));
        }
        out.push_str(&format!(
            "trials = {}\nhorizon = {}\nkappa = {}\nseed = {}\n",
            self.trials,
            fmt_f64_exact(self.horizon),
            fmt_f64_exact(self.kappa),
            self.seed,
        ));
        out
    }

    /// Parses the text format written by [`to_text`] — or, for
    /// compatibility, the v1 format (fixed `networks`/`algos`/`t` keys),
    /// which maps onto the three canonical axes [`AXIS_NETWORK`],
    /// [`AXIS_ALGO`], [`AXIS_T`] with identical seed derivation. Unknown
    /// keys are rejected (they indicate a newer writer), as is a missing
    /// key or a version this build does not read.
    pub fn from_text(text: &str) -> Result<ExperimentSpec, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty spec")?;
        let version = match header.trim() {
            h if h == format!("{SPEC_MAGIC} v1") => 1,
            h if h == format!("{SPEC_MAGIC} v2") => 2,
            h => {
                return Err(format!(
                    "bad spec header {h:?} (this build reads {SPEC_MAGIC} v1 and v2)"
                ))
            }
        };
        let mut name = None;
        let mut axes: Vec<Axis> = Vec::new();
        // v1 legacy keys, mapped onto the canonical axes after the scan.
        let mut networks = None;
        let mut algos = None;
        let mut t_grid = None;
        let mut trials = None;
        let mut horizon = None;
        let mut kappa = None;
        let mut seed = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) =
                line.split_once('=').ok_or_else(|| format!("malformed line {line:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            let list = || -> Vec<String> {
                value.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
            };
            if let Some(axis_name) = key.strip_prefix("axis ") {
                if version < 2 {
                    return Err(format!("axis line {line:?} in a v1 spec"));
                }
                let name = unescape_component(axis_name.trim())?;
                let (kind, values_text) = value
                    .split_once(':')
                    .ok_or_else(|| format!("axis line {line:?} lacks a kind tag"))?;
                let raw: Vec<&str> =
                    values_text.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
                let values = match kind {
                    "str" => raw
                        .iter()
                        .map(|s| unescape_component(s).map(AxisValue::Str))
                        .collect::<Result<Vec<_>, _>>()?,
                    "f64" => raw
                        .iter()
                        .map(|s| parse_f64_exact(s).map(AxisValue::F64))
                        .collect::<Result<Vec<_>, _>>()?,
                    other => return Err(format!("unknown axis kind {other:?} in {line:?}")),
                };
                axes.push(Axis { name, values });
                continue;
            }
            match key {
                "name" => name = Some(value.to_string()),
                "networks" if version == 1 => networks = Some(list()),
                "algos" if version == 1 => algos = Some(list()),
                "t" if version == 1 => {
                    t_grid = Some(
                        list().iter().map(|s| parse_f64_exact(s)).collect::<Result<Vec<_>, _>>()?,
                    )
                }
                "trials" => {
                    trials = Some(
                        value.parse::<u32>().map_err(|e| format!("bad trials {value:?}: {e}"))?,
                    )
                }
                "horizon" => horizon = Some(parse_f64_exact(value)?),
                "kappa" => kappa = Some(parse_f64_exact(value)?),
                "seed" => {
                    seed =
                        Some(value.parse::<u64>().map_err(|e| format!("bad seed {value:?}: {e}"))?)
                }
                _ => return Err(format!("unknown spec key {key:?}")),
            }
        }
        if version == 1 {
            axes = vec![
                Axis::strs(AXIS_NETWORK, networks.ok_or("missing key: networks")?),
                Axis::strs(AXIS_ALGO, algos.ok_or("missing key: algos")?),
                Axis {
                    name: AXIS_T.into(),
                    values: t_grid
                        .ok_or("missing key: t")?
                        .into_iter()
                        .map(AxisValue::F64)
                        .collect(),
                },
            ];
        } else if axes.is_empty() {
            return Err("v2 spec has no axis lines".into());
        }
        let spec = ExperimentSpec {
            name: name.ok_or("missing key: name")?,
            axes,
            trials: trials.ok_or("missing key: trials")?,
            horizon: horizon.ok_or("missing key: horizon")?,
            kappa: kappa.ok_or("missing key: kappa")?,
            seed: seed.ok_or("missing key: seed")?,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// SHA-256 of the canonical (v2) text form — the identity a results
    /// store records so resumes can detect a changed grid. A spec parsed
    /// from a v1 text fingerprints identically to the same spec built via
    /// [`three_axis`](Self::three_axis).
    pub fn fingerprint(&self) -> String {
        text_fingerprint(&self.to_text())
    }
}

/// SHA-256 fingerprint of an arbitrary canonical configuration text.
///
/// Drivers fold everything their axis labels *resolve to* — churn-model
/// parameters, defense configurations — into one canonical string and
/// bind the results store to the hash of spec text plus this context, so
/// a code change to a label's meaning invalidates stale cells.
pub fn text_fingerprint(text: &str) -> String {
    sybil_crypto::hex::encode(sybil_crypto::sha256::Sha256::digest(text.as_bytes()).as_bytes())
}

/// Derives the per-cell seed stream for `(base seed, cell, trial)`: the
/// first 8 bytes of SHA-256 of the canonical cell id folded into the base
/// seed, then chained through [`trial_seed`].
///
/// The free-function form exists for drivers that assemble explicit
/// [`CellSpec`] lists (via `run_cell_grid`) without an
/// [`ExperimentSpec`]; [`ExperimentSpec::cell_seed`] delegates here. The
/// derivation is a **frozen compatibility contract**: stores record
/// results produced under it, and a resumed grid must replay identical
/// streams.
pub fn cell_seed(base: u64, cell: &CellSpec, trial: u64) -> u64 {
    let digest = sybil_crypto::sha256::Sha256::digest(cell.id().as_bytes());
    let mut first = [0u8; 8];
    first.copy_from_slice(&digest.as_bytes()[..8]);
    trial_seed(base ^ u64::from_le_bytes(first), trial)
}

/// Derives the deterministic seed for trial `index` of an experiment
/// anchored at `base`. Pure function of its inputs (SplitMix64 finalizer),
/// so results never depend on worker count or scheduling order.
pub fn trial_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the defense-construction seed for a cell whose workload is
/// seeded with `seed`.
///
/// Kept distinct from the workload seed so classifier-gated defenses do
/// not share a stream with trace generation. Every runner that wants its
/// results comparable (e.g. the perf scenarios and the sweep cells) must
/// use this same derivation.
pub fn defense_seed(seed: u64) -> u64 {
    seed.wrapping_mul(7919).wrapping_add(13)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ExperimentSpec {
        ExperimentSpec::three_axis(
            "figure8-test",
            vec!["gnutella".into(), "bitcoin".into()],
            vec!["ERGO".into(), "CCOM".into()],
            vec![0.0, 16.0, 0.5],
            3,
            500.0,
            1.0 / 18.0,
            7,
        )
    }

    /// The exact v1 text the previous writer produced for `spec()`.
    fn v1_text() -> String {
        "sybil-exp-spec v1\n\
         name = figure8-test\n\
         networks = gnutella,bitcoin\n\
         algos = ERGO,CCOM\n\
         t = 0,16,0x3fe0000000000000\n\
         trials = 3\n\
         horizon = 500\n\
         kappa = 0x3fac71c71c71c71c\n\
         seed = 7\n"
            .into()
    }

    #[test]
    fn text_roundtrip_is_bit_exact() {
        let s = spec();
        let text = s.to_text();
        assert!(text.starts_with("sybil-exp-spec v2\n"), "{text}");
        let back = ExperimentSpec::from_text(&text).unwrap();
        assert_eq!(s, back);
        // κ = 1/18 is not integral: must survive via the bit-pattern form.
        assert_eq!(back.kappa.to_bits(), s.kappa.to_bits());
        let t = back.axis(AXIS_T).unwrap();
        assert_eq!(t.values[2].as_f64().unwrap().to_bits(), 0.5f64.to_bits());
    }

    #[test]
    fn v1_text_parses_onto_canonical_axes_with_identical_seeds() {
        let parsed = ExperimentSpec::from_text(&v1_text()).unwrap();
        assert_eq!(parsed, spec(), "v1 text must map onto the canonical three axes");
        // Seed derivation is pinned: these values are what the v1
        // implementation produced (grid-wide trial seeds, chained defense
        // seeds) and must never drift.
        assert_eq!(parsed.workload_seed(0), trial_seed(7, 0));
        assert_eq!(parsed.workload_seed(0), 0x63cb_e1e4_5932_0dd7u64);
        assert_eq!(parsed.workload_seed(2), 0xb5a7_c6fb_dbc4_2070u64);
        assert_eq!(parsed.defense_seed(2), defense_seed(parsed.workload_seed(2)));
        assert_eq!(parsed.defense_seed(2), 0x40f4_48e3_27e7_689du64);
        // And re-serializing fingerprints stably (v2 canonical form).
        assert_eq!(parsed.fingerprint(), spec().fingerprint());
    }

    #[test]
    fn escaping_roundtrips_and_is_injective_on_nasty_strings() {
        let nasty = [
            "1/2",
            "1of2",
            "a=b",
            "a%3Db",
            "x,y",
            "sp ace",
            "tab\there",
            "new\nline",
            "per%cent",
            "colon:kind",
            "ünïcode",
            "",
            "%",
            "%%",
            "/=,:",
            " ",
        ];
        let mut seen = std::collections::BTreeMap::new();
        for s in nasty {
            let esc = escape_component(s);
            assert_eq!(unescape_component(&esc).unwrap(), s, "roundtrip of {s:?}");
            assert!(
                !esc.chars().any(|c| "/=,:".contains(c) || c.is_whitespace() || c.is_control()),
                "escaped form {esc:?} leaks a structural character"
            );
            if let Some(prev) = seen.insert(esc.clone(), s) {
                panic!("{prev:?} and {s:?} both escape to {esc:?}");
            }
        }
        assert!(unescape_component("%zz").is_err());
        assert!(unescape_component("abc%2").is_err());
    }

    #[test]
    fn negative_zero_never_aliases_plain_zero() {
        // Regression: -0.0 == 0.0 and truncates to 0, so it used to print
        // as "0" — aliasing two representable floats in ids and spec text.
        assert_eq!(fmt_f64_exact(0.0), "0");
        assert_eq!(fmt_f64_exact(-0.0), "0x8000000000000000");
        assert_ne!(fmt_f64_exact(0.0), fmt_f64_exact(-0.0));
        let back = parse_f64_exact(&fmt_f64_exact(-0.0)).unwrap();
        assert_eq!(back.to_bits(), (-0.0f64).to_bits());
        // Ordinary negatives keep the readable integer form.
        assert_eq!(fmt_f64_exact(-3.0), "-3");
        assert_eq!(parse_f64_exact("-3").unwrap(), -3.0);
    }

    #[test]
    fn parse_rejects_bad_inputs() {
        assert!(ExperimentSpec::from_text("").unwrap_err().contains("empty"));
        assert!(ExperimentSpec::from_text("sybil-exp-spec v9\n").unwrap_err().contains("header"));
        let mut text = spec().to_text();
        text.push_str("mystery = 1\n");
        assert!(ExperimentSpec::from_text(&text).unwrap_err().contains("unknown"));
        // Missing key.
        let partial = "sybil-exp-spec v2\nname = x\naxis a = f64:1\n";
        assert!(ExperimentSpec::from_text(partial).unwrap_err().contains("missing"));
        // v2 without axes.
        let no_axes = "sybil-exp-spec v2\nname = x\ntrials = 1\nhorizon = 1\nkappa = 0\nseed = 1\n";
        assert!(ExperimentSpec::from_text(no_axes).unwrap_err().contains("axis"));
        // v1 keys are not valid in v2 (and vice versa).
        let mixed = "sybil-exp-spec v2\nname = x\nnetworks = a\naxis T = f64:1\n\
                     trials = 1\nhorizon = 1\nkappa = 0\nseed = 1\n";
        assert!(ExperimentSpec::from_text(mixed).unwrap_err().contains("unknown"));
        let v1_axis = "sybil-exp-spec v1\nname = x\naxis T = f64:1\n";
        assert!(ExperimentSpec::from_text(v1_axis).unwrap_err().contains("v1"));
        // Unknown axis kind.
        let bad_kind = "sybil-exp-spec v2\nname = x\naxis a = int:1\n\
                        trials = 1\nhorizon = 1\nkappa = 0\nseed = 1\n";
        assert!(ExperimentSpec::from_text(bad_kind).unwrap_err().contains("kind"));
    }

    #[test]
    fn validation_catches_degenerate_grids() {
        let mut s = spec();
        s.trials = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.axes[2].values = vec![AxisValue::F64(f64::NAN)];
        assert!(s.validate().is_err());
        let mut s = spec();
        s.axes[2].values = vec![AxisValue::F64(f64::INFINITY)];
        assert!(s.validate().unwrap_err().contains("non-finite"));
        let mut s = spec();
        s.kappa = 1.0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.axes.clear();
        assert!(s.validate().is_err());
        // Duplicate axis names.
        let mut s = spec();
        s.axes[1].name = AXIS_NETWORK.into();
        assert!(s.validate().unwrap_err().contains("duplicate"));
        // Duplicate values within an axis.
        let mut s = spec();
        s.axes[0].values.push(AxisValue::Str("gnutella".into()));
        assert!(s.validate().unwrap_err().contains("repeats"));
        // Mixed kinds within an axis could alias ("16" vs 16.0).
        let mut s = spec();
        s.axes[0].values.push(AxisValue::F64(16.0));
        assert!(s.validate().unwrap_err().contains("mixes"));
        // Empty axis.
        let mut s = spec();
        s.axes[0].values.clear();
        assert!(s.validate().is_err());
        // Labels with separators are fine now — escaping handles them.
        let mut s = spec();
        s.axes[1].values = vec![AxisValue::Str("has,comma".into()), AxisValue::Str("a/b".into())];
        assert!(s.validate().is_ok());
    }

    #[test]
    fn cells_enumerate_first_axis_major() {
        let s = spec();
        let cells = s.cells();
        assert_eq!(cells.len(), 2 * 2 * 3);
        assert_eq!(cells[0].str_value(AXIS_NETWORK), "gnutella");
        assert_eq!(cells[0].str_value(AXIS_ALGO), "ERGO");
        assert_eq!(cells[0].f64_value(AXIS_T), 0.0);
        assert_eq!(cells[1].f64_value(AXIS_T), 16.0);
        assert_eq!(cells[3].str_value(AXIS_ALGO), "CCOM");
        assert_eq!(cells[6].str_value(AXIS_NETWORK), "bitcoin");
        // Ids are unique and canonical.
        let ids: std::collections::BTreeSet<String> = cells.iter().map(|c| c.id()).collect();
        assert_eq!(ids.len(), cells.len());
        assert_eq!(cells[0].id(), "network=gnutella/algo=ERGO/T=0");
    }

    #[test]
    fn cell_ids_distinguish_close_floats() {
        let a = CellSpec::new(vec![("T".into(), AxisValue::F64(0.1))]);
        // One ULP away: bit-distinct floats must never alias in the store.
        let b =
            CellSpec::new(vec![("T".into(), AxisValue::F64(f64::from_bits(0.1f64.to_bits() + 1)))]);
        assert_ne!(a.id(), b.id());
        let d = CellSpec::new(vec![("T".into(), AxisValue::F64(1024.0))]);
        assert_eq!(d.id(), "T=1024");
    }

    /// A value that changes *kind* across releases must change its cell
    /// id: `Str("1024")` and `F64(1024.0)` (and the `0x` bit-pattern
    /// shapes) may never render identically, or a warm run could resume
    /// the other kind's record. `run_cell_grid` cells bypass spec-level
    /// kind validation, so the rendering itself must keep kinds disjoint.
    #[test]
    fn cell_ids_distinguish_value_kinds() {
        let id = |v: AxisValue| CellSpec::new(vec![("v".into(), v)]).id();
        assert_ne!(id(AxisValue::Str("1024".into())), id(AxisValue::F64(1024.0)));
        assert_ne!(id(AxisValue::Str("-3".into())), id(AxisValue::F64(-3.0)));
        assert_ne!(id(AxisValue::Str("0".into())), id(AxisValue::F64(0.0)));
        let bits = fmt_f64_exact(0.5); // "0x3fe0000000000000"
        assert_ne!(id(AxisValue::Str(bits.clone())), id(AxisValue::F64(0.5)));
        // The forced escape still round-trips through the text format.
        for s in ["1024", "-3", "0", &bits, "12a", "x1024"] {
            let rendered = AxisValue::Str(s.into()).render();
            assert_eq!(unescape_component(&rendered).unwrap(), s, "roundtrip of {s:?}");
        }
        // Distinct strings stay distinct under the forced escape too.
        assert_ne!(
            AxisValue::Str("1024".into()).render(),
            AxisValue::Str("%31024".into()).render()
        );
    }

    #[test]
    fn cell_ids_distinguish_separator_laden_values() {
        // The exact figure9 aliasing scenario: under the old
        // `label.replace('/', "of")` scheme these two collided.
        let a = CellSpec::new(vec![("frac".into(), AxisValue::Str("1/2".into()))]);
        let b = CellSpec::new(vec![("frac".into(), AxisValue::Str("1of2".into()))]);
        assert_ne!(a.id(), b.id());
        // '=' and '%' probes: escaping must not be foolable either.
        let c = CellSpec::new(vec![("k".into(), AxisValue::Str("a=b".into()))]);
        let d = CellSpec::new(vec![("k".into(), AxisValue::Str("a%3Db".into()))]);
        assert_ne!(c.id(), d.id());
        // Ids stay store-safe (no whitespace) even for nasty values.
        let e = CellSpec::new(vec![("k v".into(), AxisValue::Str("w x\ty".into()))]);
        assert!(!e.id().chars().any(char::is_whitespace), "{}", e.id());
    }

    /// Injectivity property: distinct axis assignments never yield equal
    /// cell ids, across randomized specs whose values deliberately contain
    /// the separators, the escape character, and each other's escaped
    /// forms. Round-trips through the text format stay bit-exact too.
    #[test]
    fn property_distinct_assignments_never_collide() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let alphabet: Vec<char> = "ab/=%,: \t.0x123of".chars().collect();
        for case in 0u64..64 {
            let mut rng = StdRng::seed_from_u64(0x5eed_0000 + case);
            let n_axes = rng.gen_range(1usize..4);
            let mut axes = Vec::new();
            for a in 0..n_axes {
                let float_axis = rng.gen_range(0u32..2) == 0;
                let n_vals = rng.gen_range(1usize..5);
                let mut values = Vec::new();
                let mut rendered = std::collections::BTreeSet::new();
                for _ in 0..n_vals {
                    let v = if float_axis {
                        AxisValue::F64(match rng.gen_range(0u32..4) {
                            0 => rng.gen_range(0.0f64..4.0),
                            1 => -rng.gen_range(0.0f64..4.0),
                            2 => rng.gen_range(0.0f64..4.0).floor(),
                            _ => {
                                f64::from_bits(rng.gen_range(0u64..u64::MAX) & !0x7ff0000000000000)
                            }
                        })
                    } else {
                        let len = rng.gen_range(1usize..8);
                        AxisValue::Str(
                            (0..len)
                                .map(|_| alphabet[rng.gen_range(0usize..alphabet.len())])
                                .collect(),
                        )
                    };
                    if rendered.insert(v.render()) {
                        values.push(v);
                    }
                }
                axes.push(Axis { name: format!("ax{a}"), values });
            }
            let spec = ExperimentSpec {
                name: format!("prop-{case}"),
                axes,
                trials: 1,
                horizon: 1.0,
                kappa: 0.0,
                seed: case,
            };
            spec.validate().unwrap_or_else(|e| panic!("case {case}: {e}"));
            let cells = spec.cells();
            let ids: std::collections::BTreeSet<String> = cells.iter().map(|c| c.id()).collect();
            assert_eq!(ids.len(), cells.len(), "case {case}: cell ids collided");
            // Text round trip preserves the spec bit-exactly.
            let back = ExperimentSpec::from_text(&spec.to_text())
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{}", spec.to_text()));
            assert_eq!(back.name, spec.name, "case {case}");
            assert_eq!(back.axes.len(), spec.axes.len(), "case {case}");
            for (ba, sa) in back.axes.iter().zip(&spec.axes) {
                assert_eq!(ba.name, sa.name, "case {case}");
                for (bv, sv) in ba.values.iter().zip(&sa.values) {
                    match (bv, sv) {
                        (AxisValue::Str(b), AxisValue::Str(s)) => assert_eq!(b, s, "case {case}"),
                        (AxisValue::F64(b), AxisValue::F64(s)) => {
                            assert_eq!(b.to_bits(), s.to_bits(), "case {case}")
                        }
                        _ => panic!("case {case}: value kind changed in round trip"),
                    }
                }
            }
        }
    }

    #[test]
    fn seeds_are_distinct_and_stable() {
        let seeds: std::collections::BTreeSet<u64> = (0..1000).map(|i| trial_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000, "collisions in trial seeds");
        assert_eq!(trial_seed(42, 7), trial_seed(42, 7));
        assert_ne!(trial_seed(42, 7), trial_seed(43, 7));
        // Spec seed derivation chains trial → defense.
        let s = spec();
        assert_eq!(s.defense_seed(2), defense_seed(s.workload_seed(2)));
    }

    #[test]
    fn cell_seed_is_keyed_on_the_canonical_id() {
        let s = spec();
        let cells = s.cells();
        // Distinct cells get distinct streams; the same cell is stable.
        let a = s.cell_seed(&cells[0], 0);
        assert_eq!(a, s.cell_seed(&cells[0], 0));
        assert_ne!(a, s.cell_seed(&cells[1], 0));
        assert_ne!(a, s.cell_seed(&cells[0], 1));
        // Keyed on the id, not the struct: an identical assignment built
        // by hand produces the same seed.
        let rebuilt = CellSpec::new(cells[0].assignment.clone());
        assert_eq!(a, s.cell_seed(&rebuilt, 0));
        // The free-function form is the same frozen derivation.
        assert_eq!(a, cell_seed(s.seed, &cells[0], 0));
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = spec();
        let mut b = spec();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.trials += 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint().len(), 64);
        // Axis naming is part of the identity.
        let mut c = spec();
        c.axes[2].name = "rate".into();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
