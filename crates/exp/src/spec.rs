//! Declarative experiment specifications and deterministic seed derivation.
//!
//! An [`ExperimentSpec`] names a grid — churn networks × algorithm labels ×
//! adversary spend rates — plus the trial count, horizon, and base seed
//! that pin every cell down. The spec is serializable to a small versioned
//! text format (see [`ExperimentSpec::to_text`]) so a results store can
//! record exactly which grid produced it, and resumed runs can verify they
//! are continuing the *same* experiment.
//!
//! # Seed derivation
//!
//! Every cell's randomness is a pure function of the spec's `seed`:
//!
//! * workload seed for trial `i` = [`trial_seed`]`(seed, i)` — shared by
//!   **all** cells of the grid, so every (algorithm, T) pair of a trial
//!   replays the same good-ID schedule and the workload cache services the
//!   whole grid row from one file;
//! * defense seed = [`defense_seed`]`(workload seed)` — a distinct stream
//!   so classifier-gated defenses never share draws with trace generation.
//!
//! Both derivations are order-free (SplitMix64 finalizer), so results are
//! identical regardless of worker count or cell scheduling.

/// Format tag on the first line of a serialized spec.
pub const SPEC_MAGIC: &str = "sybil-exp-spec";
/// Current (and only) spec format version.
pub const SPEC_VERSION: u32 = 1;

/// A declarative experiment grid.
///
/// Networks and algorithms are *labels*: the experiment driver that owns
/// the spec maps them back to concrete churn models and defense
/// constructors. Keeping the spec string-typed keeps this crate independent
/// of any particular defense roster.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name (also names the results store / CSV artifacts).
    pub name: String,
    /// Churn network labels (one workload family per entry).
    pub networks: Vec<String>,
    /// Algorithm labels (resolved by the driver).
    pub algos: Vec<String>,
    /// Adversary spend rates `T` swept per (network, algorithm).
    pub t_grid: Vec<f64>,
    /// Independent trials per cell (distinct workload seeds).
    pub trials: u32,
    /// Simulated seconds per run.
    pub horizon: f64,
    /// Adversary power fraction κ.
    pub kappa: f64,
    /// Base seed; all cell randomness derives from it.
    pub seed: u64,
}

/// One (network, algorithm, T) cell of a spec's grid.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSpec {
    /// Network label.
    pub network: String,
    /// Algorithm label.
    pub algo: String,
    /// Adversary spend rate `T`.
    pub t: f64,
}

/// Bit-exact float rendering shared by cell ids and the spec text format:
/// exactly-integral values print as plain integers (readable), everything
/// else as a `0x`-prefixed bit pattern — two representable floats can
/// never alias, and parsing the bit form back is lossless.
fn fmt_f64_exact(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("0x{:016x}", x.to_bits())
    }
}

impl CellSpec {
    /// Stable identifier used as the results-store key. Floats are encoded
    /// via their bit pattern when fractional so distinct `T`s can never
    /// alias in the store.
    pub fn id(&self) -> String {
        format!("{}/{}/T={}", self.network, self.algo, fmt_f64_exact(self.t))
    }
}

impl ExperimentSpec {
    /// Checks the spec is runnable: non-empty grid, positive horizon and
    /// trial count, κ in `[0, 1)`, finite non-negative spend rates, and
    /// label characters that cannot corrupt the text format.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("spec name is empty".into());
        }
        if self.networks.is_empty() || self.algos.is_empty() || self.t_grid.is_empty() {
            return Err("spec grid is empty (need networks, algos, and t values)".into());
        }
        if self.trials == 0 {
            return Err("spec needs at least one trial".into());
        }
        if !(self.horizon.is_finite() && self.horizon > 0.0) {
            return Err(format!("horizon {} must be positive and finite", self.horizon));
        }
        if !(0.0..1.0).contains(&self.kappa) {
            return Err(format!("kappa {} must be in [0, 1)", self.kappa));
        }
        for &t in &self.t_grid {
            if !(t.is_finite() && t >= 0.0) {
                return Err(format!("spend rate {t} must be finite and non-negative"));
            }
        }
        for label in self.networks.iter().chain(&self.algos).chain(std::iter::once(&self.name)) {
            if label.chars().any(|c| c == ',' || c == '\n' || c == '=' || c == '/') {
                return Err(format!(
                    "label {label:?} contains a reserved character (, = / or newline)"
                ));
            }
        }
        Ok(())
    }

    /// Enumerates the grid in deterministic (network-major) order.
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out =
            Vec::with_capacity(self.networks.len() * self.algos.len() * self.t_grid.len());
        for network in &self.networks {
            for algo in &self.algos {
                for &t in &self.t_grid {
                    out.push(CellSpec { network: network.clone(), algo: algo.clone(), t });
                }
            }
        }
        out
    }

    /// Workload seed for trial `index` — shared across the whole grid so
    /// cells replay identical schedules (and share cache entries).
    pub fn workload_seed(&self, index: u32) -> u64 {
        trial_seed(self.seed, index as u64)
    }

    /// Defense seed for trial `index` (see [`defense_seed`]).
    pub fn defense_seed(&self, index: u32) -> u64 {
        defense_seed(self.workload_seed(index))
    }

    /// Serializes to the versioned text format:
    ///
    /// ```text
    /// sybil-exp-spec v1
    /// name = figure8
    /// networks = bitcoin,bittorrent,gnutella,ethereum
    /// algos = ERGO,CCOM
    /// t = 0,1,4,0x40a0000000000000
    /// trials = 5
    /// horizon = 10000
    /// kappa = 0x3fac71c71c71c71c
    /// seed = 1
    /// ```
    ///
    /// Floats serialize as plain integers when exactly integral and as
    /// `0x`-prefixed bit patterns otherwise, so a round trip is always
    /// bit-exact.
    pub fn to_text(&self) -> String {
        let ts: Vec<String> = self.t_grid.iter().map(|&t| fmt_f64_exact(t)).collect();
        format!(
            "{SPEC_MAGIC} v{SPEC_VERSION}\n\
             name = {}\n\
             networks = {}\n\
             algos = {}\n\
             t = {}\n\
             trials = {}\n\
             horizon = {}\n\
             kappa = {}\n\
             seed = {}\n",
            self.name,
            self.networks.join(","),
            self.algos.join(","),
            ts.join(","),
            self.trials,
            fmt_f64_exact(self.horizon),
            fmt_f64_exact(self.kappa),
            self.seed,
        )
    }

    /// Parses the text format written by [`to_text`]. Unknown keys are
    /// rejected (they indicate a newer writer), as is a missing key or a
    /// version this build does not read.
    pub fn from_text(text: &str) -> Result<ExperimentSpec, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty spec")?;
        let expect = format!("{SPEC_MAGIC} v{SPEC_VERSION}");
        if header.trim() != expect {
            return Err(format!("bad spec header {header:?} (this build reads {expect:?})"));
        }
        let parse_f = |s: &str| -> Result<f64, String> {
            if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
                    .map(f64::from_bits)
                    .map_err(|e| format!("bad float bits {s:?}: {e}"))
            } else {
                s.parse::<f64>().map_err(|e| format!("bad float {s:?}: {e}"))
            }
        };
        let mut name = None;
        let mut networks = None;
        let mut algos = None;
        let mut t_grid = None;
        let mut trials = None;
        let mut horizon = None;
        let mut kappa = None;
        let mut seed = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) =
                line.split_once('=').ok_or_else(|| format!("malformed line {line:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            let list = || -> Vec<String> {
                value.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
            };
            match key {
                "name" => name = Some(value.to_string()),
                "networks" => networks = Some(list()),
                "algos" => algos = Some(list()),
                "t" => {
                    t_grid = Some(list().iter().map(|s| parse_f(s)).collect::<Result<Vec<_>, _>>()?)
                }
                "trials" => {
                    trials = Some(
                        value.parse::<u32>().map_err(|e| format!("bad trials {value:?}: {e}"))?,
                    )
                }
                "horizon" => horizon = Some(parse_f(value)?),
                "kappa" => kappa = Some(parse_f(value)?),
                "seed" => {
                    seed =
                        Some(value.parse::<u64>().map_err(|e| format!("bad seed {value:?}: {e}"))?)
                }
                _ => return Err(format!("unknown spec key {key:?}")),
            }
        }
        let spec = ExperimentSpec {
            name: name.ok_or("missing key: name")?,
            networks: networks.ok_or("missing key: networks")?,
            algos: algos.ok_or("missing key: algos")?,
            t_grid: t_grid.ok_or("missing key: t")?,
            trials: trials.ok_or("missing key: trials")?,
            horizon: horizon.ok_or("missing key: horizon")?,
            kappa: kappa.ok_or("missing key: kappa")?,
            seed: seed.ok_or("missing key: seed")?,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// SHA-256 of the canonical text form — the identity a results store
    /// records so resumes can detect a changed grid.
    pub fn fingerprint(&self) -> String {
        text_fingerprint(&self.to_text())
    }
}

/// SHA-256 fingerprint of an arbitrary canonical configuration text.
///
/// For experiments whose grids do not fit [`ExperimentSpec`] (e.g. the
/// estimator-accuracy and ablation grids): write the full configuration —
/// every knob that affects results — into one canonical string and bind
/// the results store to its hash, so any change invalidates stale cells.
pub fn text_fingerprint(text: &str) -> String {
    sybil_crypto::hex::encode(sybil_crypto::sha256::Sha256::digest(text.as_bytes()).as_bytes())
}

/// Derives the deterministic seed for trial `index` of an experiment
/// anchored at `base`. Pure function of its inputs (SplitMix64 finalizer),
/// so results never depend on worker count or scheduling order.
pub fn trial_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the defense-construction seed for a cell whose workload is
/// seeded with `seed`.
///
/// Kept distinct from the workload seed so classifier-gated defenses do
/// not share a stream with trace generation. Every runner that wants its
/// results comparable (e.g. the perf scenarios and the sweep cells) must
/// use this same derivation.
pub fn defense_seed(seed: u64) -> u64 {
    seed.wrapping_mul(7919).wrapping_add(13)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "figure8-test".into(),
            networks: vec!["gnutella".into(), "bitcoin".into()],
            algos: vec!["ERGO".into(), "CCOM".into()],
            t_grid: vec![0.0, 16.0, 0.5],
            trials: 3,
            horizon: 500.0,
            kappa: 1.0 / 18.0,
            seed: 7,
        }
    }

    #[test]
    fn text_roundtrip_is_bit_exact() {
        let s = spec();
        let text = s.to_text();
        let back = ExperimentSpec::from_text(&text).unwrap();
        assert_eq!(s, back);
        // κ = 1/18 is not integral: must survive via the bit-pattern form.
        assert_eq!(back.kappa.to_bits(), s.kappa.to_bits());
        assert_eq!(back.t_grid[2].to_bits(), 0.5f64.to_bits());
    }

    #[test]
    fn parse_rejects_bad_inputs() {
        assert!(ExperimentSpec::from_text("").unwrap_err().contains("empty"));
        assert!(ExperimentSpec::from_text("sybil-exp-spec v9\n").unwrap_err().contains("header"));
        let mut text = spec().to_text();
        text.push_str("mystery = 1\n");
        assert!(ExperimentSpec::from_text(&text).unwrap_err().contains("unknown"));
        // Missing key.
        let partial = "sybil-exp-spec v1\nname = x\n";
        assert!(ExperimentSpec::from_text(partial).unwrap_err().contains("missing"));
    }

    #[test]
    fn validation_catches_degenerate_grids() {
        let mut s = spec();
        s.trials = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.t_grid = vec![f64::NAN];
        assert!(s.validate().is_err());
        let mut s = spec();
        s.algos = vec!["has,comma".into()];
        assert!(s.validate().is_err());
        let mut s = spec();
        s.kappa = 1.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn cells_enumerate_network_major() {
        let s = spec();
        let cells = s.cells();
        assert_eq!(cells.len(), 2 * 2 * 3);
        assert_eq!(cells[0].network, "gnutella");
        assert_eq!(cells[0].algo, "ERGO");
        assert_eq!(cells[0].t, 0.0);
        assert_eq!(cells[1].t, 16.0);
        assert_eq!(cells[3].algo, "CCOM");
        assert_eq!(cells[6].network, "bitcoin");
        // Ids are unique.
        let ids: std::collections::BTreeSet<String> = cells.iter().map(|c| c.id()).collect();
        assert_eq!(ids.len(), cells.len());
    }

    #[test]
    fn cell_ids_distinguish_close_floats() {
        let a = CellSpec { network: "n".into(), algo: "a".into(), t: 0.1 };
        // One ULP away: bit-distinct floats must never alias in the store.
        let b = CellSpec {
            network: "n".into(),
            algo: "a".into(),
            t: f64::from_bits(0.1f64.to_bits() + 1),
        };
        assert_ne!(a.id(), b.id());
        let d = CellSpec { network: "n".into(), algo: "a".into(), t: 1024.0 };
        assert_eq!(d.id(), "n/a/T=1024");
    }

    #[test]
    fn seeds_are_distinct_and_stable() {
        let seeds: std::collections::BTreeSet<u64> = (0..1000).map(|i| trial_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000, "collisions in trial seeds");
        assert_eq!(trial_seed(42, 7), trial_seed(42, 7));
        assert_ne!(trial_seed(42, 7), trial_seed(43, 7));
        // Spec seed derivation chains trial → defense.
        let s = spec();
        assert_eq!(s.defense_seed(2), defense_seed(s.workload_seed(2)));
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = spec();
        let mut b = spec();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.trials += 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint().len(), 64);
    }
}
