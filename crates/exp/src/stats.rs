//! Multi-trial statistics: streaming mean/variance and t-based
//! confidence intervals.
//!
//! Trials are aggregated one [`SimReport`](sybil_sim::SimReport)-derived
//! metric at a time through [`Welford`] accumulators, so a cell's reports
//! never need to be resident together — at million-ID scale a single
//! report's timeline/estimate vectors are the only per-trial state, and
//! they are dropped as soon as the accumulators have absorbed them.

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams: the incremental update never forms
/// `Σx²`, so catastrophic cancellation between large near-equal sums cannot
/// occur.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Absorbs one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (NaN when empty — "no data" must not read as zero).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (NaN with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation (NaN with fewer than two observations).
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        self.std_dev() / (self.n as f64).sqrt()
    }

    /// The 95 % confidence interval half-width, `t₀.₀₂₅,ₙ₋₁ · s/√n`.
    ///
    /// NaN with fewer than two observations: a single trial carries no
    /// dispersion information, and pretending otherwise (e.g. a zero-width
    /// interval) would overstate certainty in the CSVs.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return f64::NAN;
        }
        t_critical_95(self.n - 1) * self.std_err()
    }

    /// Summarizes into `(mean, ci_lo, ci_hi)`.
    pub fn summary(&self) -> MetricSummary {
        let half = self.ci95_half_width();
        MetricSummary {
            n: self.n,
            mean: self.mean(),
            ci95_lo: self.mean() - half,
            ci95_hi: self.mean() + half,
        }
    }
}

/// A metric aggregated over trials: mean plus its 95 % CI bounds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricSummary {
    /// Trials absorbed.
    pub n: u64,
    /// Sample mean (NaN when no trials).
    pub mean: f64,
    /// Lower 95 % confidence bound (NaN below two trials).
    pub ci95_lo: f64,
    /// Upper 95 % confidence bound (NaN below two trials).
    pub ci95_hi: f64,
}

impl MetricSummary {
    /// The `<name>_mean`, `<name>_ci95_lo`, `<name>_ci95_hi` store-field
    /// triple every grid driver records per metric. This is the naming
    /// contract [`from_record`](Self::from_record) reads back; keeping
    /// both sides here keeps it single-sourced across drivers.
    pub fn fields(&self, name: &str) -> [(String, f64); 3] {
        [
            (format!("{name}_mean"), self.mean),
            (format!("{name}_ci95_lo"), self.ci95_lo),
            (format!("{name}_ci95_hi"), self.ci95_hi),
        ]
    }

    /// Reads the triple written by [`fields`](Self::fields) back out of a
    /// results-store record.
    ///
    /// # Panics
    ///
    /// Panics if the record lacks one of the three fields — a driver/store
    /// schema mismatch, not a runtime condition.
    pub fn from_record(record: &crate::store::Record, name: &str, trials: u64) -> MetricSummary {
        let get = |suffix: &str| {
            record.get(&format!("{name}_{suffix}")).unwrap_or_else(|| {
                panic!("results store record {} lacks field {name}_{suffix}", record.cell_id)
            })
        };
        MetricSummary {
            n: trials,
            mean: get("mean"),
            ci95_lo: get("ci95_lo"),
            ci95_hi: get("ci95_hi"),
        }
    }

    /// [`from_record`](Self::from_record) over a grid cell that may be a
    /// quarantine hole: `None` yields the all-NaN, zero-trial summary, so
    /// downstream tables and CSVs render the cell blank instead of
    /// inventing a number (see `fmt_num`'s NaN-is-blank convention).
    pub fn from_record_opt(
        record: Option<&crate::store::Record>,
        name: &str,
        trials: u64,
    ) -> MetricSummary {
        match record {
            Some(record) => Self::from_record(record, name, trials),
            None => MetricSummary { n: 0, mean: f64::NAN, ci95_lo: f64::NAN, ci95_hi: f64::NAN },
        }
    }
}

/// Two-sided 95 % Student-t critical value for `df` degrees of freedom.
///
/// Exact table through df = 30, then the standard coarse rows (40, 60,
/// 120, ∞) applied with the printed-table convention: round `df` *down*
/// to the largest tabulated row — e.g. df = 35 uses the df = 30 value
/// 2.042, not the df = 40 value 2.021 — so between rows the interval is
/// slightly conservative, never narrower than the exact value.
pub fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::NAN,
        1..=30 => TABLE[(df - 1) as usize],
        31..=39 => 2.042,
        40..=59 => 2.021,
        60..=119 => 2.000,
        _ => 1.980,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_summary_fields_roundtrip_through_a_record() {
        let mut w = Welford::new();
        for x in [1.0, 2.0, 4.0] {
            w.push(x);
        }
        let s = w.summary();
        let record = crate::store::Record::new("cell", s.fields("good_rate").into_iter().collect());
        let back = MetricSummary::from_record(&record, "good_rate", s.n);
        assert_eq!(back, s);
    }

    #[test]
    fn welford_matches_naive_mean_and_variance() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        assert_eq!(w.count(), data.len() as u64);
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn welford_is_stable_under_large_offsets() {
        // Same spread around a huge offset: naive Σx² would lose all
        // precision; Welford must not.
        let mut w = Welford::new();
        for x in [1e12 + 1.0, 1e12 + 2.0, 1e12 + 3.0] {
            w.push(x);
        }
        assert!((w.variance() - 1.0).abs() < 1e-6, "variance {}", w.variance());
    }

    #[test]
    fn empty_and_single_observation_are_nan_not_zero() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        assert!(w.variance().is_nan());
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert!(w.ci95_half_width().is_nan(), "one trial must not claim an interval");
        let s = w.summary();
        assert_eq!(s.mean, 3.0);
        assert!(s.ci95_lo.is_nan() && s.ci95_hi.is_nan());
    }

    #[test]
    fn ci_covers_the_textbook_example() {
        // Five trials, s = 1, mean = 10: CI half-width = 2.776/√5 ≈ 1.2415.
        let mut w = Welford::new();
        for x in [9.0, 9.5, 10.0, 10.5, 11.0] {
            w.push(x);
        }
        let expected = t_critical_95(4) * w.std_err();
        let s = w.summary();
        assert!((s.ci95_hi - s.mean - expected).abs() < 1e-12);
        assert!(s.ci95_lo < s.mean && s.mean < s.ci95_hi);
        assert_eq!(s.n, 5);
    }

    #[test]
    fn t_table_is_monotone_and_bounded() {
        assert!(t_critical_95(0).is_nan());
        let mut prev = f64::INFINITY;
        for df in 1..200 {
            let t = t_critical_95(df);
            assert!(t <= prev, "t must not increase with df");
            assert!(t >= 1.960);
            prev = t;
        }
        assert_eq!(t_critical_95(1), 12.706);
        // Between tabulated rows, df rounds DOWN (conservative): df = 35
        // uses the df = 30 value, never the narrower df = 40 one.
        assert_eq!(t_critical_95(35), t_critical_95(30));
        // Finite df never reaches the normal limit 1.960: everything at or
        // beyond the last tabulated row uses that row's (wider) value.
        assert_eq!(t_critical_95(1_000_000), 1.980);
    }
}
