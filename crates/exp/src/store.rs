//! Append-only, resumable per-cell results store.
//!
//! A store is one text file: a versioned header binding it to a spec
//! fingerprint, then one `cell` line per finished grid cell. Lines are
//! appended (and flushed) as cells complete, so a killed run loses at most
//! the in-flight cells; re-running the same experiment loads the store,
//! skips every recorded cell, and appends only the remainder.
//!
//! # Format (version 1)
//!
//! ```text
//! sybil-exp-results v1
//! spec_fingerprint = <64 hex chars>
//! cell <id> <name>=<f64 bits as 0x hex>,<name>=...
//! ```
//!
//! Field values are stored as `0x`-prefixed bit patterns: resumed cells
//! must reproduce *exactly* what the original run measured, so the store
//! never round-trips floats through decimal.

use crate::fault::{self, Site};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// Format tag on the first line of a store file.
pub const STORE_MAGIC: &str = "sybil-exp-results";
/// Current (and only) store format version.
pub const STORE_VERSION: u32 = 1;

/// How hard an append pushes a record toward the platter.
///
/// [`Durability::Flush`] hands the line to the OS (one `write(2)` per
/// append): a killed *process* loses at most in-flight cells, but a
/// kernel panic or power cut can still lose recently appended ones.
/// [`Durability::Sync`] adds `fdatasync(2)` per append, so a record the
/// store acknowledged survives machine crashes too — the mode
/// crash-safety-critical runs (e.g. `invariants_millions`) default to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Durability {
    /// Write-and-flush to the OS; no fsync. The default.
    #[default]
    Flush,
    /// `fdatasync` after every append (and after the header on create).
    Sync,
}

/// One finished cell: its id plus named metric values.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// The cell id (see `CellSpec::id`).
    pub cell_id: String,
    /// Named metric values, in insertion order.
    pub fields: Vec<(String, f64)>,
}

impl Record {
    /// Creates a record; field names must be non-empty and free of the
    /// format's separators.
    pub fn new(cell_id: impl Into<String>, fields: Vec<(String, f64)>) -> Record {
        let record = Record { cell_id: cell_id.into(), fields };
        debug_assert!(record.validate().is_ok(), "{:?}", record.validate());
        record
    }

    fn validate(&self) -> Result<(), String> {
        if self.cell_id.is_empty() || self.cell_id.chars().any(|c| c.is_whitespace()) {
            return Err(format!(
                "cell id {:?} must be non-empty, without whitespace",
                self.cell_id
            ));
        }
        for (name, _) in &self.fields {
            if name.is_empty() || name.chars().any(|c| c.is_whitespace() || c == ',' || c == '=') {
                return Err(format!("field name {name:?} contains a reserved character"));
            }
        }
        Ok(())
    }

    /// Looks up a field by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.fields.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// The file handle plus the length of the durable, well-formed prefix.
/// Tracking `valid_len` lets a failed append *self-heal*: the file is
/// truncated back to the last good record, so an injected (or real) torn
/// write can never corrupt the line a later append starts.
#[derive(Debug)]
struct StoreWriter {
    file: File,
    valid_len: u64,
    durability: Durability,
}

/// The append-only results store for one experiment.
///
/// Appends are serialized through an internal lock, so worker threads can
/// record cells as they finish.
#[derive(Debug)]
pub struct ResultsStore {
    path: PathBuf,
    fingerprint: String,
    done: BTreeMap<String, Record>,
    writer: Mutex<StoreWriter>,
}

impl ResultsStore {
    /// Opens the store at `path` for the experiment identified by
    /// `spec_fingerprint`, with the default [`Durability::Flush`].
    ///
    /// * No file: a fresh store is created with a header.
    /// * Existing file with a matching header: its records load as
    ///   already-done cells and new records append after them.
    /// * Existing file with a different fingerprint or an unreadable
    ///   header/record: the file is **replaced** by a fresh store — the
    ///   grid changed (or the file is foreign), so none of its cells can
    ///   be trusted as results of this spec.
    ///
    /// Returns the store and whether prior results were kept (`true` =
    /// resumed).
    pub fn open<P: AsRef<Path>>(
        path: P,
        spec_fingerprint: &str,
    ) -> io::Result<(ResultsStore, bool)> {
        Self::open_with(path, spec_fingerprint, Durability::Flush)
    }

    /// [`open`](Self::open) with an explicit [`Durability`] mode.
    pub fn open_with<P: AsRef<Path>>(
        path: P,
        spec_fingerprint: &str,
        durability: Durability,
    ) -> io::Result<(ResultsStore, bool)> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        if path.exists() {
            match Self::load(&path, spec_fingerprint) {
                Ok((done, valid_len)) => {
                    let file = OpenOptions::new().append(true).open(&path)?;
                    if valid_len < file.metadata()?.len() {
                        // A torn trailing fragment from a killed append:
                        // drop it so the next append starts a clean line.
                        file.set_len(valid_len)?;
                    }
                    let store = ResultsStore {
                        path,
                        fingerprint: spec_fingerprint.to_string(),
                        done,
                        writer: Mutex::new(StoreWriter { file, valid_len, durability }),
                    };
                    return Ok((store, true));
                }
                Err(_) => {
                    // Mismatched spec or corrupt store: start over, but
                    // keep the old file aside — a completed paper-scale
                    // store represents hours of compute, and one run with
                    // a tweaked knob (e.g. SYBIL_BENCH_FAST=1) must not
                    // destroy it. Only one `.prev` is kept; switching
                    // specs back restores nothing automatically, but the
                    // data survives for manual recovery.
                    let backup = path.with_extension(match path.extension() {
                        Some(ext) => format!("{}.prev", ext.to_string_lossy()),
                        None => "prev".to_string(),
                    });
                    std::fs::rename(&path, backup)?;
                }
            }
        }
        let mut file = File::create(&path)?;
        let header =
            format!("{STORE_MAGIC} v{STORE_VERSION}\nspec_fingerprint = {spec_fingerprint}\n");
        file.write_all(header.as_bytes())?;
        if durability == Durability::Sync {
            file.sync_data()?;
        }
        Ok((
            ResultsStore {
                path,
                fingerprint: spec_fingerprint.to_string(),
                done: BTreeMap::new(),
                writer: Mutex::new(StoreWriter {
                    file,
                    valid_len: header.len() as u64,
                    durability,
                }),
            },
            false,
        ))
    }

    /// Parses the store, returning the records and the byte length of the
    /// valid (newline-terminated) prefix.
    ///
    /// Every append writes a complete line ending in `\n` in one flush, so
    /// a final fragment *without* a trailing newline can only be a torn
    /// write from a killed run — it is dropped (the caller truncates it)
    /// while all previously flushed records are kept. A malformed line
    /// that *is* newline-terminated, by contrast, cannot come from a torn
    /// append and marks the whole store corrupt.
    fn load(path: &Path, spec_fingerprint: &str) -> io::Result<(BTreeMap<String, Record>, u64)> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut text = String::new();
        File::open(path)?.read_to_string(&mut text)?;
        let mut valid_len = 0u64;
        let mut lines = text.split_inclusive('\n').map(|raw| {
            let complete = raw.ends_with('\n');
            (raw.len() as u64, raw.trim(), complete)
        });
        let (header_len, header, header_complete) =
            lines.next().ok_or_else(|| bad("empty store".into()))?;
        let expect = format!("{STORE_MAGIC} v{STORE_VERSION}");
        if !header_complete || header != expect {
            return Err(bad(format!("bad store header {header:?}")));
        }
        valid_len += header_len;
        let (fp_len, fp_line, fp_complete) =
            lines.next().ok_or_else(|| bad("missing fingerprint line".into()))?;
        let fp = fp_line
            .strip_prefix("spec_fingerprint =")
            .map(str::trim)
            .filter(|_| fp_complete)
            .ok_or_else(|| bad(format!("bad fingerprint line {fp_line:?}")))?;
        if fp != spec_fingerprint {
            return Err(bad(format!(
                "store belongs to spec {fp}, current spec is {spec_fingerprint}"
            )));
        }
        valid_len += fp_len;
        let mut done = BTreeMap::new();
        for (raw_len, line, complete) in lines {
            if !complete {
                // Torn final append: keep everything before it.
                break;
            }
            if line.is_empty() {
                valid_len += raw_len;
                continue;
            }
            let parse = || -> Result<Record, String> {
                let rest = line
                    .strip_prefix("cell ")
                    .ok_or_else(|| format!("unexpected store line {line:?}"))?;
                let (id, fields_text) =
                    rest.split_once(' ').ok_or_else(|| format!("malformed cell line {line:?}"))?;
                let mut fields = Vec::new();
                for pair in fields_text.split(',').filter(|p| !p.is_empty()) {
                    let (name, bits) =
                        pair.split_once('=').ok_or_else(|| format!("malformed field {pair:?}"))?;
                    let bits = bits
                        .strip_prefix("0x")
                        .and_then(|h| u64::from_str_radix(h, 16).ok())
                        .ok_or_else(|| format!("malformed field value {pair:?}"))?;
                    fields.push((name.to_string(), f64::from_bits(bits)));
                }
                Ok(Record { cell_id: id.to_string(), fields })
            };
            let record = parse().map_err(bad)?;
            done.insert(record.cell_id.clone(), record);
            valid_len += raw_len;
        }
        Ok((done, valid_len))
    }

    /// The store file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True if `cell_id` already has a recorded result.
    pub fn is_done(&self, cell_id: &str) -> bool {
        self.done.contains_key(cell_id)
    }

    /// The previously recorded result for `cell_id`, if any.
    pub fn get(&self, cell_id: &str) -> Option<&Record> {
        self.done.get(cell_id)
    }

    /// Number of recorded cells.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// True if no cells are recorded.
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// Appends a finished cell and flushes it to disk. Thread-safe.
    ///
    /// The whole line goes down in one `write(2)` (plus `fdatasync` under
    /// [`Durability::Sync`]). If the write fails partway — a real `ENOSPC`
    /// or an injected short write — the file is truncated back to the last
    /// good record before the error is returned, so a failed append can
    /// never corrupt the line a retried append starts.
    ///
    /// Appending does not update the in-memory `done` set — the set
    /// answers "was this done before *this* run", and cells are only run
    /// once per run.
    pub fn append(&self, record: &Record) -> io::Result<()> {
        record.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let line = Self::render_line(record);
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let result = Self::write_line(&mut writer, &record.cell_id, line.as_bytes());
        if result.is_err() {
            // Self-heal: drop any torn bytes so the next append starts a
            // clean line. If even the truncation fails, the torn fragment
            // stays on disk and reopen-time truncation handles it.
            let valid_len = writer.valid_len;
            let _ = writer.file.set_len(valid_len);
            let _ = writer.file.seek(SeekFrom::Start(valid_len));
        }
        result
    }

    fn write_line(writer: &mut StoreWriter, cell_id: &str, line: &[u8]) -> io::Result<()> {
        fault::check_io(Site::StoreAppend, cell_id)?;
        if let Some(n) = fault::short_write_len(Site::StoreAppend, cell_id, line.len()) {
            writer.file.write_all(&line[..n])?;
            return Err(io::Error::other(format!(
                "injected fault: short store append for {cell_id} ({n}/{} bytes)",
                line.len()
            )));
        }
        writer.file.write_all(line)?;
        if writer.durability == Durability::Sync {
            writer.file.sync_data()?;
        }
        writer.valid_len += line.len() as u64;
        Ok(())
    }

    fn render_line(record: &Record) -> String {
        let fields: Vec<String> = record
            .fields
            .iter()
            .map(|(name, value)| format!("{name}=0x{:016x}", value.to_bits()))
            .collect();
        format!("cell {} {}\n", record.cell_id, fields.join(","))
    }

    /// The order-insensitive canonical rendering of the store on disk:
    /// header, fingerprint line, then one line per cell sorted by id.
    ///
    /// Parallel workers and retry rounds append records in nondeterministic
    /// order, so two equivalent runs rarely produce byte-identical *files*.
    /// They do produce identical canonical bytes, which is the identity the
    /// chaos suite asserts for crash-equivalence (fault-injected run +
    /// resume == fault-free run, bit for bit).
    pub fn canonical_bytes(&self) -> io::Result<Vec<u8>> {
        let (done, _) = Self::load(&self.path, &self.fingerprint)?;
        let mut out =
            format!("{STORE_MAGIC} v{STORE_VERSION}\nspec_fingerprint = {}\n", self.fingerprint)
                .into_bytes();
        for record in done.values() {
            out.extend_from_slice(Self::render_line(record).as_bytes());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("sybil_exp_store_{tag}_{}_{n}.txt", std::process::id()))
    }

    fn record(id: &str, v: f64) -> Record {
        Record::new(id, vec![("mean".into(), v), ("ci95_lo".into(), v - 1.0)])
    }

    #[test]
    fn fresh_append_reload_roundtrip_is_bit_exact() {
        let path = temp_store("roundtrip");
        let (store, resumed) = ResultsStore::open(&path, "fp-a").unwrap();
        assert!(!resumed);
        assert!(store.is_empty());
        let r = record("net/ERGO/T=16", 0.1 + 0.2); // not exactly representable in decimal
        store.append(&r).unwrap();
        store.append(&record("net/CCOM/T=16", f64::NAN)).unwrap();
        drop(store);

        let (store, resumed) = ResultsStore::open(&path, "fp-a").unwrap();
        assert!(resumed);
        assert_eq!(store.len(), 2);
        assert!(store.is_done("net/ERGO/T=16"));
        let got = store.get("net/ERGO/T=16").unwrap();
        assert_eq!(got.get("mean").unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        // NaN round-trips (bit-level storage).
        assert!(store.get("net/CCOM/T=16").unwrap().get("mean").unwrap().is_nan());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_fingerprint_restarts_fresh() {
        let path = temp_store("fp");
        let (store, _) = ResultsStore::open(&path, "fp-a").unwrap();
        store.append(&record("a", 1.0)).unwrap();
        drop(store);
        let (store, resumed) = ResultsStore::open(&path, "fp-B").unwrap();
        assert!(!resumed, "changed spec must invalidate old results");
        assert!(store.is_empty());
        // The displaced store survives as .prev for manual recovery.
        let backup = path.with_extension("txt.prev");
        let prev = std::fs::read_to_string(&backup).unwrap();
        assert!(prev.contains("fp-a") && prev.contains("cell a"), "{prev}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&backup).ok();
    }

    #[test]
    fn corrupt_store_restarts_fresh() {
        let path = temp_store("corrupt");
        let (store, _) = ResultsStore::open(&path, "fp-a").unwrap();
        store.append(&record("a", 1.0)).unwrap();
        drop(store);
        // A line the format does not recognize invalidates the store.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("garbage line\n");
        std::fs::write(&path, &text).unwrap();
        let (store, resumed) = ResultsStore::open(&path, "fp-a").unwrap();
        assert!(!resumed);
        assert!(store.is_empty());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(path.with_extension("txt.prev")).ok();
    }

    #[test]
    fn torn_trailing_append_keeps_completed_cells() {
        let path = temp_store("torn");
        let (store, _) = ResultsStore::open(&path, "fp").unwrap();
        store.append(&record("a", 1.0)).unwrap();
        store.append(&record("b", 2.0)).unwrap();
        drop(store);
        // Simulate a killed run: a partial cell line with no newline.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("cell c mean=0x3f");
        std::fs::write(&path, &text).unwrap();

        // Completed cells survive; only the torn fragment is lost.
        let (store, resumed) = ResultsStore::open(&path, "fp").unwrap();
        assert!(resumed, "a torn append must not discard the store");
        assert_eq!(store.len(), 2);
        assert!(store.is_done("a") && store.is_done("b") && !store.is_done("c"));
        // The fragment was truncated, so new appends form clean lines.
        store.append(&record("c", 3.0)).unwrap();
        drop(store);
        let (store, _) = ResultsStore::open(&path, "fp").unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.get("c").unwrap().get("mean"), Some(3.0));
        std::fs::remove_file(&path).ok();
    }

    /// A kill can also tear a write *mid-record*: the line made it partway
    /// to disk, cut inside the field list rather than appended cleanly as
    /// a short trailing fragment. The cut record is lost, everything before
    /// it survives, and re-appending the cell works.
    #[test]
    fn torn_write_mid_record_keeps_prior_cells() {
        let path = temp_store("torn_mid");
        let (store, _) = ResultsStore::open(&path, "fp").unwrap();
        store.append(&record("a", 1.0)).unwrap();
        store.append(&record("b", 2.0)).unwrap();
        drop(store);
        // Cut the file in the middle of b's record (well past "cell b "
        // but before its newline), as a crash mid-write(2) would.
        let text = std::fs::read_to_string(&path).unwrap();
        let b_start = text.find("cell b ").unwrap();
        let cut = b_start + "cell b mean=0x40".len();
        assert!(cut < text.len() - 1, "cut must land mid-record");
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut as u64).unwrap();
        drop(file);

        let (store, resumed) = ResultsStore::open(&path, "fp").unwrap();
        assert!(resumed, "a mid-record tear must not discard the store");
        assert_eq!(store.len(), 1);
        assert!(store.is_done("a") && !store.is_done("b"));
        store.append(&record("b", 2.0)).unwrap();
        drop(store);
        let (store, _) = ResultsStore::open(&path, "fp").unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("b").unwrap().get("mean"), Some(2.0));
        std::fs::remove_file(&path).ok();
    }

    /// Append order differs between runs (parallel workers, retries);
    /// canonical bytes are the order-insensitive identity.
    #[test]
    fn canonical_bytes_ignore_append_order() {
        let path_ab = temp_store("canon_ab");
        let path_ba = temp_store("canon_ba");
        let (ab, _) = ResultsStore::open(&path_ab, "fp").unwrap();
        ab.append(&record("a", 1.0)).unwrap();
        ab.append(&record("b", 2.0)).unwrap();
        let (ba, _) = ResultsStore::open(&path_ba, "fp").unwrap();
        ba.append(&record("b", 2.0)).unwrap();
        ba.append(&record("a", 1.0)).unwrap();
        assert_ne!(
            std::fs::read(&path_ab).unwrap(),
            std::fs::read(&path_ba).unwrap(),
            "raw files should differ (order)"
        );
        assert_eq!(ab.canonical_bytes().unwrap(), ba.canonical_bytes().unwrap());
        // Canonical bytes see records appended this run, not just loaded ones.
        assert!(String::from_utf8(ab.canonical_bytes().unwrap()).unwrap().contains("cell a "));
        std::fs::remove_file(&path_ab).ok();
        std::fs::remove_file(&path_ba).ok();
    }

    #[test]
    fn sync_durability_roundtrips() {
        let path = temp_store("sync");
        let (store, resumed) = ResultsStore::open_with(&path, "fp", Durability::Sync).unwrap();
        assert!(!resumed);
        store.append(&record("a", 1.0)).unwrap();
        drop(store);
        let (store, resumed) = ResultsStore::open_with(&path, "fp", Durability::Sync).unwrap();
        assert!(resumed);
        assert_eq!(store.get("a").unwrap().get("mean"), Some(1.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_appends_after_existing_records() {
        let path = temp_store("resume");
        let (store, _) = ResultsStore::open(&path, "fp").unwrap();
        store.append(&record("a", 1.0)).unwrap();
        drop(store);
        let (store, resumed) = ResultsStore::open(&path, "fp").unwrap();
        assert!(resumed);
        assert!(store.is_done("a") && !store.is_done("b"));
        store.append(&record("b", 2.0)).unwrap();
        drop(store);
        let (store, _) = ResultsStore::open(&path, "fp").unwrap();
        assert_eq!(store.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_appends_all_land() {
        let path = temp_store("parallel");
        let (store, _) = ResultsStore::open(&path, "fp").unwrap();
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..10u64 {
                        store.append(&record(&format!("cell-{w}-{i}"), i as f64)).unwrap();
                    }
                });
            }
        });
        drop(store);
        let (store, _) = ResultsStore::open(&path, "fp").unwrap();
        assert_eq!(store.len(), 40);
        std::fs::remove_file(&path).ok();
    }

    /// Regression for the figure9 aliasing bug: two cells that differ only
    /// by an axis value containing a separator character (`/`, `=`) must
    /// round-trip to distinct store keys and resume independently. Under
    /// the old `label.replace('/', "of")` id scheme, `"1/2"` and `"1of2"`
    /// collapsed to one key and their records silently merged on resume.
    #[test]
    fn separator_laden_axis_values_resume_independently() {
        use crate::spec::{AxisValue, CellSpec};
        let path = temp_store("alias");
        let cell = |v: &str| CellSpec::new(vec![("frac".into(), AxisValue::Str(v.into()))]);
        for (a, b) in [("1/2", "1of2"), ("a=b", "a%3Db")] {
            let (id_a, id_b) = (cell(a).id(), cell(b).id());
            assert_ne!(id_a, id_b, "{a:?} vs {b:?} alias");

            // Record only the first cell, as an interrupted run would.
            let (store, _) = ResultsStore::open(&path, "fp").unwrap();
            store.append(&Record::new(id_a.clone(), vec![("mean".into(), 1.0)])).unwrap();
            drop(store);

            // On resume the second cell is still pending — it must not be
            // served the first cell's record.
            let (store, resumed) = ResultsStore::open(&path, "fp").unwrap();
            assert!(resumed);
            assert!(store.is_done(&id_a), "{a:?} lost its record");
            assert!(!store.is_done(&id_b), "{b:?} aliased onto {a:?}");
            store.append(&Record::new(id_b.clone(), vec![("mean".into(), 2.0)])).unwrap();
            drop(store);

            // Both cells now round-trip with their own values.
            let (store, _) = ResultsStore::open(&path, "fp").unwrap();
            assert_eq!(store.get(&id_a).unwrap().get("mean"), Some(1.0));
            assert_eq!(store.get(&id_b).unwrap().get("mean"), Some(2.0));
            drop(store);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn invalid_record_names_are_rejected() {
        let path = temp_store("invalid");
        let (store, _) = ResultsStore::open(&path, "fp").unwrap();
        let bad = Record { cell_id: "has space".into(), fields: vec![] };
        assert!(store.append(&bad).is_err());
        let bad = Record { cell_id: "ok".into(), fields: vec![("a=b".into(), 1.0)] };
        assert!(store.append(&bad).is_err());
        std::fs::remove_file(&path).ok();
    }
}
