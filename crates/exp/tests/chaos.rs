//! The chaos suite: seeded fault plans replayed against small grids and
//! the workload cache, asserting **crash-equivalence** — a fault-injected
//! run (plus, where needed, a plain resume) converges to a result store
//! whose canonical bytes are identical to a fault-free run's.
//!
//! Requires the `fault-inject` feature:
//!
//! ```text
//! cargo test -p sybil-exp --features fault-inject --test chaos
//! ```
//!
//! The seed matrix defaults to `1,2,3` and is overridable via
//! `SYBIL_CHAOS_SEEDS` (comma-separated u64s) so CI can shard seeds
//! across jobs. Every fault decision is pure in `(seed, site, key,
//! attempt)`, so a failing seed replays exactly.

#![cfg(feature = "fault-inject")]

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use sybil_churn::arrival::ArrivalProcess;
use sybil_churn::session::SessionModel;
use sybil_churn::ChurnModel;
use sybil_exp::fault::with_plan;
use sybil_exp::{
    run_grid_opts, Durability, FaultPlan, GridOptions, GridOutcome, ResultsStore, RetryPolicy,
    WorkloadCache,
};
use sybil_sim::time::Time;

/// Shared fingerprint for every grid in the suite: canonical bytes embed
/// it, so fault-free and fault-injected stores render identical headers.
const FP: &str = "chaos-suite-v1";

fn chaos_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/chaos"))
        .join(format!("{tag}_{}_{}", std::process::id(), COUNTER.fetch_add(1, Ordering::Relaxed)));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The CI-overridable seed matrix.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("SYBIL_CHAOS_SEEDS") {
        Ok(text) => text
            .split(',')
            .map(|s| s.trim().parse().expect("SYBIL_CHAOS_SEEDS must be comma-separated u64s"))
            .collect(),
        Err(_) => vec![1, 2, 3],
    }
}

/// A six-cell grid whose fields are pure functions of the payload, so
/// every run — whatever faults it survived — must produce the same store.
fn cells() -> Vec<(String, u64)> {
    (0..6u64).map(|i| (format!("cell-{i}"), i)).collect()
}

fn run_chaos_grid(store: &Path, opts: &GridOptions) -> GridOutcome {
    run_grid_opts("chaos", FP, store, cells(), None, 3, opts, |&payload: &u64| {
        vec![
            ("mean".to_string(), payload as f64 * 2.0),
            ("sq".to_string(), (payload * payload) as f64),
        ]
    })
    .expect("chaos grid run failed")
}

/// Retries without wall-clock backoff: chaos convergence is guaranteed by
/// the plan's fault cap, not by waiting out a real transient.
fn fast_retry(max_attempts: u32) -> GridOptions {
    GridOptions {
        retry: RetryPolicy { max_attempts, base_delay_ms: 0, max_delay_ms: 0 },
        durability: Durability::Flush,
    }
}

/// The order-insensitive store identity (header + sorted cell lines).
fn canonical(store: &Path) -> Vec<u8> {
    let (store, _) = ResultsStore::open(store, FP).expect("reopen chaos store");
    store.canonical_bytes().expect("canonical bytes")
}

/// A fault-free reference run. Wrapped in a zero-probability plan so it
/// holds the global plan lock: a concurrently running chaos test must not
/// leak its faults into the baseline.
fn baseline(dir: &Path) -> Vec<u8> {
    let store = dir.join("baseline.store");
    let outcome = with_plan(FaultPlan::new(0), || run_chaos_grid(&store, &fast_retry(3)));
    assert!(!outcome.summary.has_holes(), "baseline must be fault-free");
    assert_eq!(outcome.summary.panics, 0, "zero-probability plan injected a panic");
    canonical(&store)
}

fn toy_model() -> ChurnModel {
    ChurnModel {
        name: "chaos-toy",
        initial_size: 50,
        arrival: ArrivalProcess::Poisson { rate: 1.0 },
        session: SessionModel::Exponential { mean: 100.0 },
    }
}

/// Worker panics mid-grid: every cell retries to success and the final
/// store is bit-identical to the fault-free run's canonical bytes.
#[test]
fn panic_storm_converges_to_fault_free_result() {
    let dir = chaos_dir("panics");
    let want = baseline(&dir);
    let mut faults_fired = 0;
    for seed in chaos_seeds() {
        let store = dir.join(format!("panics_{seed}.store"));
        // Cap 2 with 4 attempts: at most two injected panics per cell, so
        // convergence is guaranteed, not probabilistic.
        let plan = FaultPlan::new(seed).with_panics(0.5).with_cap(2);
        let outcome = with_plan(plan, || run_chaos_grid(&store, &fast_retry(4)));
        assert!(!outcome.summary.has_holes(), "seed {seed}: grid must converge");
        assert_eq!(outcome.summary.cells_executed, 6);
        faults_fired += outcome.summary.panics;
        assert_eq!(canonical(&store), want, "seed {seed}: store diverged from fault-free run");
    }
    assert!(faults_fired > 0, "no panic fired across the whole seed matrix — seam dead?");
    fs::remove_dir_all(&dir).ok();
}

/// Store appends fail (outright IO errors and torn short writes): the
/// self-healing append truncates the torn tail, the runner retries, and
/// the store converges bit-exactly.
#[test]
fn store_append_faults_self_heal_and_converge() {
    let dir = chaos_dir("appends");
    let want = baseline(&dir);
    let mut faults_fired = 0;
    for seed in chaos_seeds() {
        let store = dir.join(format!("appends_{seed}.store"));
        let plan = FaultPlan::new(seed).with_io_errors(0.5).with_short_writes(0.5).with_cap(2);
        let outcome = with_plan(plan, || run_chaos_grid(&store, &fast_retry(4)));
        assert!(!outcome.summary.has_holes(), "seed {seed}: grid must converge");
        faults_fired += outcome.summary.retries;
        assert_eq!(canonical(&store), want, "seed {seed}: store diverged from fault-free run");
    }
    assert!(faults_fired > 0, "no append fault fired across the seed matrix — seam dead?");
    fs::remove_dir_all(&dir).ok();
}

/// The full mixed chaos plan with retries too scarce to absorb it: cells
/// may quarantine (explicit holes + failure manifest), and a plain
/// fault-free re-run fills exactly the holes — crash-equivalence.
#[test]
fn full_chaos_then_resume_is_crash_equivalent() {
    let dir = chaos_dir("mixed");
    let want = baseline(&dir);
    for seed in chaos_seeds() {
        let store = dir.join(format!("mixed_{seed}.store"));
        let manifest = dir.join(format!("mixed_{seed}.store.failures"));
        let chaotic = with_plan(FaultPlan::chaos(seed), || run_chaos_grid(&store, &fast_retry(2)));
        let holes = chaotic.summary.quarantined.len();
        if holes > 0 {
            assert!(manifest.exists(), "seed {seed}: quarantine must leave a manifest");
            let text = fs::read_to_string(&manifest).unwrap();
            for failure in &chaotic.summary.quarantined {
                assert!(text.contains(&failure.cell_id), "seed {seed}: manifest misses a cell");
            }
            let none: Vec<_> = chaotic.records.iter().filter(|r| r.is_none()).collect();
            assert_eq!(none.len(), holes, "seed {seed}: holes must match quarantined cells");
        }
        // The crash-recovery path the drivers document: just run again.
        let resumed = with_plan(FaultPlan::new(0), || run_chaos_grid(&store, &fast_retry(3)));
        assert!(!resumed.summary.has_holes(), "seed {seed}: resume must fill every hole");
        assert_eq!(resumed.summary.cells_skipped, 6 - holes, "seed {seed}");
        assert_eq!(resumed.summary.cells_executed, holes, "seed {seed}");
        assert!(!manifest.exists(), "seed {seed}: hole-free run must clear the manifest");
        assert_eq!(canonical(&store), want, "seed {seed}: store diverged from fault-free run");
    }
    fs::remove_dir_all(&dir).ok();
}

/// A run killed mid-append: the store ends in a torn record. Reopening
/// drops the torn tail, the resume re-executes exactly the lost cell, and
/// the final store is bit-identical to an uninterrupted run.
#[test]
fn kill_mid_append_then_resume_recovers() {
    let dir = chaos_dir("kill");
    let want = baseline(&dir);
    let store = dir.join("kill.store");
    let first = with_plan(FaultPlan::new(0), || run_chaos_grid(&store, &fast_retry(3)));
    assert!(!first.summary.has_holes());

    // Tear the last record as a kill during its append would: keep the
    // line start plus a prefix of the fields, lose the trailing newline.
    let bytes = fs::read(&store).unwrap();
    let last_line =
        bytes.windows(6).rposition(|w| w == b"\ncell ").expect("store must hold records") + 1;
    fs::write(&store, &bytes[..last_line + 12]).unwrap();

    let resumed = with_plan(FaultPlan::new(0), || run_chaos_grid(&store, &fast_retry(3)));
    assert_eq!(resumed.summary.cells_skipped, 5, "only the torn cell may re-run");
    assert_eq!(resumed.summary.cells_executed, 1);
    assert!(resumed.summary.resumed);
    assert_eq!(canonical(&store), want, "recovered store diverged from fault-free run");
    fs::remove_dir_all(&dir).ok();
}

/// Injected cache write/rename failures: `get_or_create` falls back to
/// regeneration and still serves bytes identical to a fault-free cache.
#[test]
fn cache_regenerates_after_injected_write_failures() {
    let dir = chaos_dir("cache_io");
    let model = toy_model();
    let clean = WorkloadCache::open(dir.join("clean")).unwrap();
    let want = with_plan(FaultPlan::new(0), || {
        fs::read(clean.get_or_create(&model, Time(150.0), 7).unwrap().path()).unwrap()
    });
    for seed in chaos_seeds() {
        let cache = WorkloadCache::open(dir.join(format!("faulty_{seed}"))).unwrap();
        // Cap 1 per site: at most one write failure and one rename failure
        // before the internal retry bound (4) must succeed.
        let plan = FaultPlan::new(seed).with_io_errors(1.0).with_cap(1);
        let got = with_plan(plan, || {
            let disk = cache
                .get_or_create(&model, Time(150.0), 7)
                .expect("cache must regenerate through injected failures");
            fs::read(disk.path()).unwrap()
        });
        assert_eq!(got, want, "seed {seed}: regenerated workload differs");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "seed {seed}: exactly one generation may land");
    }
    fs::remove_dir_all(&dir).ok();
}

/// Concurrent writers racing on one cache entry while short writes tear
/// their temp files: every writer converges to the same byte-identical
/// entry and no torn temp is ever renamed into place.
#[test]
fn concurrent_cache_writers_under_short_writes_converge() {
    let dir = chaos_dir("cache_race");
    let model = toy_model();
    let clean = WorkloadCache::open(dir.join("clean")).unwrap();
    let want = with_plan(FaultPlan::new(0), || {
        fs::read(clean.get_or_create(&model, Time(150.0), 9).unwrap().path()).unwrap()
    });
    for seed in chaos_seeds() {
        let cache = WorkloadCache::open(dir.join(format!("race_{seed}"))).unwrap();
        // Cap 3 shared across all writers of this key; each writer has 4
        // internal tries, so every thread outlives the fault budget.
        let plan = FaultPlan::new(seed).with_short_writes(0.9).with_cap(3);
        let all: Vec<Vec<u8>> = with_plan(plan, || {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        scope.spawn(|| {
                            let disk = cache
                                .get_or_create(&model, Time(150.0), 9)
                                .expect("every racing writer must converge");
                            fs::read(disk.path()).unwrap()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("writer thread panicked")).collect()
            })
        });
        for (i, got) in all.iter().enumerate() {
            assert_eq!(got, &want, "seed {seed}: writer {i} saw torn or divergent bytes");
        }
    }
    fs::remove_dir_all(&dir).ok();
}
