//! `gate_bench` — the admission-service performance baseline.
//!
//! Replays a ~110k-session churn workload (written to disk and read back
//! through the SYBWKLD0 loader, same as the engine benchmarks) through
//! the loopback transport four times — honest and 30%-adversarial, each
//! against the monolithic `GateService` and against a 4-shard
//! `ShardedGate` (whose fingerprints must match the monolithic runs
//! byte for byte; the bench asserts it) — and writes verification
//! throughput, decision latency percentiles, and the decision-log
//! fingerprints to `BENCH_gate.json`.
//!
//! Two additional *parallel* scenarios, `gate_parallel_s1` and
//! `gate_parallel_s4`, drive four client threads against the old
//! global-mutex service and the 4-shard service respectively: the pair
//! `bench_compare` uses to gate the sharded speedup on multi-core
//! hardware. Their decision logs are scheduler-ordered, so they record
//! an empty fingerprint.
//!
//! ```text
//! Usage: gate_bench [OUTPUT_PATH]
//!
//!   OUTPUT_PATH   where to write the JSON (default: BENCH_gate.json)
//! ```
//!
//! The scenarios always run at full size: the fingerprint gate in
//! `bench_compare` needs byte-identical decision logs between CI and the
//! committed baseline, and shrinking the workload would change them. The
//! `sha256_64b` calibration entry gives `bench_compare` a machine-speed
//! proxy so its throughput floor adapts to slow runners.

use std::io::Write as _;
use std::time::Instant;

use std::sync::{Arc, Mutex};

use sybil_churn::{ArrivalProcess, ChurnModel, SessionModel};
use sybil_crypto::{hex, Challenge, Sha256, Solver};
use sybil_gate::memhard::{mine, MemHardParams};
use sybil_gate::wire::Frame;
use sybil_gate::{
    replay, GateConfig, GateCounters, GateHandler, GateService, ReplayConfig, ReplayReport,
    Response, ShardedGate, SharedGate,
};
use sybil_sim::{write_workload_file, DiskWorkload, Time, WorkloadSource};

/// The benchmark workload: sized so the replay opens well over 10⁵
/// connections (the committed-baseline contract).
const HORIZON: Time = Time(1100.0);
const WORKLOAD_SEED: u64 = 41;

fn model() -> ChurnModel {
    ChurnModel {
        name: "gate",
        initial_size: 2000,
        arrival: ArrivalProcess::Poisson { rate: 100.0 },
        session: SessionModel::Exponential { mean: 600.0 },
    }
}

fn gate_cfg(initial_size: u64) -> GateConfig {
    GateConfig {
        difficulty_floor: 8,
        difficulty_cap: 1 << 16,
        mine_bits: 2,
        mem: MemHardParams { blocks: 32, passes: 1 },
        initial_size,
        ..GateConfig::default()
    }
}

struct ScenarioResult {
    name: &'static str,
    report: ReplayReport,
    counters: GateCounters,
    /// Empty for parallel scenarios: their log order follows the
    /// scheduler, so no stable fingerprint exists to gate on.
    fingerprint: String,
    wall_secs: f64,
}

fn run_scenario<G: GateHandler>(
    name: &'static str,
    source: DiskWorkload,
    adversarial_fraction: f64,
    gate: G,
    finish: impl FnOnce(G) -> (GateCounters, String),
) -> ScenarioResult {
    let cfg = ReplayConfig { horizon: HORIZON, adversarial_fraction, seed: 23 };
    let started = Instant::now();
    let (gate, report) = replay(source, gate, &cfg);
    let wall_secs = started.elapsed().as_secs_f64();
    let (counters, fingerprint) = finish(gate);
    ScenarioResult { name, counters, fingerprint, report, wall_secs }
}

/// Threads driving each parallel scenario, and admissions per thread.
const PAR_THREADS: usize = 4;
const PAR_PER_THREAD: u64 = 400;

/// A constant-difficulty config for the parallel pair: floor == cap
/// pins every hello's quote, and the heavier fill/mix makes the
/// server-side digest — the work sharding parallelizes — dominate.
fn parallel_cfg() -> GateConfig {
    GateConfig {
        difficulty_floor: 64,
        difficulty_cap: 64,
        mine_bits: 0,
        mem: MemHardParams { blocks: 256, passes: 2 },
        initial_size: 0,
        ..GateConfig::default()
    }
}

/// Drives `PAR_THREADS` client threads of full two-phase admissions
/// against a shared gate; returns wall seconds.
fn drive_parallel<G: SharedGate + 'static>(gate: &Arc<G>) -> f64 {
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..PAR_THREADS {
            let gate = Arc::clone(gate);
            scope.spawn(move || {
                for i in 0..PAR_PER_THREAD {
                    let tag = ((t as u64) << 32) | i;
                    let (conn, hello) = gate.connect(Time(1.0));
                    let Frame::Hello {
                        difficulty, nonce, mine_bits, mem_blocks, mem_passes, ..
                    } = hello
                    else {
                        panic!("expected hello")
                    };
                    let challenge = Challenge::new(&nonce, &tag.to_be_bytes(), difficulty);
                    let solution = Solver::new().solve(&challenge).nonce;
                    let reply =
                        gate.handle(conn, &Frame::Join { client_tag: tag, solution }, Time(1.0));
                    let Response::Reply(Frame::Granted { identity, token }) = reply else {
                        panic!("expected grant")
                    };
                    let mem = MemHardParams { blocks: mem_blocks, passes: mem_passes };
                    let mined = mine(&token, mine_bits, &mem);
                    let reply = gate.handle(
                        conn,
                        &Frame::MineSubmit { identity, token, salt: mined.salt },
                        Time(1.0),
                    );
                    assert!(matches!(reply, Response::Reply(Frame::Admitted { .. })));
                }
            });
        }
    });
    started.elapsed().as_secs_f64()
}

/// One parallel scenario: `PAR_THREADS` threads against `gate`. The
/// replay-report fields that have no parallel meaning stay zero; the
/// handle-time is the whole wall, so `verifications_per_sec` measures
/// end-to-end concurrent throughput.
fn run_parallel_scenario<G: SharedGate + 'static>(
    name: &'static str,
    gate: Arc<G>,
    counters_of: impl FnOnce(&G) -> GateCounters,
) -> ScenarioResult {
    let wall_secs = drive_parallel(&gate);
    let counters = counters_of(&gate);
    let total = PAR_THREADS as u64 * PAR_PER_THREAD;
    assert_eq!(counters.admitted, total, "{name}: every parallel admission must land");
    let report = ReplayReport {
        connections: total,
        admitted: total,
        pow_handle_secs: wall_secs,
        ..ReplayReport::default()
    };
    ScenarioResult { name, counters, fingerprint: String::new(), report, wall_secs }
}

/// Hashes 64-byte messages for a fixed iteration count: the machine-speed
/// calibration `bench_compare` uses to scale its throughput floor.
fn sha256_calibration() -> (u64, f64) {
    let ops: u64 = 1_000_000;
    let mut msg = [0u8; 64];
    let started = Instant::now();
    for i in 0..ops {
        msg[..8].copy_from_slice(&i.to_le_bytes());
        let digest = Sha256::digest(&msg);
        msg[8..40].copy_from_slice(digest.as_bytes());
    }
    (ops, started.elapsed().as_secs_f64())
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn to_json(calibration: (u64, f64), scenarios: &[ScenarioResult]) -> String {
    let mut out = String::from("{\n");
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    out.push_str(&format!("  \"generated_unix_secs\": {unix_secs},\n"));
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.push_str(&format!("  \"available_parallelism\": {parallelism},\n"));
    let (ops, wall) = calibration;
    out.push_str("  \"queue\": {\n");
    out.push_str(&format!(
        "    \"sha256_64b\": {{\"ops\": {ops}, \"wall_secs\": {}, \"ops_per_sec\": {}}}\n",
        json_f64(wall),
        json_f64(ops as f64 / wall)
    ));
    out.push_str("  },\n");
    out.push_str("  \"gate\": {\n");
    for (i, s) in scenarios.iter().enumerate() {
        let c = s.counters;
        let r = &s.report;
        let verifications_per_sec = if r.pow_handle_secs > 0.0 {
            c.pow_verifications as f64 / r.pow_handle_secs
        } else {
            f64::NAN
        };
        let decision_secs = r.pow_handle_secs + r.mine_handle_secs;
        let decisions_per_sec =
            if decision_secs > 0.0 { r.hist.count() as f64 / decision_secs } else { f64::NAN };
        out.push_str(&format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"connections\": {},\n",
                "      \"granted\": {},\n",
                "      \"admitted\": {},\n",
                "      \"rejected_pow\": {},\n",
                "      \"refused_mine\": {},\n",
                "      \"departed\": {},\n",
                "      \"pow_verifications\": {},\n",
                "      \"mem_verifications\": {},\n",
                "      \"client_pow_work\": {},\n",
                "      \"mine_attempts\": {},\n",
                "      \"verifications_per_sec\": {},\n",
                "      \"decisions_per_sec\": {},\n",
                "      \"wall_secs\": {},\n",
                "      \"latency_p50_ns\": {},\n",
                "      \"latency_p99_ns\": {},\n",
                "      \"latency_p999_ns\": {},\n",
                "      \"latency_max_ns\": {},\n",
                "      \"decision_fingerprint\": \"{}\"\n",
                "    }}{}\n",
            ),
            s.name,
            r.connections,
            c.granted,
            c.admitted,
            c.rejected_pow,
            c.refused_mine,
            c.departed,
            c.pow_verifications,
            c.mem_verifications,
            r.client_pow_work,
            r.mine_attempts,
            json_f64(verifications_per_sec),
            json_f64(decisions_per_sec),
            json_f64(s.wall_secs),
            r.hist.percentile(0.50),
            r.hist.percentile(0.99),
            r.hist.percentile(0.999),
            r.hist.max(),
            s.fingerprint,
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_gate.json".to_string());
    println!("=== Admission gate baseline ===");
    let started = Instant::now();

    let workload = model().generate(HORIZON, WORKLOAD_SEED);
    assert!(
        workload.session_count() >= 100_000,
        "benchmark contract: >= 1e5 sessions, got {}",
        workload.session_count()
    );
    // Round-trip through the on-disk format so the bench exercises the
    // same loader a real deployment replays captured traces with.
    let wl_path = std::env::temp_dir()
        .join(format!("gate_bench_{}_{WORKLOAD_SEED}.sybwkld", std::process::id()));
    write_workload_file(&wl_path, &workload).expect("write benchmark workload");

    let open = || DiskWorkload::open(&wl_path).expect("reopen benchmark workload");
    let initial = workload.initial_size();
    let mut scenarios = Vec::new();
    for (name, sharded_name, fraction) in
        [("gate_honest", "gate_honest_n4", 0.0), ("gate_adversarial", "gate_adversarial_n4", 0.3)]
    {
        let result =
            run_scenario(name, open(), fraction, GateService::new(gate_cfg(initial)), |g| {
                (g.counters(), hex::encode(g.fingerprint().as_bytes()))
            });
        let c = result.counters;
        println!(
            "{name:>18}: {} conns, {} admitted, {} rejected, {:.0} verifications/s, p99 {} ns",
            result.report.connections,
            c.admitted,
            c.rejected_pow,
            c.pow_verifications as f64 / result.report.pow_handle_secs,
            result.report.hist.percentile(0.99),
        );
        // The same replay through the 4-shard service: the decisions —
        // and therefore the fingerprint — must be byte-identical.
        let sharded = run_scenario(
            sharded_name,
            open(),
            fraction,
            ShardedGate::new(gate_cfg(initial), 4),
            |g| (g.counters(), hex::encode(g.fingerprint().as_bytes())),
        );
        assert_eq!(
            sharded.fingerprint, result.fingerprint,
            "{sharded_name}: the sharded gate must reproduce the monolithic decision log"
        );
        assert_eq!(sharded.counters, result.counters, "{sharded_name}: counters");
        println!(
            "{sharded_name:>18}: fingerprint matches {name}, {:.0} verifications/s",
            sharded.counters.pow_verifications as f64 / sharded.report.pow_handle_secs,
        );
        scenarios.push(result);
        scenarios.push(sharded);
    }
    let _ = std::fs::remove_file(&wl_path);

    // The parallel pair: the old global-mutex path vs the sharded path,
    // four client threads each. This is where shards > 1 pays off — on
    // multi-core hardware — and what bench_compare's gate-shard-scaling
    // rule reads.
    let s1 = run_parallel_scenario(
        "gate_parallel_s1",
        Arc::new(Mutex::new(GateService::new(parallel_cfg()))),
        |g| g.lock().unwrap_or_else(|p| p.into_inner()).counters(),
    );
    println!(
        "  gate_parallel_s1: {:.0} verifications/s ({} threads, global mutex)",
        s1.counters.pow_verifications as f64 / s1.wall_secs,
        PAR_THREADS
    );
    scenarios.push(s1);
    let s4 = run_parallel_scenario(
        "gate_parallel_s4",
        Arc::new(ShardedGate::new(parallel_cfg(), 4)),
        |g| g.counters(),
    );
    println!(
        "  gate_parallel_s4: {:.0} verifications/s ({} threads, 4 shards)",
        s4.counters.pow_verifications as f64 / s4.wall_secs,
        PAR_THREADS
    );
    scenarios.push(s4);

    println!("calibrating machine speed (sha256_64b)...");
    let calibration = sha256_calibration();

    let json = to_json(calibration, &scenarios);
    let mut file =
        std::fs::File::create(&path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    file.write_all(json.as_bytes()).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
    println!("elapsed: {:.1?}", started.elapsed());
}
