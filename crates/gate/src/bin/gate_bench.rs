//! `gate_bench` — the admission-service performance baseline.
//!
//! Replays a ~110k-session churn workload (written to disk and read back
//! through the SYBWKLD0 loader, same as the engine benchmarks) through
//! the loopback transport twice — once all-honest, once with 30%
//! adversarial joins — and writes verification throughput, decision
//! latency percentiles, and the decision-log fingerprint to
//! `BENCH_gate.json`.
//!
//! ```text
//! Usage: gate_bench [OUTPUT_PATH]
//!
//!   OUTPUT_PATH   where to write the JSON (default: BENCH_gate.json)
//! ```
//!
//! The scenarios always run at full size: the fingerprint gate in
//! `bench_compare` needs byte-identical decision logs between CI and the
//! committed baseline, and shrinking the workload would change them. The
//! `sha256_64b` calibration entry gives `bench_compare` a machine-speed
//! proxy so its throughput floor adapts to slow runners.

use std::io::Write as _;
use std::time::Instant;

use sybil_churn::{ArrivalProcess, ChurnModel, SessionModel};
use sybil_crypto::{hex, Sha256};
use sybil_gate::memhard::MemHardParams;
use sybil_gate::{replay, GateConfig, GateService, ReplayConfig, ReplayReport};
use sybil_sim::{write_workload_file, DiskWorkload, Time, WorkloadSource};

/// The benchmark workload: sized so the replay opens well over 10⁵
/// connections (the committed-baseline contract).
const HORIZON: Time = Time(1100.0);
const WORKLOAD_SEED: u64 = 41;

fn model() -> ChurnModel {
    ChurnModel {
        name: "gate",
        initial_size: 2000,
        arrival: ArrivalProcess::Poisson { rate: 100.0 },
        session: SessionModel::Exponential { mean: 600.0 },
    }
}

fn gate_cfg(initial_size: u64) -> GateConfig {
    GateConfig {
        difficulty_floor: 8,
        difficulty_cap: 1 << 16,
        mine_bits: 2,
        mem: MemHardParams { blocks: 32, passes: 1 },
        initial_size,
        ..GateConfig::default()
    }
}

struct ScenarioResult {
    name: &'static str,
    report: ReplayReport,
    counters: sybil_gate::GateCounters,
    fingerprint: String,
    wall_secs: f64,
}

fn run_scenario(
    name: &'static str,
    source: DiskWorkload,
    adversarial_fraction: f64,
) -> ScenarioResult {
    let initial = source.initial_size();
    let cfg = ReplayConfig { horizon: HORIZON, adversarial_fraction, seed: 23 };
    let started = Instant::now();
    let (gate, report) = replay(source, GateService::new(gate_cfg(initial)), &cfg);
    let wall_secs = started.elapsed().as_secs_f64();
    ScenarioResult {
        name,
        counters: gate.counters(),
        fingerprint: hex::encode(gate.fingerprint().as_bytes()),
        report,
        wall_secs,
    }
}

/// Hashes 64-byte messages for a fixed iteration count: the machine-speed
/// calibration `bench_compare` uses to scale its throughput floor.
fn sha256_calibration() -> (u64, f64) {
    let ops: u64 = 1_000_000;
    let mut msg = [0u8; 64];
    let started = Instant::now();
    for i in 0..ops {
        msg[..8].copy_from_slice(&i.to_le_bytes());
        let digest = Sha256::digest(&msg);
        msg[8..40].copy_from_slice(digest.as_bytes());
    }
    (ops, started.elapsed().as_secs_f64())
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn to_json(calibration: (u64, f64), scenarios: &[ScenarioResult]) -> String {
    let mut out = String::from("{\n");
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    out.push_str(&format!("  \"generated_unix_secs\": {unix_secs},\n"));
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.push_str(&format!("  \"available_parallelism\": {parallelism},\n"));
    let (ops, wall) = calibration;
    out.push_str("  \"queue\": {\n");
    out.push_str(&format!(
        "    \"sha256_64b\": {{\"ops\": {ops}, \"wall_secs\": {}, \"ops_per_sec\": {}}}\n",
        json_f64(wall),
        json_f64(ops as f64 / wall)
    ));
    out.push_str("  },\n");
    out.push_str("  \"gate\": {\n");
    for (i, s) in scenarios.iter().enumerate() {
        let c = s.counters;
        let r = &s.report;
        let verifications_per_sec = if r.pow_handle_secs > 0.0 {
            c.pow_verifications as f64 / r.pow_handle_secs
        } else {
            f64::NAN
        };
        let decision_secs = r.pow_handle_secs + r.mine_handle_secs;
        let decisions_per_sec =
            if decision_secs > 0.0 { r.hist.count() as f64 / decision_secs } else { f64::NAN };
        out.push_str(&format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"connections\": {},\n",
                "      \"granted\": {},\n",
                "      \"admitted\": {},\n",
                "      \"rejected_pow\": {},\n",
                "      \"refused_mine\": {},\n",
                "      \"departed\": {},\n",
                "      \"pow_verifications\": {},\n",
                "      \"mem_verifications\": {},\n",
                "      \"client_pow_work\": {},\n",
                "      \"mine_attempts\": {},\n",
                "      \"verifications_per_sec\": {},\n",
                "      \"decisions_per_sec\": {},\n",
                "      \"wall_secs\": {},\n",
                "      \"latency_p50_ns\": {},\n",
                "      \"latency_p99_ns\": {},\n",
                "      \"latency_p999_ns\": {},\n",
                "      \"latency_max_ns\": {},\n",
                "      \"decision_fingerprint\": \"{}\"\n",
                "    }}{}\n",
            ),
            s.name,
            r.connections,
            c.granted,
            c.admitted,
            c.rejected_pow,
            c.refused_mine,
            c.departed,
            c.pow_verifications,
            c.mem_verifications,
            r.client_pow_work,
            r.mine_attempts,
            json_f64(verifications_per_sec),
            json_f64(decisions_per_sec),
            json_f64(s.wall_secs),
            r.hist.percentile(0.50),
            r.hist.percentile(0.99),
            r.hist.percentile(0.999),
            r.hist.max(),
            s.fingerprint,
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_gate.json".to_string());
    println!("=== Admission gate baseline ===");
    let started = Instant::now();

    let workload = model().generate(HORIZON, WORKLOAD_SEED);
    assert!(
        workload.session_count() >= 100_000,
        "benchmark contract: >= 1e5 sessions, got {}",
        workload.session_count()
    );
    // Round-trip through the on-disk format so the bench exercises the
    // same loader a real deployment replays captured traces with.
    let wl_path = std::env::temp_dir()
        .join(format!("gate_bench_{}_{WORKLOAD_SEED}.sybwkld", std::process::id()));
    write_workload_file(&wl_path, &workload).expect("write benchmark workload");

    let open = || DiskWorkload::open(&wl_path).expect("reopen benchmark workload");
    let mut scenarios = Vec::new();
    for (name, fraction) in [("gate_honest", 0.0), ("gate_adversarial", 0.3)] {
        let result = run_scenario(name, open(), fraction);
        let c = result.counters;
        println!(
            "{name:>18}: {} conns, {} admitted, {} rejected, {:.0} verifications/s, p99 {} ns",
            result.report.connections,
            c.admitted,
            c.rejected_pow,
            c.pow_verifications as f64 / result.report.pow_handle_secs,
            result.report.hist.percentile(0.99),
        );
        scenarios.push(result);
    }
    let _ = std::fs::remove_file(&wl_path);

    println!("calibrating machine speed (sha256_64b)...");
    let calibration = sha256_calibration();

    let json = to_json(calibration, &scenarios);
    let mut file =
        std::fs::File::create(&path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    file.write_all(json.as_bytes()).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
    println!("elapsed: {:.1?}", started.elapsed());
}
