//! `sybil-gate` — the admission service, on a TCP socket.
//!
//! ```text
//! Usage: sybil-gate
//!
//!   SYBIL_GATE_ADDR         listen address (default 127.0.0.1:7744)
//!   SYBIL_GATE_DIFFICULTY   PoW difficulty floor (positive; default 8)
//!   SYBIL_GATE_WORKERS      max concurrent connection threads
//!                           (positive; default 8)
//!   SYBIL_GATE_SHARDS       shard workers for the admission state
//!                           (positive; default 1)
//! ```
//!
//! Every knob follows the repo's strict-parsing contract: unset means
//! the default, garbage aborts with an actionable message.

use std::net::TcpListener;
use std::sync::Arc;

use sybil_exp::env;
use sybil_gate::{transport, GateConfig, ShardedGate};

fn main() {
    let addr =
        env::or_abort(env::parse("SYBIL_GATE_ADDR", std::env::var("SYBIL_GATE_ADDR"), |v| {
            if v.is_empty() {
                Err("is empty: expected host:port (example: SYBIL_GATE_ADDR=0.0.0.0:7744)".into())
            } else {
                Ok(v.to_string())
            }
        }))
        .unwrap_or_else(|| "127.0.0.1:7744".to_string());
    let difficulty = env::or_abort(env::positive_usize(
        "SYBIL_GATE_DIFFICULTY",
        std::env::var("SYBIL_GATE_DIFFICULTY"),
        "a zero-difficulty gate admits for free (unset the variable for the default floor)",
    ));
    let workers = env::or_abort(env::positive_usize(
        "SYBIL_GATE_WORKERS",
        std::env::var("SYBIL_GATE_WORKERS"),
        "the service needs at least one connection thread (unset the variable for the default)",
    ))
    .unwrap_or(8);
    let shards = env::or_abort(env::positive_usize(
        "SYBIL_GATE_SHARDS",
        std::env::var("SYBIL_GATE_SHARDS"),
        "the service needs at least one shard worker (unset the variable for the default)",
    ))
    .unwrap_or(1);

    let mut cfg = GateConfig::default();
    if let Some(d) = difficulty {
        cfg.difficulty_floor = d as u64;
    }
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {addr}: {e}");
        std::process::exit(1)
    });
    println!(
        "sybil-gate listening on {addr} (difficulty floor {}, mine bits {}, {workers} workers, \
         {shards} shard(s))",
        cfg.difficulty_floor, cfg.mine_bits
    );
    let service = Arc::new(ShardedGate::new(cfg, shards));
    if let Err(e) = transport::serve(listener, service, workers) {
        eprintln!("error: listener failed: {e}");
        std::process::exit(1);
    }
}
