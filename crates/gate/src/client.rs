//! Workload replay: drives a gate through the loopback transport with
//! the same churn schedules the simulator runs.
//!
//! The replay turns a [`WorkloadSource`] into admission traffic: every
//! session join becomes a connection that either honestly solves both
//! defense phases or behaves adversarially (garbage or replayed PoW
//! solutions), and every departure — of an admitted session or of a
//! bootstrap member — becomes a `Depart` with the identity's credential.
//! Events are processed in a fixed merge order (departures before joins
//! at equal times), and all randomness comes from a seeded splitmix64,
//! so a given `(workload, seed, fraction)` triple yields the same
//! decision log on every run and every machine.
//!
//! Wall-clock enters only the *measurements*: the time spent inside each
//! `Join` and `MineSubmit` request is accumulated and recorded in a
//! latency histogram, never fed back into decisions.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

use sybil_crypto::{Challenge, Solver};
use sybil_sim::{Time, WorkloadSource, WorkloadStream};

use crate::hist::LatencyHist;
use crate::memhard::{mine, MemHardParams};
use crate::service::GateHandler;
use crate::transport::Loopback;
use crate::wire::Frame;

/// Replay parameters.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Events past this time are not replayed.
    pub horizon: Time,
    /// Fraction of session joins driven adversarially, in `[0, 1]`.
    pub adversarial_fraction: f64,
    /// Seed for the client-side randomness (tags, adversary picks).
    pub seed: u64,
}

/// Client-side measurements from one replay.
#[derive(Clone, Debug, Default)]
pub struct ReplayReport {
    /// Connections opened (joins, adversarial probes, departures).
    pub connections: u64,
    /// Honest sessions fully admitted.
    pub admitted: u64,
    /// Join requests that were silently dropped.
    pub join_drops: u64,
    /// Depart requests issued.
    pub departs: u64,
    /// Total PoW hash attempts paid by honest clients.
    pub client_pow_work: u64,
    /// Total memory-hard salts tried by honest clients.
    pub mine_attempts: u64,
    /// Wall-clock seconds the server spent inside `Join` handling.
    pub pow_handle_secs: f64,
    /// Wall-clock seconds the server spent inside `MineSubmit` handling.
    pub mine_handle_secs: f64,
    /// Admission-decision latencies (`Join` and `MineSubmit` request
    /// round-trips), in nanoseconds.
    pub hist: LatencyHist,
}

impl ReplayReport {
    fn new() -> Self {
        ReplayReport { hist: LatencyHist::new(), ..Default::default() }
    }
}

/// splitmix64: the standard 64-bit finalizer, used for all client-side
/// pseudo-randomness (no external RNG crates in the offline build).
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An admitted identity waiting to depart: `(depart-time bits, identity)`
/// in a min-heap. `f64::to_bits` preserves order for the non-negative
/// finite times workloads carry.
type DepartKey = Reverse<(u64, u64)>;

/// Replays `source` against `gate` through the loopback transport.
/// Returns the driven service (decision log, counters) and the
/// client-side report. Works against any [`GateHandler`] — the replay is
/// how the equivalence tests pin the sharded gate to the monolithic one.
pub fn replay<S: WorkloadSource, G: GateHandler>(
    source: S,
    gate: G,
    cfg: &ReplayConfig,
) -> (G, ReplayReport) {
    let mut lb = Loopback::new(gate);
    let mut report = ReplayReport::new();
    let mut stream = source.into_stream(cfg.horizon);

    let mut next_session = stream.next_session();
    let mut next_initial = stream.next_initial_departure();
    let mut pending_departs: BinaryHeap<DepartKey> = BinaryHeap::new();
    let mut tokens: HashMap<u64, [u8; 32]> = HashMap::new();
    let mut initial_departed = 0u64;
    let mut last_honest: Option<(u64, u64)> = None;
    let mut adversary_serial = 0u64;

    loop {
        let t_join = next_session.as_ref().map(|(_, s, _)| s.join);
        let t_initial = next_initial.as_ref().map(|(t, _)| *t);
        let t_depart = pending_departs.peek().map(|Reverse((bits, _))| Time(f64::from_bits(*bits)));
        // Fixed merge order at equal times: initial departures, then
        // admitted departures, then joins.
        let Some(now) = [t_initial, t_depart, t_join].into_iter().flatten().reduce(Time::min)
        else {
            break;
        };

        if t_initial == Some(now) {
            next_initial = stream.next_initial_departure();
            let identity = initial_departed;
            initial_departed += 1;
            if let Some(token) = lb.service().bootstrap_token(identity) {
                depart(&mut lb, &mut report, identity, *token.as_bytes(), now);
            }
        } else if t_depart == Some(now) {
            let Reverse((_, identity)) = pending_departs.pop().expect("peeked above");
            let token = tokens.remove(&identity).expect("token stored at admission");
            depart(&mut lb, &mut report, identity, token, now);
        } else {
            let (index, session, _) = next_session.take().expect("join time came from it");
            next_session = stream.next_session();
            let roll = splitmix64(cfg.seed ^ u64::from(index)) as f64 / u64::MAX as f64;
            if roll < cfg.adversarial_fraction {
                adversary_serial += 1;
                adversarial_join(
                    &mut lb,
                    &mut report,
                    cfg,
                    index,
                    adversary_serial,
                    last_honest,
                    now,
                );
            } else if let Some((identity, token, tag, solution)) =
                honest_join(&mut lb, &mut report, cfg, index, now)
            {
                last_honest = Some((tag, solution));
                if session.depart <= cfg.horizon {
                    tokens.insert(identity, token);
                    pending_departs.push(Reverse((session.depart.as_secs().to_bits(), identity)));
                }
            }
        }
    }

    (lb.into_service(), report)
}

/// One honest join: solve the hello PoW, submit, mine, submit. Returns
/// `(identity, token, client_tag, solution)` on full admission.
fn honest_join<G: GateHandler>(
    lb: &mut Loopback<G>,
    report: &mut ReplayReport,
    cfg: &ReplayConfig,
    index: u32,
    now: Time,
) -> Option<(u64, [u8; 32], u64, u64)> {
    let (conn, hello) = connect(lb, report, now);
    let Frame::Hello { difficulty, nonce, mine_bits, mem_blocks, mem_passes, .. } = hello else {
        return None;
    };
    let client_tag = splitmix64(cfg.seed.wrapping_add(1) ^ u64::from(index));
    let challenge = Challenge::new(&nonce, &client_tag.to_be_bytes(), difficulty);
    let mut solver = Solver::new();
    let solution = solver.solve(&challenge).nonce;
    report.client_pow_work += solver.work();

    let reply = timed_request(lb, report, conn, &Frame::Join { client_tag, solution }, now, true);
    let Some(Frame::Granted { identity, token }) = reply else {
        report.join_drops += 1;
        return None;
    };

    let mem = MemHardParams { blocks: mem_blocks, passes: mem_passes };
    let mined = mine(&token, mine_bits, &mem);
    report.mine_attempts += mined.attempts;
    let submit = Frame::MineSubmit { identity, token, salt: mined.salt };
    let reply = timed_request(lb, report, conn, &submit, now, false);
    matches!(reply, Some(Frame::Admitted { identity: i }) if i == identity)
        .then_some((identity, token, client_tag, solution))
}

/// One adversarial join. Even serials send a pseudo-random garbage
/// solution (it wins only with probability `1/difficulty`, and the
/// adversary abandons any accidental grant — an identity that never
/// completes phase two). Odd serials replay the last honest client's
/// `(tag, solution)` on this fresh connection, which the per-connection
/// nonce defeats.
fn adversarial_join<G: GateHandler>(
    lb: &mut Loopback<G>,
    report: &mut ReplayReport,
    cfg: &ReplayConfig,
    index: u32,
    serial: u64,
    last_honest: Option<(u64, u64)>,
    now: Time,
) {
    let (conn, hello) = connect(lb, report, now);
    let Frame::Hello { .. } = hello else { return };
    let (client_tag, solution) = match last_honest {
        Some(replayed) if serial % 2 == 1 => replayed,
        _ => (
            splitmix64(cfg.seed.wrapping_add(2) ^ u64::from(index)),
            splitmix64(cfg.seed.wrapping_add(3) ^ u64::from(index)),
        ),
    };
    let reply = timed_request(lb, report, conn, &Frame::Join { client_tag, solution }, now, true);
    if reply.is_none() {
        report.join_drops += 1;
    }
}

fn connect<G: GateHandler>(
    lb: &mut Loopback<G>,
    report: &mut ReplayReport,
    now: Time,
) -> (u64, Frame) {
    report.connections += 1;
    lb.connect(now)
}

fn depart<G: GateHandler>(
    lb: &mut Loopback<G>,
    report: &mut ReplayReport,
    identity: u64,
    token: [u8; 32],
    now: Time,
) {
    let (conn, _) = connect(lb, report, now);
    let reply = lb.request(conn, &Frame::Depart { identity, token }, now);
    debug_assert!(
        matches!(reply, Some(Frame::DepartAck { .. })),
        "credentialed departures must succeed"
    );
    report.departs += 1;
}

/// Issues one request, recording its round-trip in the latency histogram
/// and the matching handle-time accumulator.
fn timed_request<G: GateHandler>(
    lb: &mut Loopback<G>,
    report: &mut ReplayReport,
    conn: u64,
    frame: &Frame,
    now: Time,
    is_pow: bool,
) -> Option<Frame> {
    let start = Instant::now();
    let reply = lb.request(conn, frame, now);
    let elapsed = start.elapsed();
    report.hist.record(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
    if is_pow {
        report.pow_handle_secs += elapsed.as_secs_f64();
    } else {
        report.mine_handle_secs += elapsed.as_secs_f64();
    }
    reply
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{GateConfig, GateService};
    use sybil_churn::{ArrivalProcess, ChurnModel, SessionModel};

    fn workload() -> sybil_sim::Workload {
        ChurnModel {
            name: "gate-test",
            initial_size: 50,
            arrival: ArrivalProcess::Poisson { rate: 20.0 },
            session: SessionModel::Exponential { mean: 5.0 },
        }
        .generate(Time(20.0), 7)
    }

    fn gate_cfg(initial: u64) -> GateConfig {
        GateConfig {
            difficulty_floor: 2,
            difficulty_cap: 64,
            mine_bits: 1,
            mem: MemHardParams { blocks: 4, passes: 1 },
            initial_size: initial,
            ..GateConfig::default()
        }
    }

    #[test]
    fn honest_replay_admits_everything_it_joins() {
        let wl = workload();
        let initial = wl.initial_size();
        let cfg = ReplayConfig { horizon: Time(10.0), adversarial_fraction: 0.0, seed: 3 };
        let (gate, report) = replay(wl, GateService::new(gate_cfg(initial)), &cfg);
        let c = gate.counters();
        assert!(c.granted > 10, "workload should produce joins, got {}", c.granted);
        assert_eq!(c.granted, c.admitted, "honest clients always finish phase two");
        assert_eq!(c.rejected_pow, 0);
        assert_eq!(report.join_drops, 0);
        assert_eq!(report.hist.count(), 2 * c.granted);
        assert!(report.client_pow_work >= c.granted, "each join costs at least one attempt");
        assert_eq!(c.departed, report.departs);
    }

    #[test]
    fn adversarial_fraction_produces_rejections_not_admissions() {
        let wl = workload();
        let initial = wl.initial_size();
        let cfg = ReplayConfig { horizon: Time(10.0), adversarial_fraction: 0.5, seed: 3 };
        let (gate, report) = replay(wl, GateService::new(gate_cfg(initial)), &cfg);
        let c = gate.counters();
        assert!(c.rejected_pow > 0, "adversarial joins must be rejected");
        assert!(c.admitted > 0, "honest joins still get through");
        assert!(report.join_drops >= c.rejected_pow);
        // Accidental adversarial grants are abandoned, never admitted:
        // every admission traces to an honest mine.
        assert!(c.admitted <= c.granted);
    }

    #[test]
    fn replay_is_deterministic_across_runs() {
        let cfg = ReplayConfig { horizon: Time(10.0), adversarial_fraction: 0.3, seed: 11 };
        let run = || {
            let wl = workload();
            let initial = wl.initial_size();
            let (gate, _) = replay(wl, GateService::new(gate_cfg(initial)), &cfg);
            (gate.decision_log().to_vec(), gate.counters())
        };
        let (log_a, counters_a) = run();
        let (log_b, counters_b) = run();
        assert_eq!(log_a, log_b, "decision logs must be byte-identical");
        assert_eq!(counters_a, counters_b);
    }
}
