//! A fixed-footprint log-linear latency histogram (HDR style).
//!
//! Recording a sample is two shifts and an increment; percentile queries
//! scan the bucket array once. Values are bucketed with 6 significant
//! bits, so every bucket's lower bound is within ~1.6% of any value it
//! holds — plenty for p50/p99/p999 reporting — and the whole histogram
//! is a flat `Vec<u64>` of a few thousand counters regardless of how
//! many samples land in it. No dynamic allocation after construction,
//! no sorting, no retained samples.

/// Significant bits of precision per bucket (values within a bucket
/// differ by at most `2^-PRECISION_BITS` relative error).
const PRECISION_BITS: u32 = 6;
/// Buckets in the linear region and per logarithmic half-decade.
const SUB_BUCKETS: usize = 1 << PRECISION_BITS;
/// Exponent range above the linear region for 64-bit values.
const EXP_GROUPS: usize = 64 - PRECISION_BITS as usize;

/// A log-linear histogram of `u64` samples (nanoseconds, here).
#[derive(Clone, Debug)]
pub struct LatencyHist {
    buckets: Vec<u64>,
    count: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of `value`: identity below [`SUB_BUCKETS`], then 64
/// buckets per power of two keeping the top 6 bits.
fn index_of(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // >= PRECISION_BITS here
    let group = (exp - PRECISION_BITS + 1) as usize;
    let sub = ((value >> (exp - PRECISION_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    group * SUB_BUCKETS + sub
}

/// Lower bound of the values mapping to bucket `index` (the reported
/// representative; true values are at most ~1.6% above it).
fn value_of(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let group = (index / SUB_BUCKETS) as u32;
    let sub = (index % SUB_BUCKETS) as u64;
    let exp = group + PRECISION_BITS - 1;
    (1u64 << exp) | (sub << (exp - PRECISION_BITS))
}

impl LatencyHist {
    /// An empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        LatencyHist { buckets: vec![0; (EXP_GROUPS + 1) * SUB_BUCKETS], count: 0, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[index_of(value)] += 1;
        self.count += 1;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample, exact.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]` (e.g. `0.99` for p99):
    /// the representative of the bucket containing the `ceil(q·count)`-th
    /// smallest sample. Returns 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return self.max; // The top rank is the exact observed maximum.
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return value_of(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_value_are_consistent() {
        // value_of(index_of(v)) must be <= v with bounded relative error.
        let mut probes: Vec<u64> = (0..200).collect();
        for shift in (0..64).step_by(4) {
            let v = 1u64 << shift;
            probes.extend([v.saturating_sub(1), v, v + 1, v.saturating_mul(3)]);
        }
        probes.push(u64::MAX);
        for &p in &probes {
            let lower = value_of(index_of(p));
            assert!(lower <= p, "lower {lower} above probe {p}");
            if p >= SUB_BUCKETS as u64 {
                // Relative error bounded by the 6-bit precision.
                assert!(
                    (p - lower) as f64 / p as f64 <= 1.0 / SUB_BUCKETS as f64,
                    "probe {p} lower {lower}"
                );
            } else {
                assert_eq!(lower, p, "linear region is exact");
            }
        }
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let mut h = LatencyHist::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms in 1µs steps
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1_000_000);
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        let p999 = h.percentile(0.999);
        // Each estimate is a lower bound within one bucket width.
        assert!(p50 <= 500_000 && p50 as f64 >= 500_000.0 * (1.0 - 2.0 / 64.0), "p50 {p50}");
        assert!(p99 <= 990_000 && p99 as f64 >= 990_000.0 * (1.0 - 2.0 / 64.0), "p99 {p99}");
        assert!(p999 <= 1_000_000 && p999 as f64 >= 999_000.0 * (1.0 - 2.0 / 64.0), "p999 {p999}");
        assert!(p50 <= p99 && p99 <= p999, "percentiles must be monotone");
    }

    #[test]
    fn empty_and_single_sample() {
        let mut h = LatencyHist::new();
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.count(), 0);
        h.record(0);
        assert_eq!(h.percentile(0.5), 0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        // p100 is capped at the exact observed max.
        assert_eq!(h.percentile(1.0), u64::MAX);
    }
}
