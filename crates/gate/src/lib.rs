//! `sybil-gate`: a networked admission service for the ERGO defense.
//!
//! The simulator crates model admission control as function calls inside
//! one process; this crate puts the same machinery behind a wire. A
//! [`GateService`] owns the identity ledger ([`sybil_sim::AdmissionMap`])
//! and the good-join-rate estimator ([`ergo_core::GoodJEst`]) and serves
//! join / challenge-response / depart requests over a length-prefixed
//! binary protocol ([`wire`]), either on TCP ([`transport::serve`]) or
//! through an in-process loopback that exercises the identical byte path
//! without sockets ([`transport::Loopback`]). The TCP path serves any
//! [`SharedGate`]: the monolithic service behind one global mutex, or
//! the [`ShardedGate`] — N shard workers routed by identity congruence,
//! with every expensive verification outside all locks — which makes the
//! same decisions byte for byte.
//!
//! Two defense layers stand between a connection and membership:
//!
//! 1. a **pre-handshake proof-of-work** — the hello quotes a difficulty
//!    that scales with the estimated join rate, and a bad solution is
//!    silently dropped after exactly one hash verification, before any
//!    per-identity state exists;
//! 2. **memory-hard identity mining** ([`memhard`]) — a verified PoW
//!    earns a provisional identity and token at once, but full admission
//!    requires a fill-and-mix salt over that token, shifting the
//!    admission cost from pure compute to memory bandwidth.
//!
//! Every decision is appended to a wall-clock-free log, so any two runs
//! of the same workload produce byte-identical logs ([`client::replay`]
//! pins this); the `gate_bench` binary replays churn workloads through
//! the loopback and reports verification throughput and p50/p99/p999
//! admission latency.
//!
//! # Modules
//!
//! * [`wire`] — frame format, encode/decode, stream reader.
//! * [`memhard`] — fill-and-mix digest, difficulty predicate, miner.
//! * [`hist`] — fixed-footprint log-linear latency histogram.
//! * [`service`] — the admission state machine and decision log.
//! * [`sharded`] — the state-sharded service behind the same protocol.
//! * [`transport`] — loopback and TCP front ends.
//! * [`client`] — deterministic workload replay driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod hist;
pub mod memhard;
pub mod service;
pub mod sharded;
pub mod transport;
pub mod wire;

pub use client::{replay, ReplayConfig, ReplayReport};
pub use hist::LatencyHist;
pub use memhard::{fill_and_mix, meets_difficulty, mine, MemHardParams, MineResult};
pub use service::{GateConfig, GateCounters, GateHandler, GateService, Response};
pub use sharded::ShardedGate;
pub use transport::{Loopback, SharedGate};
pub use wire::{read_frame, Frame, WireError, MAX_FRAME_LEN, PROTOCOL_VERSION};
