//! Memory-hard identity mining: the second admission phase.
//!
//! The pre-handshake PoW (phase one) is a pure compute race, which
//! favors an adversary with ASIC-style hash throughput. Phase two makes
//! the *full* admission cost memory-bound instead: the miner must fill a
//! buffer of hash blocks, then mix it with data-dependent reads whose
//! addresses come out of the blocks themselves, so the whole buffer has
//! to stay resident — there is no shortcut that recomputes blocks on
//! demand without paying the fill cost again per read.
//!
//! This is a deliberately small, dependency-free stand-in for an
//! Argon2-class function (the build environment is offline): SHA-256
//! fill, data-dependent mix, sequential salt search. The *shape* of the
//! cost (memory × passes, unpredictable addressing) is what the gate's
//! economics need; the constants are tuned for test-speed, not for
//! production hardness.

use sybil_crypto::{Digest, Sha256};

/// Size of the fill buffer and number of mix passes over it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemHardParams {
    /// Number of 32-byte blocks in the fill buffer (minimum 1).
    pub blocks: u32,
    /// Number of data-dependent mix passes over the buffer (minimum 1).
    pub passes: u32,
}

impl Default for MemHardParams {
    fn default() -> Self {
        MemHardParams { blocks: 64, passes: 1 }
    }
}

/// Outcome of a successful [`mine`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MineResult {
    /// The salt whose digest met the difficulty.
    pub salt: u64,
    /// The winning digest (callers re-verify with [`fill_and_mix`]).
    pub digest: Digest,
    /// Salts tried, including the winner — the miner's paid work.
    pub attempts: u64,
}

/// Computes the memory-hard digest of `material` under `salt`.
///
/// Deterministic: both the miner and the verifier run this exact
/// function, so a submitted salt is checked by one evaluation. The cost
/// is `blocks` fill hashes plus `blocks × passes` mix hashes, each mix
/// step reading a block chosen by the previous digest's bits.
pub fn fill_and_mix(material: &[u8], salt: u64, p: &MemHardParams) -> Digest {
    let n = p.blocks.max(1) as usize;
    let passes = p.passes.max(1);
    let mut blocks: Vec<Digest> = Vec::with_capacity(n);

    // Fill: a hash chain seeded from the material and salt. Block i
    // depends on block i-1, so the fill itself is sequential.
    let mut h = Sha256::new();
    h.update(&(material.len() as u64).to_be_bytes());
    h.update(material);
    h.update(&salt.to_be_bytes());
    h.update(&0u64.to_be_bytes());
    blocks.push(h.finalize());
    for i in 1..n {
        let mut h = Sha256::new();
        h.update(blocks[i - 1].as_bytes());
        h.update(&(i as u64).to_be_bytes());
        blocks.push(h.finalize());
    }

    // Mix: every step reads a partner block addressed by the current
    // block's own bits, which are unknowable before the fill completes.
    let mut counter: u64 = 0;
    for _ in 0..passes {
        for i in 0..n {
            let partner = (blocks[i].prefix_u128() % n as u128) as usize;
            counter += 1;
            let mut h = Sha256::new();
            h.update(blocks[i].as_bytes());
            h.update(blocks[partner].as_bytes());
            h.update(&counter.to_be_bytes());
            blocks[i] = h.finalize();
        }
    }

    // Final: the last block plus one more data-dependent read.
    let last = blocks[n - 1];
    let partner = (last.prefix_u128() % n as u128) as usize;
    let mut h = Sha256::new();
    h.update(last.as_bytes());
    h.update(blocks[partner].as_bytes());
    h.finalize()
}

/// True when the digest ends in at least `bits` zero bits.
///
/// Trailing bits, not leading, so the difficulty predicate is disjoint
/// from the leading-prefix comparison the phase-one PoW uses — a digest
/// good for one says nothing about the other.
pub fn meets_difficulty(digest: &Digest, bits: u8) -> bool {
    let mut remaining = u32::from(bits);
    for byte in digest.as_bytes().iter().rev() {
        if remaining == 0 {
            return true;
        }
        let zeros = (*byte).trailing_zeros().min(8);
        if zeros < remaining.min(8) {
            return false;
        }
        remaining = remaining.saturating_sub(8);
    }
    remaining == 0
}

/// Mines the smallest salt whose [`fill_and_mix`] digest meets `bits`
/// trailing zero bits. Deterministic for fixed inputs.
pub fn mine(material: &[u8], bits: u8, p: &MemHardParams) -> MineResult {
    let mut salt = 0u64;
    loop {
        let digest = fill_and_mix(material, salt, p);
        if meets_difficulty(&digest, bits) {
            return MineResult { salt, digest, attempts: salt + 1 };
        }
        salt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: MemHardParams = MemHardParams { blocks: 8, passes: 2 };

    #[test]
    fn deterministic_and_input_sensitive() {
        let a = fill_and_mix(b"material", 7, &P);
        let b = fill_and_mix(b"material", 7, &P);
        assert_eq!(a, b);
        assert_ne!(a, fill_and_mix(b"material", 8, &P));
        assert_ne!(a, fill_and_mix(b"materiaL", 7, &P));
        assert_ne!(a, fill_and_mix(b"material", 7, &MemHardParams { blocks: 9, passes: 2 }));
        assert_ne!(a, fill_and_mix(b"material", 7, &MemHardParams { blocks: 8, passes: 3 }));
    }

    #[test]
    fn difficulty_counts_trailing_zero_bits() {
        let mut zeros = [0u8; 32];
        assert!(meets_difficulty(&Digest(zeros), 255));
        zeros[31] = 0b0000_1000; // 3 trailing zero bits
        let d = Digest(zeros);
        for bits in 0..=3 {
            assert!(meets_difficulty(&d, bits), "bits {bits}");
        }
        assert!(!meets_difficulty(&d, 4));
        // A full zero byte then a partial one: 8 + 1 = 9 trailing zeros.
        let mut bytes = [0xffu8; 32];
        bytes[31] = 0;
        bytes[30] = 0b0000_0010;
        let d = Digest(bytes);
        assert!(meets_difficulty(&d, 9));
        assert!(!meets_difficulty(&d, 10));
    }

    #[test]
    fn mine_finds_smallest_salt_and_verifier_agrees() {
        let result = mine(b"token-bytes", 3, &P);
        assert_eq!(result.attempts, result.salt + 1);
        // Every earlier salt genuinely fails — the search is exhaustive.
        for salt in 0..result.salt {
            assert!(!meets_difficulty(&fill_and_mix(b"token-bytes", salt, &P), 3));
        }
        // One verifier evaluation reproduces the winner.
        let check = fill_and_mix(b"token-bytes", result.salt, &P);
        assert_eq!(check, result.digest);
        assert!(meets_difficulty(&check, 3));
    }

    #[test]
    fn expected_attempts_scale_with_bits() {
        // Over many materials, mean attempts for k bits should be near
        // 2^k. Loose bounds — this is a sanity check, not a statistics
        // test.
        let mut total = 0u64;
        let cases = 32;
        for i in 0..cases {
            let material = format!("material-{i}");
            total += mine(material.as_bytes(), 2, &P).attempts;
        }
        let mean = total as f64 / f64::from(cases);
        assert!(mean > 1.0 && mean < 16.0, "mean attempts {mean}");
    }
}
