//! The admission service: per-connection state, the two defense
//! phases, and the deterministic decision log.
//!
//! A [`GateService`] owns the [`AdmissionMap`] identity ledger and a
//! [`GoodJEst`] estimator of good join rate, and turns wire frames into
//! decisions:
//!
//! 1. **Pre-handshake PoW.** Every connection receives a fresh nonce
//!    and a difficulty quote in its hello; the first [`Frame::Join`]
//!    must carry a valid solution or the connection is silently dropped
//!    after exactly one hash verification — no identity, no token, no
//!    retained state. The quote scales with the estimated join rate:
//!    the floor plus the number of joins the estimator's window has
//!    seen in the last `1/J̃` seconds, mirroring the paper's
//!    join-rate-proportional entry cost.
//! 2. **Memory-hard identity mining.** A verified PoW earns a
//!    *provisional* identity and an HMAC token immediately (the keypair
//!    issue of the two-phase scheme); full admission requires a
//!    [`fill_and_mix`](crate::memhard::fill_and_mix) salt over the token
//!    that meets the published trailing-zero difficulty.
//!
//! Every decision appends a fixed-width record to an in-memory log that
//! contains no wall-clock data, so two replays of the same workload
//! produce byte-identical logs on any machine — the property the
//! determinism tests and the benchmark fingerprint pin.

use std::collections::HashMap;

use ergo_core::window::JoinWindow;
use ergo_core::{GoodJEst, GoodJEstConfig};
use sybil_crypto::{hmac_sha256, Challenge, Digest, Sha256};
use sybil_sim::{AdmissionMap, AdmissionState, Time};

use crate::memhard::{fill_and_mix, meets_difficulty, MemHardParams};
use crate::wire::{Frame, PROTOCOL_VERSION};

/// Tuning knobs for a gate instance.
#[derive(Clone, Debug)]
pub struct GateConfig {
    /// Minimum PoW difficulty quoted to any connection.
    pub difficulty_floor: u64,
    /// Ceiling on the adaptive difficulty quote.
    pub difficulty_cap: u64,
    /// Trailing zero bits the memory-hard mining digest must show.
    pub mine_bits: u8,
    /// Memory-hard fill/mix parameters, published in the hello.
    pub mem: MemHardParams,
    /// Good-join-rate estimator configuration.
    pub estimator: GoodJEstConfig,
    /// Identities pre-admitted at start (the bootstrap set the paper's
    /// system assumes exists before the adversary arrives).
    pub initial_size: u64,
    /// Secret for minting identity tokens. A real deployment draws this
    /// from an RNG at startup; tests and benchmarks fix it for
    /// reproducibility.
    pub master_secret: Vec<u8>,
    /// Seed for per-connection challenge nonces (deterministic given the
    /// connection sequence, so replays are reproducible).
    pub seed: u64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            difficulty_floor: 8,
            difficulty_cap: 1 << 20,
            mine_bits: 2,
            mem: MemHardParams::default(),
            estimator: GoodJEstConfig::default(),
            initial_size: 0,
            master_secret: b"sybil-gate-master".to_vec(),
            seed: 1,
        }
    }
}

/// What the server has promised one live connection.
pub(crate) struct ConnState {
    /// Challenge nonce sent in this connection's hello.
    pub(crate) nonce: [u8; 16],
    /// Difficulty quoted in this connection's hello.
    pub(crate) difficulty: u64,
}

/// What the gate remembers about one issued identity.
pub(crate) struct IdentityRecord {
    /// The client tag bound into the identity's token.
    pub(crate) client_tag: u64,
    /// When the identity was granted (estimator old/new classification).
    pub(crate) joined_at: Time,
    /// True once the identity departed; departed identities are inert.
    pub(crate) departed: bool,
}

/// Monotone counters over a gate's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GateCounters {
    /// PoW verifications performed (exactly one per [`Frame::Join`] that
    /// reached verification).
    pub pow_verifications: u64,
    /// Memory-hard digests computed to check mining submissions.
    pub mem_verifications: u64,
    /// Provisional identities issued (phase one passed).
    pub granted: u64,
    /// Identities fully admitted (phase two passed).
    pub admitted: u64,
    /// Joins dropped for a bad PoW solution.
    pub rejected_pow: u64,
    /// Mining submissions whose digest missed the difficulty.
    pub refused_mine: u64,
    /// Voluntary departures recorded.
    pub departed: u64,
    /// Frames dropped for protocol violations (no hello state, bad
    /// token, wrong direction, unknown identity).
    pub dropped: u64,
}

/// The gate's reply to one inbound frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Response {
    /// Send this frame back to the client.
    Reply(Frame),
    /// Say nothing and drop the connection (the silent-drop defense:
    /// failures cost the adversary a round-trip and teach them nothing).
    Drop,
}

/// Decision-log record kinds (first byte of each 17-byte record).
pub(crate) mod logkind {
    pub const HELLO: u8 = 0;
    pub const GRANTED: u8 = 1;
    pub const REJECTED_POW: u8 = 2;
    pub const ADMITTED: u8 = 3;
    pub const MINE_REFUSED: u8 = 4;
    pub const DEPARTED: u8 = 5;
    pub const DROPPED: u8 = 6;
}

/// The deterministic challenge nonce for connection `conn` under `seed`.
/// Shared by the monolithic and sharded services so their hellos are
/// byte-identical for the same connection sequence.
pub(crate) fn challenge_nonce(seed: u64, conn: u64) -> [u8; 16] {
    let mut h = Sha256::new();
    h.update(&seed.to_be_bytes());
    h.update(&conn.to_be_bytes());
    let digest = h.finalize();
    let mut nonce = [0u8; 16];
    nonce.copy_from_slice(&digest.as_bytes()[..16]);
    nonce
}

/// The HMAC credential for (`identity`, `client_tag`) under `master_secret`.
pub(crate) fn token_for(master_secret: &[u8], identity: u64, client_tag: u64) -> Digest {
    let mut material = [0u8; 16];
    material[..8].copy_from_slice(&identity.to_be_bytes());
    material[8..].copy_from_slice(&client_tag.to_be_bytes());
    hmac_sha256(master_secret, &material)
}

/// The adaptive difficulty schedule: floor plus the joins granted in the
/// last `1/J̃` seconds, capped. When the estimator sees no good joins
/// yet, the window is unbounded and every past join counts — the
/// conservative quote for a gate that cannot yet tell burst from
/// baseline.
pub(crate) fn quote_difficulty(
    cfg: &GateConfig,
    est: &GoodJEst,
    window: &JoinWindow,
    now: Time,
) -> u64 {
    let rate = est.estimate();
    let width = if rate > 0.0 { 1.0 / rate } else { f64::INFINITY };
    let recent = window.count_within(now, width);
    (cfg.difficulty_floor.max(1) + recent).min(cfg.difficulty_cap.max(1))
}

/// The operations a transport or replay driver needs from an admission
/// service: open a connection, handle one frame, mint a bootstrap
/// credential. Implemented by the monolithic [`GateService`] and the
/// sharded [`ShardedGate`](crate::sharded::ShardedGate), so the loopback
/// transport and the replay client drive either through the identical
/// byte path.
pub trait GateHandler {
    /// Opens a connection; returns its id and the hello frame.
    fn connect(&mut self, now: Time) -> (u64, Frame);
    /// Handles one inbound client frame on connection `conn`.
    fn handle(&mut self, conn: u64, frame: &Frame, now: Time) -> Response;
    /// The dealt credential of a pre-admitted bootstrap identity.
    fn bootstrap_token(&self, identity: u64) -> Option<Digest>;
}

impl GateHandler for GateService {
    fn connect(&mut self, now: Time) -> (u64, Frame) {
        GateService::connect(self, now)
    }
    fn handle(&mut self, conn: u64, frame: &Frame, now: Time) -> Response {
        GateService::handle(self, conn, frame, now)
    }
    fn bootstrap_token(&self, identity: u64) -> Option<Digest> {
        GateService::bootstrap_token(self, identity)
    }
}

/// A long-running admission service instance.
pub struct GateService {
    cfg: GateConfig,
    est: GoodJEst,
    window: JoinWindow,
    admission: AdmissionMap,
    identities: Vec<IdentityRecord>,
    conns: HashMap<u64, ConnState>,
    next_conn: u64,
    counters: GateCounters,
    /// Fixed-width decision records; see [`GateService::decision_log`].
    log: Vec<u8>,
}

impl GateService {
    /// Creates a gate with `cfg.initial_size` pre-admitted bootstrap
    /// identities (tokens for them come from
    /// [`bootstrap_token`](Self::bootstrap_token)).
    pub fn new(cfg: GateConfig) -> Self {
        let initial = cfg.initial_size;
        let mut admission = AdmissionMap::new(initial);
        let mut identities = Vec::with_capacity(initial as usize);
        for i in 0..initial {
            admission.set(i, AdmissionState::Admitted);
            identities.push(IdentityRecord {
                client_tag: i,
                joined_at: Time::ZERO,
                departed: false,
            });
        }
        let est = GoodJEst::new(cfg.estimator, Time::ZERO, initial);
        GateService {
            cfg,
            est,
            window: JoinWindow::new(),
            admission,
            identities,
            conns: HashMap::new(),
            next_conn: 0,
            counters: GateCounters::default(),
            log: Vec::new(),
        }
    }

    /// Opens a connection at time `now`: allocates an id, derives its
    /// challenge nonce, quotes a difficulty, and returns the hello frame
    /// the transport must send before reading anything.
    pub fn connect(&mut self, now: Time) -> (u64, Frame) {
        let conn = self.next_conn;
        self.next_conn += 1;
        let nonce = challenge_nonce(self.cfg.seed, conn);
        let difficulty = quote_difficulty(&self.cfg, &self.est, &self.window, now);
        self.conns.insert(conn, ConnState { nonce, difficulty });
        self.push_record(logkind::HELLO, conn, difficulty);
        let hello = Frame::Hello {
            version: PROTOCOL_VERSION,
            difficulty,
            nonce,
            mine_bits: self.cfg.mine_bits,
            mem_blocks: self.cfg.mem.blocks,
            mem_passes: self.cfg.mem.passes,
        };
        (conn, hello)
    }

    /// Handles one client frame on connection `conn` at time `now`.
    pub fn handle(&mut self, conn: u64, frame: &Frame, now: Time) -> Response {
        match *frame {
            Frame::Join { client_tag, solution } => {
                self.handle_join(conn, client_tag, solution, now)
            }
            Frame::MineSubmit { identity, token, salt } => {
                self.conns.remove(&conn);
                self.handle_mine(identity, &token, salt, now)
            }
            Frame::Depart { identity, token } => {
                self.conns.remove(&conn);
                self.handle_depart(identity, &token, now)
            }
            // Server-to-client frames arriving inbound are protocol
            // violations; drop without state changes.
            Frame::Hello { .. }
            | Frame::Granted { .. }
            | Frame::Admitted { .. }
            | Frame::DepartAck { .. } => self.drop_conn(conn, 1),
        }
    }

    fn handle_join(&mut self, conn: u64, client_tag: u64, solution: u64, now: Time) -> Response {
        // Removing (not reading) the state means a second Join on the
        // same connection — a replay — finds nothing and is dropped
        // before any hash is computed.
        let Some(state) = self.conns.remove(&conn) else {
            return self.drop_conn(conn, 0);
        };
        let challenge =
            match Challenge::try_new(&state.nonce, &client_tag.to_be_bytes(), state.difficulty) {
                Ok(c) => c,
                Err(_) => return self.drop_conn(conn, 2), // difficulty 0 cannot be quoted; defensive
            };
        self.counters.pow_verifications += 1;
        if !challenge.verify(&sybil_crypto::Solution { nonce: solution }) {
            self.counters.rejected_pow += 1;
            self.push_record(logkind::REJECTED_POW, conn, state.difficulty);
            return Response::Drop;
        }
        let identity = self.identities.len() as u64;
        self.admission.grow(identity + 1);
        self.identities.push(IdentityRecord { client_tag, joined_at: now, departed: false });
        self.window.record(now, 1);
        self.counters.granted += 1;
        let token = self.token_for(identity, client_tag);
        self.push_record(logkind::GRANTED, conn, identity);
        Response::Reply(Frame::Granted { identity, token: *token.as_bytes() })
    }

    fn handle_mine(&mut self, identity: u64, token: &[u8; 32], salt: u64, now: Time) -> Response {
        let Some(record) = self.identities.get(identity as usize) else {
            return self.drop_unknown(identity);
        };
        if record.departed || self.admission.get(identity) != AdmissionState::Pending {
            return self.drop_unknown(identity);
        }
        let expected = self.token_for(identity, record.client_tag);
        if !sybil_crypto::hmac::verify_tag(&expected, &Digest(*token)) {
            return self.drop_unknown(identity);
        }
        self.counters.mem_verifications += 1;
        let digest = fill_and_mix(expected.as_bytes(), salt, &self.cfg.mem);
        if meets_difficulty(&digest, self.cfg.mine_bits) {
            self.admission.set(identity, AdmissionState::Admitted);
            self.est.on_join(now, 1);
            self.counters.admitted += 1;
            self.push_record(logkind::ADMITTED, identity, salt);
            Response::Reply(Frame::Admitted { identity })
        } else {
            self.admission.set(identity, AdmissionState::Refused);
            self.counters.refused_mine += 1;
            self.push_record(logkind::MINE_REFUSED, identity, salt);
            Response::Drop
        }
    }

    fn handle_depart(&mut self, identity: u64, token: &[u8; 32], now: Time) -> Response {
        let Some(record) = self.identities.get(identity as usize) else {
            return self.drop_unknown(identity);
        };
        if record.departed || self.admission.get(identity) != AdmissionState::Admitted {
            return self.drop_unknown(identity);
        }
        let expected = self.token_for(identity, record.client_tag);
        if !sybil_crypto::hmac::verify_tag(&expected, &Digest(*token)) {
            return self.drop_unknown(identity);
        }
        let joined_at = record.joined_at;
        self.identities[identity as usize].departed = true;
        let old = self.est.classify_old(joined_at);
        self.est.on_depart(now, old, 1);
        self.counters.departed += 1;
        self.push_record(logkind::DEPARTED, identity, 0);
        Response::Reply(Frame::DepartAck { identity })
    }

    fn drop_conn(&mut self, conn: u64, code: u64) -> Response {
        self.conns.remove(&conn);
        self.counters.dropped += 1;
        self.push_record(logkind::DROPPED, conn, code);
        Response::Drop
    }

    fn drop_unknown(&mut self, identity: u64) -> Response {
        self.counters.dropped += 1;
        self.push_record(logkind::DROPPED, identity, 3);
        Response::Drop
    }

    /// The HMAC credential for (`identity`, `client_tag`) under the
    /// master secret.
    fn token_for(&self, identity: u64, client_tag: u64) -> Digest {
        token_for(&self.cfg.master_secret, identity, client_tag)
    }

    /// The credential of a pre-admitted bootstrap identity (`None` for
    /// identities issued over the wire — those tokens exist only in the
    /// [`Frame::Granted`] that delivered them). The replay client uses
    /// this to depart initial members, standing in for the out-of-band
    /// credential distribution the paper's bootstrap assumes.
    pub fn bootstrap_token(&self, identity: u64) -> Option<Digest> {
        if identity >= self.cfg.initial_size {
            return None;
        }
        let tag = self.identities.get(identity as usize)?.client_tag;
        Some(self.token_for(identity, tag))
    }

    fn push_record(&mut self, kind: u8, a: u64, b: u64) {
        self.log.push(kind);
        self.log.extend_from_slice(&a.to_le_bytes());
        self.log.extend_from_slice(&b.to_le_bytes());
    }

    /// Lifetime counters.
    pub fn counters(&self) -> GateCounters {
        self.counters
    }

    /// The raw decision log: 17-byte records of `(kind, a, b)` with
    /// little-endian `u64` operands. Contains connection ids, identities,
    /// difficulties, and salts — but never wall-clock time, so equal
    /// inputs give equal logs on any machine.
    pub fn decision_log(&self) -> &[u8] {
        &self.log
    }

    /// SHA-256 over the decision log: the run's decision fingerprint.
    pub fn fingerprint(&self) -> Digest {
        Sha256::digest(&self.log)
    }

    /// Current good-join-rate estimate (`J̃`).
    pub fn estimated_join_rate(&self) -> f64 {
        self.est.estimate()
    }

    /// Live (granted or bootstrap, not departed) identity count is not
    /// tracked directly; this returns total identities ever issued.
    pub fn identity_count(&self) -> u64 {
        self.identities.len() as u64
    }

    /// The configuration the gate was built with.
    pub fn config(&self) -> &GateConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sybil_crypto::Solver;

    fn test_cfg() -> GateConfig {
        GateConfig {
            difficulty_floor: 4,
            mine_bits: 1,
            mem: MemHardParams { blocks: 4, passes: 1 },
            initial_size: 3,
            ..GateConfig::default()
        }
    }

    fn join(gate: &mut GateService, client_tag: u64, now: Time) -> (u64, [u8; 32]) {
        let (conn, hello) = gate.connect(now);
        let Frame::Hello { difficulty, nonce, .. } = hello else { panic!("expected hello") };
        let challenge = Challenge::new(&nonce, &client_tag.to_be_bytes(), difficulty);
        let solution = Solver::new().solve(&challenge);
        let reply = gate.handle(conn, &Frame::Join { client_tag, solution: solution.nonce }, now);
        let Response::Reply(Frame::Granted { identity, token }) = reply else {
            panic!("expected grant, got {reply:?}")
        };
        (identity, token)
    }

    fn admit(gate: &mut GateService, client_tag: u64, now: Time) -> (u64, [u8; 32]) {
        let (identity, token) = join(gate, client_tag, now);
        let (bits, mem) = (gate.config().mine_bits, gate.config().mem);
        let mined = crate::memhard::mine(&token, bits, &mem);
        let (conn, _) = gate.connect(now);
        let reply =
            gate.handle(conn, &Frame::MineSubmit { identity, token, salt: mined.salt }, now);
        assert_eq!(reply, Response::Reply(Frame::Admitted { identity }));
        (identity, token)
    }

    #[test]
    fn two_phase_admission_happy_path() {
        let mut gate = GateService::new(test_cfg());
        let (identity, token) = admit(&mut gate, 99, Time(1.0));
        assert_eq!(identity, 3); // after the 3 bootstrap identities
        let c = gate.counters();
        assert_eq!((c.granted, c.admitted, c.rejected_pow), (1, 1, 0));
        // Departing with the earned token works once.
        let (conn, _) = gate.connect(Time(2.0));
        let reply = gate.handle(conn, &Frame::Depart { identity, token }, Time(2.0));
        assert_eq!(reply, Response::Reply(Frame::DepartAck { identity }));
        // And never twice.
        let (conn, _) = gate.connect(Time(3.0));
        let reply = gate.handle(conn, &Frame::Depart { identity, token }, Time(3.0));
        assert_eq!(reply, Response::Drop);
    }

    #[test]
    fn invalid_pow_costs_exactly_one_verification_and_frees_state() {
        // A high floor so the garbage solution cannot fluke past the
        // verifier (fluke probability is 1/difficulty).
        let mut gate = GateService::new(GateConfig { difficulty_floor: 1 << 30, ..test_cfg() });
        let (conn, _) = gate.connect(Time(1.0));
        let before = gate.counters().pow_verifications;
        let reply =
            gate.handle(conn, &Frame::Join { client_tag: 7, solution: u64::MAX }, Time(1.0));
        assert_eq!(reply, Response::Drop);
        let after = gate.counters();
        assert_eq!(after.pow_verifications, before + 1, "exactly one hash verification");
        assert_eq!(after.rejected_pow, 1);
        assert_eq!(after.granted, 0);
        // The connection's state is gone: a retry on the same connection
        // is dropped with ZERO further verifications.
        let reply = gate.handle(conn, &Frame::Join { client_tag: 7, solution: 0 }, Time(1.0));
        assert_eq!(reply, Response::Drop);
        assert_eq!(gate.counters().pow_verifications, before + 1);
    }

    #[test]
    fn replayed_solution_fails_on_fresh_connection() {
        let mut gate = GateService::new(test_cfg());
        let (conn, hello) = gate.connect(Time(1.0));
        let Frame::Hello { difficulty, nonce, .. } = hello else { panic!() };
        let challenge = Challenge::new(&nonce, &7u64.to_be_bytes(), difficulty);
        let solution = Solver::new().solve(&challenge).nonce;
        assert!(matches!(
            gate.handle(conn, &Frame::Join { client_tag: 7, solution }, Time(1.0)),
            Response::Reply(Frame::Granted { .. })
        ));
        // Same (tag, solution) on a new connection: the nonce differs, so
        // the old solution is worthless.
        let (conn2, hello2) = gate.connect(Time(1.0));
        let Frame::Hello { nonce: nonce2, .. } = hello2 else { panic!() };
        assert_ne!(nonce, nonce2, "per-connection nonces must differ");
        let reply = gate.handle(conn2, &Frame::Join { client_tag: 7, solution }, Time(1.0));
        assert_eq!(reply, Response::Drop);
        assert_eq!(gate.counters().rejected_pow, 1);
    }

    #[test]
    fn forged_and_stale_tokens_are_dropped() {
        let mut gate = GateService::new(test_cfg());
        let (identity, token) = join(&mut gate, 5, Time(1.0));
        // Forged token: flip a byte.
        let mut forged = token;
        forged[0] ^= 1;
        let (conn, _) = gate.connect(Time(1.0));
        let reply =
            gate.handle(conn, &Frame::MineSubmit { identity, token: forged, salt: 0 }, Time(1.0));
        assert_eq!(reply, Response::Drop);
        assert_eq!(gate.counters().mem_verifications, 0, "forged token costs no digest");
        // Unknown identity.
        let (conn, _) = gate.connect(Time(1.0));
        let reply =
            gate.handle(conn, &Frame::MineSubmit { identity: 999, token, salt: 0 }, Time(1.0));
        assert_eq!(reply, Response::Drop);
        // A server-bound direction violation.
        let (conn, _) = gate.connect(Time(1.0));
        let reply = gate.handle(conn, &Frame::Admitted { identity }, Time(1.0));
        assert_eq!(reply, Response::Drop);
    }

    #[test]
    fn difficulty_rises_with_recent_joins_and_respects_cap() {
        let mut gate = GateService::new(GateConfig { difficulty_cap: 6, ..test_cfg() });
        let (_, hello) = gate.connect(Time(1.0));
        let Frame::Hello { difficulty: d0, .. } = hello else { panic!() };
        assert_eq!(d0, 4, "floor quote before any joins");
        for i in 0..5 {
            join(&mut gate, 100 + i, Time(1.0));
        }
        let (_, hello) = gate.connect(Time(1.0));
        let Frame::Hello { difficulty: d1, .. } = hello else { panic!() };
        assert!(d1 > d0, "recent joins must raise the quote");
        assert!(d1 <= 6, "cap must bind, got {d1}");
    }

    #[test]
    fn bootstrap_identities_can_depart_with_dealt_tokens() {
        let mut gate = GateService::new(test_cfg());
        let token = gate.bootstrap_token(1).expect("bootstrap identity");
        assert!(gate.bootstrap_token(3).is_none(), "non-bootstrap has no dealt token");
        let (conn, _) = gate.connect(Time(1.0));
        let reply =
            gate.handle(conn, &Frame::Depart { identity: 1, token: *token.as_bytes() }, Time(1.0));
        assert_eq!(reply, Response::Reply(Frame::DepartAck { identity: 1 }));
        assert_eq!(gate.counters().departed, 1);
    }

    #[test]
    fn decision_log_is_time_free_and_fingerprint_stable() {
        let run = |now_scale: f64| {
            let mut gate = GateService::new(test_cfg());
            admit(&mut gate, 42, Time(1.0 * now_scale));
            join(&mut gate, 43, Time(2.0 * now_scale));
            (gate.decision_log().to_vec(), gate.fingerprint())
        };
        let (log_a, fp_a) = run(1.0);
        let (log_b, fp_b) = run(1000.0);
        assert_eq!(log_a, log_b, "wall-clock must not leak into the log");
        assert_eq!(fp_a, fp_b);
        assert_eq!(log_a.len() % 17, 0, "records are fixed width");
    }
}
