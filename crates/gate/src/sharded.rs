//! The sharded admission service: N shard workers behind a thin router,
//! with identities routed by congruence (`identity mod N`) — the gate's
//! counterpart of the simulator's sharded defense state.
//!
//! The monolithic [`GateService`] serves the TCP front end from behind a
//! single mutex, so every expensive verification — the PoW hash check and
//! above all the memory-hard [`fill_and_mix`] digest — serializes the
//! whole service. [`ShardedGate`] splits the state instead of the lock:
//!
//! * Each **shard** owns the [`IdentityRecord`]s and the
//!   [`AdmissionMap`] slice of the identities congruent to its index
//!   (identity `i` lives in shard `i mod N` at local index `i / N`),
//!   mirroring the ID-congruence layout of
//!   `sybil_sim::shard_state`.
//! * The **router** owns what is inherently global and cheap: the
//!   connection table, the join-rate estimator and its window, the
//!   monotone counters, and the decision log.
//! * Every expensive digest runs **outside all locks**. A mining
//!   submission takes a shard lock twice — once to read the record,
//!   once to commit the transition after the digest — and re-checks the
//!   state under the second lock, so a raced duplicate costs its sender
//!   a digest but cannot double-admit.
//!
//! Driven serially, a `ShardedGate` produces a decision log
//! **byte-identical** to the monolithic service's at every shard count —
//! the equivalence the tests in this module pin. Driven concurrently,
//! log record order follows the scheduler (so parallel benchmarks record
//! no fingerprint), but the counters and per-identity outcomes remain
//! exact.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

use ergo_core::window::JoinWindow;
use ergo_core::GoodJEst;
use sybil_crypto::{Challenge, Digest, Sha256};
use sybil_sim::{AdmissionMap, AdmissionState, Time};

use crate::memhard::{fill_and_mix, meets_difficulty};
use crate::service::{
    challenge_nonce, logkind, quote_difficulty, token_for, ConnState, GateConfig, GateCounters,
    GateHandler, IdentityRecord, Response,
};
use crate::transport::SharedGate;
use crate::wire::{Frame, PROTOCOL_VERSION};

/// Locks a mutex, recovering from poisoning: gate state is monotone
/// counters, maps, and a log, all valid at every step, so a panicking
/// sibling must not take the shard down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The cheap global state behind the router lock.
struct Router {
    est: GoodJEst,
    window: JoinWindow,
    conns: HashMap<u64, ConnState>,
    next_conn: u64,
    /// The next identity to issue; identities are numbered globally and
    /// routed to shard `identity % N`.
    next_identity: u64,
    counters: GateCounters,
    log: Vec<u8>,
}

impl Router {
    fn push_record(&mut self, kind: u8, a: u64, b: u64) {
        self.log.push(kind);
        self.log.extend_from_slice(&a.to_le_bytes());
        self.log.extend_from_slice(&b.to_le_bytes());
    }

    fn drop_conn(&mut self, conn: u64, code: u64) -> Response {
        self.conns.remove(&conn);
        self.counters.dropped += 1;
        self.push_record(logkind::DROPPED, conn, code);
        Response::Drop
    }

    fn drop_unknown(&mut self, identity: u64) -> Response {
        self.counters.dropped += 1;
        self.push_record(logkind::DROPPED, identity, 3);
        Response::Drop
    }
}

/// One shard's slice of the identity space: records and admission states
/// of the identities congruent to the shard index, at local index
/// `identity / N`.
struct GateShard {
    /// `None` marks an identity the router has issued whose record has
    /// not landed yet — under concurrency, grants destined for one shard
    /// can commit out of issue order.
    records: Vec<Option<IdentityRecord>>,
    admission: AdmissionMap,
}

impl GateShard {
    fn new() -> Self {
        GateShard { records: Vec::new(), admission: AdmissionMap::new(0) }
    }

    /// Grows the slice to cover local index `local`.
    fn ensure(&mut self, local: usize) {
        if local >= self.records.len() {
            self.records.resize_with(local + 1, || None);
            self.admission.grow(self.records.len() as u64);
        }
    }

    fn record(&self, local: usize) -> Option<&IdentityRecord> {
        self.records.get(local).and_then(|r| r.as_ref())
    }
}

/// The sharded admission service. See the module docs for the layout;
/// see [`GateService`] for the protocol itself — the two services make
/// identical decisions, byte for byte, when driven serially.
pub struct ShardedGate {
    cfg: GateConfig,
    router: Mutex<Router>,
    shards: Vec<Mutex<GateShard>>,
}

impl ShardedGate {
    /// Creates a gate with `shards` shard workers and
    /// `cfg.initial_size` pre-admitted bootstrap identities, dealt
    /// round-robin across the shards by ID congruence.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(cfg: GateConfig, shards: usize) -> Self {
        assert!(shards >= 1, "a gate needs at least one shard");
        let mut slices: Vec<GateShard> = (0..shards).map(|_| GateShard::new()).collect();
        for i in 0..cfg.initial_size {
            let slice = &mut slices[(i % shards as u64) as usize];
            let local = (i / shards as u64) as usize;
            slice.ensure(local);
            slice.admission.set(local as u64, AdmissionState::Admitted);
            slice.records[local] =
                Some(IdentityRecord { client_tag: i, joined_at: Time::ZERO, departed: false });
        }
        let router = Router {
            est: GoodJEst::new(cfg.estimator, Time::ZERO, cfg.initial_size),
            window: JoinWindow::new(),
            conns: HashMap::new(),
            next_conn: 0,
            next_identity: cfg.initial_size,
            counters: GateCounters::default(),
            log: Vec::new(),
        };
        ShardedGate {
            cfg,
            router: Mutex::new(router),
            shards: slices.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Runs `f` on the shard slice owning `identity`.
    fn with_shard<T>(&self, identity: u64, f: impl FnOnce(&mut GateShard, usize) -> T) -> T {
        let n = self.shards.len() as u64;
        let mut guard = lock(&self.shards[(identity % n) as usize]);
        f(&mut guard, (identity / n) as usize)
    }

    /// Opens a connection at time `now`. Identical contract (and bytes)
    /// to [`GateService::connect`].
    pub fn connect(&self, now: Time) -> (u64, Frame) {
        let mut r = lock(&self.router);
        let conn = r.next_conn;
        r.next_conn += 1;
        let nonce = challenge_nonce(self.cfg.seed, conn);
        let difficulty = quote_difficulty(&self.cfg, &r.est, &r.window, now);
        r.conns.insert(conn, ConnState { nonce, difficulty });
        r.push_record(logkind::HELLO, conn, difficulty);
        let hello = Frame::Hello {
            version: PROTOCOL_VERSION,
            difficulty,
            nonce,
            mine_bits: self.cfg.mine_bits,
            mem_blocks: self.cfg.mem.blocks,
            mem_passes: self.cfg.mem.passes,
        };
        (conn, hello)
    }

    /// Handles one client frame on connection `conn` at time `now`.
    pub fn handle(&self, conn: u64, frame: &Frame, now: Time) -> Response {
        match *frame {
            Frame::Join { client_tag, solution } => {
                self.handle_join(conn, client_tag, solution, now)
            }
            Frame::MineSubmit { identity, token, salt } => {
                lock(&self.router).conns.remove(&conn);
                self.handle_mine(identity, &token, salt, now)
            }
            Frame::Depart { identity, token } => {
                lock(&self.router).conns.remove(&conn);
                self.handle_depart(identity, &token, now)
            }
            Frame::Hello { .. }
            | Frame::Granted { .. }
            | Frame::Admitted { .. }
            | Frame::DepartAck { .. } => lock(&self.router).drop_conn(conn, 1),
        }
    }

    fn handle_join(&self, conn: u64, client_tag: u64, solution: u64, now: Time) -> Response {
        // Take (never read) the promised state, exactly like the
        // monolithic path: a replayed Join finds nothing.
        let state = {
            let mut r = lock(&self.router);
            match r.conns.remove(&conn) {
                Some(s) => s,
                None => return r.drop_conn(conn, 0),
            }
        };
        let challenge =
            match Challenge::try_new(&state.nonce, &client_tag.to_be_bytes(), state.difficulty) {
                Ok(c) => c,
                Err(_) => return lock(&self.router).drop_conn(conn, 2),
            };
        // The hash verification runs outside every lock.
        let verified = challenge.verify(&sybil_crypto::Solution { nonce: solution });
        let identity = {
            let mut r = lock(&self.router);
            r.counters.pow_verifications += 1;
            if !verified {
                r.counters.rejected_pow += 1;
                r.push_record(logkind::REJECTED_POW, conn, state.difficulty);
                return Response::Drop;
            }
            let identity = r.next_identity;
            r.next_identity += 1;
            r.window.record(now, 1);
            r.counters.granted += 1;
            r.push_record(logkind::GRANTED, conn, identity);
            identity
        };
        let token = token_for(&self.cfg.master_secret, identity, client_tag);
        self.with_shard(identity, |shard, local| {
            shard.ensure(local);
            // A fresh slot is Pending by construction — exactly the
            // state a grown monolithic map reports.
            shard.records[local] =
                Some(IdentityRecord { client_tag, joined_at: now, departed: false });
        });
        Response::Reply(Frame::Granted { identity, token: *token.as_bytes() })
    }

    fn handle_mine(&self, identity: u64, token: &[u8; 32], salt: u64, now: Time) -> Response {
        let pending_tag = self.with_shard(identity, |shard, local| match shard.record(local) {
            Some(rec)
                if !rec.departed
                    && shard.admission.get(local as u64) == AdmissionState::Pending =>
            {
                Some(rec.client_tag)
            }
            _ => None,
        });
        let Some(client_tag) = pending_tag else {
            return lock(&self.router).drop_unknown(identity);
        };
        let expected = token_for(&self.cfg.master_secret, identity, client_tag);
        if !sybil_crypto::hmac::verify_tag(&expected, &Digest(*token)) {
            return lock(&self.router).drop_unknown(identity);
        }
        // The memory-hard digest — the dominant cost of the whole
        // service — runs outside every lock. That is the point of the
        // sharded gate.
        let digest = fill_and_mix(expected.as_bytes(), salt, &self.cfg.mem);
        let admitted = meets_difficulty(&digest, self.cfg.mine_bits);
        let transitioned = self.with_shard(identity, |shard, local| match shard.record(local) {
            Some(rec)
                if !rec.departed
                    && shard.admission.get(local as u64) == AdmissionState::Pending =>
            {
                let state =
                    if admitted { AdmissionState::Admitted } else { AdmissionState::Refused };
                shard.admission.set(local as u64, state);
                true
            }
            // A concurrent submission won the race while the digest was
            // computing; this one still paid for its digest.
            _ => false,
        });
        let mut r = lock(&self.router);
        r.counters.mem_verifications += 1;
        if !transitioned {
            return r.drop_unknown(identity);
        }
        if admitted {
            r.est.on_join(now, 1);
            r.counters.admitted += 1;
            r.push_record(logkind::ADMITTED, identity, salt);
            Response::Reply(Frame::Admitted { identity })
        } else {
            r.counters.refused_mine += 1;
            r.push_record(logkind::MINE_REFUSED, identity, salt);
            Response::Drop
        }
    }

    fn handle_depart(&self, identity: u64, token: &[u8; 32], now: Time) -> Response {
        let admitted_rec = self.with_shard(identity, |shard, local| match shard.record(local) {
            Some(rec)
                if !rec.departed
                    && shard.admission.get(local as u64) == AdmissionState::Admitted =>
            {
                Some((rec.client_tag, rec.joined_at))
            }
            _ => None,
        });
        let Some((client_tag, joined_at)) = admitted_rec else {
            return lock(&self.router).drop_unknown(identity);
        };
        let expected = token_for(&self.cfg.master_secret, identity, client_tag);
        if !sybil_crypto::hmac::verify_tag(&expected, &Digest(*token)) {
            return lock(&self.router).drop_unknown(identity);
        }
        let departed = self.with_shard(identity, |shard, local| {
            match shard.records.get_mut(local).and_then(|r| r.as_mut()) {
                Some(rec)
                    if !rec.departed
                        && shard.admission.get(local as u64) == AdmissionState::Admitted =>
                {
                    rec.departed = true;
                    true
                }
                _ => false,
            }
        });
        let mut r = lock(&self.router);
        if !departed {
            return r.drop_unknown(identity);
        }
        let old = r.est.classify_old(joined_at);
        r.est.on_depart(now, old, 1);
        r.counters.departed += 1;
        r.push_record(logkind::DEPARTED, identity, 0);
        Response::Reply(Frame::DepartAck { identity })
    }

    /// The credential of a pre-admitted bootstrap identity; see
    /// [`GateService::bootstrap_token`].
    pub fn bootstrap_token(&self, identity: u64) -> Option<Digest> {
        if identity >= self.cfg.initial_size {
            return None;
        }
        let tag = self
            .with_shard(identity, |shard, local| shard.record(local).map(|rec| rec.client_tag))?;
        Some(token_for(&self.cfg.master_secret, identity, tag))
    }

    /// Lifetime counters.
    pub fn counters(&self) -> GateCounters {
        lock(&self.router).counters
    }

    /// A copy of the raw decision log (same 17-byte record format as
    /// [`GateService::decision_log`]). Byte-identical to the monolithic
    /// log under serial driving; scheduler-ordered under concurrency.
    pub fn decision_log(&self) -> Vec<u8> {
        lock(&self.router).log.clone()
    }

    /// SHA-256 over the decision log.
    pub fn fingerprint(&self) -> Digest {
        Sha256::digest(&lock(&self.router).log)
    }

    /// Current good-join-rate estimate (`J̃`).
    pub fn estimated_join_rate(&self) -> f64 {
        lock(&self.router).est.estimate()
    }

    /// Total identities ever issued (bootstrap included).
    pub fn identity_count(&self) -> u64 {
        lock(&self.router).next_identity
    }

    /// The number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configuration the gate was built with.
    pub fn config(&self) -> &GateConfig {
        &self.cfg
    }
}

impl GateHandler for ShardedGate {
    fn connect(&mut self, now: Time) -> (u64, Frame) {
        ShardedGate::connect(self, now)
    }
    fn handle(&mut self, conn: u64, frame: &Frame, now: Time) -> Response {
        ShardedGate::handle(self, conn, frame, now)
    }
    fn bootstrap_token(&self, identity: u64) -> Option<Digest> {
        ShardedGate::bootstrap_token(self, identity)
    }
}

impl SharedGate for ShardedGate {
    fn connect(&self, now: Time) -> (u64, Frame) {
        ShardedGate::connect(self, now)
    }
    fn handle(&self, conn: u64, frame: &Frame, now: Time) -> Response {
        ShardedGate::handle(self, conn, frame, now)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::client::{replay, ReplayConfig};
    use crate::memhard::{mine, MemHardParams};
    use crate::service::GateService;
    use sybil_churn::networks;
    use sybil_crypto::Solver;
    use sybil_sim::workload_io::{write_workload_file, DiskWorkload};

    fn test_cfg() -> GateConfig {
        GateConfig {
            difficulty_floor: 4,
            mine_bits: 1,
            mem: MemHardParams { blocks: 4, passes: 1 },
            initial_size: 5,
            ..GateConfig::default()
        }
    }

    /// One full admission against any handler, via the trait.
    fn admit<G: GateHandler>(gate: &mut G, client_tag: u64, now: Time) -> (u64, [u8; 32]) {
        let (conn, hello) = gate.connect(now);
        let Frame::Hello { difficulty, nonce, mine_bits, mem_blocks, mem_passes, .. } = hello
        else {
            panic!("expected hello")
        };
        let challenge = Challenge::new(&nonce, &client_tag.to_be_bytes(), difficulty);
        let solution = Solver::new().solve(&challenge).nonce;
        let reply = gate.handle(conn, &Frame::Join { client_tag, solution }, now);
        let Response::Reply(Frame::Granted { identity, token }) = reply else {
            panic!("expected grant, got {reply:?}")
        };
        let mem = MemHardParams { blocks: mem_blocks, passes: mem_passes };
        let mined = mine(&token, mine_bits, &mem);
        let (conn, _) = gate.connect(now);
        let reply =
            gate.handle(conn, &Frame::MineSubmit { identity, token, salt: mined.salt }, now);
        assert_eq!(reply, Response::Reply(Frame::Admitted { identity }));
        (identity, token)
    }

    #[test]
    fn serial_replay_is_byte_identical_to_the_monolithic_gate() {
        // The acceptance criterion: an identical churn replay (honest and
        // adversarial traffic) against the monolithic gate and against
        // the sharded gate at every N produces the same decision log,
        // byte for byte, the same counters, and the same fingerprint.
        let workload = networks::gnutella().generate(Time(60.0), 17);
        let path =
            std::env::temp_dir().join(format!("sybil_gate_shard_eq_{}.wkld", std::process::id()));
        write_workload_file(&path, &workload).expect("write workload");
        let cfg = GateConfig { initial_size: 16, ..test_cfg() };
        let rcfg = ReplayConfig { horizon: Time(60.0), adversarial_fraction: 0.25, seed: 23 };
        let source = || DiskWorkload::open(&path).expect("open workload");
        let (mono, mono_report) = replay(source(), GateService::new(cfg.clone()), &rcfg);
        assert!(mono.counters().granted > 0, "replay must exercise the gate");
        for shards in [1usize, 2, 3, 8] {
            let (sharded, report) = replay(source(), ShardedGate::new(cfg.clone(), shards), &rcfg);
            // Wall-clock measurements differ run to run; the behavioral
            // client-side tallies must not.
            assert_eq!(report.connections, mono_report.connections, "{shards} shards");
            assert_eq!(report.admitted, mono_report.admitted, "{shards} shards");
            assert_eq!(report.join_drops, mono_report.join_drops, "{shards} shards");
            assert_eq!(report.departs, mono_report.departs, "{shards} shards");
            assert_eq!(report.client_pow_work, mono_report.client_pow_work, "{shards} shards");
            assert_eq!(report.mine_attempts, mono_report.mine_attempts, "{shards} shards");
            assert_eq!(
                sharded.decision_log(),
                mono.decision_log().to_vec(),
                "{shards} shards: decision log bytes"
            );
            assert_eq!(sharded.counters(), mono.counters(), "{shards} shards: counters");
            assert_eq!(sharded.fingerprint(), mono.fingerprint(), "{shards} shards: fingerprint");
            assert_eq!(sharded.identity_count(), mono.identity_count());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn two_phase_admission_lands_on_the_congruent_shard() {
        let mut gate = ShardedGate::new(test_cfg(), 4);
        let (identity, token) = admit(&mut gate, 99, Time(1.0));
        assert_eq!(identity, 5, "first wire identity follows the bootstrap set");
        let c = gate.counters();
        assert_eq!((c.granted, c.admitted, c.rejected_pow), (1, 1, 0));
        // The record lives on shard identity % 4 and departs exactly once.
        let (conn, _) = GateHandler::connect(&mut gate, Time(2.0));
        let reply =
            GateHandler::handle(&mut gate, conn, &Frame::Depart { identity, token }, Time(2.0));
        assert_eq!(reply, Response::Reply(Frame::DepartAck { identity }));
        let (conn, _) = GateHandler::connect(&mut gate, Time(3.0));
        let reply =
            GateHandler::handle(&mut gate, conn, &Frame::Depart { identity, token }, Time(3.0));
        assert_eq!(reply, Response::Drop);
    }

    #[test]
    fn bootstrap_identities_shard_across_workers_and_can_depart() {
        let cfg = test_cfg();
        let mono = GateService::new(cfg.clone());
        let gate = ShardedGate::new(cfg.clone(), 3);
        for i in 0..cfg.initial_size {
            // Dealt tokens agree with the monolithic service's.
            let token = gate.bootstrap_token(i).expect("bootstrap identity");
            assert_eq!(Some(token), mono.bootstrap_token(i), "identity {i}");
            let (conn, _) = gate.connect(Time(1.0));
            let reply = gate.handle(
                conn,
                &Frame::Depart { identity: i, token: *token.as_bytes() },
                Time(1.0),
            );
            assert_eq!(reply, Response::Reply(Frame::DepartAck { identity: i }));
        }
        assert!(gate.bootstrap_token(cfg.initial_size).is_none());
        assert_eq!(gate.counters().departed, cfg.initial_size);
    }

    #[test]
    fn forged_tokens_and_unknown_identities_cost_no_digest() {
        let mut gate = ShardedGate::new(test_cfg(), 2);
        let (conn, hello) = GateHandler::connect(&mut gate, Time(1.0));
        let Frame::Hello { difficulty, nonce, .. } = hello else { panic!() };
        let challenge = Challenge::new(&nonce, &7u64.to_be_bytes(), difficulty);
        let solution = Solver::new().solve(&challenge).nonce;
        let reply = GateHandler::handle(
            &mut gate,
            conn,
            &Frame::Join { client_tag: 7, solution },
            Time(1.0),
        );
        let Response::Reply(Frame::Granted { identity, token }) = reply else { panic!() };
        let mut forged = token;
        forged[0] ^= 1;
        let (conn, _) = gate.connect(Time(1.0));
        let reply =
            gate.handle(conn, &Frame::MineSubmit { identity, token: forged, salt: 0 }, Time(1.0));
        assert_eq!(reply, Response::Drop);
        // Unknown identity: beyond anything issued.
        let (conn, _) = gate.connect(Time(1.0));
        let reply =
            gate.handle(conn, &Frame::MineSubmit { identity: 999, token, salt: 0 }, Time(1.0));
        assert_eq!(reply, Response::Drop);
        let c = gate.counters();
        assert_eq!(c.mem_verifications, 0, "neither probe may cost a digest");
        assert_eq!(c.dropped, 2);
    }

    #[test]
    fn concurrent_admissions_keep_counters_exact() {
        // Hammer one gate from several threads through &self. Constant
        // difficulty (floor == cap) keeps every hello solvable fast.
        let cfg = GateConfig {
            difficulty_floor: 8,
            difficulty_cap: 8,
            mine_bits: 0,
            mem: MemHardParams { blocks: 4, passes: 1 },
            initial_size: 0,
            ..GateConfig::default()
        };
        let gate = Arc::new(ShardedGate::new(cfg, 4));
        let threads = 4;
        let per_thread = 25u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let gate = Arc::clone(&gate);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let tag = ((t as u64) << 32) | i;
                        let (conn, hello) = gate.connect(Time(1.0));
                        let Frame::Hello {
                            difficulty,
                            nonce,
                            mine_bits,
                            mem_blocks,
                            mem_passes,
                            ..
                        } = hello
                        else {
                            panic!()
                        };
                        let challenge = Challenge::new(&nonce, &tag.to_be_bytes(), difficulty);
                        let solution = Solver::new().solve(&challenge).nonce;
                        let reply = gate.handle(
                            conn,
                            &Frame::Join { client_tag: tag, solution },
                            Time(1.0),
                        );
                        let Response::Reply(Frame::Granted { identity, token }) = reply else {
                            panic!("expected grant")
                        };
                        let mem = MemHardParams { blocks: mem_blocks, passes: mem_passes };
                        let mined = mine(&token, mine_bits, &mem);
                        let reply = gate.handle(
                            conn,
                            &Frame::MineSubmit { identity, token, salt: mined.salt },
                            Time(1.0),
                        );
                        assert_eq!(reply, Response::Reply(Frame::Admitted { identity }));
                    }
                });
            }
        });
        let total = threads as u64 * per_thread;
        let c = gate.counters();
        assert_eq!(c.granted, total);
        assert_eq!(c.admitted, total);
        assert_eq!(c.pow_verifications, total);
        assert_eq!(c.mem_verifications, total);
        assert_eq!((c.rejected_pow, c.refused_mine, c.dropped), (0, 0, 0));
        assert_eq!(gate.identity_count(), total);
        assert_eq!(gate.decision_log().len() % 17, 0, "records stay fixed width");
    }
}
