//! Transports: in-process loopback and TCP.
//!
//! The loopback transport runs the full wire path — every frame is
//! encoded to bytes and decoded back on both legs — without sockets, so
//! tests and benchmarks exercise exactly the bytes a TCP peer would see
//! while staying deterministic and sandbox-friendly. The TCP transport
//! serves any [`SharedGate`] — the monolithic [`GateService`] behind one
//! mutex, or the [`ShardedGate`](crate::sharded::ShardedGate) with its
//! per-shard locks — one reader thread per connection with a hard cap.

use std::io::Write;
use std::net::TcpListener;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sybil_sim::Time;

use crate::service::{GateHandler, GateService, Response};
use crate::wire::{read_frame, Frame};

/// An in-process connection to a gate, speaking real wire bytes.
pub struct Loopback<G = GateService> {
    service: G,
}

impl<G: GateHandler> Loopback<G> {
    /// Wraps a service in a loopback transport.
    pub fn new(service: G) -> Self {
        Loopback { service }
    }

    /// Opens a connection at `now`; returns the connection id and the
    /// decoded hello frame, after pushing it through encode/decode as a
    /// socket write would.
    pub fn connect(&mut self, now: Time) -> (u64, Frame) {
        let (conn, hello) = self.service.connect(now);
        let bytes = hello.encode();
        let (decoded, _) = Frame::decode(&bytes).expect("hello frames always round-trip");
        (conn, decoded)
    }

    /// Sends one client frame and returns the server's reply, or `None`
    /// when the server silently drops. Both directions cross the wire
    /// encoding.
    pub fn request(&mut self, conn: u64, frame: &Frame, now: Time) -> Option<Frame> {
        let bytes = frame.encode();
        let (decoded, _) = Frame::decode(&bytes).expect("well-formed frames round-trip");
        match self.service.handle(conn, &decoded, now) {
            Response::Drop => None,
            Response::Reply(reply) => {
                let bytes = reply.encode();
                let (decoded, _) = Frame::decode(&bytes).expect("replies round-trip");
                Some(decoded)
            }
        }
    }

    /// The wrapped service (counters, decision log, fingerprint).
    pub fn service(&self) -> &G {
        &self.service
    }

    /// Consumes the transport, returning the service.
    pub fn into_service(self) -> G {
        self.service
    }
}

/// A gate the TCP front end can drive through shared references from
/// many handler threads at once. `Mutex<GateService>` serializes every
/// frame behind one global lock — the pre-sharding behavior — while
/// [`ShardedGate`](crate::sharded::ShardedGate) takes per-shard locks
/// and keeps the expensive verifications outside all of them.
pub trait SharedGate: Send + Sync {
    /// Opens a connection; see [`GateService::connect`].
    fn connect(&self, now: Time) -> (u64, Frame);
    /// Handles one client frame; see [`GateService::handle`].
    fn handle(&self, conn: u64, frame: &Frame, now: Time) -> Response;
}

impl SharedGate for Mutex<GateService> {
    fn connect(&self, now: Time) -> (u64, Frame) {
        lock(self).connect(now)
    }
    fn handle(&self, conn: u64, frame: &Frame, now: Time) -> Response {
        lock(self).handle(conn, frame, now)
    }
}

/// Locks a shared service, surviving a panic in another handler: the
/// gate's state is append-only counters and maps, safe to keep serving.
fn lock(service: &Mutex<GateService>) -> std::sync::MutexGuard<'_, GateService> {
    service.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Serves a gate over TCP until the listener fails. Each accepted
/// connection gets the hello immediately, then a read loop; at most
/// `max_conns` handler threads run at once — excess connections are
/// handled inline on the accept thread, a crude but effective
/// backpressure. A panicking handler costs exactly its own connection:
/// the unwind is caught so the slot is always released and an inline
/// handler can never take the acceptor loop down with it. Timestamps
/// are seconds since serve start.
pub fn serve<G: SharedGate + 'static>(
    listener: TcpListener,
    service: Arc<G>,
    max_conns: usize,
) -> std::io::Result<()> {
    let start = Instant::now();
    let active = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        let stream = stream?;
        let service = Arc::clone(&service);
        let slot = Arc::clone(&active);
        let handler = move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = handle_conn(stream, &*service, start);
            }));
            slot.fetch_sub(1, Ordering::Relaxed);
        };
        if active.fetch_add(1, Ordering::Relaxed) < max_conns.max(1) {
            std::thread::spawn(handler);
        } else {
            handler();
        }
    }
    Ok(())
}

/// One connection's lifecycle: hello, then frames until drop or EOF.
fn handle_conn<G: SharedGate>(
    mut stream: std::net::TcpStream,
    service: &G,
    start: Instant,
) -> std::io::Result<()> {
    let now = || Time(start.elapsed().as_secs_f64());
    let (conn, hello) = service.connect(now());
    stream.write_all(&hello.encode())?;
    while let Some(frame) = read_frame(&mut stream)? {
        match service.handle(conn, &frame, now()) {
            Response::Reply(reply) => stream.write_all(&reply.encode())?,
            Response::Drop => break, // silent: close without a byte
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memhard::{mine, MemHardParams};
    use crate::service::GateConfig;
    use sybil_crypto::{Challenge, Solver};

    fn small_cfg() -> GateConfig {
        GateConfig {
            difficulty_floor: 2,
            mine_bits: 1,
            mem: MemHardParams { blocks: 4, passes: 1 },
            ..GateConfig::default()
        }
    }

    /// Drives one full two-phase admission through a transport-agnostic
    /// request function; shared by the loopback test here and the TCP
    /// smoke test in `tests/loopback.rs`.
    pub(crate) fn admit_via(
        hello: &Frame,
        mut request: impl FnMut(&Frame) -> Option<Frame>,
        client_tag: u64,
    ) -> Option<u64> {
        let &Frame::Hello { difficulty, nonce, mine_bits, mem_blocks, mem_passes, .. } = hello
        else {
            return None;
        };
        let challenge = Challenge::new(&nonce, &client_tag.to_be_bytes(), difficulty);
        let solution = Solver::new().solve(&challenge).nonce;
        let reply = request(&Frame::Join { client_tag, solution })?;
        let Frame::Granted { identity, token } = reply else { return None };
        let mem = MemHardParams { blocks: mem_blocks, passes: mem_passes };
        let mined = mine(&token, mine_bits, &mem);
        let reply = request(&Frame::MineSubmit { identity, token, salt: mined.salt })?;
        matches!(reply, Frame::Admitted { identity: i } if i == identity).then_some(identity)
    }

    #[test]
    fn loopback_full_admission_crosses_the_wire() {
        let mut lb = Loopback::new(GateService::new(small_cfg()));
        let (conn, hello) = lb.connect(Time(1.0));
        let identity = admit_via(&hello, |f| lb.request(conn, f, Time(1.0)), 7);
        // Note: after the Join the connection state is consumed, but the
        // MineSubmit carries its own credentials so the same conn id works.
        assert_eq!(identity, Some(0));
        let c = lb.service().counters();
        assert_eq!((c.granted, c.admitted), (1, 1));
    }

    #[test]
    fn loopback_drop_is_none() {
        // A high floor so a garbage solution cannot fluke past the
        // verifier (at difficulty d the fluke probability is 1/d).
        let cfg = GateConfig { difficulty_floor: 1 << 30, ..small_cfg() };
        let mut lb = Loopback::new(GateService::new(cfg));
        let (conn, _) = lb.connect(Time(1.0));
        let reply = lb.request(conn, &Frame::Join { client_tag: 1, solution: u64::MAX }, Time(1.0));
        assert_eq!(reply, None);
        assert_eq!(lb.service().counters().rejected_pow, 1);
    }

    #[test]
    fn poisoned_service_mutex_keeps_serving() {
        // A handler that panics while holding the global mutex poisons
        // it; the SharedGate impl recovers the guard, because every gate
        // state transition is complete before any panic point a handler
        // could hit.
        let service = Arc::new(Mutex::new(GateService::new(small_cfg())));
        let poisoner = Arc::clone(&service);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("deliberate test panic to poison the mutex");
        })
        .join();
        assert!(service.lock().is_err(), "the mutex must actually be poisoned");
        let (_, hello) = SharedGate::connect(&*service, Time(1.0));
        assert!(matches!(hello, Frame::Hello { .. }));
        assert_eq!(lock(&service).counters().dropped, 0);
    }

    /// A gate whose N-th `connect` panics: the deterministic stand-in
    /// for a handler bug, used to pin that a panicking handler cannot
    /// take the acceptor down.
    struct FlakyGate {
        inner: Mutex<GateService>,
        calls: AtomicUsize,
        panic_on: usize,
    }

    impl SharedGate for FlakyGate {
        fn connect(&self, now: Time) -> (u64, Frame) {
            if self.calls.fetch_add(1, Ordering::SeqCst) == self.panic_on {
                panic!("deliberate test panic in a connection handler");
            }
            SharedGate::connect(&self.inner, now)
        }
        fn handle(&self, conn: u64, frame: &Frame, now: Time) -> Response {
            SharedGate::handle(&self.inner, conn, frame, now)
        }
    }

    #[test]
    fn panicking_inline_handler_does_not_kill_the_acceptor() {
        use std::io::Read;

        let Ok(listener) = TcpListener::bind("127.0.0.1:0") else {
            eprintln!("skipping: cannot bind a localhost listener in this sandbox");
            return;
        };
        let addr = listener.local_addr().expect("bound listener has an address");
        let gate = Arc::new(FlakyGate {
            inner: Mutex::new(GateService::new(small_cfg())),
            calls: AtomicUsize::new(0),
            panic_on: 1,
        });
        std::thread::spawn(move || {
            let _ = serve(listener, gate, 1);
        });

        // Connection A is healthy and holds the single handler slot open.
        // Reading its hello proves its connect (call 0) has completed, so
        // the panic is pinned to connection B.
        let mut a = std::net::TcpStream::connect(addr).expect("connect A");
        let mut hello_a = [0u8; 4];
        a.read_exact(&mut hello_a).expect("hello A length prefix");

        // Connection B overflows the cap, so it is handled inline on the
        // acceptor thread — the worst case — and its connect panics.
        // Pre-hardening, that unwind killed the accept loop.
        let mut b = std::net::TcpStream::connect(addr).expect("connect B");
        let mut buf = Vec::new();
        let n = b.read_to_end(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "the panicked connection closes without a byte");

        // Connection C proves the acceptor survived: it is also handled
        // inline (A still occupies the slot) and gets a real hello.
        let mut c = std::net::TcpStream::connect(addr).expect("connect C");
        let mut hello_c = [0u8; 4];
        c.read_exact(&mut hello_c).expect("the acceptor must still serve hellos");
    }
}
